// Section 5, "Guiding protocol development": use the adversarial framework
// as a continuous-integration gate. Instead of replaying a fixed corpus of
// traces that broke an *earlier* version of the protocol, re-train a fresh
// adversary against the *current* build and fail the gate if it can still
// open more than an allowed optimality gap.
//
//   $ ./regression_gate [max_allowed_regret] [adversary_steps]
//
// Exit code 0 = the protocol passes (no adversary of this budget opens more
// than the allowed regret); 1 = regression found, with the offending traces
// saved for debugging.
#include <cstdio>
#include <string>

#include "abr/bola.hpp"
#include "abr/optimal.hpp"
#include "abr/runner.hpp"
#include "core/abr_adversary.hpp"
#include "core/recorder.hpp"
#include "core/trainer.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

using namespace netadv;

int main(int argc, char** argv) {
  const double max_allowed_regret = argc > 1 ? std::stod(argv[1]) : 60.0;
  const std::size_t steps = argc > 2 ? std::stoul(argv[2]) : 40000;

  // The protocol under CI: swap in the build being tested.
  abr::Bola protocol;
  const abr::VideoManifest manifest;

  std::printf("regression gate: training a %zu-step adversary against %s\n",
              steps, protocol.name().c_str());
  core::AbrAdversaryEnv env{manifest, protocol};
  rl::PpoAgent adversary = core::train_abr_adversary(env, steps, /*seed=*/2024);

  util::Rng rng{2025};
  const auto traces = core::record_abr_traces(adversary, env, 20, rng);

  double worst_regret = 0.0;
  trace::Trace worst_trace;
  double total_regret = 0.0;
  for (const auto& t : traces) {
    abr::Bola fresh;
    const double protocol_qoe = abr::run_playback(fresh, manifest, t).total_qoe;
    const double optimal_qoe = abr::optimal_playback(manifest, t).total_qoe;
    const double regret = optimal_qoe - protocol_qoe;
    total_regret += regret;
    if (regret > worst_regret) {
      worst_regret = regret;
      worst_trace = t;
    }
  }
  const double mean_regret = total_regret / static_cast<double>(traces.size());

  std::printf("mean regret: %.1f QoE, worst trace: %.1f QoE "
              "(threshold %.1f)\n",
              mean_regret, worst_regret, max_allowed_regret);
  if (mean_regret <= max_allowed_regret) {
    std::printf("PASS: no adversary of this budget exceeds the allowed "
                "optimality gap\n");
    return 0;
  }
  const std::string path = "regression_worst_trace.csv";
  trace::save_trace(worst_trace, path);
  std::printf("FAIL: regression found; worst adversarial trace saved to %s\n"
              "      (replay it with abr::run_playback to debug)\n",
              path.c_str());
  return 1;
}
