// netadv_cli — command-line front end to the adversarial framework:
//
//   netadv_cli list [protocols|senders|generators|adversaries|qoe|jobs]
//                                                             print registries
//   netadv_cli gen   <generator> <count> <out_prefix>         generate traces
//   netadv_cli eval  <protocol> <trace.csv>                   replay a protocol
//   netadv_cli attack <protocol> <steps> <count> <out_prefix> train + record
//   netadv_cli cc    <sender> <trace.csv>                     replay a CC flow
//   netadv_cli serve <protocol> <qoe> <sessions> <trace.csv>  concurrent
//                    [<out.csv>]                              session serving
//   netadv_cli mm-export <trace.csv> <out.mm>                 Mahimahi export
//   netadv_cli campaign <spec> [--resume] [--dry-run]         run a campaign
//   netadv_cli campaign <spec> --worker                       join as a worker
//   netadv_cli campaign <spec> --spawn-workers N              fork N workers
//   netadv_cli info                                           build/CPU report
//
// Every <generator>/<protocol>/<sender> name resolves through the core::
// registries (`list` prints them with domain + description); the usage text
// below is generated from the same tables, so it can never go stale.
//
// Exit-code contract: 0 on success, 1 on a runtime error (missing file,
// factory failure such as `eval pensieve` without a checkpoint, or a
// campaign with failed/blocked jobs — the manifest records which), 2 on a
// usage error (unknown command/name/flag or wrong arity). Traces use the
// CSV schema of trace::save_trace.
//
// Worker exit-code contract (--worker / --spawn-workers): a worker exits
// only once the *whole campaign* is settled — 0 when every job completed
// (regardless of which worker ran it), 1 when any job settled failed or
// blocked, 2 on a usage error. So in a fleet, every worker agrees on the
// campaign verdict, and `--spawn-workers N` simply forwards the consensus.
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "abr/optimal.hpp"
#include "abr/runner.hpp"
#include "core/abr_adversary.hpp"
#include "core/recorder.hpp"
#include "core/registry.hpp"
#include "core/trainer.hpp"
#include "exp/campaign.hpp"
#include "exp/jobs.hpp"
#include "exp/scheduler.hpp"
#include "exp/spool.hpp"
#include "rl/kernels.hpp"
#include "rl/mlp.hpp"
#include "serve/engine.hpp"
#include "trace/generators.hpp"
#include "trace/mahimahi.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace netadv;

namespace {

int usage() {
  const std::string generators = core::trace_generators().names("|");
  const std::string protocols = core::abr_protocols().names("|");
  const std::string senders = core::cc_senders().names("|");
  const std::string qoe = core::qoe_models().names("|");
  std::fprintf(
      stderr,
      "usage:\n"
      "  netadv_cli list [protocols|senders|generators|adversaries|qoe|jobs]\n"
      "  netadv_cli gen <%s> <count> <out_prefix>\n"
      "  netadv_cli eval <%s> <trace.csv>\n"
      "  netadv_cli attack <%s> <steps> <count> <out_prefix>\n"
      "  netadv_cli cc <%s> <trace.csv>\n"
      "  netadv_cli serve <%s> <%s> <sessions> <trace.csv> [<out.csv>]\n"
      "  netadv_cli mm-export <trace.csv> <out.mm>\n"
      "  netadv_cli campaign <spec> [--resume] [--dry-run] [--worker]\n"
      "      [--spawn-workers N] [--lease <seconds>] [--poll-ms <ms>]\n"
      "  netadv_cli info\n",
      generators.c_str(), protocols.c_str(), protocols.c_str(),
      senders.c_str(), protocols.c_str(), qoe.c_str());
  return 2;
}

// The core:: registries own the name -> object tables; every command
// resolves through them so `eval mpc`, a spec's `protocol = mpc`, and the
// `list` output can never diverge. try_make: nullptr = unknown name (usage
// error); a known entry may still throw (runtime error, exit 1).
std::unique_ptr<trace::TraceGenerator> make_generator(const std::string& kind) {
  return core::trace_generators().try_make(kind);
}

std::unique_ptr<abr::AbrProtocol> make_protocol(const std::string& kind) {
  return core::abr_protocols().try_make(kind);
}

std::unique_ptr<cc::CcSender> make_sender(const std::string& kind) {
  return core::cc_senders().try_make(kind);
}

void print_registry(const char* heading, const core::RegistryBase& registry) {
  std::printf("%s:\n", heading);
  for (const core::EntryInfo& entry : registry.entries()) {
    std::printf("  %-12s %-4s %s\n", entry.name.c_str(),
                core::to_string(entry.domain).c_str(),
                entry.description.c_str());
  }
}

void print_jobs() {
  std::printf("campaign job kinds:\n");
  for (const auto& [kind, description] : exp::builtin_jobs().kinds()) {
    // Job kinds are domain-neutral: `domain = abr|cc` is a job param.
    std::printf("  %-16s %-4s %s\n", kind.c_str(), "any", description.c_str());
  }
}

int cmd_list(const std::vector<std::string>& args) {
  const std::vector<std::string> categories =
      args.empty()
          ? std::vector<std::string>{"protocols", "senders", "generators",
                                     "adversaries", "qoe", "jobs"}
          : args;
  for (const std::string& category : categories) {
    if (category == "protocols") {
      print_registry("ABR protocols", core::abr_protocols());
    } else if (category == "senders") {
      print_registry("CC senders", core::cc_senders());
    } else if (category == "generators") {
      print_registry("trace generators", core::trace_generators());
    } else if (category == "adversaries") {
      print_registry("adversary kinds", core::adversary_kinds());
    } else if (category == "qoe") {
      print_registry("QoE models", core::qoe_models());
    } else if (category == "jobs") {
      print_jobs();
    } else {
      std::fprintf(stderr, "list: unknown category '%s'\n", category.c_str());
      return usage();
    }
  }
  return 0;
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  auto gen = make_generator(args[0]);
  if (!gen) return usage();
  const auto count = static_cast<std::size_t>(std::stoul(args[1]));
  util::Rng rng{20190707};
  for (std::size_t i = 0; i < count; ++i) {
    const std::string path = args[2] + "_" + std::to_string(i) + ".csv";
    trace::save_trace(gen->generate(rng), path);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  auto protocol = make_protocol(args[0]);
  if (!protocol) return usage();
  const trace::Trace t = trace::load_trace(args[1]);
  const abr::VideoManifest manifest;
  const abr::PlaybackRecord record =
      abr::run_playback(*protocol, manifest, t);
  const abr::OptimalPlan optimum = abr::optimal_playback(manifest, t);
  std::printf("%s on %s:\n", protocol->name().c_str(), args[1].c_str());
  std::printf("  QoE            %10.2f (offline optimum %.2f)\n",
              record.total_qoe, optimum.total_qoe);
  std::printf("  mean bitrate   %10.2f Mbps\n", record.mean_bitrate_mbps);
  std::printf("  rebuffering    %10.2f s\n", record.total_rebuffer_s);
  std::printf("  rate switches  %10zu\n", record.quality_switches);
  return 0;
}

int cmd_attack(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  if (!core::abr_protocols().contains(args[0])) return usage();
  // Resolve the target factory once; attack + per-trace regret reuse it.
  const core::ProtocolFactory make_target =
      core::abr_protocols().factory(args[0]);
  auto protocol = make_target();
  const auto steps = static_cast<std::size_t>(std::stoul(args[1]));
  const auto count = static_cast<std::size_t>(std::stoul(args[2]));

  const abr::VideoManifest manifest;
  core::AbrAdversaryEnv env{manifest, *protocol};
  std::printf("training adversary vs %s for %zu steps...\n",
              protocol->name().c_str(), steps);
  rl::PpoAgent adversary = core::train_abr_adversary(env, steps, 20190707);

  util::Rng rng{20190708};
  const auto traces = core::record_abr_traces(adversary, env, count, rng);
  double regret = 0.0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::string path = args[3] + "_" + std::to_string(i) + ".csv";
    trace::save_trace(traces[i], path);
    auto target = make_target();
    regret += abr::optimal_playback(manifest, traces[i]).total_qoe -
              abr::run_playback(*target, manifest, traces[i]).total_qoe;
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("mean regret over %zu traces: %.2f QoE\n", traces.size(),
              regret / static_cast<double>(traces.size()));
  return 0;
}

int cmd_cc(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  auto sender = make_sender(args[0]);
  if (!sender) return usage();
  const trace::Trace t = trace::load_trace(args[1]);
  const core::CcReplayResult result =
      core::replay_cc_trace(*sender, t, {}, 20190707);
  std::printf("%s on %s:\n", sender->name().c_str(), args[1].c_str());
  std::printf("  mean throughput  %8.2f Mbps\n", result.mean_throughput_mbps);
  std::printf("  mean utilization %8.1f %%\n",
              100.0 * result.mean_utilization);
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  if (args.size() != 4 && args.size() != 5) return usage();
  if (!core::abr_protocols().contains(args[0])) return usage();
  if (!core::qoe_models().contains(args[1])) return usage();
  // Resolve both names up front; `serve pensieve` without a checkpoint
  // throws from the factory at session setup (runtime error, exit 1).
  const core::ProtocolFactory make_target =
      core::abr_protocols().factory(args[0]);
  const std::unique_ptr<abr::QoeModel> qoe = core::qoe_models().make(args[1]);
  const auto sessions = static_cast<std::size_t>(std::stoul(args[2]));

  serve::SessionEngine engine{abr::VideoManifest{},
                              {trace::load_trace(args[3])}};
  serve::ServeStats stats;
  const std::vector<serve::SessionSummary> summaries = engine.run(
      make_target, *qoe, sessions, &util::ThreadPool::global(), &stats);

  double qoe_total = 0.0;
  double rebuffer_total = 0.0;
  for (const serve::SessionSummary& s : summaries) {
    qoe_total += s.qoe;
    rebuffer_total += s.rebuffer_s;
  }
  const double n = static_cast<double>(summaries.size());
  std::printf("%s x %zu sessions on %s (qoe = %s):\n", args[0].c_str(),
              summaries.size(), args[3].c_str(), qoe->name().c_str());
  std::printf("  mean QoE        %10.2f\n", qoe_total / n);
  std::printf("  mean rebuffer   %10.2f s\n", rebuffer_total / n);
  std::printf("  sessions/s      %10.0f\n", stats.sessions_per_s());
  std::printf("  decisions/s     %10.0f\n", stats.decisions_per_s());
  std::printf("  decision p50    %10.1f us\n",
              1e6 * util::percentile(stats.decision_latency_s, 50));
  std::printf("  decision p99    %10.1f us\n",
              1e6 * util::percentile(stats.decision_latency_s, 99));
  if (args.size() == 5) {
    serve::save_session_summaries(summaries, args[4]);
    std::printf("wrote %s\n", args[4].c_str());
  }
  return 0;
}

int cmd_mm_export(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const trace::Trace t = trace::load_trace(args[0]);
  trace::save_mahimahi_trace(t, args[1]);
  std::printf("wrote %s (%0.f s, mean %.2f Mbps)\n", args[1].c_str(),
              t.total_duration_s(), t.mean_bandwidth_mbps());
  return 0;
}

/// Fork `count` children, each exec'ing this binary back as
/// `campaign <spec> --worker` — a one-machine fleet. The parent waits for
/// all of them and forwards their consensus verdict.
int spawn_workers(const std::string& exe, const std::string& spec_path,
                  long count, double lease_s, int poll_ms) {
  // /proc/self/exe survives argv[0] being a bare name from PATH lookup.
  std::string self = "/proc/self/exe";
  if (::access(self.c_str(), X_OK) != 0) self = exe;
  char lease[32];
  char poll[32];
  std::snprintf(lease, sizeof lease, "%g", lease_s);
  std::snprintf(poll, sizeof poll, "%d", poll_ms);

  std::vector<pid_t> pids;
  for (long i = 0; i < count; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "campaign: fork failed: %s\n",
                   std::strerror(errno));
      break;  // wait for whatever we managed to start
    }
    if (pid == 0) {
      ::execl(self.c_str(), self.c_str(), "campaign", spec_path.c_str(),
              "--worker", "--lease", lease, "--poll-ms", poll,
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "campaign: exec %s failed: %s\n", self.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    pids.push_back(pid);
  }

  int rc = pids.size() == static_cast<std::size_t>(count) ? 0 : 1;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      rc = 1;
    }
  }
  std::printf("campaign: %zu worker(s) finished, verdict %s\n", pids.size(),
              rc == 0 ? "ok" : "failed");
  return rc;
}

int cmd_campaign(const std::string& exe,
                 const std::vector<std::string>& args) {
  std::string spec_path;
  bool resume = false;
  bool dry_run = false;
  bool worker = false;
  long spawn = 0;
  double lease_s = 30.0;
  int poll_ms = 200;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--resume") {
      resume = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--worker") {
      worker = true;
    } else if (arg == "--spawn-workers" || arg == "--lease" ||
               arg == "--poll-ms") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "campaign: %s needs a value\n", arg.c_str());
        return usage();
      }
      try {
        if (arg == "--spawn-workers") {
          spawn = std::stol(args[++i]);
          if (spawn < 1) throw std::invalid_argument{"count"};
        } else if (arg == "--lease") {
          lease_s = std::stod(args[++i]);
          if (lease_s <= 0.0) throw std::invalid_argument{"lease"};
        } else {
          poll_ms = std::stoi(args[++i]);
          if (poll_ms < 1) throw std::invalid_argument{"poll"};
        }
      } catch (const std::exception&) {
        std::fprintf(stderr, "campaign: bad value for %s\n", arg.c_str());
        return usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "campaign: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage();
    }
  }
  if (spec_path.empty()) return usage();
  if (worker && spawn > 0) {
    std::fprintf(stderr,
                 "campaign: --worker and --spawn-workers are exclusive\n");
    return usage();
  }
  if (dry_run && (worker || spawn > 0)) {
    std::fprintf(stderr, "campaign: --dry-run is single-process\n");
    return usage();
  }

  const exp::Campaign campaign = exp::load_campaign(spec_path);
  if (dry_run) {
    std::fputs(exp::format_plan(campaign, resume).c_str(), stdout);
    return 0;
  }
  if (spawn > 0) {
    return spawn_workers(exe, spec_path, spawn, lease_s, poll_ms);
  }
  if (worker) {
    // Worker mode is inherently resume-like (it appends to the shared
    // manifest and reuses settled entries), so --resume is implied.
    exp::SpoolOptions options;
    options.lease_s = lease_s;
    options.poll_ms = poll_ms;
    options.pool = &util::ThreadPool::global();
    const exp::WorkerReport report =
        exp::run_worker(campaign, exp::builtin_jobs(), options);
    std::printf(
        "worker %s: campaign %s settled — %zu ok, %zu failed, %zu blocked\n"
        "  this worker: %zu executed, %zu failed, %zu blocked lines, "
        "%zu stale claims broken\n"
        "manifest: %s\n",
        report.worker.c_str(), campaign.name.c_str(), report.settled_ok,
        report.settled_failed, report.settled_blocked, report.executed,
        report.failed, report.blocked, report.reclaimed,
        report.manifest.c_str());
    return report.ok() ? 0 : 1;
  }
  exp::SchedulerOptions options;
  options.resume = resume;
  options.pool = &util::ThreadPool::global();
  const exp::CampaignReport report =
      exp::run_campaign(campaign, exp::builtin_jobs(), options);
  std::printf(
      "campaign %s: %zu completed, %zu cached, %zu failed, %zu blocked\n"
      "manifest: %s\n",
      campaign.name.c_str(), report.completed, report.skipped, report.failed,
      report.blocked, report.manifest.c_str());
  return report.ok() ? 0 : 1;
}

int cmd_info(const std::vector<std::string>& args) {
  if (!args.empty()) return usage();
  // Reading active_backend() runs the dispatch resolution, so a forced but
  // unavailable NETADV_SIMD value emits its fallback note (to stderr, via
  // util::log) before the report prints.
  namespace kr = rl::kernels;
  const kr::Backend active = kr::active_backend();

  const char* simd_env = std::getenv("NETADV_SIMD");
  const char* threads_env = std::getenv("NETADV_THREADS");
  std::printf("kernel backends (compiled / cpu / usable):\n");
  const struct {
    const char* name;
    bool compiled;
    bool cpu;
    kr::Backend backend;
  } rows[] = {
      {"scalar", true, true, kr::Backend::kScalar},
      {"avx2", kr::avx2_compiled(), kr::avx2_runtime_supported(),
       kr::Backend::kAvx2},
      {"avx512", kr::avx512_compiled(), kr::avx512_runtime_supported(),
       kr::Backend::kAvx512},
      {"neon", kr::neon_compiled(), kr::neon_runtime_supported(),
       kr::Backend::kNeon},
  };
  for (const auto& row : rows) {
    std::printf("  %-8s %-3s / %-3s / %-3s%s\n", row.name,
                row.compiled ? "yes" : "no", row.cpu ? "yes" : "no",
                kr::backend_available(row.backend) ? "yes" : "no",
                row.backend == active ? "   <- active" : "");
  }
  std::printf("NETADV_SIMD      %s -> %s (auto would pick %s)\n",
              simd_env ? simd_env : "(unset, auto)", kr::backend_name(active),
              kr::backend_name(kr::best_backend()));
  std::printf("NETADV_THREADS   %s -> %zu lanes\n",
              threads_env ? threads_env : "(unset, hardware)",
              util::ThreadPool::default_thread_count());
  std::printf("NETADV_F32_ROLLOUT %s -> fp32 rollout default %s\n",
              std::getenv("NETADV_F32_ROLLOUT")
                  ? std::getenv("NETADV_F32_ROLLOUT")
                  : "(unset)",
              rl::f32_rollout_env_default() ? "on" : "off");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  try {
    if (cmd == "list") return cmd_list(args);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "attack") return cmd_attack(args);
    if (cmd == "cc") return cmd_cc(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "mm-export") return cmd_mm_export(args);
    if (cmd == "campaign") return cmd_campaign(argv[0], args);
    if (cmd == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
