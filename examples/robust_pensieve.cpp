// The Section-2.3 robustification recipe end to end: train Pensieve on a
// broadband-like corpus, pause, train an adversary against the
// partially-trained model, inject the adversary's traces into the corpus,
// finish training — then compare against a baseline trained without the
// adversarial traces, on both in-distribution and harder out-of-
// distribution (3G-like) test sets.
//
//   $ ./robust_pensieve [protocol_steps] [adversary_steps]
#include <cstdio>
#include <string>

#include "abr/pensieve.hpp"
#include "abr/runner.hpp"
#include "core/trainer.hpp"
#include "trace/generators.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

using namespace netadv;

int main(int argc, char** argv) {
  const std::size_t protocol_steps = argc > 1 ? std::stoul(argv[1]) : 150000;
  const std::size_t adversary_steps = argc > 2 ? std::stoul(argv[2]) : 60000;

  const abr::VideoManifest manifest;
  util::Rng rng{21};
  trace::FccLikeGenerator broadband{{}};
  trace::Hsdpa3gLikeGenerator threeg{{}};
  const auto train_corpus = broadband.generate_many(100, rng);
  const auto test_broadband = broadband.generate_many(50, rng);
  const auto test_3g = threeg.generate_many(50, rng);

  auto train_variant = [&](double inject_fraction, std::uint64_t seed) {
    abr::PensieveEnv env{manifest, train_corpus};
    rl::PpoAgent agent = abr::make_pensieve_agent(manifest, seed);
    core::RobustifyConfig cfg;
    cfg.protocol_steps = protocol_steps;
    cfg.inject_fraction = inject_fraction;
    cfg.adversary_steps = adversary_steps;
    cfg.adversarial_traces = 100;
    cfg.seed = seed;
    core::robustify_pensieve(agent, env, cfg);
    return agent;
  };

  std::printf("training baseline Pensieve (%zu steps, broadband corpus)...\n",
              protocol_steps);
  rl::PpoAgent baseline = train_variant(1.0, 100);
  std::printf("training robustified Pensieve (adversary injected at 70%%)"
              "...\n");
  rl::PpoAgent robust = train_variant(0.7, 100);

  abr::PensievePolicy base_policy{baseline, "pensieve-baseline"};
  abr::PensievePolicy robust_policy{robust, "pensieve-robust"};

  for (const auto& [name, traces] :
       std::vector<std::pair<std::string, const std::vector<trace::Trace>*>>{
           {"broadband test", &test_broadband}, {"3g test (unseen)", &test_3g}}) {
    const auto base_qoe = abr::qoe_per_trace(base_policy, manifest, *traces);
    const auto robust_qoe = abr::qoe_per_trace(robust_policy, manifest, *traces);
    std::printf("\n%s:\n", name.c_str());
    std::printf("  baseline:    mean %7.3f   5th-pct %7.3f\n",
                util::mean(base_qoe), util::percentile(base_qoe, 5));
    std::printf("  robustified: mean %7.3f   5th-pct %7.3f\n",
                util::mean(robust_qoe), util::percentile(robust_qoe, 5));
  }
  std::printf("\n(the paper's Figure 4 finds the clearest gains in the 5th "
              "percentile and on the unseen harder corpus)\n");
  return 0;
}
