// Quickstart: train an adversary against Buffer-Based ABR and show the
// optimality gap it opens.
//
//   $ ./quickstart [training_steps]
//
// Walks the whole public API in ~40 lines of logic: build a video, pick a
// target protocol, wrap it in an AbrAdversaryEnv, train a PPO adversary,
// record adversarial traces, and compare the target's QoE against the
// offline optimum on those traces.
#include <cstdio>
#include <string>

#include "abr/bb.hpp"
#include "abr/optimal.hpp"
#include "abr/runner.hpp"
#include "core/abr_adversary.hpp"
#include "core/recorder.hpp"
#include "core/trainer.hpp"
#include "util/log.hpp"

using namespace netadv;

int main(int argc, char** argv) {
  const std::size_t steps = argc > 1 ? std::stoul(argv[1]) : 40000;

  // 1. The video under test: Pensieve's 48-chunk, 6-rate ladder.
  const abr::VideoManifest manifest;

  // 2. The protocol under attack.
  abr::BufferBased bb;

  // 3. The paper's online adversary environment (Equation 1 reward,
  //    bandwidth actions in 0.8-4.8 Mbps, 10-observation history).
  core::AbrAdversaryEnv env{manifest, bb};

  // 4. Train the adversary (PPO, two hidden layers of 32/16 — Section 3).
  std::printf("training adversary against %s for %zu steps...\n",
              bb.name().c_str(), steps);
  rl::PpoAgent adversary = core::train_abr_adversary(env, steps, /*seed=*/42);

  // 5. Record adversarial traces and measure the damage.
  util::Rng rng{43};
  const auto traces = core::record_abr_traces(adversary, env, 10, rng);
  double protocol_total = 0.0;
  double optimal_total = 0.0;
  for (const auto& trace : traces) {
    abr::BufferBased target;  // fresh instance per playback
    protocol_total += abr::run_playback(target, manifest, trace).total_qoe;
    optimal_total += abr::optimal_playback(manifest, trace).total_qoe;
  }
  const double n = static_cast<double>(traces.size());
  std::printf("\nover %zu adversarial traces:\n", traces.size());
  std::printf("  BB's QoE (mean per video):      %8.2f\n", protocol_total / n);
  std::printf("  offline-optimal QoE:            %8.2f\n", optimal_total / n);
  std::printf("  regret the adversary opened:    %8.2f\n",
              (optimal_total - protocol_total) / n);
  std::printf("\nan example adversarial bandwidth sequence (Mbps):\n  ");
  for (std::size_t i = 0; i < traces[0].size(); i += 4) {
    std::printf("%.1f ", traces[0][i].bandwidth_mbps);
  }
  std::printf("\n");
  return 0;
}
