// ABR protocol showdown: Buffer-Based vs RobustMPC vs a freshly trained
// Pensieve across three synthetic network corpora (broadband-like, 3G-like,
// uniform-random), with the offline optimum as the ceiling.
//
//   $ ./abr_showdown [pensieve_training_steps]
//
// Demonstrates the streaming substrate end to end: trace generators, the
// chunk simulator, every ABR controller, QoE_lin accounting, and the
// offline DP bound.
#include <cstdio>
#include <string>
#include <vector>

#include "abr/bb.hpp"
#include "abr/bola.hpp"
#include "abr/mpc.hpp"
#include "abr/optimal.hpp"
#include "abr/pensieve.hpp"
#include "abr/runner.hpp"
#include "trace/generators.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

using namespace netadv;

int main(int argc, char** argv) {
  const std::size_t train_steps = argc > 1 ? std::stoul(argv[1]) : 150000;
  const abr::VideoManifest manifest;
  util::Rng rng{7};

  // Corpora.
  trace::FccLikeGenerator broadband{{}};
  trace::Hsdpa3gLikeGenerator threeg{{}};
  trace::UniformRandomGenerator uniform{{}};

  // Train Pensieve on a mix of all three so it has seen every regime.
  std::vector<trace::Trace> corpus;
  for (const trace::TraceGenerator* g :
       {static_cast<const trace::TraceGenerator*>(&broadband),
        static_cast<const trace::TraceGenerator*>(&threeg),
        static_cast<const trace::TraceGenerator*>(&uniform)}) {
    auto ts = g->generate_many(50, rng);
    corpus.insert(corpus.end(), ts.begin(), ts.end());
  }
  std::printf("training Pensieve on %zu mixed traces (%zu steps)...\n",
              corpus.size(), train_steps);
  abr::PensieveEnv env{manifest, std::move(corpus)};
  rl::PpoAgent agent = abr::make_pensieve_agent(manifest, 7);
  agent.train(env, train_steps);

  abr::PensievePolicy pensieve{agent};
  abr::BufferBased bb;
  abr::Bola bola;
  abr::RobustMpc mpc;

  std::printf("\n%-12s %10s %10s %10s %10s %10s\n", "corpus", "bb", "bola",
              "mpc", "pensieve", "optimal");
  for (const auto& [name, gen] :
       std::vector<std::pair<std::string, const trace::TraceGenerator*>>{
           {"broadband", &broadband}, {"3g", &threeg}, {"random", &uniform}}) {
    const auto traces = gen->generate_many(30, rng);
    double opt = 0.0;
    for (const auto& t : traces) {
      opt += abr::optimal_playback(manifest, t).total_qoe /
             static_cast<double>(manifest.num_chunks());
    }
    opt /= static_cast<double>(traces.size());
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                util::mean(abr::qoe_per_trace(bb, manifest, traces)),
                util::mean(abr::qoe_per_trace(bola, manifest, traces)),
                util::mean(abr::qoe_per_trace(mpc, manifest, traces)),
                util::mean(abr::qoe_per_trace(pensieve, manifest, traces)),
                opt);
  }
  std::printf("\n(per-chunk mean QoE_lin; higher is better; 'optimal' knows "
              "the future)\n");
  return 0;
}
