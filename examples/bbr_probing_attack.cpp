// The Section-4 congestion-control attack as a standalone program: train
// the 4-neuron adversary against BBR inside the packet-level link
// simulator, then show (a) BBR cruising on a benign fixed link, (b) BBR
// under the online adversary, and (c) where the adversary strikes relative
// to BBR's probing schedule.
//
//   $ ./bbr_probing_attack [training_steps]
#include <cstdio>
#include <string>

#include "cc/bbr.hpp"
#include "cc/runner.hpp"
#include "core/cc_adversary.hpp"
#include "core/recorder.hpp"
#include "core/trainer.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

using namespace netadv;

int main(int argc, char** argv) {
  const std::size_t steps = argc > 1 ? std::stoul(argv[1]) : 300000;

  // (a) Baseline: BBR on a fixed mid-range link from Table 1's ranges.
  {
    cc::BbrSender bbr;
    cc::LinkSim::Params link;
    link.initial = {15.0, 37.5, 0.0};
    cc::CcRunner runner{bbr, link, 1};
    runner.run_until(5.0);
    runner.collect();
    runner.run_until(30.0);
    const cc::IntervalStats stats = runner.collect();
    std::printf("benign fixed link (15 Mbps): BBR utilization %.1f%%\n",
                100.0 * stats.utilization());
  }

  // (b) Train the adversary and attack.
  core::CcAdversaryEnv env;
  std::printf("training adversary against BBR (%zu pairs of 30 ms)...\n",
              steps);
  rl::PpoAgent adversary = core::train_cc_adversary(env, steps, 11);

  util::Rng rng{12};
  const core::CcEpisodeRecord record =
      core::record_cc_episode(adversary, env, rng, /*deterministic=*/false);
  std::printf("under the online adversary:   BBR utilization %.1f%% "
              "(conditions stayed within Table 1's ranges)\n",
              100.0 * record.mean_utilization);
  std::printf("mean loss injected: %.2f%%; mean bandwidth offered: %.1f "
              "Mbps\n",
              100.0 * util::mean(record.loss_rate),
              util::mean(record.bandwidth_mbps));

  // (c) Alignment with the probing schedule.
  std::printf("\nBBR state vs utilization, 1-second samples:\n");
  std::printf("%8s %12s %12s %10s\n", "time_s", "bw_mbps", "tput_mbps",
              "bbr_state");
  const char* names[] = {"STARTUP", "DRAIN", "PROBE_BW", "PROBE_RTT"};
  for (std::size_t i = 0; i < record.bandwidth_mbps.size(); i += 33) {
    const int mode = record.bbr_mode[i];
    std::printf("%8.1f %12.1f %12.1f %10s\n",
                static_cast<double>(i + 1) * env.params().epoch_s,
                record.bandwidth_mbps[i], record.throughput_mbps[i],
                mode >= 0 && mode < 4 ? names[mode] : "?");
  }
  return 0;
}
