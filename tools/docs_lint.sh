#!/bin/sh
# docs-lint: keep EXPERIMENTS.md and the bench registry in sync.
#
# Fails if (a) EXPERIMENTS.md references a bench_* target that bench.cmake
# does not register, or (b) a registered bench binary is never mentioned in
# EXPERIMENTS.md — so every figure/table keeps a runnable command and no
# documented command can rot. Registered as the `docs_lint` ctest and run as
# its own CI lane.
#
# When NETADV_CLI points at a built netadv_cli, a second check diffs
# README.md's registry table (the registry-table-begin/-end block) against
# the live `netadv_cli list` output; it self-skips otherwise (the docs-lint
# CI lane runs without building — the ctest registration sets NETADV_CLI).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$root/EXPERIMENTS.md"
registry="$root/bench/bench.cmake"

registered="$(sed -n 's/^netadv_add_bench(\([a-z0-9_]*\)).*/\1/p' "$registry" | sort -u)"
# bench_out (the artifact dir) and bench_common (the shared library) are
# legitimate non-target mentions.
referenced="$(grep -o 'bench_[a-z0-9_]*' "$doc" | sort -u |
              grep -v -e '^bench_out$' -e '^bench_common$' || true)"

status=0
for b in $referenced; do
  if ! printf '%s\n' "$registered" | grep -qx "$b"; then
    echo "docs-lint: EXPERIMENTS.md references '$b' but bench/bench.cmake does not register it" >&2
    status=1
  fi
done
for b in $registered; do
  if ! printf '%s\n' "$referenced" | grep -qx "$b"; then
    echo "docs-lint: '$b' is registered in bench/bench.cmake but EXPERIMENTS.md never documents it" >&2
    status=1
  fi
done

# README's registry table vs the live registries, via `netadv_cli list`.
readme="$root/README.md"
if [ -n "${NETADV_CLI:-}" ] && [ -x "${NETADV_CLI:-}" ]; then
  doc_names="$(sed -n '/registry-table-begin/,/registry-table-end/p' "$readme" |
               sed -n 's/^| `\([a-z0-9_-]*\)`.*/\1/p' | sort -u)"
  live_names="$("$NETADV_CLI" list protocols senders generators adversaries |
                awk '/^  / { print $1 }' | sort -u)"
  if [ -z "$doc_names" ]; then
    echo "docs-lint: README.md has no registry-table-begin/-end block" >&2
    status=1
  elif [ "$doc_names" != "$live_names" ]; then
    echo "docs-lint: README registry table is out of sync with 'netadv_cli list':" >&2
    echo "--- README table:" >&2
    printf '%s\n' "$doc_names" >&2
    echo "--- netadv_cli list:" >&2
    printf '%s\n' "$live_names" >&2
    status=1
  fi
else
  echo "docs-lint: NETADV_CLI not set; skipping the README registry-table check"
fi

if [ "$status" -eq 0 ]; then
  echo "docs-lint: OK ($(printf '%s\n' "$registered" | wc -l | tr -d ' ') bench targets cross-checked)"
fi
exit "$status"
