#!/bin/sh
# docs-lint: keep EXPERIMENTS.md and the bench registry in sync.
#
# Fails if (a) EXPERIMENTS.md references a bench_* target that bench.cmake
# does not register, or (b) a registered bench binary is never mentioned in
# EXPERIMENTS.md — so every figure/table keeps a runnable command and no
# documented command can rot. Registered as the `docs_lint` ctest and run as
# its own CI lane.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$root/EXPERIMENTS.md"
registry="$root/bench/bench.cmake"

registered="$(sed -n 's/^netadv_add_bench(\([a-z0-9_]*\)).*/\1/p' "$registry" | sort -u)"
# bench_out (the artifact dir) and bench_common (the shared library) are
# legitimate non-target mentions.
referenced="$(grep -o 'bench_[a-z0-9_]*' "$doc" | sort -u |
              grep -v -e '^bench_out$' -e '^bench_common$' || true)"

status=0
for b in $referenced; do
  if ! printf '%s\n' "$registered" | grep -qx "$b"; then
    echo "docs-lint: EXPERIMENTS.md references '$b' but bench/bench.cmake does not register it" >&2
    status=1
  fi
done
for b in $registered; do
  if ! printf '%s\n' "$referenced" | grep -qx "$b"; then
    echo "docs-lint: '$b' is registered in bench/bench.cmake but EXPERIMENTS.md never documents it" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "docs-lint: OK ($(printf '%s\n' "$registered" | wc -l | tr -d ' ') bench targets cross-checked)"
fi
exit "$status"
