#!/bin/sh
# docs-lint: keep EXPERIMENTS.md and the bench registry in sync.
#
# Fails if (a) EXPERIMENTS.md references a bench_* target that bench.cmake
# does not register, or (b) a registered bench binary is never mentioned in
# EXPERIMENTS.md — so every figure/table keeps a runnable command and no
# documented command can rot. Registered as the `docs_lint` ctest and run as
# its own CI lane.
#
# When NETADV_CLI points at a built netadv_cli, a second check diffs
# README.md's registry table (the registry-table-begin/-end block) against
# the live `netadv_cli list` output; it self-skips otherwise (the docs-lint
# CI lane runs without building — the ctest registration sets NETADV_CLI).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$root/EXPERIMENTS.md"
registry="$root/bench/bench.cmake"

registered="$(sed -n 's/^netadv_add_bench(\([a-z0-9_]*\)).*/\1/p' "$registry" | sort -u)"
# bench_out (the artifact dir) and bench_common (the shared library) are
# legitimate non-target mentions.
referenced="$(grep -o 'bench_[a-z0-9_]*' "$doc" | sort -u |
              grep -v -e '^bench_out$' -e '^bench_common$' || true)"

status=0
for b in $referenced; do
  if ! printf '%s\n' "$registered" | grep -qx "$b"; then
    echo "docs-lint: EXPERIMENTS.md references '$b' but bench/bench.cmake does not register it" >&2
    status=1
  fi
done
for b in $registered; do
  if ! printf '%s\n' "$referenced" | grep -qx "$b"; then
    echo "docs-lint: '$b' is registered in bench/bench.cmake but EXPERIMENTS.md never documents it" >&2
    status=1
  fi
done

# README's campaign usage lines vs the binary's own usage text: every
# `netadv_cli campaign ...` line the CLI prints must appear verbatim in
# README (same self-skip-without-binary pattern as the registry check), so
# the documented worker/resume flags can never drift from the parser.
readme="$root/README.md"
if [ -n "${NETADV_CLI:-}" ] && [ -x "${NETADV_CLI:-}" ]; then
  usage_lines="$("$NETADV_CLI" 2>&1 |
                 sed -n '/netadv_cli campaign/,/netadv_cli info/p' |
                 sed '$d; s/^  *//')"
  if [ -z "$usage_lines" ]; then
    echo "docs-lint: could not extract campaign usage from netadv_cli" >&2
    status=1
  fi
  printf '%s\n' "$usage_lines" | while IFS= read -r line; do
    if ! grep -qF "$line" "$readme"; then
      echo "docs-lint: README.md is missing the CLI usage line: $line" >&2
      exit 1
    fi
  done || status=1
else
  echo "docs-lint: NETADV_CLI not set; skipping the campaign usage check"
fi

# README's registry table vs the live registries, via `netadv_cli list`.
if [ -n "${NETADV_CLI:-}" ] && [ -x "${NETADV_CLI:-}" ]; then
  doc_names="$(sed -n '/registry-table-begin/,/registry-table-end/p' "$readme" |
               sed -n 's/^| `\([a-z0-9_-]*\)`.*/\1/p' | sort -u)"
  live_names="$("$NETADV_CLI" list protocols senders generators adversaries qoe |
                awk '/^  / { print $1 }' | sort -u)"
  if [ -z "$doc_names" ]; then
    echo "docs-lint: README.md has no registry-table-begin/-end block" >&2
    status=1
  elif [ "$doc_names" != "$live_names" ]; then
    echo "docs-lint: README registry table is out of sync with 'netadv_cli list':" >&2
    echo "--- README table:" >&2
    printf '%s\n' "$doc_names" >&2
    echo "--- netadv_cli list:" >&2
    printf '%s\n' "$live_names" >&2
    status=1
  fi
else
  echo "docs-lint: NETADV_CLI not set; skipping the README registry-table check"
fi

if [ "$status" -eq 0 ]; then
  echo "docs-lint: OK ($(printf '%s\n' "$registered" | wc -l | tr -d ' ') bench targets cross-checked)"
fi
exit "$status"
