// PCC Vivace (Dong et al., NSDI 2018) — the online-learning, utility-driven
// congestion controller the paper names alongside BBR and Copa (Section 4).
//
// Simplified single-flow model of Vivace's control loop:
//  * time is split into monitor intervals (MIs) of ~one RTT;
//  * the sender alternates probing pairs: one MI at rate r(1+eps), one at
//    r(1-eps), computing each MI's utility
//        U(x) = x^t_exp  -  b * x * (d RTT / dt)  -  c * x * loss
//    (throughput reward, latency-gradient penalty, loss penalty);
//  * the rate moves in the direction of higher utility, with Vivace's
//    confidence amplifier (consecutive same-direction moves grow the step).
// Because ACKs lag sends by one RTT, measurements observed during window k
// describe the rate offered in window k-1; the implementation therefore
// runs a three-window pipeline (+eps, -eps, neutral) and evaluates the pair
// one window late, which is the MI-aggregate equivalent of PCC's
// per-packet send-time bookkeeping.
#pragma once

#include <cstdint>

#include "cc/sender.hpp"

namespace netadv::cc {

class VivaceSender final : public CcSender {
 public:
  struct Params {
    double packet_bits = 12000.0;
    double initial_rate_mbps = 2.0;
    double min_rate_mbps = 0.12;
    double max_rate_mbps = 1000.0;
    double probe_epsilon = 0.05;    ///< +-5% probing, Vivace's default
    double utility_exponent = 0.9;  ///< t_exp in x^t_exp
    double latency_coefficient = 900.0;  ///< b (x in Mbps, gradient in s/s)
    double loss_coefficient = 11.35;     ///< c
    double initial_rtt_s = 0.1;
    double step_fraction = 0.05;    ///< base rate step per decision
    double max_amplifier = 6.0;     ///< confidence amplifier cap
  };

  VivaceSender() : VivaceSender(Params{}) {}
  explicit VivaceSender(Params params);

  std::string name() const override { return "vivace"; }
  void start(double now_s) override;
  void on_ack(const AckInfo& ack) override;
  void on_loss(const LossInfo& loss) override;
  double pacing_rate_bps() const override;
  double cwnd_packets() const override;

  // Introspection for tests.
  double base_rate_mbps() const noexcept { return rate_mbps_; }
  double last_utility() const noexcept { return last_utility_; }
  int amplifier() const noexcept { return amplifier_; }

 private:
  struct MonitorInterval {
    double start_s = 0.0;
    std::uint64_t acked = 0;
    std::uint64_t lost = 0;
    double rtt_first = 0.0;
    double rtt_last = 0.0;
    double duration_s = 0.0;
  };

  double utility_of(const MonitorInterval& mi) const;
  void finish_window(double now_s);
  double offered_rate_mbps() const;

  Params params_;

  double rate_mbps_ = 2.0;   ///< base rate r
  /// Pipeline phase: 0 sends +eps, 1 sends -eps, 2 sends the base rate.
  /// Stats measured during phase 1 reflect phase 0's sends, and during
  /// phase 2 reflect phase 1's; the pair is evaluated at the end of phase 2.
  int phase_ = 0;
  MonitorInterval current_{};
  MonitorInterval measured_plus_{};   ///< stats attributable to the +eps MI
  MonitorInterval measured_minus_{};  ///< stats attributable to the -eps MI

  double srtt_s_ = 0.1;
  double last_utility_ = 0.0;
  int direction_ = 0;
  int amplifier_ = 1;
};

}  // namespace netadv::cc
