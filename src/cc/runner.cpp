#include "cc/runner.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cc/bbr.hpp"

namespace netadv::cc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double IntervalStats::utilization() const noexcept {
  if (capacity_bits <= 0.0) return 0.0;
  return std::min(1.0, delivered_bits / capacity_bits);
}

CcRunner::CcRunner(CcSender& sender, LinkSim::Params link_params,
                   std::uint64_t seed)
    : sender_(&sender), link_(link_params), rng_(seed) {
  sender_->start(0.0);
  last_rtt_s_ = 2.0 * link_.conditions().one_way_delay_ms / 1000.0;
}

void CcRunner::set_conditions(const LinkConditions& conditions) {
  // Close the capacity integral under the old bandwidth up to now, then
  // switch; advance_clock resumes the integral under the new bandwidth.
  link_.set_conditions(conditions);
}

void CcRunner::advance_clock(double t_s) {
  if (t_s < now_s_) throw std::logic_error{"CcRunner: time went backwards"};
  interval_.capacity_bits +=
      (t_s - now_s_) * link_.conditions().bandwidth_mbps * 1e6;
  now_s_ = t_s;
}

double CcRunner::next_send_time() const {
  if (inflight_ >= sender_->cwnd_packets()) return kInf;
  return std::max(now_s_, send_allowed_at_s_);
}

void CcRunner::send_packet() {
  const double pkt_bits = link_.packet_bits();
  const double rate = sender_->pacing_rate_bps();
  send_allowed_at_s_ = now_s_ + pkt_bits / rate;

  const std::uint64_t id = next_packet_id_++;
  const TransmitResult result = link_.transmit(now_s_, rng_);
  ++inflight_;
  ++total_sent_;
  ++interval_.packets_sent;

  if (result.kind == TransmitResult::Kind::kDelivered) {
    Event e;
    e.kind = Event::Kind::kAck;
    e.time_s = result.ack_return_time_s;
    e.ack.packet_id = id;
    e.ack.send_time_s = now_s_;
    e.ack.ack_time_s = result.ack_return_time_s;
    e.ack.rtt_s = result.ack_return_time_s - now_s_;
    e.ack.delivered_at_send = delivered_;
    e.ack.delivered_time_at_send_s = delivered_time_s_;
    events_.push(e);
    queue_delay_sum_s_ += result.queue_delay_s;
  } else {
    // Drop: the stack notices roughly one RTT after the send.
    Event e;
    e.kind = Event::Kind::kLoss;
    e.time_s = now_s_ + std::max(last_rtt_s_,
                                 2.0 * link_.conditions().one_way_delay_ms /
                                     1000.0);
    e.loss.packet_id = id;
    e.loss.send_time_s = now_s_;
    e.loss.detect_time_s = e.time_s;
    events_.push(e);
  }
}

void CcRunner::process_event(const Event& event) {
  if (event.kind == Event::Kind::kAck) {
    --inflight_;
    ++delivered_;
    delivered_time_s_ = event.time_s;
    ++total_delivered_;
    ++interval_.packets_delivered;
    interval_.delivered_bits += link_.packet_bits();
    rtt_sum_s_ += event.ack.rtt_s;
    last_rtt_s_ = event.ack.rtt_s;

    AckInfo ack = event.ack;
    ack.delivered = delivered_;
    if (auto* bbr = dynamic_cast<BbrSender*>(sender_)) {
      bbr->set_inflight(inflight_);
    }
    sender_->on_ack(ack);
  } else {
    --inflight_;
    ++total_lost_;
    ++interval_.packets_lost;
    if (auto* bbr = dynamic_cast<BbrSender*>(sender_)) {
      bbr->set_inflight(inflight_);
    }
    sender_->on_loss(event.loss);
  }
}

void CcRunner::run_until(double t_s) {
  if (t_s < now_s_) throw std::invalid_argument{"CcRunner: run_until in the past"};
  while (true) {
    const double t_event = events_.empty() ? kInf : events_.top().time_s;
    const double t_send = next_send_time();
    const double t_next = std::min(t_event, t_send);
    if (t_next > t_s) break;
    advance_clock(t_next);
    if (t_send <= t_event) {
      send_packet();
    } else {
      const Event event = events_.top();
      events_.pop();
      process_event(event);
    }
  }
  advance_clock(t_s);
}

IntervalStats CcRunner::collect() {
  IntervalStats stats = interval_;
  stats.duration_s = now_s_ - interval_start_s_;
  if (stats.packets_delivered > 0) {
    stats.mean_queue_delay_s =
        queue_delay_sum_s_ / static_cast<double>(stats.packets_delivered);
    stats.mean_rtt_s = rtt_sum_s_ / static_cast<double>(stats.packets_delivered);
  }
  interval_ = IntervalStats{};
  interval_start_s_ = now_s_;
  queue_delay_sum_s_ = 0.0;
  rtt_sum_s_ = 0.0;
  return stats;
}

}  // namespace netadv::cc
