// Multiple congestion-controlled flows sharing one bottleneck — the
// contention setting every real deployment faces and the natural substrate
// for the incast/fairness adversarial goals the paper sketches in
// Section 5. Same event model as CcRunner, with per-flow pacing, delivery
// bookkeeping, and statistics.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "cc/link.hpp"
#include "cc/sender.hpp"
#include "util/rng.hpp"

namespace netadv::cc {

/// Per-flow interval statistics (since the previous collect()).
struct FlowStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_lost = 0;
  double delivered_bits = 0.0;
  /// Mean RTT of this interval's deliveries; for an interval with no
  /// deliveries, the previous interval's mean (the link's base RTT before
  /// any delivery) — never a fabricated 0 ms.
  double mean_rtt_s = 0.0;

  double throughput_mbps(double duration_s) const noexcept {
    return duration_s > 0.0 ? delivered_bits / duration_s / 1e6 : 0.0;
  }
};

/// Jain's fairness index over per-flow throughputs: 1 = perfectly fair,
/// 1/n = one flow has everything. All-zero (every flow starved) and empty
/// inputs are trivially fair and return 1 — unfairness requires an
/// *imbalance*, so total starvation must not score as maximal unfairness.
double jain_fairness_index(const std::vector<double>& throughputs);

class MultiFlowRunner {
 public:
  /// Senders are borrowed; all flows share the same LinkSim bottleneck.
  /// Each flow may start at its own time (staggered arrivals).
  MultiFlowRunner(std::vector<CcSender*> senders,
                  LinkSim::Params link_params, std::uint64_t seed,
                  std::vector<double> start_times_s = {});

  std::size_t flow_count() const noexcept { return flows_.size(); }
  double now_s() const noexcept { return now_s_; }

  void set_conditions(const LinkConditions& conditions);
  const LinkConditions& conditions() const noexcept {
    return link_.conditions();
  }

  /// Advance the shared simulation to absolute time `t_s`.
  void run_until(double t_s);

  /// Per-flow stats since the previous collect(), plus the shared duration;
  /// resets the accumulators.
  struct Interval {
    double duration_s = 0.0;
    double capacity_bits = 0.0;
    std::vector<FlowStats> flows;

    std::vector<double> throughputs_mbps() const;
    double aggregate_utilization() const noexcept;
  };
  Interval collect();

  std::uint64_t total_sent(std::size_t flow) const {
    return flows_.at(flow).total_sent;
  }
  std::uint64_t total_delivered(std::size_t flow) const {
    return flows_.at(flow).total_delivered;
  }
  std::uint64_t total_lost(std::size_t flow) const {
    return flows_.at(flow).total_lost;
  }
  double inflight_packets(std::size_t flow) const {
    return flows_.at(flow).inflight;
  }

 private:
  struct Flow {
    CcSender* sender = nullptr;
    double start_time_s = 0.0;
    double send_allowed_at_s = 0.0;
    double inflight = 0.0;
    double last_rtt_s = 0.1;
    double last_mean_rtt_s = 0.1;  ///< carried into delivery-free intervals
    std::uint64_t delivered = 0;
    double delivered_time_s = 0.0;
    std::uint64_t total_sent = 0;
    std::uint64_t total_delivered = 0;
    std::uint64_t total_lost = 0;
    FlowStats interval{};
    double rtt_sum_s = 0.0;
  };

  struct Event {
    enum class Kind { kAck, kLoss };
    double time_s = 0.0;
    Kind kind = Kind::kAck;
    std::size_t flow = 0;
    AckInfo ack;
    LossInfo loss;
    bool operator>(const Event& other) const noexcept {
      return time_s > other.time_s;
    }
  };

  void advance_clock(double t_s);
  double next_send_time(const Flow& flow) const;
  void send_packet(std::size_t flow_index);
  void process_event(const Event& event);

  std::vector<Flow> flows_;
  LinkSim link_;
  util::Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

  double now_s_ = 0.0;
  double interval_start_s_ = 0.0;
  double interval_capacity_bits_ = 0.0;
  std::uint64_t next_packet_id_ = 0;
};

}  // namespace netadv::cc
