#include "cc/multiflow.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cc/bbr.hpp"

namespace netadv::cc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double jain_fairness_index(const std::vector<double>& throughputs) {
  // An interval where every flow is starved is trivially *fair* (all flows
  // equal, at zero), not maximally unfair: returning 0 here would pay a
  // fairness adversary full reward for starving everyone — exactly what the
  // loss penalty exists to prevent. Same for the vacuous empty input.
  if (throughputs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : throughputs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(throughputs.size()) * sum_sq);
}

std::vector<double> MultiFlowRunner::Interval::throughputs_mbps() const {
  std::vector<double> out;
  out.reserve(flows.size());
  for (const auto& f : flows) out.push_back(f.throughput_mbps(duration_s));
  return out;
}

double MultiFlowRunner::Interval::aggregate_utilization() const noexcept {
  if (capacity_bits <= 0.0) return 0.0;
  double delivered = 0.0;
  for (const auto& f : flows) delivered += f.delivered_bits;
  return std::min(1.0, delivered / capacity_bits);
}

MultiFlowRunner::MultiFlowRunner(std::vector<CcSender*> senders,
                                 LinkSim::Params link_params,
                                 std::uint64_t seed,
                                 std::vector<double> start_times_s)
    : link_(link_params), rng_(seed) {
  if (senders.empty()) {
    throw std::invalid_argument{"MultiFlowRunner: no senders"};
  }
  if (!start_times_s.empty() && start_times_s.size() != senders.size()) {
    throw std::invalid_argument{"MultiFlowRunner: start_times size mismatch"};
  }
  flows_.reserve(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    if (senders[i] == nullptr) {
      throw std::invalid_argument{"MultiFlowRunner: null sender"};
    }
    Flow flow;
    flow.sender = senders[i];
    flow.start_time_s = start_times_s.empty() ? 0.0 : start_times_s[i];
    flow.send_allowed_at_s = flow.start_time_s;
    flow.last_rtt_s = 2.0 * link_.conditions().one_way_delay_ms / 1000.0;
    flow.last_mean_rtt_s = flow.last_rtt_s;
    flow.sender->start(flow.start_time_s);
    flows_.push_back(flow);
  }
}

void MultiFlowRunner::set_conditions(const LinkConditions& conditions) {
  link_.set_conditions(conditions);
}

void MultiFlowRunner::advance_clock(double t_s) {
  if (t_s < now_s_) throw std::logic_error{"MultiFlowRunner: time went backwards"};
  interval_capacity_bits_ +=
      (t_s - now_s_) * link_.conditions().bandwidth_mbps * 1e6;
  now_s_ = t_s;
}

double MultiFlowRunner::next_send_time(const Flow& flow) const {
  if (now_s_ + 1e-12 < flow.start_time_s) return flow.start_time_s;
  if (flow.inflight >= flow.sender->cwnd_packets()) return kInf;
  return std::max({now_s_, flow.send_allowed_at_s, flow.start_time_s});
}

void MultiFlowRunner::send_packet(std::size_t flow_index) {
  Flow& flow = flows_[flow_index];
  const double pkt_bits = link_.packet_bits();
  flow.send_allowed_at_s = now_s_ + pkt_bits / flow.sender->pacing_rate_bps();

  const std::uint64_t id = next_packet_id_++;
  const TransmitResult result = link_.transmit(now_s_, rng_);
  ++flow.inflight;
  ++flow.total_sent;
  ++flow.interval.packets_sent;

  if (result.kind == TransmitResult::Kind::kDelivered) {
    Event e;
    e.kind = Event::Kind::kAck;
    e.time_s = result.ack_return_time_s;
    e.flow = flow_index;
    e.ack.packet_id = id;
    e.ack.send_time_s = now_s_;
    e.ack.ack_time_s = result.ack_return_time_s;
    e.ack.rtt_s = result.ack_return_time_s - now_s_;
    e.ack.delivered_at_send = flow.delivered;
    e.ack.delivered_time_at_send_s = flow.delivered_time_s;
    events_.push(e);
  } else {
    Event e;
    e.kind = Event::Kind::kLoss;
    e.time_s = now_s_ + std::max(flow.last_rtt_s,
                                 2.0 * link_.conditions().one_way_delay_ms /
                                     1000.0);
    e.flow = flow_index;
    e.loss.packet_id = id;
    e.loss.send_time_s = now_s_;
    e.loss.detect_time_s = e.time_s;
    events_.push(e);
  }
}

void MultiFlowRunner::process_event(const Event& event) {
  Flow& flow = flows_[event.flow];
  if (event.kind == Event::Kind::kAck) {
    --flow.inflight;
    ++flow.delivered;
    flow.delivered_time_s = event.time_s;
    ++flow.total_delivered;
    ++flow.interval.packets_delivered;
    flow.interval.delivered_bits += link_.packet_bits();
    flow.rtt_sum_s += event.ack.rtt_s;
    flow.last_rtt_s = event.ack.rtt_s;

    AckInfo ack = event.ack;
    ack.delivered = flow.delivered;
    if (auto* bbr = dynamic_cast<BbrSender*>(flow.sender)) {
      bbr->set_inflight(flow.inflight);
    }
    flow.sender->on_ack(ack);
  } else {
    --flow.inflight;
    ++flow.total_lost;
    ++flow.interval.packets_lost;
    if (auto* bbr = dynamic_cast<BbrSender*>(flow.sender)) {
      bbr->set_inflight(flow.inflight);
    }
    flow.sender->on_loss(event.loss);
  }
}

void MultiFlowRunner::run_until(double t_s) {
  if (t_s < now_s_) {
    throw std::invalid_argument{"MultiFlowRunner: run_until in the past"};
  }
  while (true) {
    const double t_event = events_.empty() ? kInf : events_.top().time_s;
    double t_send = kInf;
    std::size_t send_flow = 0;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      const double t = next_send_time(flows_[i]);
      if (t < t_send) {
        t_send = t;
        send_flow = i;
      }
    }
    const double t_next = std::min(t_event, t_send);
    if (t_next > t_s) break;
    advance_clock(t_next);
    if (t_send <= t_event) {
      send_packet(send_flow);
    } else {
      const Event event = events_.top();
      events_.pop();
      process_event(event);
    }
  }
  advance_clock(t_s);
}

MultiFlowRunner::Interval MultiFlowRunner::collect() {
  Interval interval;
  interval.duration_s = now_s_ - interval_start_s_;
  interval.capacity_bits = interval_capacity_bits_;
  for (auto& flow : flows_) {
    FlowStats stats = flow.interval;
    if (stats.packets_delivered > 0) {
      stats.mean_rtt_s =
          flow.rtt_sum_s / static_cast<double>(stats.packets_delivered);
      flow.last_mean_rtt_s = stats.mean_rtt_s;
    } else {
      // No deliveries this interval (starved or not yet started): carry the
      // previous interval's mean (the link's base RTT before any delivery)
      // instead of reporting 0 ms — a 0-RTT sample would otherwise be
      // averaged into latency observations downstream.
      stats.mean_rtt_s = flow.last_mean_rtt_s;
    }
    interval.flows.push_back(stats);
    flow.interval = FlowStats{};
    flow.rtt_sum_s = 0.0;
  }
  interval_start_s_ = now_s_;
  interval_capacity_bits_ = 0.0;
  return interval;
}

}  // namespace netadv::cc
