// Time-windowed max/min filter (the estimator structure from the BBR paper /
// Linux kern implementation): tracks the extreme of samples seen within a
// sliding time window, expiring stale extremes as time advances.
#pragma once

#include <deque>

namespace netadv::cc {

/// kMax keeps the largest sample in the window, kMin the smallest.
enum class FilterKind { kMax, kMin };

class WindowedFilter {
 public:
  WindowedFilter(FilterKind kind, double window_length_s)
      : kind_(kind), window_s_(window_length_s) {}

  void update(double value, double now_s) {
    // Drop samples outside the window.
    expire(now_s);
    // Drop samples dominated by the new one (monotone deque).
    while (!samples_.empty() && dominates(value, samples_.back().value)) {
      samples_.pop_back();
    }
    samples_.push_back({value, now_s});
  }

  bool empty() const noexcept { return samples_.empty(); }

  /// Current extreme (0 if no sample yet).
  double get(double now_s) {
    expire(now_s);
    return samples_.empty() ? 0.0 : samples_.front().value;
  }

  /// Time the current extreme was recorded (meaningful only if !empty()).
  double extreme_age_s(double now_s) {
    expire(now_s);
    return samples_.empty() ? 0.0 : now_s - samples_.front().time;
  }

  void reset() { samples_.clear(); }
  double window_length_s() const noexcept { return window_s_; }

  /// Retune the window length, keeping recorded samples (they expire against
  /// the new length on the next update/get).
  void set_window_length(double window_s) { window_s_ = window_s; }

 private:
  struct Sample {
    double value;
    double time;
  };

  bool dominates(double a, double b) const noexcept {
    return kind_ == FilterKind::kMax ? a >= b : a <= b;
  }

  void expire(double now_s) {
    while (!samples_.empty() && now_s - samples_.front().time > window_s_) {
      samples_.pop_front();
    }
  }

  FilterKind kind_;
  double window_s_;
  std::deque<Sample> samples_;
};

}  // namespace netadv::cc
