// Loss-based TCP baselines: CUBIC (Ha et al., 2008) and Reno AIMD. The
// paper cites their "trivial weakness to packet loss even as low as 1%"
// (Section 4) as the contrast to BBR; bench_loss_sweep reproduces it.
#pragma once

#include "cc/sender.hpp"

namespace netadv::cc {

class CubicSender final : public CcSender {
 public:
  struct Params {
    double packet_bits = 12000.0;
    double c = 0.4;             ///< CUBIC aggressiveness constant
    double beta = 0.7;          ///< multiplicative-decrease factor
    double initial_cwnd = 10.0; ///< packets
    double initial_ssthresh = 1e9;
    double min_cwnd = 2.0;
    double initial_rtt_s = 0.1;
  };

  CubicSender() : CubicSender(Params{}) {}
  explicit CubicSender(Params params);

  std::string name() const override { return "cubic"; }
  void start(double now_s) override;
  void on_ack(const AckInfo& ack) override;
  void on_loss(const LossInfo& loss) override;
  double pacing_rate_bps() const override;
  double cwnd_packets() const override { return cwnd_; }

  double srtt_s() const noexcept { return srtt_s_; }
  bool in_slow_start() const noexcept { return cwnd_ < ssthresh_; }

 private:
  Params params_;
  double cwnd_ = 10.0;
  double ssthresh_ = 1e9;
  double w_max_ = 0.0;
  double epoch_start_s_ = -1.0;
  double srtt_s_ = 0.1;
  double last_decrease_s_ = -1e9;
  double now_s_ = 0.0;
};

class RenoSender final : public CcSender {
 public:
  struct Params {
    double packet_bits = 12000.0;
    double initial_cwnd = 10.0;
    double initial_ssthresh = 1e9;
    double min_cwnd = 2.0;
    double initial_rtt_s = 0.1;
  };

  RenoSender() : RenoSender(Params{}) {}
  explicit RenoSender(Params params);

  std::string name() const override { return "reno"; }
  void start(double now_s) override;
  void on_ack(const AckInfo& ack) override;
  void on_loss(const LossInfo& loss) override;
  double pacing_rate_bps() const override;
  double cwnd_packets() const override { return cwnd_; }

  bool in_slow_start() const noexcept { return cwnd_ < ssthresh_; }

 private:
  Params params_;
  double cwnd_ = 10.0;
  double ssthresh_ = 1e9;
  double srtt_s_ = 0.1;
  double last_decrease_s_ = -1e9;
};

}  // namespace netadv::cc
