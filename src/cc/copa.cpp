#include "cc/copa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::cc {

CopaSender::CopaSender(Params params) : params_(std::move(params)) {
  if (params_.packet_bits <= 0.0 || params_.delta <= 0.0 ||
      params_.initial_cwnd < 1.0 || params_.initial_rtt_s <= 0.0) {
    throw std::invalid_argument{"CopaSender: bad parameters"};
  }
  start(0.0);
}

void CopaSender::start(double now_s) {
  now_s_ = now_s;
  cwnd_ = params_.initial_cwnd;
  srtt_s_ = params_.initial_rtt_s;
  min_rtt_ = 0.0;
  standing_rtt_ = 0.0;
  min_rtt_filter_ = WindowedFilter{FilterKind::kMin, params_.min_rtt_window_s};
  standing_filter_ = WindowedFilter{FilterKind::kMin, params_.initial_rtt_s / 2.0};
  velocity_ = 1.0;
  direction_ = 0;
  direction_change_t_ = now_s;
}

double CopaSender::queuing_delay_s() const noexcept {
  return std::max(0.0, standing_rtt_ - min_rtt_);
}

void CopaSender::on_ack(const AckInfo& ack) {
  now_s_ = ack.ack_time_s;
  srtt_s_ = srtt_s_ <= 0.0 ? ack.rtt_s : 0.875 * srtt_s_ + 0.125 * ack.rtt_s;

  min_rtt_filter_.update(ack.rtt_s, now_s_);
  min_rtt_ = min_rtt_filter_.get(now_s_);
  standing_filter_.set_window_length(std::max(srtt_s_ / 2.0, 1e-3));
  standing_filter_.update(ack.rtt_s, now_s_);
  standing_rtt_ = standing_filter_.get(now_s_);

  const double d_q = queuing_delay_s();
  // Target rate 1/(delta * d_q) pkts/s; with an empty queue the target is
  // unbounded, so always increase.
  const double current_rate = cwnd_ / std::max(standing_rtt_, 1e-6);
  int new_direction = +1;
  if (d_q > 1e-9) {
    const double target_rate = 1.0 / (params_.delta * d_q);
    new_direction = current_rate <= target_rate ? +1 : -1;
  }

  // Velocity doubles each RTT the direction persists; resets on change.
  if (new_direction != direction_) {
    velocity_ = 1.0;
    direction_ = new_direction;
    direction_change_t_ = now_s_;
  } else if (now_s_ - direction_change_t_ >= srtt_s_) {
    velocity_ = std::min(velocity_ * 2.0, params_.max_velocity);
    direction_change_t_ = now_s_;
  }

  cwnd_ += static_cast<double>(direction_) * velocity_ /
           (params_.delta * cwnd_);
  cwnd_ = std::max(cwnd_, params_.min_cwnd);
}

void CopaSender::on_loss(const LossInfo& /*loss*/) {
  // Default-mode Copa reacts to delay, not loss; a loss is treated as a
  // strong congestion hint only insofar as the queue it implies raises the
  // standing RTT. (The competitive mode's TCP detection is out of scope.)
}

double CopaSender::pacing_rate_bps() const {
  // Copa paces packets evenly across the RTT (inter-send time
  // RTTstanding / (2 cwnd), i.e. nominally 2x the cwnd rate); the cwnd cap
  // in the runner keeps the average at cwnd per RTT, so the extra headroom
  // only smooths bursts.
  const double rtt = standing_rtt_ > 0.0 ? standing_rtt_ : srtt_s_;
  return std::max(2.0 * cwnd_ * params_.packet_bits / std::max(rtt, 1e-3),
                  1e4);
}

}  // namespace netadv::cc
