#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::cc {

namespace {
/// Smoothed RTT with the standard alpha = 1/8.
double update_srtt(double srtt, double sample) {
  return srtt <= 0.0 ? sample : 0.875 * srtt + 0.125 * sample;
}
}  // namespace

CubicSender::CubicSender(Params params) : params_(std::move(params)) {
  if (params_.packet_bits <= 0.0 || params_.c <= 0.0 || params_.beta <= 0.0 ||
      params_.beta >= 1.0 || params_.initial_cwnd < 1.0) {
    throw std::invalid_argument{"CubicSender: bad parameters"};
  }
  start(0.0);
}

void CubicSender::start(double now_s) {
  now_s_ = now_s;
  cwnd_ = params_.initial_cwnd;
  ssthresh_ = params_.initial_ssthresh;
  w_max_ = 0.0;
  epoch_start_s_ = -1.0;
  srtt_s_ = params_.initial_rtt_s;
  last_decrease_s_ = -1e9;
}

void CubicSender::on_ack(const AckInfo& ack) {
  now_s_ = ack.ack_time_s;
  srtt_s_ = update_srtt(srtt_s_, ack.rtt_s);

  if (in_slow_start()) {
    cwnd_ += 1.0;
    return;
  }

  if (epoch_start_s_ < 0.0) {
    epoch_start_s_ = now_s_;
    if (w_max_ < cwnd_) w_max_ = cwnd_;
  }
  // W(t) = C (t - K)^3 + W_max,  K = cbrt(W_max (1 - beta) / C).
  const double k = std::cbrt(w_max_ * (1.0 - params_.beta) / params_.c);
  const double t = now_s_ - epoch_start_s_ + srtt_s_;
  const double target = params_.c * std::pow(t - k, 3.0) + w_max_;
  if (target > cwnd_) {
    cwnd_ += (target - cwnd_) / cwnd_;
  } else {
    cwnd_ += 0.01 / cwnd_;  // slow float while under the cubic curve
  }
}

void CubicSender::on_loss(const LossInfo& loss) {
  now_s_ = std::max(now_s_, loss.detect_time_s);
  // React at most once per RTT (one decrease per loss episode).
  if (now_s_ - last_decrease_s_ < srtt_s_) return;
  last_decrease_s_ = now_s_;
  w_max_ = cwnd_;
  cwnd_ = std::max(cwnd_ * params_.beta, params_.min_cwnd);
  ssthresh_ = cwnd_;
  epoch_start_s_ = -1.0;
}

double CubicSender::pacing_rate_bps() const {
  return std::max(cwnd_ * params_.packet_bits / std::max(srtt_s_, 1e-3), 1e4);
}

RenoSender::RenoSender(Params params) : params_(std::move(params)) {
  if (params_.packet_bits <= 0.0 || params_.initial_cwnd < 1.0) {
    throw std::invalid_argument{"RenoSender: bad parameters"};
  }
  start(0.0);
}

void RenoSender::start(double /*now_s*/) {
  cwnd_ = params_.initial_cwnd;
  ssthresh_ = params_.initial_ssthresh;
  srtt_s_ = params_.initial_rtt_s;
  last_decrease_s_ = -1e9;
}

void RenoSender::on_ack(const AckInfo& ack) {
  srtt_s_ = update_srtt(srtt_s_, ack.rtt_s);
  if (in_slow_start()) {
    cwnd_ += 1.0;
  } else {
    cwnd_ += 1.0 / cwnd_;  // additive increase: one packet per RTT
  }
}

void RenoSender::on_loss(const LossInfo& loss) {
  if (loss.detect_time_s - last_decrease_s_ < srtt_s_) return;
  last_decrease_s_ = loss.detect_time_s;
  cwnd_ = std::max(cwnd_ * 0.5, params_.min_cwnd);
  ssthresh_ = cwnd_;
}

double RenoSender::pacing_rate_bps() const {
  return std::max(cwnd_ * params_.packet_bits / std::max(srtt_s_, 1e-3), 1e4);
}

}  // namespace netadv::cc
