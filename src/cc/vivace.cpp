#include "cc/vivace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::cc {

VivaceSender::VivaceSender(Params params) : params_(std::move(params)) {
  if (params_.packet_bits <= 0.0 || params_.initial_rate_mbps <= 0.0 ||
      params_.min_rate_mbps <= 0.0 ||
      params_.max_rate_mbps <= params_.min_rate_mbps ||
      params_.probe_epsilon <= 0.0 || params_.probe_epsilon >= 1.0 ||
      params_.utility_exponent <= 0.0 || params_.utility_exponent >= 1.0 ||
      params_.initial_rtt_s <= 0.0) {
    throw std::invalid_argument{"VivaceSender: bad parameters"};
  }
  start(0.0);
}

void VivaceSender::start(double now_s) {
  rate_mbps_ = params_.initial_rate_mbps;
  phase_ = 0;
  current_ = MonitorInterval{};
  current_.start_s = now_s;
  measured_plus_ = MonitorInterval{};
  measured_minus_ = MonitorInterval{};
  srtt_s_ = params_.initial_rtt_s;
  last_utility_ = 0.0;
  direction_ = 0;
  amplifier_ = 1;
}

double VivaceSender::offered_rate_mbps() const {
  switch (phase_) {
    case 0:
      return rate_mbps_ * (1.0 + params_.probe_epsilon);
    case 1:
      return rate_mbps_ * (1.0 - params_.probe_epsilon);
    default:
      return rate_mbps_;
  }
}

double VivaceSender::utility_of(const MonitorInterval& mi) const {
  if (mi.duration_s <= 0.0 || mi.acked + mi.lost == 0) return 0.0;
  const double delivered_mbps =
      static_cast<double>(mi.acked) * params_.packet_bits / mi.duration_s / 1e6;
  const double loss_rate = static_cast<double>(mi.lost) /
                           static_cast<double>(mi.acked + mi.lost);
  const double rtt_gradient =
      mi.duration_s > 0.0 ? (mi.rtt_last - mi.rtt_first) / mi.duration_s : 0.0;
  return std::pow(std::max(delivered_mbps, 1e-6), params_.utility_exponent) -
         params_.latency_coefficient * delivered_mbps *
             std::max(rtt_gradient, 0.0) -
         params_.loss_coefficient * delivered_mbps * loss_rate;
}

void VivaceSender::finish_window(double now_s) {
  current_.duration_s = now_s - current_.start_s;
  // Stats observed in window k describe the rate offered in window k-1:
  // phase-1 observations belong to the +eps MI, phase-2 to the -eps MI.
  if (phase_ == 1) {
    measured_plus_ = current_;
  } else if (phase_ == 2) {
    measured_minus_ = current_;

    const double u_plus = utility_of(measured_plus_);
    const double u_minus = utility_of(measured_minus_);
    last_utility_ = std::max(u_plus, u_minus);
    const int better_direction = u_plus >= u_minus ? +1 : -1;

    if (better_direction == direction_) {
      amplifier_ = std::min(amplifier_ + 1,
                            static_cast<int>(params_.max_amplifier));
    } else {
      amplifier_ = 1;
      direction_ = better_direction;
    }
    const double step = params_.step_fraction *
                        static_cast<double>(amplifier_) * rate_mbps_;
    rate_mbps_ = std::clamp(
        rate_mbps_ + static_cast<double>(better_direction) * step,
        params_.min_rate_mbps, params_.max_rate_mbps);
  }

  phase_ = (phase_ + 1) % 3;
  current_ = MonitorInterval{};
  current_.start_s = now_s;
}

void VivaceSender::on_ack(const AckInfo& ack) {
  srtt_s_ = 0.875 * srtt_s_ + 0.125 * ack.rtt_s;
  if (current_.acked == 0 && current_.lost == 0) {
    current_.rtt_first = ack.rtt_s;
  }
  current_.rtt_last = ack.rtt_s;
  ++current_.acked;
  if (ack.ack_time_s - current_.start_s >= srtt_s_) {
    finish_window(ack.ack_time_s);
  }
}

void VivaceSender::on_loss(const LossInfo& loss) {
  ++current_.lost;
  if (loss.detect_time_s - current_.start_s >= srtt_s_) {
    finish_window(loss.detect_time_s);
  }
}

double VivaceSender::pacing_rate_bps() const {
  return std::max(offered_rate_mbps() * 1e6, 1e4);
}

double VivaceSender::cwnd_packets() const {
  // Vivace is rate-based; the window is a generous cap (2x rate * RTT) so
  // pacing, not the window, governs sending.
  return std::max(2.0 * offered_rate_mbps() * 1e6 * srtt_s_ /
                      params_.packet_bits,
                  4.0);
}

}  // namespace netadv::cc
