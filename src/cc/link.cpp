#include "cc/link.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::cc {

LinkSim::LinkSim(Params params)
    : conditions_(params.initial),
      packet_bytes_(params.packet_bytes),
      max_queue_delay_s_(params.max_queue_delay_s) {
  if (packet_bytes_ <= 0.0 || max_queue_delay_s_ <= 0.0) {
    throw std::invalid_argument{"LinkSim: bad parameters"};
  }
  set_conditions(params.initial);
}

void LinkSim::set_conditions(const LinkConditions& conditions) {
  if (conditions.bandwidth_mbps <= 0.0 || conditions.one_way_delay_ms < 0.0 ||
      conditions.loss_rate < 0.0 || conditions.loss_rate > 1.0) {
    throw std::invalid_argument{"LinkSim: bad conditions"};
  }
  conditions_ = conditions;
}

double LinkSim::backlog_delay_s(double now_s) const {
  return std::max(0.0, server_free_at_s_ - now_s);
}

TransmitResult LinkSim::transmit(double now_s, util::Rng& rng) {
  TransmitResult result;

  if (conditions_.loss_rate > 0.0 && rng.bernoulli(conditions_.loss_rate)) {
    result.kind = TransmitResult::Kind::kRandomLoss;
    return result;
  }

  const double queue_delay = backlog_delay_s(now_s);
  if (queue_delay > max_queue_delay_s_) {
    result.kind = TransmitResult::Kind::kTailDrop;
    result.queue_delay_s = queue_delay;
    return result;
  }

  const double tx_delay = packet_bits() / (conditions_.bandwidth_mbps * 1e6);
  const double start = std::max(now_s, server_free_at_s_);
  server_free_at_s_ = start + tx_delay;

  const double owd = conditions_.one_way_delay_ms / 1000.0;
  result.kind = TransmitResult::Kind::kDelivered;
  result.queue_delay_s = queue_delay;
  result.delivery_time_s = server_free_at_s_ + owd;
  result.ack_return_time_s = result.delivery_time_s + owd;
  return result;
}

void LinkSim::reset() { server_free_at_s_ = 0.0; }

}  // namespace netadv::cc
