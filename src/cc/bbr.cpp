#include "cc/bbr.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::cc {

BbrSender::BbrSender(Params params) : params_(std::move(params)) {
  if (params_.packet_bits <= 0.0 || params_.probe_bw_gains.empty() ||
      params_.startup_gain <= 1.0 || params_.min_rtt_window_s <= 0.0 ||
      params_.initial_rtt_s <= 0.0) {
    throw std::invalid_argument{"BbrSender: bad parameters"};
  }
  start(0.0);
}

void BbrSender::start(double now_s) {
  now_s_ = now_s;
  mode_ = Mode::kStartup;
  pacing_gain_ = params_.startup_gain;
  cwnd_gain_ = params_.startup_gain;
  bw_filter_.reset();
  btl_bw_bps_ = 0.0;
  min_rtt_s_ = 0.0;
  min_rtt_stamp_s_ = now_s;
  have_min_rtt_ = false;
  next_round_delivered_ = 0;
  round_count_ = 0;
  round_start_ = false;
  filled_pipe_ = false;
  full_bw_bps_ = 0.0;
  full_bw_count_ = 0;
  cycle_index_ = 0;
  cycle_stamp_s_ = now_s;
  probe_rtt_done_stamp_s_ = -1.0;
  inflight_packets_ = 0.0;
  min_rtt_expired_ = false;
}

double BbrSender::bdp_packets() const {
  if (btl_bw_bps_ <= 0.0 || min_rtt_s_ <= 0.0) {
    return params_.initial_cwnd_packets;
  }
  return btl_bw_bps_ * min_rtt_s_ / params_.packet_bits;
}

void BbrSender::check_full_pipe() {
  if (filled_pipe_ || !round_start_) return;
  if (btl_bw_bps_ >= full_bw_bps_ * params_.full_bw_growth) {
    full_bw_bps_ = btl_bw_bps_;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= params_.full_bw_rounds) filled_pipe_ = true;
}

void BbrSender::enter_probe_bw(double now_s) {
  mode_ = Mode::kProbeBw;
  // Start on a cruise phase (as Linux does, avoiding 0.75 right after DRAIN).
  cycle_index_ = 2;
  cycle_stamp_s_ = now_s;
  pacing_gain_ = params_.probe_bw_gains[cycle_index_];
  cwnd_gain_ = params_.cwnd_gain;
}

void BbrSender::advance_cycle_phase(double now_s) {
  const double phase_len = std::max(min_rtt_s_, 1e-3);
  if (now_s - cycle_stamp_s_ < phase_len) return;
  cycle_index_ = (cycle_index_ + 1) % params_.probe_bw_gains.size();
  cycle_stamp_s_ = now_s;
  pacing_gain_ = params_.probe_bw_gains[cycle_index_];
}

void BbrSender::update_min_rtt(double rtt_s, double now_s) {
  // Strictly-lower samples only (the Linux rule): a link that merely keeps
  // matching the current minimum does not refresh the stamp, so the filter
  // still expires every min_rtt_window_s — the 10-second PROBE_RTT rhythm
  // the paper's adversary locks onto (Figure 6). The same ACK that expires
  // the filter both refreshes the estimate and (via the flag consumed by
  // check_probe_rtt) triggers PROBE_RTT, as in the Linux implementation.
  const bool expired = now_s - min_rtt_stamp_s_ > params_.min_rtt_window_s;
  min_rtt_expired_ = have_min_rtt_ && expired;
  if (!have_min_rtt_ || rtt_s < min_rtt_s_ || expired) {
    min_rtt_s_ = rtt_s;
    min_rtt_stamp_s_ = now_s;
    have_min_rtt_ = true;
  }
}

void BbrSender::check_probe_rtt(double now_s) {
  if (mode_ != Mode::kProbeRtt && min_rtt_expired_) {
    mode_before_probe_rtt_ = filled_pipe_ ? Mode::kProbeBw : Mode::kStartup;
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    cwnd_gain_ = 1.0;
    probe_rtt_done_stamp_s_ = -1.0;
    min_rtt_expired_ = false;
    return;
  }
  if (mode_ == Mode::kProbeRtt) {
    // Hold at min cwnd; once inflight has drained, time the dwell.
    if (probe_rtt_done_stamp_s_ < 0.0 &&
        inflight_packets_ <= params_.min_cwnd_packets) {
      probe_rtt_done_stamp_s_ = now_s + params_.probe_rtt_duration_s;
    }
    if (probe_rtt_done_stamp_s_ >= 0.0 && now_s >= probe_rtt_done_stamp_s_) {
      min_rtt_stamp_s_ = now_s;  // dwell complete: sample considered fresh
      min_rtt_expired_ = false;
      if (mode_before_probe_rtt_ == Mode::kProbeBw) {
        enter_probe_bw(now_s);
      } else {
        mode_ = Mode::kStartup;
        pacing_gain_ = params_.startup_gain;
        cwnd_gain_ = params_.startup_gain;
      }
    }
  }
}

void BbrSender::on_ack(const AckInfo& ack) {
  now_s_ = ack.ack_time_s;

  // Round-trip bookkeeping.
  round_start_ = false;
  if (ack.delivered_at_send >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered;
    ++round_count_;
    round_start_ = true;
  }

  // Delivery-rate sample: delivered delta over the interval since this
  // packet left, the estimator from the BBR paper.
  const double interval = ack.ack_time_s - ack.delivered_time_at_send_s;
  if (interval > 0.0) {
    const double delivered_bits =
        static_cast<double>(ack.delivered - ack.delivered_at_send) *
        params_.packet_bits;
    const double sample_bps = delivered_bits / interval;
    // Window length tracks ~10 packet-timed rounds of the current RTT.
    const double rtt_for_window = have_min_rtt_ ? min_rtt_s_ : params_.initial_rtt_s;
    const double window = params_.bw_window_rounds * std::max(rtt_for_window, 1e-3);
    bw_filter_.set_window_length(window);
    bw_filter_.update(sample_bps, ack.ack_time_s);
    btl_bw_bps_ = bw_filter_.get(ack.ack_time_s);
  }

  update_min_rtt(ack.rtt_s, ack.ack_time_s);
  check_full_pipe();

  switch (mode_) {
    case Mode::kStartup:
      if (filled_pipe_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = 1.0 / params_.startup_gain;
        cwnd_gain_ = params_.startup_gain;
      }
      break;
    case Mode::kDrain:
      if (inflight_packets_ <= bdp_packets()) enter_probe_bw(ack.ack_time_s);
      break;
    case Mode::kProbeBw:
      advance_cycle_phase(ack.ack_time_s);
      break;
    case Mode::kProbeRtt:
      break;
  }
  check_probe_rtt(ack.ack_time_s);
}

void BbrSender::on_loss(const LossInfo& loss) {
  // BBRv1 ignores individual losses by design (no multiplicative decrease);
  // only time advances.
  now_s_ = std::max(now_s_, loss.detect_time_s);
  check_probe_rtt(now_s_);
}

double BbrSender::pacing_rate_bps() const {
  if (btl_bw_bps_ <= 0.0) {
    // Before the first bandwidth sample: initial cwnd over the RTT guess.
    return pacing_gain_ * params_.initial_cwnd_packets * params_.packet_bits /
           params_.initial_rtt_s;
  }
  return std::max(pacing_gain_ * btl_bw_bps_, 1e4);
}

double BbrSender::cwnd_packets() const {
  if (mode_ == Mode::kProbeRtt) return params_.min_cwnd_packets;
  return std::max(cwnd_gain_ * bdp_packets(), params_.min_cwnd_packets);
}

}  // namespace netadv::cc
