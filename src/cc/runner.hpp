// Discrete-event driver for one congestion-controlled flow over a LinkSim:
// paces packets at the sender's rate (gated by its cwnd), returns ACKs after
// the path delay, and notifies the sender of drops one RTT later. The
// adversary environment advances it in 30-ms epochs, changing link
// conditions between epochs and reading the per-epoch utilization and
// queueing delay that form its observation and reward.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "cc/link.hpp"
#include "cc/sender.hpp"
#include "util/rng.hpp"

namespace netadv::cc {

/// What happened on the link since the previous collect().
struct IntervalStats {
  double duration_s = 0.0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;  ///< ACKed at the sender
  std::uint64_t packets_lost = 0;       ///< random loss + tail drop
  double delivered_bits = 0.0;
  double capacity_bits = 0.0;           ///< integral of bandwidth over time
  double mean_queue_delay_s = 0.0;      ///< over packets delivered
  double mean_rtt_s = 0.0;              ///< over ACKs received

  /// Delivered / capacity, clamped to [0, 1]; 0 when no capacity elapsed.
  double utilization() const noexcept;
  double throughput_mbps() const noexcept {
    return duration_s > 0.0 ? delivered_bits / duration_s / 1e6 : 0.0;
  }
};

class CcRunner {
 public:
  CcRunner(CcSender& sender, LinkSim::Params link_params, std::uint64_t seed);

  double now_s() const noexcept { return now_s_; }
  double inflight_packets() const noexcept { return inflight_; }

  /// Change link conditions from the current simulation time onward.
  void set_conditions(const LinkConditions& conditions);
  const LinkConditions& conditions() const noexcept {
    return link_.conditions();
  }

  /// Advance the simulation to absolute time `t_s` (>= now()).
  void run_until(double t_s);

  /// Stats since the previous collect() (or construction), then reset.
  IntervalStats collect();

  // Lifetime totals.
  std::uint64_t total_sent() const noexcept { return total_sent_; }
  std::uint64_t total_delivered() const noexcept { return total_delivered_; }
  std::uint64_t total_lost() const noexcept { return total_lost_; }

 private:
  struct Event {
    enum class Kind { kAck, kLoss };
    double time_s = 0.0;
    Kind kind = Kind::kAck;
    AckInfo ack;
    LossInfo loss;
    bool operator>(const Event& other) const noexcept {
      return time_s > other.time_s;
    }
  };

  void advance_clock(double t_s);
  void send_packet();
  void process_event(const Event& event);
  double next_send_time() const;

  CcSender* sender_;
  LinkSim link_;
  util::Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

  double now_s_ = 0.0;
  double send_allowed_at_s_ = 0.0;
  double inflight_ = 0.0;
  double last_rtt_s_ = 0.0;

  // Sender-side delivery bookkeeping for BBR's rate samples.
  std::uint64_t delivered_ = 0;
  double delivered_time_s_ = 0.0;
  std::uint64_t next_packet_id_ = 0;

  // Interval accumulators.
  IntervalStats interval_{};
  double interval_start_s_ = 0.0;
  double queue_delay_sum_s_ = 0.0;
  double rtt_sum_s_ = 0.0;

  // Totals.
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_lost_ = 0;
};

}  // namespace netadv::cc
