// BBR congestion control (Cardwell et al., 2016), the paper's Section 4
// case study. This is a faithful model of BBRv1's control loop — the part
// the adversary exploits:
//   * bottleneck-bandwidth estimate: windowed max of per-ACK delivery-rate
//     samples over ~10 round trips;
//   * min-RTT estimate: 10-second windowed min, refreshed by PROBE_RTT;
//   * state machine: STARTUP (gain 2.885 until bandwidth plateaus over 3
//     rounds) -> DRAIN -> PROBE_BW (8-phase pacing-gain cycle
//     [1.25, 0.75, 1, 1, 1, 1, 1, 1], one phase per min-RTT) with PROBE_RTT
//     (cwnd = 4 for 200 ms) whenever the min-RTT sample is 10 s stale;
//   * pacing at gain * btl_bw, cwnd = max(cwnd_gain * BDP, 4).
// Kernel-level details (pacing qdisc, ACK aggregation heuristics) are out of
// scope; the probing schedule — the exploited weakness — is complete.
#pragma once

#include <cstddef>
#include <vector>

#include "cc/sender.hpp"
#include "cc/windowed_filter.hpp"

namespace netadv::cc {

class BbrSender final : public CcSender {
 public:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  struct Params {
    double packet_bits = 12000.0;  ///< must match the link's packet size
    double startup_gain = 2.885;
    std::vector<double> probe_bw_gains{1.25, 0.75, 1.0, 1.0,
                                       1.0,  1.0,  1.0, 1.0};
    double cwnd_gain = 2.0;
    double min_rtt_window_s = 10.0;   ///< PROBE_RTT every 10 s (the paper's knob)
    double probe_rtt_duration_s = 0.2;
    double bw_window_rounds = 10.0;   ///< max-filter length in round trips
    double min_cwnd_packets = 4.0;
    double initial_rtt_s = 0.1;       ///< RTT guess before the first sample
    double initial_cwnd_packets = 10.0;
    /// Bandwidth-plateau test: STARTUP exits after `full_bw_rounds` rounds
    /// without `full_bw_growth` growth.
    double full_bw_growth = 1.25;
    std::size_t full_bw_rounds = 3;
  };

  BbrSender() : BbrSender(Params{}) {}
  explicit BbrSender(Params params);

  std::string name() const override { return "bbr"; }
  void start(double now_s) override;
  void on_ack(const AckInfo& ack) override;
  void on_loss(const LossInfo& loss) override;
  double pacing_rate_bps() const override;
  double cwnd_packets() const override;

  /// Runner hook: BBR's DRAIN exit and PROBE_RTT hold depend on inflight.
  void set_inflight(double packets) noexcept { inflight_packets_ = packets; }

  // Introspection for tests and the Figure-5/6 harnesses.
  Mode mode() const noexcept { return mode_; }
  double bottleneck_bw_bps() const noexcept { return btl_bw_bps_; }
  double min_rtt_s() const noexcept { return min_rtt_s_; }
  double pacing_gain() const noexcept { return pacing_gain_; }
  std::size_t probe_bw_phase() const noexcept { return cycle_index_; }
  bool filled_pipe() const noexcept { return filled_pipe_; }

 private:
  double bdp_packets() const;
  void enter_probe_bw(double now_s);
  void advance_cycle_phase(double now_s);
  void check_full_pipe();
  void update_min_rtt(double rtt_s, double now_s);
  void check_probe_rtt(double now_s);

  Params params_;

  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = 1.0;
  double cwnd_gain_ = 1.0;

  WindowedFilter bw_filter_{FilterKind::kMax, 1.0};
  double btl_bw_bps_ = 0.0;

  double min_rtt_s_ = 0.0;
  double min_rtt_stamp_s_ = 0.0;
  bool have_min_rtt_ = false;
  bool min_rtt_expired_ = false;

  // Round-trip accounting (packet-timed rounds via the delivered counter).
  std::uint64_t next_round_delivered_ = 0;
  std::uint64_t round_count_ = 0;
  bool round_start_ = false;

  // STARTUP plateau detection.
  bool filled_pipe_ = false;
  double full_bw_bps_ = 0.0;
  std::size_t full_bw_count_ = 0;

  // PROBE_BW cycle.
  std::size_t cycle_index_ = 0;
  double cycle_stamp_s_ = 0.0;

  // PROBE_RTT.
  double probe_rtt_done_stamp_s_ = -1.0;
  Mode mode_before_probe_rtt_ = Mode::kProbeBw;

  double inflight_packets_ = 0.0;
  double now_s_ = 0.0;
};

}  // namespace netadv::cc
