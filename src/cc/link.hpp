// The bottleneck link model: a FIFO queue served at the commanded bandwidth,
// a propagation delay each way, Bernoulli random loss, and tail drop at a
// finite buffer. Conditions (bandwidth / latency / loss) are mutable at any
// time — that is exactly the control surface the paper's adversary drives
// through its modified Mahimahi, reproduced here as a deterministic
// fluid-queue model.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace netadv::cc {

struct LinkConditions {
  double bandwidth_mbps = 12.0;
  double one_way_delay_ms = 30.0;
  double loss_rate = 0.0;
};

/// Outcome of offering one packet to the link at a given time.
struct TransmitResult {
  enum class Kind { kDelivered, kRandomLoss, kTailDrop };
  Kind kind = Kind::kDelivered;
  double queue_delay_s = 0.0;     ///< time spent waiting for the server
  double delivery_time_s = 0.0;   ///< arrival at the receiver (delivered only)
  double ack_return_time_s = 0.0; ///< ACK back at the sender (delivered only)
};

class LinkSim {
 public:
  struct Params {
    LinkConditions initial{};
    double packet_bytes = 1500.0;
    /// Tail-drop threshold: maximum queueing delay the buffer can hold,
    /// in seconds (a delay-bounded buffer keeps the drop point meaningful
    /// across the adversary's bandwidth changes).
    double max_queue_delay_s = 0.25;
  };

  LinkSim() : LinkSim(Params{}) {}
  explicit LinkSim(Params params);

  /// Update conditions (takes effect for packets offered from now on).
  void set_conditions(const LinkConditions& conditions);
  const LinkConditions& conditions() const noexcept { return conditions_; }

  double packet_bits() const noexcept { return packet_bytes_ * 8.0; }
  double packet_bytes() const noexcept { return packet_bytes_; }

  /// Queueing delay a packet offered at `now` would experience.
  double backlog_delay_s(double now_s) const;

  /// Offer one packet at time `now`. Random loss consumes entropy from
  /// `rng`; tail drop is deterministic from the backlog.
  TransmitResult transmit(double now_s, util::Rng& rng);

  /// Forget all queued traffic (new connection on a fresh link).
  void reset();

 private:
  LinkConditions conditions_;
  double packet_bytes_;
  double max_queue_delay_s_;
  double server_free_at_s_ = 0.0;  ///< when the serializer finishes its backlog
};

}  // namespace netadv::cc
