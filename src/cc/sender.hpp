// The congestion-control sender interface and the feedback it receives.
//
// The simulator models a single bulk flow over one bottleneck: the sender
// always has data, paces packets at the algorithm's rate subject to its
// congestion window, and learns about deliveries via ACKs and about drops
// via loss notifications delayed by roughly one RTT (the dup-ACK/timeout
// detection delay of a real stack).
#pragma once

#include <cstdint>
#include <string>

namespace netadv::cc {

/// Feedback delivered to the sender when an ACK returns.
struct AckInfo {
  std::uint64_t packet_id = 0;
  double send_time_s = 0.0;
  double ack_time_s = 0.0;   ///< when the ACK reached the sender
  double rtt_s = 0.0;        ///< ack_time - send_time
  /// Cumulative delivered-packet count and the time of the most recent
  /// delivery *as of when this packet was sent* — the pair BBR's delivery
  /// rate estimator needs (delivered delta over time delta).
  std::uint64_t delivered_at_send = 0;
  double delivered_time_at_send_s = 0.0;
  /// Cumulative delivered count including this packet.
  std::uint64_t delivered = 0;
};

/// Feedback when the stack detects a lost packet (~one RTT after the drop).
struct LossInfo {
  std::uint64_t packet_id = 0;
  double send_time_s = 0.0;
  double detect_time_s = 0.0;
};

class CcSender {
 public:
  virtual ~CcSender() = default;

  virtual std::string name() const = 0;

  /// (Re)initialize for a fresh connection starting at time `now`.
  virtual void start(double now_s) = 0;

  virtual void on_ack(const AckInfo& ack) = 0;
  virtual void on_loss(const LossInfo& loss) = 0;

  /// Current pacing rate in bits per second (> 0).
  virtual double pacing_rate_bps() const = 0;

  /// Congestion window in packets; the runner keeps packets-in-flight below
  /// this.
  virtual double cwnd_packets() const = 0;
};

}  // namespace netadv::cc
