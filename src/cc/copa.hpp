// Copa (Arun & Balakrishnan, NSDI 2018) — the delay-based congestion
// controller the paper lists alongside BBR and PCC Vivace as a modern
// protocol "without as clear weaknesses" (Section 4). Implemented in its
// default (non-competitive) mode:
//
//   * RTTmin over a long window and RTTstanding (min RTT over the last
//     srtt/2) give the queueing-delay estimate d_q = RTTstanding - RTTmin;
//   * the target rate is 1 / (delta * d_q) packets per second;
//   * cwnd moves toward the target by v / (delta * cwnd) per ACK, where the
//     velocity v doubles each RTT the direction persists and resets on a
//     direction change;
//   * packets are paced at ~2x cwnd / RTTstanding to keep the queue smooth.
#pragma once

#include "cc/sender.hpp"
#include "cc/windowed_filter.hpp"

namespace netadv::cc {

class CopaSender final : public CcSender {
 public:
  struct Params {
    double packet_bits = 12000.0;
    double delta = 0.5;            ///< throughput/delay trade-off knob
    double min_rtt_window_s = 10.0;
    double initial_cwnd = 10.0;
    double min_cwnd = 2.0;
    double initial_rtt_s = 0.1;
    double max_velocity = 512.0;
  };

  CopaSender() : CopaSender(Params{}) {}
  explicit CopaSender(Params params);

  std::string name() const override { return "copa"; }
  void start(double now_s) override;
  void on_ack(const AckInfo& ack) override;
  void on_loss(const LossInfo& loss) override;
  double pacing_rate_bps() const override;
  double cwnd_packets() const override { return cwnd_; }

  // Introspection for tests.
  double queuing_delay_s() const noexcept;
  double min_rtt_s() const noexcept { return min_rtt_; }
  double standing_rtt_s() const noexcept { return standing_rtt_; }
  double velocity() const noexcept { return velocity_; }

 private:
  Params params_;

  double cwnd_ = 10.0;
  double srtt_s_ = 0.1;
  double min_rtt_ = 0.0;
  double standing_rtt_ = 0.0;
  WindowedFilter min_rtt_filter_{FilterKind::kMin, 10.0};
  WindowedFilter standing_filter_{FilterKind::kMin, 0.05};

  double velocity_ = 1.0;
  int direction_ = 0;            // +1 increasing, -1 decreasing
  double direction_change_t_ = 0.0;
  double now_s_ = 0.0;
};

}  // namespace netadv::cc
