#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace netadv::util {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument{"SlidingWindow capacity must be > 0"};
}

void SlidingWindow::push(double x) {
  if (buf_.size() == capacity_) buf_.pop_front();
  buf_.push_back(x);
}

double SlidingWindow::mean() const noexcept {
  if (buf_.empty()) return 0.0;
  return std::accumulate(buf_.begin(), buf_.end(), 0.0) /
         static_cast<double>(buf_.size());
}

double SlidingWindow::min() const noexcept {
  return buf_.empty() ? 0.0 : *std::min_element(buf_.begin(), buf_.end());
}

double SlidingWindow::max() const noexcept {
  return buf_.empty() ? 0.0 : *std::max_element(buf_.begin(), buf_.end());
}

double SlidingWindow::harmonic_mean() const noexcept {
  if (buf_.empty()) return 0.0;
  double denom = 0.0;
  for (double x : buf_) denom += 1.0 / std::max(x, kMinHarmonicSample);
  return static_cast<double>(buf_.size()) / denom;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument{"percentile of empty sample"};
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile p out of [0,100]"};
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"empirical_cdf of empty sample"};
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i],
                   static_cast<double>(i + 1) / static_cast<double>(sorted.size())});
  }
  return cdf;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

}  // namespace netadv::util
