// A tiny declarative-config reader: INI-style sections of key=value pairs.
//
// This is the on-disk grammar of netadv::exp campaign files (and anything
// else that wants a human-editable spec without an external JSON/YAML
// dependency):
//
//   # full-line comments start with '#'
//   [campaign]            # a section header: "[<name>]" or "[<name> <label>]"
//   name = grid-sweep
//   seed = 2026
//
//   [job train-bb]        # sections repeat; order is preserved
//   kind = train-adversary
//   protocol = bb
//
// Keys and values are trimmed of surrounding whitespace; duplicate keys
// within a section keep their declaration order (last one wins on lookup).
// Parse errors report the file/line they came from.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace netadv::util {

struct SpecSection {
  std::string name;    ///< first word inside the brackets
  std::string label;   ///< rest of the header line (may be empty)
  std::size_t line = 0;  ///< 1-based line of the header, for error messages
  std::vector<std::pair<std::string, std::string>> entries;

  /// Last value bound to `key`, or nullptr if absent.
  const std::string* find(const std::string& key) const noexcept;
  /// find() or `fallback`.
  std::string value_or(const std::string& key,
                       const std::string& fallback) const;
  bool has(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }
};

struct SpecFile {
  std::string source;  ///< file path (or a caller-chosen tag for text input)
  std::vector<SpecSection> sections;
};

/// Parse spec text. `source` only labels error messages. Throws
/// std::runtime_error on malformed headers or entries outside a section.
SpecFile parse_spec_text(const std::string& text, const std::string& source);

/// Read and parse a spec file; throws std::runtime_error if unreadable.
SpecFile parse_spec_file(const std::string& path);

/// Split a comma-separated list, trimming whitespace and dropping empty
/// items ("a, b,c" -> {"a","b","c"}).
std::vector<std::string> split_list(const std::string& csv);

}  // namespace netadv::util
