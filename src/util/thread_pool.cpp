#include "util/thread_pool.hpp"

#include <cstdlib>

namespace netadv::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  const std::size_t worker_count = threads > 0 ? threads - 1 : 0;
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  bool inline_only = workers_.empty() || n == 1;
  if (!inline_only) {
    std::unique_lock lock{mutex_};
    if (in_batch_) {
      // Reentrant call from inside a task: run inline rather than deadlock.
      inline_only = true;
    } else {
      in_batch_ = true;
      body_ = &body;
      batch_size_ = n;
      next_index_.store(0, std::memory_order_relaxed);
      workers_active_ = workers_.size();
      ++generation_;
    }
  }
  if (inline_only) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  work_ready_.notify_all();
  drain_batch();  // the caller is one of the execution lanes

  std::unique_lock lock{mutex_};
  batch_done_.wait(lock, [this] { return workers_active_ == 0; });
  body_ = nullptr;
  in_batch_ = false;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::drain_batch() noexcept {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch_size_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard lock{mutex_};
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock{mutex_};
      work_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain_batch();
    {
      std::lock_guard lock{mutex_};
      if (--workers_active_ == 0) batch_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{default_thread_count()};
  return pool;
}

std::size_t ThreadPool::default_thread_count() noexcept {
  if (const char* env = std::getenv("NETADV_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace netadv::util
