// Content hashing for experiment provenance: 64-bit FNV-1a over strings and
// files. Used by netadv::exp to fingerprint job parameters and input
// artifacts in the campaign manifest, so a resumed campaign can prove a
// cached result is still valid. Not cryptographic — a cheap, dependency-free
// stable digest is all provenance needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace netadv::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold `data` into a running FNV-1a state (start from kFnvOffsetBasis).
constexpr std::uint64_t fnv1a64_accumulate(std::uint64_t state,
                                           std::string_view data) noexcept {
  for (const char c : data) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime;
  }
  return state;
}

/// FNV-1a of a whole string.
constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  return fnv1a64_accumulate(kFnvOffsetBasis, data);
}

/// FNV-1a over a file's bytes; throws std::runtime_error if unreadable.
std::uint64_t fnv1a64_file(const std::string& path);

/// Fixed-width (16 hex digits) rendering used in manifests.
std::string hash_hex(std::uint64_t hash);

}  // namespace netadv::util
