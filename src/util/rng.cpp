#include "util/rng.hpp"

#include <cmath>

namespace netadv::util {

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; uniform() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - uniform()) / rate;
}

}  // namespace netadv::util
