// Environment-driven knobs shared by the benchmark harness and examples.
#pragma once

#include <string>

namespace netadv::util {

/// Multiplier applied to training-step budgets in benches and examples.
/// Reads NETADV_SCALE (default 1.0); values are clamped to [0.001, 100].
/// NETADV_SCALE=0.1 gives a fast smoke run, 1.0 the paper-scale run.
double bench_scale() noexcept;

/// Directory where benches drop CSV artifacts. Reads NETADV_OUT_DIR
/// (default "bench_out"). The directory is created if missing; creation is
/// serialized so concurrent first calls from pool threads cannot race, and
/// failure to create it is a logged hard error (std::runtime_error), never a
/// silently returned unusable path.
std::string bench_output_dir();

/// Scale a nominal step budget by bench_scale(), with a floor so smoke runs
/// still exercise the code path.
std::size_t scaled_steps(std::size_t nominal, std::size_t floor = 256) noexcept;

}  // namespace netadv::util
