#include "util/spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace netadv::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error{source + ":" + std::to_string(line) + ": " + what};
}

}  // namespace

const std::string* SpecSection::find(const std::string& key) const noexcept {
  const std::string* found = nullptr;
  for (const auto& [k, v] : entries) {
    if (k == key) found = &v;
  }
  return found;
}

std::string SpecSection::value_or(const std::string& key,
                                  const std::string& fallback) const {
  const std::string* v = find(key);
  return v != nullptr ? *v : fallback;
}

SpecFile parse_spec_text(const std::string& text, const std::string& source) {
  SpecFile spec;
  spec.source = source;
  std::istringstream in{text};
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(source, line_no, "unterminated section header");
      const std::string header = trim(line.substr(1, line.size() - 2));
      if (header.empty()) fail(source, line_no, "empty section header");
      SpecSection section;
      section.line = line_no;
      const auto space = header.find_first_of(" \t");
      if (space == std::string::npos) {
        section.name = header;
      } else {
        section.name = header.substr(0, space);
        section.label = trim(header.substr(space + 1));
      }
      spec.sections.push_back(std::move(section));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(source, line_no, "expected 'key = value' or '[section]': " + line);
    }
    if (spec.sections.empty()) {
      fail(source, line_no, "'key = value' before any [section] header");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) fail(source, line_no, "empty key");
    spec.sections.back().entries.emplace_back(key, trim(line.substr(eq + 1)));
  }
  return spec;
}

SpecFile parse_spec_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open spec file: " + path};
  std::ostringstream text;
  text << in.rdbuf();
  return parse_spec_text(text.str(), path);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::string current;
  std::istringstream in{csv};
  while (std::getline(in, current, ',')) {
    const std::string item = trim(current);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace netadv::util
