#include "util/csv.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace netadv::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << format_number(cells[i]);
  }
  out_ << '\n';
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_csv: cannot open " + path};
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss{line};
    std::string cell;
    if (first) {
      while (std::getline(ss, cell, ',')) table.header.push_back(cell);
      first = false;
      continue;
    }
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      std::size_t pos = 0;
      double value = 0.0;
      try {
        value = std::stod(cell, &pos);
      } catch (const std::exception&) {
        throw std::runtime_error{"read_csv: non-numeric cell '" + cell + "' in " + path};
      }
      if (pos != cell.size()) {
        throw std::runtime_error{"read_csv: trailing junk in cell '" + cell + "' in " + path};
      }
      row.push_back(value);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::string format_number(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", x);
  return buf;
}

}  // namespace netadv::util
