#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace netadv::util {

namespace {

/// Split on ',' keeping empty cells, including a trailing one ("a,b," is
/// three cells). std::getline(ss, cell, ',') silently drops that last empty
/// cell, which is how ragged benchmark CSVs went unnoticed.
std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << format_number(cells[i]);
  }
  out_ << '\n';
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_csv: cannot open " + path};
  CsvTable table;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      table.header = split_line(line);
      first = false;
      continue;
    }
    const std::vector<std::string> cells = split_line(line);
    if (cells.size() != table.header.size()) {
      throw std::runtime_error{
          "read_csv: row at line " + std::to_string(line_no) + " has " +
          std::to_string(cells.size()) + " cells, header has " +
          std::to_string(table.header.size()) + " in " + path};
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const std::string& cell : cells) {
      std::size_t pos = 0;
      double value = 0.0;
      try {
        value = std::stod(cell, &pos);
      } catch (const std::exception&) {
        throw std::runtime_error{"read_csv: non-numeric cell '" + cell + "' in " + path};
      }
      if (pos != cell.size()) {
        throw std::runtime_error{"read_csv: trailing junk in cell '" + cell + "' in " + path};
      }
      row.push_back(value);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::string format_number(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", x);
  return buf;
}

}  // namespace netadv::util
