// Minimal CSV reading/writing for traces and benchmark output. Values are
// numeric or plain strings without embedded commas/newlines, which is all
// this project produces; a full RFC-4180 parser is deliberately out of scope.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace netadv::util {

/// Row-at-a-time CSV writer. Creates/truncates the file on construction and
/// flushes on destruction (RAII); throws std::runtime_error if the file
/// cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Write a header or data row from string cells.
  void write_row(const std::vector<std::string>& cells);
  /// Write a data row of doubles (formatted with %.6g).
  void write_row(const std::vector<double>& cells);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Read a numeric CSV with a single header line. Empty cells are preserved
/// (and rejected as non-numeric) rather than silently dropped, and every
/// data row must have exactly as many cells as the header. Throws
/// std::runtime_error on missing file, non-numeric data cells, or
/// ragged rows.
CsvTable read_csv(const std::string& path);

/// Format a double with up to 6 significant digits (trailing-zero trimmed).
std::string format_number(double x);

}  // namespace netadv::util
