// Small statistics toolkit used across the simulators, the RL substrate and
// the benchmark harnesses: streaming moments (Welford), EWMA smoothing,
// percentiles / empirical CDFs, and a fixed-capacity sliding window.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

namespace netadv::util {

/// Streaming mean/variance via Welford's algorithm; O(1) memory.
class RunningStat {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average. `alpha` is the weight of the new
/// sample: value = alpha * x + (1 - alpha) * value. The first sample
/// initializes the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw std::invalid_argument{"Ewma alpha must be in (0, 1]"};
    }
  }

  void add(double x) noexcept {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }

  bool initialized() const noexcept { return initialized_; }
  double value() const noexcept { return value_; }
  void reset() noexcept {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-capacity FIFO of doubles with O(1) push and aggregate queries;
/// used for throughput/download-time histories in protocol state.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void push(double x);
  std::size_t size() const noexcept { return buf_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return buf_.size() == capacity_; }
  double operator[](std::size_t i) const { return buf_.at(i); }
  double back() const { return buf_.back(); }
  double front() const { return buf_.front(); }
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Smallest value a sample contributes to the harmonic mean as. Samples
  /// below it (zero or negative — e.g. a download that reported 0 Mbps)
  /// would otherwise zero out or flip the sign of the reciprocal sum.
  static constexpr double kMinHarmonicSample = 1e-9;

  /// Harmonic mean over max(sample, kMinHarmonicSample), so a non-positive
  /// sample drags the mean toward ~0 instead of dividing by zero.
  /// Returns 0 on empty window.
  double harmonic_mean() const noexcept;
  void clear() noexcept { buf_.clear(); }
  const std::deque<double>& values() const noexcept { return buf_; }

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
};

/// Percentile of a sample set with linear interpolation between order
/// statistics. `p` in [0, 100]. Throws on empty input.
double percentile(std::span<const double> xs, double p);

struct CdfPoint {
  double value;
  double cumulative_probability;
};

/// Empirical CDF (sorted sample values with cumulative probabilities),
/// suitable for plotting Figure-1-style curves. Throws on empty input.
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

double mean(std::span<const double> xs);

}  // namespace netadv::util
