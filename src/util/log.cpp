#include "util/log.hpp"

#include <cstdlib>
#include <mutex>

namespace netadv::util {

namespace {
LogLevel g_level = [] {
  if (const char* env = std::getenv("NETADV_LOG")) return parse_log_level(env);
  return LogLevel::kInfo;
}();

// Serializes sink writes so lines from concurrent workers never interleave.
std::mutex g_sink_mutex;
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

LogLevel parse_log_level(const std::string& name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {
void log_line(LogLevel level, const char* tag, const std::string& message) {
  std::FILE* sink = level >= LogLevel::kWarn ? stderr : stdout;
  std::lock_guard lock{g_sink_mutex};
  std::fprintf(sink, "[netadv %s] %s\n", tag, message.c_str());
}
}  // namespace detail

}  // namespace netadv::util
