// Deterministic fork/join parallelism for experiment hot paths.
//
// A ThreadPool owns a fixed set of persistent worker threads and exposes
// parallel_for/parallel_map over an index range. Tasks pull indices from a
// shared atomic counter (dynamic scheduling), but every result is written to
// the slot of its own task index, so reductions happen in task-index order
// and the output of a parallel region is bit-identical regardless of thread
// count or OS scheduling. Combined with per-task RNG streams forked *before*
// dispatch (see fork_streams in util/rng.hpp), this keeps every experiment
// reproducible from a single seed while using all cores.
//
// The calling thread participates in the batch, so ThreadPool{1} (or a pool
// on a single-core machine) degrades to plain sequential execution with no
// synchronization beyond one atomic per index.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace netadv::util {

class ThreadPool {
 public:
  /// `threads` is the total number of execution lanes (workers + the calling
  /// thread); 0 picks default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the caller of parallel_for.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Run body(i) for every i in [0, n); blocks until all complete. The first
  /// exception thrown by any task is rethrown on the calling thread after
  /// the whole batch has drained. Reentrant calls (a task calling
  /// parallel_for on the same pool) run the nested batch inline on the
  /// worker — sequentially, with no extra threads.
  ///
  /// Determinism contract: indices are handed out dynamically, so `body`
  /// must confine its writes to state owned by index i (its own output
  /// slot, its own pre-forked RNG stream, its own workspace). Under that
  /// rule the outcome of a batch is a pure function of the inputs —
  /// bit-identical at 1, 2, or N threads and across OS schedules.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for that collects fn(i) into a vector indexed by i — the
  /// ordered reduction used by every deterministic fan-out in netadv. The
  /// result type must be default-constructible (slots are built up front);
  /// fan-outs of non-default-constructible values (e.g. trained PpoAgents)
  /// use parallel_for over a vector of std::optional slots instead.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Process-wide pool sized by the NETADV_THREADS environment variable
  /// (default: hardware concurrency). Benches and the fig pipelines share it
  /// so one knob controls every experiment.
  static ThreadPool& global();

  /// NETADV_THREADS if set and valid, else std::thread::hardware_concurrency
  /// (at least 1).
  static std::size_t default_thread_count() noexcept;

 private:
  void worker_loop();
  void drain_batch() noexcept;

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t batch_size_ = 0;
  std::atomic<std::size_t> next_index_{0};
  std::size_t workers_active_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool in_batch_ = false;
  bool stop_ = false;
};

}  // namespace netadv::util
