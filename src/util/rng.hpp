// Deterministic pseudo-random number generation for simulations and training.
//
// Everything in netadv that needs randomness takes a Rng& so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64,
// which gives high-quality 64-bit streams with tiny state and lets us cheaply
// fork independent child streams for sub-components.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace netadv::util {

/// splitmix64 step; used to expand a single seed into generator state and to
/// derive decorrelated child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience samplers. Satisfies
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>((*this)() % n);
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached spare deviate).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Derive an independent child generator; advancing the child never
  /// perturbs the parent stream.
  Rng fork() noexcept { return Rng{(*this)()}; }

  /// Fork `n` independent child streams in index order. Forking happens
  /// entirely on the calling thread, so handing stream i to parallel task i
  /// yields results that do not depend on thread count or scheduling.
  std::vector<Rng> fork_streams(std::size_t n) {
    std::vector<Rng> streams;
    streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) streams.push_back(fork());
    return streams;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace netadv::util
