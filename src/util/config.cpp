#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "util/log.hpp"

namespace netadv::util {

double bench_scale() noexcept {
  static const double scale = [] {
    double value = 1.0;
    if (const char* env = std::getenv("NETADV_SCALE")) {
      char* end = nullptr;
      const double parsed = std::strtod(env, &end);
      if (end != env && parsed > 0.0) value = parsed;
    }
    return std::clamp(value, 0.001, 100.0);
  }();
  return scale;
}

std::string bench_output_dir() {
  std::string dir = "bench_out";
  if (const char* env = std::getenv("NETADV_OUT_DIR")) dir = env;
  // Serialized: concurrent first calls from pool threads (campaign jobs all
  // resolve their artifact paths through here) must not race the check/create
  // inside create_directories across filesystems that aren't atomic about it.
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock{mutex};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    log_error("bench_output_dir: cannot create '%s': %s", dir.c_str(),
              ec.message().c_str());
    throw std::runtime_error{"bench_output_dir: cannot create '" + dir +
                             "': " + ec.message()};
  }
  return dir;
}

std::size_t scaled_steps(std::size_t nominal, std::size_t floor) noexcept {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(nominal) * bench_scale());
  return std::max(scaled, floor);
}

}  // namespace netadv::util
