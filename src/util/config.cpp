#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

namespace netadv::util {

double bench_scale() noexcept {
  static const double scale = [] {
    double value = 1.0;
    if (const char* env = std::getenv("NETADV_SCALE")) {
      char* end = nullptr;
      const double parsed = std::strtod(env, &end);
      if (end != env && parsed > 0.0) value = parsed;
    }
    return std::clamp(value, 0.001, 100.0);
  }();
  return scale;
}

std::string bench_output_dir() {
  std::string dir = "bench_out";
  if (const char* env = std::getenv("NETADV_OUT_DIR")) dir = env;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::size_t scaled_steps(std::size_t nominal, std::size_t floor) noexcept {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(nominal) * bench_scale());
  return std::max(scaled, floor);
}

}  // namespace netadv::util
