#include "util/fsatomic.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace netadv::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error{what + " '" + path + "': " + std::strerror(errno)};
}

/// A sibling temp name unique across processes (pid) and within a process
/// (atomic counter), so concurrent replace_file calls never collide.
std::string unique_sibling(const std::string& path) {
  static std::atomic<unsigned> seq{0};
  return path + "." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) + ".tmp";
}

void write_all(int fd, const std::string& content, const std::string& path) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("fsatomic: cannot write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool create_file_exclusive(const std::string& path,
                           const std::string& content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    fail("fsatomic: cannot create", path);
  }
  write_all(fd, content, path);
  ::close(fd);
  return true;
}

void replace_file(const std::string& path, const std::string& content) {
  const std::string tmp = unique_sibling(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("fsatomic: cannot create temp", tmp);
  write_all(fd, content, tmp);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("fsatomic: cannot rename over", path);
  }
}

bool steal_file(const std::string& path, const std::string& to) {
  if (::rename(path.c_str(), to.c_str()) == 0) return true;
  if (errno == ENOENT) return false;  // someone else stole it first
  fail("fsatomic: cannot steal", path);
}

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

std::optional<double> file_age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto now = std::filesystem::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

}  // namespace netadv::util
