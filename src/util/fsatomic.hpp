// Cross-process atomic file primitives for the campaign spool protocol
// (exp/spool.hpp) and anything else that coordinates processes through a
// shared directory. Three operations, each atomic at the filesystem level:
//
//   * create_file_exclusive — O_CREAT|O_EXCL: at most one of any number of
//     concurrent callers (threads *or* processes) wins. The claim-
//     acquisition primitive.
//   * replace_file — write a unique sibling temp file, then rename() over
//     the target. Readers see either the old or the new content, never a
//     torn mix. The heartbeat-refresh primitive.
//   * steal_file — rename() the target to a caller-unique name. rename()
//     fails with ENOENT for every caller but one, so exactly one of any
//     number of concurrent stealers wins. The stale-claim-breaking
//     primitive.
//
// All three return false (rather than throwing) on the contended outcome
// — "someone else got there first" is the expected case, not an error.
// Genuine I/O failures (unwritable directory, disk full) throw
// std::runtime_error.
#pragma once

#include <optional>
#include <string>

namespace netadv::util {

/// Atomically create `path` with `content` iff it does not already exist.
/// Returns false if the file exists (someone else won the race); throws on
/// any other failure. The content is written and flushed before the
/// function returns, so a concurrent reader of a successfully created file
/// never sees a partial write... of a *different* kind than rename gives:
/// O_EXCL makes the *name* appear before the bytes do, so readers must
/// tolerate a briefly empty file (the spool's staleness check keys off
/// mtime, not content, for exactly this reason).
bool create_file_exclusive(const std::string& path, const std::string& content);

/// Atomically replace (or create) `path` with `content`: writes
/// `<path>.<pid>.<seq>.tmp` in the same directory, flushes, then renames it
/// over `path`. Readers never observe partial content. Throws on failure.
void replace_file(const std::string& path, const std::string& content);

/// Atomically move `path` to `to`. Returns true if this caller performed
/// the move, false if `path` no longer exists (another caller stole it
/// first). Throws on any other failure.
bool steal_file(const std::string& path, const std::string& to);

/// The file's content, or nullopt if it does not exist (or vanishes while
/// being read — a stolen claim is indistinguishable from a missing one).
std::optional<std::string> read_file_if_exists(const std::string& path);

/// Age of `path` in seconds by its mtime, or nullopt if it does not exist.
/// This is the spool lease clock: replace_file bumps the mtime, so a live
/// heartbeat keeps the age near zero and a kill -9'd owner's file ages
/// without bound. Uses the filesystem clock — on a shared filesystem all
/// workers see the same one.
std::optional<double> file_age_seconds(const std::string& path);

}  // namespace netadv::util
