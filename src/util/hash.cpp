#include "util/hash.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace netadv::util {

std::uint64_t fnv1a64_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"fnv1a64_file: cannot open " + path};
  std::uint64_t state = kFnvOffsetBasis;
  char buffer[1 << 14];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    state = fnv1a64_accumulate(
        state, std::string_view{buffer, static_cast<std::size_t>(in.gcount())});
  }
  return state;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace netadv::util
