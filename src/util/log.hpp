// Tiny leveled logger. Benchmarks and long training loops use it for
// progress lines; tests run with the level raised to kWarn to stay quiet.
// Sink writes are serialized by a mutex, so parallel rollout and replay
// workers (util::ThreadPool) can log without interleaving lines.
#pragma once

#include <cstdio>
#include <string>

namespace netadv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off"; unknown strings map to kInfo.
LogLevel parse_log_level(const std::string& name) noexcept;

namespace detail {
void log_line(LogLevel level, const char* tag, const std::string& message);
}

template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof buf, fmt, args...);
  const char* tag = level == LogLevel::kDebug  ? "DEBUG"
                    : level == LogLevel::kInfo ? "INFO"
                    : level == LogLevel::kWarn ? "WARN"
                                               : "ERROR";
  detail::log_line(level, tag, buf);
}

template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  logf(LogLevel::kDebug, fmt, args...);
}
template <typename... Args>
void log_info(const char* fmt, Args... args) {
  logf(LogLevel::kInfo, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  logf(LogLevel::kWarn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  logf(LogLevel::kError, fmt, args...);
}

}  // namespace netadv::util
