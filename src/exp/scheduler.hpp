// The campaign DAG scheduler.
//
// Jobs are topologically ordered into waves (campaign.hpp) and each wave's
// jobs run concurrently on a util::ThreadPool — per-wave fan-out with the
// same determinism contract as every other parallel region in netadv: job
// seeds are resolved on the caller before dispatch (Rng::fork_streams in
// declaration order), every job writes only its own artifacts and outcome
// slot, so campaign artifacts are bit-identical at any thread count. Only
// the manifest's line order (completion order) and wall-clock columns vary.
//
// Resumability: before running a job the scheduler fingerprints its params
// (job_params_hash) and its dependencies' artifact files
// (hash_input_artifacts). Under --resume, a completed manifest entry with
// matching fingerprints whose artifacts still exist short-circuits the job
// to `skipped-cached` — and because downstream inputs_hash values are
// recomputed from the actual files, a re-run job with changed outputs
// automatically invalidates its dependents.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/manifest.hpp"
#include "util/thread_pool.hpp"

namespace netadv::exp {

/// What a job executor hands back: the artifact files it wrote (absolute or
/// out_dir-relative paths as given) and an optional one-line summary.
struct JobResult {
  std::vector<std::string> artifacts;
  std::string note;
};

/// Everything an executor may depend on. Executors must be pure functions of
/// this context (plus their input artifacts) for the determinism and resume
/// contracts to hold.
struct JobContext {
  const Campaign* campaign = nullptr;
  const JobSpec* job = nullptr;
  std::string out_dir;
  std::uint64_t seed = 0;  ///< resolved per-job seed
  /// Artifacts of each dependency, in `after` order.
  std::vector<std::pair<std::string, std::vector<std::string>>> inputs;
  /// Pool the wave runs on (nested parallel_for degrades to inline — safe to
  /// pass straight into train/record APIs).
  util::ThreadPool* pool = nullptr;

  /// `<out_dir>/<job id><suffix>` — the canonical artifact naming.
  std::string artifact(const std::string& suffix) const;
  /// Artifacts of dependency `id`; throws if `id` is not a dependency.
  const std::vector<std::string>& artifacts_of(const std::string& id) const;
  /// The single artifact of dependency `id` whose name ends with `suffix`;
  /// throws if absent or ambiguous.
  std::string input_ending_with(const std::string& id,
                                const std::string& suffix) const;
};

using JobExecutor = std::function<JobResult(const JobContext&)>;

/// kind -> executor + one-line description (self-describing, like the
/// core:: target registries — `netadv_cli list jobs` prints it). Start from
/// builtin_jobs() (jobs.hpp) and add campaign-specific kinds (bench_fig4
/// registers its cell executor).
class JobRegistry {
 public:
  void add(const std::string& kind, JobExecutor executor);
  void add(const std::string& kind, std::string description,
           JobExecutor executor);
  const JobExecutor* find(const std::string& kind) const noexcept;
  /// (kind, description) pairs, sorted by kind.
  std::vector<std::pair<std::string, std::string>> kinds() const;
  /// Every registered kind joined by `separator`, for error messages.
  std::string names(const std::string& separator = " | ") const;

 private:
  struct Entry {
    std::string description;
    JobExecutor executor;
  };
  std::map<std::string, Entry> executors_;
};

struct SchedulerOptions {
  bool resume = false;
  /// Null runs jobs sequentially in wave order.
  util::ThreadPool* pool = nullptr;
};

struct JobOutcome {
  std::string id;
  std::string status;  ///< completed | skipped-cached | failed | blocked
  double seconds = 0.0;
  JobResult result;    ///< artifacts (cached ones for skipped-cached)
  std::string error;   ///< failure reason when status == failed

  bool satisfied() const noexcept {
    return status == "completed" || status == "skipped-cached";
  }
};

struct CampaignReport {
  std::vector<JobOutcome> outcomes;  ///< job declaration order
  std::string manifest;              ///< manifest file path
  std::size_t completed = 0;
  std::size_t skipped = 0;
  std::size_t failed = 0;
  std::size_t blocked = 0;

  bool ok() const noexcept { return failed == 0 && blocked == 0; }
  const JobOutcome& outcome_of(const std::string& id) const;
};

/// Execute the campaign. Creates out_dir, writes the manifest as jobs
/// settle, and never throws for job-level failures (they surface as
/// failed/blocked outcomes); throws std::runtime_error for campaign-level
/// problems (unknown kind, unwritable out_dir, cycles).
CampaignReport run_campaign(const Campaign& campaign,
                            const JobRegistry& registry,
                            const SchedulerOptions& options = {});

/// Human-readable execution plan (the --dry-run output): waves, job kinds,
/// resolved seeds, dependencies — plus, with `resume`, which jobs currently
/// hold a reusable manifest entry. Touches no artifacts.
std::string format_plan(const Campaign& campaign, bool resume = false);

}  // namespace netadv::exp
