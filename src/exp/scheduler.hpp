// The campaign DAG scheduler.
//
// Jobs are topologically ordered into waves (campaign.hpp) and each wave's
// jobs run concurrently on a util::ThreadPool — per-wave fan-out with the
// same determinism contract as every other parallel region in netadv: job
// seeds are resolved on the caller before dispatch (Rng::fork_streams in
// declaration order), every job writes only its own artifacts and outcome
// slot, so campaign artifacts are bit-identical at any thread count. Only
// the manifest's line order (completion order) and wall-clock columns vary.
//
// Resumability: before running a job the scheduler fingerprints its params
// (job_params_hash) and its dependencies' artifact files
// (hash_input_artifacts). Under --resume, a completed manifest entry with
// matching fingerprints whose artifacts still exist short-circuits the job
// to `skipped-cached` — and because downstream inputs_hash values are
// recomputed from the actual files, a re-run job with changed outputs
// automatically invalidates its dependents.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/manifest.hpp"
#include "util/thread_pool.hpp"

namespace netadv::exp {

/// What a job executor hands back: the artifact files it wrote (absolute or
/// out_dir-relative paths as given) and an optional one-line summary.
struct JobResult {
  std::vector<std::string> artifacts;
  std::string note;
};

/// Everything an executor may depend on. Executors must be pure functions of
/// this context (plus their input artifacts) for the determinism and resume
/// contracts to hold.
struct JobContext {
  const Campaign* campaign = nullptr;
  const JobSpec* job = nullptr;
  std::string out_dir;
  std::uint64_t seed = 0;  ///< resolved per-job seed
  /// Artifacts of each dependency, in `after` order.
  std::vector<std::pair<std::string, std::vector<std::string>>> inputs;
  /// Pool the wave runs on (nested parallel_for degrades to inline — safe to
  /// pass straight into train/record APIs).
  util::ThreadPool* pool = nullptr;

  /// `<out_dir>/<job id><suffix>` — the canonical artifact naming.
  std::string artifact(const std::string& suffix) const;
  /// Artifacts of dependency `id`; throws if `id` is not a dependency.
  const std::vector<std::string>& artifacts_of(const std::string& id) const;
  /// The single artifact of dependency `id` whose name ends with `suffix`;
  /// throws if absent or ambiguous.
  std::string input_ending_with(const std::string& id,
                                const std::string& suffix) const;
};

using JobExecutor = std::function<JobResult(const JobContext&)>;

/// kind -> executor + one-line description (self-describing, like the
/// core:: target registries — `netadv_cli list jobs` prints it). Start from
/// builtin_jobs() (jobs.hpp) and add campaign-specific kinds (bench_fig4
/// registers its cell executor).
class JobRegistry {
 public:
  void add(const std::string& kind, JobExecutor executor);
  void add(const std::string& kind, std::string description,
           JobExecutor executor);
  const JobExecutor* find(const std::string& kind) const noexcept;
  /// (kind, description) pairs, sorted by kind.
  std::vector<std::pair<std::string, std::string>> kinds() const;
  /// Every registered kind joined by `separator`, for error messages.
  std::string names(const std::string& separator = " | ") const;

 private:
  struct Entry {
    std::string description;
    JobExecutor executor;
  };
  std::map<std::string, Entry> executors_;
};

struct SchedulerOptions {
  bool resume = false;
  /// Null runs jobs sequentially in wave order.
  util::ThreadPool* pool = nullptr;
};

/// Throw (campaign-level) unless every job's kind has a registered
/// executor. Both execution front ends call this before touching the
/// filesystem, so a typo'd kind never creates an out_dir.
void validate_job_kinds(const Campaign& campaign, const JobRegistry& registry);

/// util::hash_hex(job_params_hash(...)) — the manifest's params_hash column.
std::string job_params_hex(const Campaign& campaign, const JobSpec& job,
                           std::uint64_t resolved_seed);

/// util::hash_hex(hash_input_artifacts(files)) — the manifest's inputs_hash
/// column, over the flattened dependency artifact list in `after` order.
std::string inputs_hash_hex(const std::vector<std::string>& files);

/// The first prior completed/skipped-cached entry for (campaign, job) whose
/// params_hash and inputs_hash match and whose artifacts all still exist —
/// the single reuse test behind --resume, the spool worker's settled check,
/// and format_plan's "cached" annotation. Returns nullptr when the job must
/// (re-)run.
const ManifestEntry* find_reusable_entry(
    const std::vector<ManifestEntry>& prior, const std::string& campaign,
    const std::string& job, const std::string& params_hash,
    const std::string& inputs_hash);

struct JobOutcome {
  std::string id;
  std::string status;  ///< completed | skipped-cached | failed | blocked
  double seconds = 0.0;
  JobResult result;    ///< artifacts (cached ones for skipped-cached)
  std::string error;   ///< failure reason when status == failed

  bool satisfied() const noexcept {
    return status == "completed" || status == "skipped-cached";
  }
};

struct CampaignReport {
  std::vector<JobOutcome> outcomes;  ///< job declaration order
  std::string manifest;              ///< manifest file path
  std::size_t completed = 0;
  std::size_t skipped = 0;
  std::size_t failed = 0;
  std::size_t blocked = 0;

  bool ok() const noexcept { return failed == 0 && blocked == 0; }
  const JobOutcome& outcome_of(const std::string& id) const;
};

/// The single-job execution path shared by run_campaign's wave loop and
/// the spool worker (spool.hpp): given a job index and its dependencies'
/// artifact lists, fingerprint, (maybe) reuse a prior manifest entry,
/// execute, and append the outcome's manifest line. Keeping both front
/// ends on this one path is what makes worker-count identity a corollary
/// of thread-count identity: only *which process* calls run() varies, not
/// what a job sees.
class JobRunner {
 public:
  /// Dependency artifacts in `after` order: (dep id, its artifact paths).
  using Inputs = std::vector<std::pair<std::string, std::vector<std::string>>>;

  /// Resolves every job seed up front (deterministically — see
  /// resolve_job_seeds). `pool` is handed to executors for nested
  /// parallelism; null runs them single-threaded.
  JobRunner(const Campaign& campaign, const JobRegistry& registry,
            ManifestWriter& manifest, util::ThreadPool* pool = nullptr);

  const std::vector<std::uint64_t>& seeds() const noexcept { return seeds_; }

  /// Execute job `j` — or short-circuit it to skipped-cached when a prior
  /// entry in `prior` passes find_reusable_entry (pass an empty vector to
  /// force execution). Appends the manifest line; never throws for
  /// job-level failures (they come back as a failed outcome).
  JobOutcome run(std::size_t j, const Inputs& inputs,
                 const std::vector<ManifestEntry>& prior);

  /// Record job `j` as blocked (a dependency failed) without executing it.
  JobOutcome block(std::size_t j);

 private:
  ManifestEntry base_entry(std::size_t j) const;

  const Campaign& campaign_;
  const JobRegistry& registry_;
  ManifestWriter& manifest_;
  util::ThreadPool* pool_;
  std::vector<std::uint64_t> seeds_;
  std::size_t threads_;
};

/// Execute the campaign. Creates out_dir, writes the manifest as jobs
/// settle, and never throws for job-level failures (they surface as
/// failed/blocked outcomes); throws std::runtime_error for campaign-level
/// problems (unknown kind, unwritable out_dir, cycles).
CampaignReport run_campaign(const Campaign& campaign,
                            const JobRegistry& registry,
                            const SchedulerOptions& options = {});

/// Human-readable execution plan (the --dry-run output): waves, job kinds,
/// resolved seeds, dependencies — plus, with `resume`, which jobs currently
/// hold a reusable manifest entry. Touches no artifacts.
std::string format_plan(const Campaign& campaign, bool resume = false);

}  // namespace netadv::exp
