#include "exp/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/fairness_adversary.hpp"
#include "core/registry.hpp"
#include "util/config.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace netadv::exp {

namespace {

[[noreturn]] void fail(const util::SpecFile& spec, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error{spec.source + ":" + std::to_string(line) + ": " +
                           what};
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument{text};
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::runtime_error{"campaign: " + what + " is not an integer: '" +
                             text + "'"};
  }
}

JobSpec job_from_section(const util::SpecFile& spec,
                         const util::SpecSection& section) {
  if (section.label.empty()) {
    fail(spec, section.line, "[job] sections need an id: [job <id>]");
  }
  JobSpec job;
  job.id = section.label;
  for (const auto& [key, value] : section.entries) {
    if (key == "kind") {
      job.kind = value;
    } else if (key == "after") {
      for (auto& dep : util::split_list(value)) job.after.push_back(dep);
    } else if (key == "seed") {
      job.seed = parse_u64(value, "job '" + job.id + "' seed");
    } else {
      job.params.emplace_back(key, value);
    }
  }
  if (job.kind.empty()) {
    fail(spec, section.line, "job '" + job.id + "' has no kind");
  }
  return job;
}

/// Expand one grid template into concrete jobs; returns the expanded ids so
/// `after = <grid id>` elsewhere can depend on the whole sweep.
std::vector<std::string> expand_grid(const util::SpecFile& spec,
                                     const util::SpecSection& section,
                                     const JobSpec& grid,
                                     std::vector<JobSpec>& out) {
  const std::string* protocols_csv = grid.find("protocols");
  const std::string* flow_mixes_csv = grid.find("flow_mixes");
  if ((protocols_csv == nullptr) == (flow_mixes_csv == nullptr)) {
    fail(spec, section.line,
         "grid '" + grid.id +
             "' needs exactly one of protocols = ... (single-target sweep) "
             "or flow_mixes = ... (fairness sweep; '+'-joined sender names "
             "per mix, e.g. bbr+cubic)");
  }
  const std::vector<std::string> protocols =
      protocols_csv != nullptr ? util::split_list(*protocols_csv)
                               : std::vector<std::string>{};
  // A mix element like "bbr+cubic" becomes `flows = bbr,cubic` on every
  // expanded job ('+' joins members because ',' separates list elements).
  const std::vector<std::string> flow_mixes =
      flow_mixes_csv != nullptr ? util::split_list(*flow_mixes_csv)
                                : std::vector<std::string>{};
  const std::vector<std::string> adversaries =
      util::split_list(grid.value_or("adversaries", ""));
  const std::vector<std::string> trace_sets =
      util::split_list(grid.value_or("trace_sets", ""));
  if (adversaries.empty() == trace_sets.empty()) {
    fail(spec, section.line,
         "grid '" + grid.id +
             "' needs exactly one of adversaries = ... (attack sweep) or "
             "trace_sets = ... (replay sweep)");
  }
  // qoe_models turns a replay sweep into a serving sweep: protocols x
  // qoe_models x trace_sets expand to `serve` jobs instead of `replay`.
  const std::vector<std::string> qoe_models =
      util::split_list(grid.value_or("qoe_models", ""));
  for (const auto& qm : qoe_models) {
    if (!core::qoe_models().contains(qm)) {
      fail(spec, section.line,
           "grid '" + grid.id + "': unknown " +
               core::qoe_models().category() + " '" + qm + "' (" +
               core::qoe_models().names() + ")");
    }
  }
  if (!qoe_models.empty() && trace_sets.empty()) {
    fail(spec, section.line,
         "grid '" + grid.id + "': qoe_models sweeps sessions over recorded "
         "traces — pair it with trace_sets = ...");
  }
  if (!qoe_models.empty() && flow_mixes_csv != nullptr) {
    fail(spec, section.line,
         "grid '" + grid.id + "': qoe_models scores ABR sessions — use "
         "protocols = ... instead of flow_mixes = ...");
  }
  std::vector<std::uint64_t> seeds;
  for (const auto& s : util::split_list(grid.value_or("seeds", ""))) {
    seeds.push_back(parse_u64(s, "grid '" + grid.id + "' seeds"));
  }

  // Load-time validation against the domain's live registry, so a typo
  // fails when the spec parses, not waves into the run. `domain` itself is
  // *not* consumed: it forwards to every expanded job like any shared param.
  core::TargetDomain domain = core::TargetDomain::kAbr;
  try {
    domain = core::parse_domain(grid.value_or("domain", "abr"));
  } catch (const std::exception& e) {
    fail(spec, section.line, "grid '" + grid.id + "': " + e.what());
  }
  const core::RegistryBase& targets =
      domain == core::TargetDomain::kCc
          ? static_cast<const core::RegistryBase&>(core::cc_senders())
          : core::abr_protocols();
  for (const auto& protocol : protocols) {
    if (!targets.contains(protocol)) {
      fail(spec, section.line,
           "grid '" + grid.id + "': unknown " + targets.category() + " '" +
               protocol + "' (" + targets.names() + ")");
    }
  }
  if (!flow_mixes.empty() && domain != core::TargetDomain::kCc) {
    fail(spec, section.line,
         "grid '" + grid.id + "': flow_mixes needs domain = cc — a flow mix "
         "is a set of cc senders sharing one bottleneck");
  }
  for (const auto& mix : flow_mixes) {
    std::size_t members = 0;
    std::string name;
    const auto check = [&] {
      ++members;
      if (!core::cc_senders().contains(name)) {
        fail(spec, section.line,
             "grid '" + grid.id + "': flow mix '" + mix + "': unknown " +
                 core::cc_senders().category() + " '" + name + "' (" +
                 core::cc_senders().names() + ")");
      }
      name.clear();
    };
    for (const char c : mix) {
      if (c == '+') {
        check();
      } else {
        name += c;
      }
    }
    check();
    if (members < 2) {
      fail(spec, section.line,
           "grid '" + grid.id + "': flow mix '" + mix +
               "' needs at least two '+'-joined flows (e.g. bbr+cubic)");
    }
  }
  for (const auto& adversary : adversaries) {
    const core::EntryInfo* info = core::adversary_kinds().info(adversary);
    if (info == nullptr) {
      fail(spec, section.line,
           "grid '" + grid.id + "': unknown adversary kind '" + adversary +
               "' (" + core::adversary_kinds().names() + ")");
    }
    if (info->domain != core::TargetDomain::kAny && info->domain != domain) {
      fail(spec, section.line,
           "grid '" + grid.id + "': adversary '" + adversary + "' is " +
               core::to_string(info->domain) +
               "-only, but the grid's domain is " + core::to_string(domain));
    }
    const bool is_fairness =
        core::fairness_scenario_for(adversary).has_value();
    if (is_fairness && flow_mixes.empty()) {
      fail(spec, section.line,
           "grid '" + grid.id + "': adversary '" + adversary +
               "' attacks a flow mix — use flow_mixes = ... instead of "
               "protocols = ...");
    }
    if (!is_fairness && !flow_mixes.empty()) {
      fail(spec, section.line,
           "grid '" + grid.id + "': adversary '" + adversary +
               "' attacks a single target — use protocols = ... instead of "
               "flow_mixes = ...");
    }
  }

  // Params forwarded verbatim to every expanded job (the sweep axes and the
  // engine keys are consumed here).
  std::vector<std::pair<std::string, std::string>> shared;
  for (const auto& [key, value] : grid.params) {
    if (key == "protocols" || key == "adversaries" || key == "seeds" ||
        key == "trace_sets" || key == "flow_mixes" || key == "qoe_models") {
      continue;
    }
    shared.emplace_back(key, value);
  }

  std::vector<std::string> expanded_ids;
  auto emit = [&](JobSpec job) {
    expanded_ids.push_back(job.id);
    out.push_back(std::move(job));
  };

  // "bbr+cubic" -> "bbr,cubic": the '+'-joined spec element as the job-level
  // `flows =` list.
  const auto mix_flows = [](const std::string& mix) {
    std::string flows = mix;
    std::replace(flows.begin(), flows.end(), '+', ',');
    return flows;
  };

  const std::vector<std::optional<std::uint64_t>> seed_axis =
      seeds.empty()
          ? std::vector<std::optional<std::uint64_t>>{std::nullopt}
          : [&] {
              std::vector<std::optional<std::uint64_t>> axis;
              for (const auto s : seeds) axis.emplace_back(s);
              return axis;
            }();

  if (!trace_sets.empty()) {
    if (!qoe_models.empty()) {
      // Serving sweep: protocols x qoe_models x trace_sets x seeds, each
      // point one `serve` job multiplexing sessions over the recorded set.
      for (const auto& protocol : protocols) {
        for (const auto& qm : qoe_models) {
          for (const auto& set : trace_sets) {
            for (const auto& seed : seed_axis) {
              const std::string tag =
                  seed.has_value() ? "-s" + std::to_string(*seed) : "";
              JobSpec job;
              job.id = grid.id + "-" + protocol + "-" + qm + "-on-" + set + tag;
              job.kind = "serve";
              job.after = grid.after;
              job.after.push_back(set);
              job.params = shared;
              job.params.emplace_back("protocol", protocol);
              job.params.emplace_back("qoe", qm);
              job.params.emplace_back("traces", set);
              job.seed = seed;
              emit(std::move(job));
            }
          }
        }
      }
      return expanded_ids;
    }
    // Replay sweep: targets x trace_sets (a target is one protocol, or one
    // whole flow mix replaying each trace together).
    for (const auto& protocol : protocols) {
      for (const auto& set : trace_sets) {
        JobSpec job;
        job.id = grid.id + "-" + protocol + "-on-" + set;
        job.kind = "replay";
        job.after = grid.after;
        job.after.push_back(set);
        job.params = shared;
        job.params.emplace_back("protocol", protocol);
        job.params.emplace_back("traces", set);
        emit(std::move(job));
      }
    }
    for (const auto& mix : flow_mixes) {
      for (const auto& set : trace_sets) {
        JobSpec job;
        job.id = grid.id + "-" + mix + "-on-" + set;
        job.kind = "replay";
        job.after = grid.after;
        job.after.push_back(set);
        job.params = shared;
        job.params.emplace_back("flows", mix_flows(mix));
        job.params.emplace_back("traces", set);
        emit(std::move(job));
      }
    }
    return expanded_ids;
  }

  if (!flow_mixes.empty()) {
    // Fairness attack sweep: flow_mixes x adversaries x seeds. Every
    // fairness kind is PPO-trained, so each point is a train-adversary job
    // feeding a record-traces job (mirroring the ppo branch below).
    for (const auto& mix : flow_mixes) {
      for (const auto& adversary : adversaries) {
        for (const auto& seed : seed_axis) {
          const std::string tag =
              seed.has_value() ? "-s" + std::to_string(*seed) : "";
          const std::string point_id =
              grid.id + "-" + mix + "-" + adversary + tag;
          JobSpec train;
          train.id = point_id + "-train";
          train.kind = "train-adversary";
          train.after = grid.after;
          train.params = shared;
          train.params.emplace_back("flows", mix_flows(mix));
          train.params.emplace_back("adversary", adversary);
          train.seed = seed;

          JobSpec record;
          record.id = point_id;
          record.kind = "record-traces";
          record.after = grid.after;
          record.after.push_back(train.id);
          record.params = shared;
          record.params.emplace_back("flows", mix_flows(mix));
          record.params.emplace_back("adversary", adversary);
          record.params.emplace_back("from", train.id);
          record.seed = seed;
          emit(std::move(train));
          emit(std::move(record));
        }
      }
    }
    return expanded_ids;
  }

  // Attack sweep: protocols x adversaries x seeds. A PPO point is a
  // train-adversary job feeding a record-traces job; a CEM point records
  // directly (CEM is trace-based — searching *is* recording).
  for (const auto& protocol : protocols) {
    for (const auto& adversary : adversaries) {
      for (const auto& seed : seed_axis) {
        const std::string tag =
            seed.has_value() ? "-s" + std::to_string(*seed) : "";
        const std::string point_id = grid.id + "-" + protocol + "-" +
                                     adversary + tag;
        if (adversary == "ppo") {
          JobSpec train;
          train.id = point_id + "-train";
          train.kind = "train-adversary";
          train.after = grid.after;
          train.params = shared;
          train.params.emplace_back("protocol", protocol);
          train.seed = seed;

          JobSpec record;
          record.id = point_id;
          record.kind = "record-traces";
          record.after = grid.after;
          record.after.push_back(train.id);
          record.params = shared;
          record.params.emplace_back("protocol", protocol);
          record.params.emplace_back("from", train.id);
          record.seed = seed;
          emit(std::move(train));
          emit(std::move(record));
        } else {
          // cem (validated above): trace-based — searching *is* recording.
          JobSpec record;
          record.id = point_id;
          record.kind = "record-traces";
          record.after = grid.after;
          record.params = shared;
          record.params.emplace_back("protocol", protocol);
          record.params.emplace_back("adversary", "cem");
          record.seed = seed;
          emit(std::move(record));
        }
      }
    }
  }
  return expanded_ids;
}

}  // namespace

const std::string* JobSpec::find(const std::string& key) const noexcept {
  const std::string* found = nullptr;
  for (const auto& [k, v] : params) {
    if (k == key) found = &v;
  }
  return found;
}

std::string JobSpec::value_or(const std::string& key,
                              const std::string& fallback) const {
  const std::string* v = find(key);
  return v != nullptr ? *v : fallback;
}

std::size_t Campaign::job_index(const std::string& id) const noexcept {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].id == id) return i;
  }
  return static_cast<std::size_t>(-1);
}

Campaign parse_campaign(const util::SpecFile& spec) {
  Campaign campaign;
  bool saw_header = false;
  // Grid ids double as dependency groups naming every expanded job.
  std::vector<std::pair<std::string, std::vector<std::string>>> groups;
  for (const auto& section : spec.sections) {
    if (section.name == "campaign") {
      if (saw_header) fail(spec, section.line, "duplicate [campaign] section");
      saw_header = true;
      campaign.name = section.value_or("name", "");
      if (campaign.name.empty()) {
        fail(spec, section.line, "[campaign] needs name = ...");
      }
      if (const std::string* seed = section.find("seed")) {
        campaign.seed = parse_u64(*seed, "campaign seed");
      }
      campaign.out_dir = section.value_or("out_dir", "");
    } else if (section.name == "job") {
      JobSpec job = job_from_section(spec, section);
      if (job.kind == "grid") {
        groups.emplace_back(job.id, expand_grid(spec, section, job,
                                                campaign.jobs));
      } else {
        campaign.jobs.push_back(std::move(job));
      }
    } else {
      fail(spec, section.line, "unknown section [" + section.name +
                                   "] (expected [campaign] or [job <id>])");
    }
  }
  if (!saw_header) {
    throw std::runtime_error{spec.source + ": missing [campaign] section"};
  }
  if (campaign.jobs.empty()) {
    throw std::runtime_error{spec.source + ": campaign '" + campaign.name +
                             "' declares no jobs"};
  }
  if (campaign.out_dir.empty()) {
    campaign.out_dir = util::bench_output_dir() + "/" + campaign.name;
  }

  // Resolve group references, check id uniqueness and dependency targets.
  for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < campaign.jobs.size(); ++j) {
      if (campaign.jobs[i].id == campaign.jobs[j].id) {
        throw std::runtime_error{spec.source + ": duplicate job id '" +
                                 campaign.jobs[i].id + "'"};
      }
    }
  }
  for (auto& job : campaign.jobs) {
    std::vector<std::string> resolved;
    for (const auto& dep : job.after) {
      const auto group = std::find_if(
          groups.begin(), groups.end(),
          [&](const auto& g) { return g.first == dep; });
      if (group != groups.end()) {
        resolved.insert(resolved.end(), group->second.begin(),
                        group->second.end());
        continue;
      }
      if (campaign.job_index(dep) == static_cast<std::size_t>(-1)) {
        throw std::runtime_error{spec.source + ": job '" + job.id +
                                 "' depends on unknown job '" + dep + "'"};
      }
      resolved.push_back(dep);
    }
    // Dedup while preserving order (a grid edge can repeat a direct one).
    job.after.clear();
    for (auto& dep : resolved) {
      if (std::find(job.after.begin(), job.after.end(), dep) ==
          job.after.end()) {
        job.after.push_back(std::move(dep));
      }
    }
    if (std::find(job.after.begin(), job.after.end(), job.id) !=
        job.after.end()) {
      throw std::runtime_error{spec.source + ": job '" + job.id +
                               "' depends on itself"};
    }
  }
  topological_waves(campaign);  // rejects cycles at load time
  return campaign;
}

Campaign load_campaign(const std::string& path) {
  return parse_campaign(util::parse_spec_file(path));
}

std::vector<std::uint64_t> resolve_job_seeds(const Campaign& campaign) {
  util::Rng root{campaign.seed};
  std::vector<util::Rng> streams = root.fork_streams(campaign.jobs.size());
  std::vector<std::uint64_t> seeds(campaign.jobs.size());
  for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
    seeds[i] = campaign.jobs[i].seed.value_or(streams[i]());
  }
  return seeds;
}

std::uint64_t job_params_hash(const Campaign& campaign, const JobSpec& job,
                              std::uint64_t resolved_seed) {
  // Canonical serialization: sorted params so spelling order in the spec
  // cannot flip the fingerprint.
  std::vector<std::pair<std::string, std::string>> sorted = job.params;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t state = util::kFnvOffsetBasis;
  const auto fold = [&state](const std::string& text) {
    state = util::fnv1a64_accumulate(state, text);
    state = util::fnv1a64_accumulate(state, std::string_view{"\n", 1});
  };
  fold(campaign.name);
  fold(job.kind);
  for (const auto& [key, value] : sorted) fold(key + "=" + value);
  fold("seed=" + std::to_string(resolved_seed));
  return state;
}

std::vector<std::vector<std::size_t>> topological_waves(
    const Campaign& campaign) {
  const std::size_t n = campaign.jobs.size();
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& dep : campaign.jobs[i].after) {
      const std::size_t d = campaign.job_index(dep);
      if (d == static_cast<std::size_t>(-1)) {
        throw std::runtime_error{"campaign '" + campaign.name + "': job '" +
                                 campaign.jobs[i].id +
                                 "' depends on unknown job '" + dep + "'"};
      }
      dependents[d].push_back(i);
      ++pending[i];
    }
  }
  std::vector<std::vector<std::size_t>> waves;
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) ready.push_back(i);
  }
  std::size_t placed = 0;
  while (!ready.empty()) {
    waves.push_back(ready);
    placed += ready.size();
    std::vector<std::size_t> next;
    for (const std::size_t i : ready) {
      for (const std::size_t d : dependents[i]) {
        if (--pending[d] == 0) next.push_back(d);
      }
    }
    std::sort(next.begin(), next.end());  // declaration order within a wave
    ready = std::move(next);
  }
  if (placed != n) {
    throw std::runtime_error{"campaign '" + campaign.name +
                             "': dependency cycle detected"};
  }
  return waves;
}

}  // namespace netadv::exp
