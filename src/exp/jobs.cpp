#include "exp/jobs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "abr/optimal.hpp"
#include "abr/pensieve.hpp"
#include "abr/runner.hpp"
#include "core/abr_adversary.hpp"
#include "core/cc_adversary.hpp"
#include "core/cem_adversary.hpp"
#include "core/fairness_adversary.hpp"
#include "core/recorder.hpp"
#include "core/registry.hpp"
#include "core/trainer.hpp"
#include "rl/checkpoint.hpp"
#include "serve/engine.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/spec.hpp"
#include "util/stats.hpp"

namespace netadv::exp {

namespace {

[[noreturn]] void job_fail(const JobContext& ctx, const std::string& what) {
  throw std::runtime_error{"job '" + ctx.job->id + "' (" + ctx.job->kind +
                           "): " + what};
}

std::size_t size_param(const JobContext& ctx, const std::string& key,
                       std::size_t fallback) {
  const std::string* value = ctx.job->find(key);
  if (value == nullptr) return fallback;
  try {
    return static_cast<std::size_t>(std::stoull(*value));
  } catch (const std::exception&) {
    job_fail(ctx, key + " is not an integer: '" + *value + "'");
  }
}

double double_param(const JobContext& ctx, const std::string& key,
                    double fallback) {
  const std::string* value = ctx.job->find(key);
  if (value == nullptr) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    job_fail(ctx, key + " is not a number: '" + *value + "'");
  }
}

/// Corpus sizes scale down with NETADV_SCALE like bench_common's trace
/// counts (full size from scale 0.25 up, floor of 2 below).
std::size_t scaled_count(std::size_t nominal) {
  const double scaled =
      static_cast<double>(nominal) * std::min(1.0, util::bench_scale() * 4.0);
  return std::max<std::size_t>(static_cast<std::size_t>(scaled), 2);
}

/// The deterministic-size manifest every adversary experiment in this repo
/// uses (bench_common and the fig benches pin size_variation = 0).
abr::VideoManifest job_manifest() {
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  return abr::VideoManifest{mp};
}

/// `domain = abr | cc` selects which target registry and adversary stack a
/// train/record/replay job runs on.
core::TargetDomain domain_param(const JobContext& ctx) {
  try {
    return core::parse_domain(ctx.job->value_or("domain", "abr"));
  } catch (const std::exception& e) {
    job_fail(ctx, e.what());
  }
}

/// Registry args for target factories: the job's own params, with
/// `checkpoint_from = <job id>` resolved to that dependency's
/// _pensieve.ckpt (so a robustified policy is targetable by name).
core::FactoryArgs target_args(const JobContext& ctx) {
  core::FactoryArgs args;
  args.bind(
      [job = ctx.job](const std::string& key) { return job->find(key); });
  if (const std::string* from = ctx.job->find("checkpoint_from")) {
    args.set("checkpoint", ctx.input_ending_with(*from, "_pensieve.ckpt"));
  }
  return args;
}

/// Resolve `protocol =` against the domain's registry exactly once, up
/// front: a bad name (or a missing pensieve checkpoint) fails the job here,
/// before any artifact is written, and the returned factory is handed to
/// every batch API that needs fresh targets.
core::ProtocolFactory abr_target_factory(const JobContext& ctx) {
  try {
    return core::abr_protocols().factory(ctx.job->value_or("protocol", ""),
                                         target_args(ctx));
  } catch (const std::exception& e) {
    job_fail(ctx, e.what());
  }
}

core::SenderFactory cc_target_factory(const JobContext& ctx) {
  try {
    return core::cc_senders().factory(ctx.job->value_or("protocol", ""),
                                      target_args(ctx));
  } catch (const std::exception& e) {
    job_fail(ctx, e.what());
  }
}

/// CC episode shape: `duration = <seconds>` shortens Figure 5's 30-s
/// episodes (1000 epochs) — campaigns and tests use it to bound work.
core::CcAdversaryEnv::Params cc_env_params(const JobContext& ctx) {
  core::CcAdversaryEnv::Params params;
  params.episode_duration_s =
      double_param(ctx, "duration", params.episode_duration_s);
  if (params.episode_duration_s <= 0.0) {
    job_fail(ctx, "duration must be a positive number of episode seconds");
  }
  return params;
}

/// Shared setup for the fairness-family adversary kinds (fairness,
/// cross-traffic, late-join): flow mix from `flows =` (default bbr,bbr)
/// resolved through the cc_senders registry, reward variant from
/// `reward = jain | victim`, episode length from `duration =`.
struct FairnessSetup {
  core::FairnessAdversaryEnv::Params params;
  std::vector<core::FairnessAdversaryEnv::SenderFactory> factories;
  std::string mix_names;
};

FairnessSetup fairness_setup(const JobContext& ctx,
                             core::FairnessAdversaryEnv::Scenario scenario) {
  if (domain_param(ctx) != core::TargetDomain::kCc) {
    job_fail(ctx, "fairness adversaries need domain = cc");
  }
  FairnessSetup setup;
  setup.params.scenario = scenario;
  setup.mix_names = ctx.job->value_or("flows", "bbr,bbr");
  try {
    setup.factories = core::resolve_flow_mix(setup.mix_names);
    setup.params.reward =
        core::parse_fairness_reward(ctx.job->value_or("reward", "jain"));
  } catch (const std::exception& e) {
    job_fail(ctx, e.what());
  }
  setup.params.episode_duration_s =
      double_param(ctx, "duration", setup.params.episode_duration_s);
  if (setup.params.episode_duration_s <= 0.0) {
    job_fail(ctx, "duration must be a positive number of episode seconds");
  }
  // Short test/smoke episodes must still see every flow start: shrink the
  // stagger (and the late-join window) with the episode so the reward gate
  // opens while there are epochs left to pay for.
  setup.params.stagger_s = std::min(
      setup.params.stagger_s,
      setup.params.episode_duration_s /
          (4.0 * static_cast<double>(setup.factories.size())));
  setup.params.late_join_max_s =
      std::min(setup.params.late_join_max_s,
               setup.params.episode_duration_s / 3.0);
  setup.params.late_join_min_s =
      std::min(setup.params.late_join_min_s, setup.params.late_join_max_s);
  return setup;
}

/// Per-episode fairness summary: per-flow mean throughput plus the two
/// unfairness metrics, one row per recorded episode.
void write_fairness_summary(
    const std::vector<core::FairnessEpisodeRecord>& episodes,
    std::size_t flow_count, const std::string& path, double* mean_jain,
    double* mean_victim) {
  util::CsvWriter writer{path};
  std::vector<std::string> header{"episode"};
  for (std::size_t f = 0; f < flow_count; ++f) {
    header.push_back("flow" + std::to_string(f) + "_mbps");
  }
  header.emplace_back("jain");
  header.emplace_back("victim_utilization");
  header.emplace_back("aggregate_utilization");
  writer.write_row(header);
  double jain_total = 0.0;
  double victim_total = 0.0;
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const core::FairnessEpisodeRecord& e = episodes[i];
    std::vector<double> row{static_cast<double>(i)};
    for (std::size_t f = 0; f < flow_count; ++f) {
      row.push_back(f < e.flow_throughput_mbps.size()
                        ? util::mean(e.flow_throughput_mbps[f])
                        : 0.0);
    }
    row.push_back(e.mean_jain);
    row.push_back(e.mean_victim_utilization);
    row.push_back(e.mean_aggregate_utilization);
    writer.write_row(row);
    jain_total += e.mean_jain;
    victim_total += e.mean_victim_utilization;
  }
  const double n =
      episodes.empty() ? 1.0 : static_cast<double>(episodes.size());
  *mean_jain = jain_total / n;
  *mean_victim = victim_total / n;
}

/// Per-trace regret summary shared by both ABR record-traces paths.
void write_summary(const abr::VideoManifest& manifest,
                   const core::ProtocolFactory& make_target,
                   const std::vector<trace::Trace>& traces,
                   const std::string& path, double* mean_regret) {
  util::CsvWriter writer{path};
  writer.write_row(
      std::vector<std::string>{"trace", "optimal_qoe", "protocol_qoe",
                               "regret"});
  double total = 0.0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto target = make_target();
    const double optimal = abr::optimal_playback(manifest, traces[i]).total_qoe;
    const double got =
        abr::run_playback(*target, manifest, traces[i]).total_qoe;
    writer.write_row(std::vector<double>{static_cast<double>(i), optimal, got,
                                         optimal - got});
    total += optimal - got;
  }
  *mean_regret =
      traces.empty() ? 0.0 : total / static_cast<double>(traces.size());
}

/// Per-episode utilization summary, the CC analog of the regret summary
/// (the adversary's success metric is how far below 1.0 it pins this).
void write_cc_summary(const std::vector<core::CcEpisodeRecord>& episodes,
                      const std::string& path, double* mean_utilization) {
  util::CsvWriter writer{path};
  writer.write_row(std::vector<std::string>{"trace", "mean_utilization"});
  double total = 0.0;
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    writer.write_row(std::vector<double>{static_cast<double>(i),
                                         episodes[i].mean_utilization});
    total += episodes[i].mean_utilization;
  }
  *mean_utilization =
      episodes.empty() ? 0.0 : total / static_cast<double>(episodes.size());
}

JobResult run_gen_traces(const JobContext& ctx) {
  std::unique_ptr<trace::TraceGenerator> generator;
  try {
    generator = core::trace_generators().make(ctx.job->value_or("generator", ""));
  } catch (const std::exception& e) {
    job_fail(ctx, e.what());
  }
  const std::size_t count = scaled_count(size_param(ctx, "count", 100));
  util::Rng rng{ctx.seed};
  const std::vector<trace::Trace> traces = generator->generate_many(count, rng);
  JobResult result;
  result.artifacts.push_back(ctx.artifact("_traces.csv"));
  trace::save_trace_set(traces, result.artifacts.back());
  result.note = std::to_string(count) + " " + generator->name() + " traces";
  return result;
}

JobResult run_train_adversary(const JobContext& ctx) {
  const std::string adversary = ctx.job->value_or("adversary", "ppo");
  if (const auto scenario = core::fairness_scenario_for(adversary)) {
    const FairnessSetup setup = fairness_setup(ctx, *scenario);
    const std::size_t steps =
        util::scaled_steps(size_param(ctx, "steps", 80000), 256);
    core::FairnessAdversaryEnv env{setup.params, setup.factories};
    rl::PpoAgent agent = core::train_adversary(
        env, core::cc_adversary_ppo_config(), steps, ctx.seed, nullptr,
        ctx.pool);
    JobResult result;
    result.artifacts.push_back(ctx.artifact("_adversary.ckpt"));
    rl::save_checkpoint(agent, result.artifacts.back());
    result.note = "PPO " + adversary + " adversary vs " + setup.mix_names +
                  ", " + std::to_string(steps) + " steps";
    return result;
  }
  if (adversary != "ppo") {
    job_fail(ctx, "train-adversary supports adversary = ppo or a fairness "
                  "kind (fairness | cross-traffic | late-join); CEM is "
                  "trace-based — use record-traces with adversary = cem");
  }
  const core::TargetDomain domain = domain_param(ctx);
  const std::size_t steps =
      util::scaled_steps(size_param(ctx, "steps", 80000), 256);

  std::string target_name;
  rl::PpoAgent agent = [&]() -> rl::PpoAgent {
    if (domain == core::TargetDomain::kCc) {
      const core::SenderFactory make_sender = cc_target_factory(ctx);
      target_name = make_sender()->name();
      core::CcAdversaryEnv env{cc_env_params(ctx), make_sender};
      return core::train_adversary(env, core::adversary_ppo_config(domain),
                                   steps, ctx.seed, nullptr, ctx.pool);
    }
    const auto protocol = abr_target_factory(ctx)();
    target_name = protocol->name();
    const abr::VideoManifest manifest = job_manifest();
    core::AbrAdversaryEnv env{manifest, *protocol};
    return core::train_adversary(env, core::adversary_ppo_config(domain),
                                 steps, ctx.seed, nullptr, ctx.pool);
  }();

  JobResult result;
  result.artifacts.push_back(ctx.artifact("_adversary.ckpt"));
  rl::save_checkpoint(agent, result.artifacts.back());
  result.note = "PPO adversary vs " + target_name + ", " +
                std::to_string(steps) + " steps";
  return result;
}

/// The `from = <train-adversary job>` checkpoint both record paths load.
std::string adversary_checkpoint(const JobContext& ctx) {
  const std::string* from = ctx.job->find("from");
  if (from == nullptr) {
    job_fail(ctx, "record-traces with adversary = ppo needs from = "
                  "<train-adversary job>");
  }
  return ctx.input_ending_with(*from, "_adversary.ckpt");
}

JobResult run_record_traces(const JobContext& ctx) {
  const core::TargetDomain domain = domain_param(ctx);
  const std::string adversary = ctx.job->value_or("adversary", "ppo");
  if (!core::adversary_kinds().contains(adversary)) {
    job_fail(ctx, "unknown adversary '" + adversary + "' (" +
                      core::adversary_kinds().names() + ")");
  }
  const std::size_t count = scaled_count(size_param(ctx, "count", 20));

  if (const auto scenario = core::fairness_scenario_for(adversary)) {
    const FairnessSetup setup = fairness_setup(ctx, *scenario);
    const std::string checkpoint = adversary_checkpoint(ctx);
    core::FairnessAdversaryEnv env{setup.params, setup.factories};
    rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                       core::cc_adversary_ppo_config(), /*seed=*/0};
    rl::load_checkpoint(agent, checkpoint);
    const std::vector<core::FairnessEpisodeRecord> episodes =
        core::record_fairness_episodes(agent, setup.params, setup.factories,
                                       count, ctx.seed,
                                       /*deterministic=*/false, ctx.pool);
    std::vector<trace::Trace> traces;
    traces.reserve(episodes.size());
    for (const core::FairnessEpisodeRecord& episode : episodes) {
      traces.push_back(episode.trace);
    }
    JobResult result;
    result.artifacts.push_back(ctx.artifact("_traces.csv"));
    trace::save_trace_set(traces, result.artifacts.back());
    result.artifacts.push_back(ctx.artifact("_summary.csv"));
    double mean_jain = 1.0;
    double mean_victim = 0.0;
    write_fairness_summary(episodes, setup.factories.size(),
                           result.artifacts.back(), &mean_jain, &mean_victim);
    char note[160];
    std::snprintf(note, sizeof note,
                  "%zu %s episodes vs %s, mean Jain %.3f, victim util %.1f%%",
                  episodes.size(), adversary.c_str(),
                  setup.mix_names.c_str(), mean_jain, 100.0 * mean_victim);
    result.note = note;
    return result;
  }

  if (domain == core::TargetDomain::kCc) {
    if (adversary != "ppo") {
      job_fail(ctx, "record-traces with domain = cc supports adversary = ppo "
                    "only — CEM searches chunk-bandwidth traces, an ABR "
                    "formulation");
    }
    const std::string checkpoint = adversary_checkpoint(ctx);
    const core::SenderFactory make_sender = cc_target_factory(ctx);
    const core::CcAdversaryEnv::Params params = cc_env_params(ctx);
    core::CcAdversaryEnv env{params, make_sender};
    rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                       core::adversary_ppo_config(domain), /*seed=*/0};
    rl::load_checkpoint(agent, checkpoint);
    const std::vector<core::CcEpisodeRecord> episodes =
        core::record_cc_episodes(agent, params, make_sender, count, ctx.seed,
                                 /*deterministic=*/false, ctx.pool);
    std::vector<trace::Trace> traces;
    traces.reserve(episodes.size());
    for (const core::CcEpisodeRecord& episode : episodes) {
      traces.push_back(episode.trace);
    }
    JobResult result;
    result.artifacts.push_back(ctx.artifact("_traces.csv"));
    trace::save_trace_set(traces, result.artifacts.back());
    result.artifacts.push_back(ctx.artifact("_summary.csv"));
    double mean_utilization = 0.0;
    write_cc_summary(episodes, result.artifacts.back(), &mean_utilization);
    char note[128];
    std::snprintf(note, sizeof note,
                  "%zu cc episodes, mean utilization %.1f%%", episodes.size(),
                  100.0 * mean_utilization);
    result.note = note;
    return result;
  }

  const abr::VideoManifest manifest = job_manifest();
  const core::ProtocolFactory make_target = abr_target_factory(ctx);
  std::vector<trace::Trace> traces;

  if (adversary == "cem") {
    core::CemTraceAdversary::Params params;
    params.population = size_param(ctx, "population", params.population);
    const std::size_t nominal_iterations =
        size_param(ctx, "iterations", params.iterations);
    params.iterations = std::max<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(nominal_iterations) *
                                 std::min(1.0, util::bench_scale())),
        2);
    const core::CemTraceAdversary cem{params};
    // One independent CEM search per trace, stream-forked before dispatch:
    // the corpus is bit-identical at any thread count.
    std::vector<util::Rng> streams = util::Rng{ctx.seed}.fork_streams(count);
    traces.resize(count);
    const auto search_one = [&](std::size_t i) {
      auto target = make_target();
      traces[i] = cem.search(manifest, *target, streams[i]).best_trace;
    };
    if (ctx.pool != nullptr) {
      ctx.pool->parallel_for(count, search_one);
    } else {
      for (std::size_t i = 0; i < count; ++i) search_one(i);
    }
  } else {
    const std::string checkpoint = adversary_checkpoint(ctx);
    const auto topology_protocol = make_target();
    core::AbrAdversaryEnv env{manifest, *topology_protocol};
    rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                       core::adversary_ppo_config(domain), /*seed=*/0};
    rl::load_checkpoint(agent, checkpoint);
    traces = core::record_abr_traces(agent, manifest, make_target,
                                     core::AbrAdversaryEnv::Params{}, count,
                                     ctx.seed, /*deterministic=*/false,
                                     ctx.pool);
  }

  JobResult result;
  result.artifacts.push_back(ctx.artifact("_traces.csv"));
  trace::save_trace_set(traces, result.artifacts.back());
  double mean_regret = 0.0;
  result.artifacts.push_back(ctx.artifact("_summary.csv"));
  write_summary(manifest, make_target, traces, result.artifacts.back(),
                &mean_regret);
  char note[128];
  std::snprintf(note, sizeof note, "%zu traces, mean regret %.2f QoE",
                traces.size(), mean_regret);
  result.note = note;
  return result;
}

JobResult run_replay(const JobContext& ctx) {
  const core::TargetDomain domain = domain_param(ctx);
  const std::string* set_job = ctx.job->find("traces");
  std::string set_path;
  if (set_job != nullptr) {
    set_path = ctx.input_ending_with(*set_job, "_traces.csv");
  } else if (const std::string* file = ctx.job->find("trace_file")) {
    set_path = *file;
  } else {
    job_fail(ctx, "replay needs traces = <trace-set job> or trace_file = ...");
  }
  const std::vector<trace::Trace> traces = trace::load_trace_set(set_path);

  // `flows = a,b,...` switches the CC replay to the shared-bottleneck
  // multi-flow path: the whole mix replays each trace together.
  if (domain == core::TargetDomain::kCc && ctx.job->find("flows") != nullptr) {
    std::vector<core::SenderFactory> mix;
    try {
      mix = core::resolve_flow_mix(*ctx.job->find("flows"));
    } catch (const std::exception& e) {
      job_fail(ctx, e.what());
    }
    const double stagger_s = double_param(ctx, "stagger", 0.5);
    const std::vector<core::FairnessReplayResult> replays =
        core::replay_fairness_traces(mix, traces, {}, stagger_s, ctx.seed,
                                     ctx.pool);
    JobResult result;
    result.artifacts.push_back(ctx.artifact("_replay.csv"));
    util::CsvWriter writer{result.artifacts.back()};
    std::vector<std::string> header{"trace"};
    for (std::size_t f = 0; f < mix.size(); ++f) {
      header.push_back("flow" + std::to_string(f) + "_mbps");
    }
    header.emplace_back("jain");
    header.emplace_back("victim_utilization");
    header.emplace_back("aggregate_utilization");
    writer.write_row(header);
    double jain_total = 0.0;
    for (std::size_t i = 0; i < replays.size(); ++i) {
      std::vector<double> row{static_cast<double>(i)};
      for (double v : replays[i].mean_flow_throughput_mbps) row.push_back(v);
      row.push_back(replays[i].mean_jain);
      row.push_back(replays[i].mean_victim_utilization);
      row.push_back(replays[i].mean_aggregate_utilization);
      writer.write_row(row);
      jain_total += replays[i].mean_jain;
    }
    char note[128];
    std::snprintf(
        note, sizeof note, "%zu multi-flow replays, mean Jain %.3f",
        replays.size(),
        replays.empty() ? 1.0
                        : jain_total / static_cast<double>(replays.size()));
    result.note = note;
    return result;
  }

  if (domain == core::TargetDomain::kCc) {
    const core::SenderFactory make_sender = cc_target_factory(ctx);
    const std::vector<core::CcReplayResult> replays =
        core::replay_cc_traces(make_sender, traces, {}, ctx.seed, ctx.pool);
    JobResult result;
    result.artifacts.push_back(ctx.artifact("_replay.csv"));
    util::CsvWriter writer{result.artifacts.back()};
    writer.write_row(
        std::vector<std::string>{"trace", "utilization", "throughput_mbps"});
    double total = 0.0;
    for (std::size_t i = 0; i < replays.size(); ++i) {
      writer.write_row(std::vector<double>{static_cast<double>(i),
                                           replays[i].mean_utilization,
                                           replays[i].mean_throughput_mbps});
      total += replays[i].mean_utilization;
    }
    char note[128];
    std::snprintf(
        note, sizeof note, "%zu cc replays, mean utilization %.1f%%",
        replays.size(),
        replays.empty() ? 0.0
                        : 100.0 * total / static_cast<double>(replays.size()));
    result.note = note;
    return result;
  }

  const abr::VideoManifest manifest = job_manifest();
  const std::vector<double> qoe = abr::qoe_per_trace(
      abr_target_factory(ctx), manifest, traces, {}, ctx.pool);
  JobResult result;
  result.artifacts.push_back(ctx.artifact("_qoe.csv"));
  util::CsvWriter writer{result.artifacts.back()};
  writer.write_row(std::vector<std::string>{"trace", "qoe"});
  for (std::size_t i = 0; i < qoe.size(); ++i) {
    writer.write_row(std::vector<double>{static_cast<double>(i), qoe[i]});
  }
  char note[128];
  std::snprintf(note, sizeof note, "%zu replays, mean QoE %.2f", qoe.size(),
                qoe.empty() ? 0.0 : util::mean(qoe));
  result.note = note;
  return result;
}

JobResult run_serve(const JobContext& ctx) {
  const std::string* set_job = ctx.job->find("traces");
  std::string set_path;
  if (set_job != nullptr) {
    set_path = ctx.input_ending_with(*set_job, "_traces.csv");
  } else if (const std::string* file = ctx.job->find("trace_file")) {
    set_path = *file;
  } else {
    job_fail(ctx, "serve needs traces = <trace-set job> or trace_file = ...");
  }
  std::vector<trace::Trace> traces = trace::load_trace_set(set_path);

  const std::string qoe_name = ctx.job->value_or("qoe", "lin");
  std::unique_ptr<abr::QoeModel> qoe;
  try {
    qoe = core::qoe_models().make(qoe_name, target_args(ctx));
  } catch (const std::exception& e) {
    job_fail(ctx, e.what());
  }

  const std::size_t sessions = scaled_count(size_param(ctx, "sessions", 100));
  const std::string protocol = ctx.job->value_or("protocol", "");
  serve::SessionEngine engine{job_manifest(), std::move(traces)};
  serve::ServeStats stats;
  std::vector<serve::SessionSummary> summaries;
  if (protocol == "pensieve" && ctx.job->value_or("batch", "on") != "off") {
    // Batched inference: one act_deterministic_batch per tick. Decisions are
    // bit-identical to the per-session path, so `batch = off` changes only
    // throughput, never the artifact.
    const core::FactoryArgs args = target_args(ctx);
    const std::string* checkpoint = args.find("checkpoint");
    if (checkpoint == nullptr) {
      job_fail(ctx, "protocol 'pensieve' needs checkpoint = <path> or "
                    "checkpoint_from = <robustify-round job>");
    }
    rl::PpoAgent agent = abr::make_pensieve_agent(engine.manifest(),
                                                  /*seed=*/0);
    rl::load_checkpoint(agent, *checkpoint);
    serve::PensieveBatchPolicy policy{agent};
    summaries = engine.run(policy, *qoe, sessions, ctx.pool, &stats);
  } else {
    summaries = engine.run(abr_target_factory(ctx), *qoe, sessions, ctx.pool,
                           &stats);
  }

  double qoe_total = 0.0;
  for (const serve::SessionSummary& s : summaries) qoe_total += s.qoe;
  JobResult result;
  result.artifacts.push_back(ctx.artifact("_sessions.csv"));
  serve::save_session_summaries(summaries, result.artifacts.back());
  char note[160];
  std::snprintf(note, sizeof note,
                "%zu sessions x %zu traces, mean %s QoE %.2f (%.0f "
                "decisions/s)",
                summaries.size(), engine.traces().size(), qoe->name().c_str(),
                qoe_total / static_cast<double>(summaries.size()),
                stats.decisions_per_s());
  result.note = note;
  return result;
}

/// `key = <generator>` resolved against the registry, with the param name in
/// the failure so grid/round specs pinpoint the bad line.
std::unique_ptr<trace::TraceGenerator> generator_param(
    const JobContext& ctx, const std::string& key, const std::string& kind) {
  try {
    return core::trace_generators().make(kind);
  } catch (const std::exception& e) {
    job_fail(ctx, key + ": " + e.what());
  }
}

JobResult run_robustify_round(const JobContext& ctx) {
  const abr::VideoManifest manifest = job_manifest();

  // Training corpus: a gen-traces dependency, plus the adversarial trace
  // sets of any previous rounds (the iterated Section-2.3 loop).
  std::vector<trace::Trace> corpus;
  if (const std::string* corpus_from = ctx.job->find("corpus_from")) {
    corpus = trace::load_trace_set(
        ctx.input_ending_with(*corpus_from, "_traces.csv"));
  } else if (const std::string* train_set = ctx.job->find("train_set")) {
    const auto generator = generator_param(ctx, "train_set", *train_set);
    util::Rng rng{ctx.seed ^ 0x9e3779b97f4a7c15ULL};
    corpus = generator->generate_many(
        scaled_count(size_param(ctx, "corpus_count", 100)), rng);
  } else {
    job_fail(ctx, "robustify-round needs corpus_from = <gen-traces job> or "
                  "train_set = " + core::trace_generators().names());
  }
  for (const auto& prev : util::split_list(ctx.job->value_or("traces_from", ""))) {
    const std::vector<trace::Trace> extra =
        trace::load_trace_set(ctx.input_ending_with(prev, "_traces.csv"));
    corpus.insert(corpus.end(), extra.begin(), extra.end());
  }

  abr::PensieveEnv env{manifest, std::move(corpus)};
  rl::PpoAgent pensieve = abr::make_pensieve_agent(manifest, ctx.seed);
  if (const std::string* init = ctx.job->find("init")) {
    rl::load_checkpoint(pensieve,
                        ctx.input_ending_with(*init, "_pensieve.ckpt"));
  }

  core::RobustifyConfig cfg;
  cfg.protocol_steps =
      util::scaled_steps(size_param(ctx, "protocol_steps", 150000), 1024);
  cfg.inject_fraction = double_param(ctx, "inject_fraction", 0.9);
  if (cfg.inject_fraction <= 0.0 || cfg.inject_fraction >= 1.0) {
    job_fail(ctx, "inject_fraction must lie in (0, 1) — a round without an "
                  "adversary phase is plain training");
  }
  cfg.adversary_steps =
      util::scaled_steps(size_param(ctx, "adversary_steps", 80000), 512);
  cfg.adversarial_traces = scaled_count(size_param(ctx, "traces", 100));
  cfg.seed = ctx.seed;
  cfg.pool = ctx.pool;
  const core::RobustifyResult round = core::robustify_pensieve(pensieve, env, cfg);

  // Held-out evaluation with a *pinned* seed so rounds stay comparable.
  const std::string eval_kind = ctx.job->value_or("eval_set", "fcc");
  const auto eval_generator = generator_param(ctx, "eval_set", eval_kind);
  util::Rng eval_rng{size_param(ctx, "eval_seed", 20190707)};
  const std::vector<trace::Trace> eval_traces = eval_generator->generate_many(
      scaled_count(size_param(ctx, "eval_count", 50)), eval_rng);
  const std::vector<double> qoe = abr::qoe_per_trace(
      [&pensieve]() -> std::unique_ptr<abr::AbrProtocol> {
        return std::make_unique<abr::OwnedPensievePolicy>(pensieve);
      },
      manifest, eval_traces, {}, ctx.pool);
  const double mean_qoe = util::mean(qoe);
  const double p5_qoe = util::percentile(qoe, 5);

  JobResult result;
  result.artifacts.push_back(ctx.artifact("_pensieve.ckpt"));
  rl::save_checkpoint(pensieve, result.artifacts.back());
  result.artifacts.push_back(ctx.artifact("_traces.csv"));
  trace::save_trace_set(round.adversarial_traces, result.artifacts.back());
  result.artifacts.push_back(ctx.artifact("_metrics.csv"));
  {
    util::CsvWriter writer{result.artifacts.back()};
    writer.write_row(std::vector<std::string>{
        "mean_qoe", "p5_qoe", "eval_traces", "corpus_traces",
        "adversarial_traces"});
    writer.write_row(std::vector<double>{
        mean_qoe, p5_qoe, static_cast<double>(eval_traces.size()),
        static_cast<double>(env.traces().size()),
        static_cast<double>(round.adversarial_traces.size())});
  }
  char note[160];
  std::snprintf(note, sizeof note,
                "eval mean QoE %.2f, p5 %.2f (%zu adversarial traces added)",
                mean_qoe, p5_qoe, round.adversarial_traces.size());
  result.note = note;
  return result;
}

}  // namespace

JobRegistry builtin_jobs() {
  JobRegistry registry;
  registry.add("gen-traces",
               "synthesize a trace corpus (generator =, count =)",
               run_gen_traces);
  registry.add("train-adversary",
               "train a PPO adversary against a protocol/sender or a flow "
               "mix (domain =, protocol =/flows =, steps =)",
               run_train_adversary);
  registry.add("record-traces",
               "roll a trained adversary out (or CEM-search) into a "
               "replayable corpus (from =, count =)",
               run_record_traces);
  registry.add("replay",
               "replay a recorded trace set against a protocol/sender "
               "(traces =)",
               run_replay);
  registry.add("serve",
               "multiplex N concurrent sessions through serve::SessionEngine "
               "(protocol =, qoe =, sessions =, traces =)",
               run_serve);
  registry.add("robustify-round",
               "one Section-2.3 adversarial-training round of Pensieve",
               run_robustify_round);
  return registry;
}

}  // namespace netadv::exp
