#include "exp/jobs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "abr/bb.hpp"
#include "abr/bola.hpp"
#include "abr/mpc.hpp"
#include "abr/optimal.hpp"
#include "abr/pensieve.hpp"
#include "abr/runner.hpp"
#include "abr/throughput_rule.hpp"
#include "core/abr_adversary.hpp"
#include "core/cem_adversary.hpp"
#include "core/recorder.hpp"
#include "core/trainer.hpp"
#include "rl/checkpoint.hpp"
#include "trace/trace.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/spec.hpp"
#include "util/stats.hpp"

namespace netadv::exp {

namespace {

[[noreturn]] void job_fail(const JobContext& ctx, const std::string& what) {
  throw std::runtime_error{"job '" + ctx.job->id + "' (" + ctx.job->kind +
                           "): " + what};
}

std::size_t size_param(const JobContext& ctx, const std::string& key,
                       std::size_t fallback) {
  const std::string* value = ctx.job->find(key);
  if (value == nullptr) return fallback;
  try {
    return static_cast<std::size_t>(std::stoull(*value));
  } catch (const std::exception&) {
    job_fail(ctx, key + " is not an integer: '" + *value + "'");
  }
}

double double_param(const JobContext& ctx, const std::string& key,
                    double fallback) {
  const std::string* value = ctx.job->find(key);
  if (value == nullptr) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    job_fail(ctx, key + " is not a number: '" + *value + "'");
  }
}

/// Corpus sizes scale down with NETADV_SCALE like bench_common's trace
/// counts (full size from scale 0.25 up, floor of 2 below).
std::size_t scaled_count(std::size_t nominal) {
  const double scaled =
      static_cast<double>(nominal) * std::min(1.0, util::bench_scale() * 4.0);
  return std::max<std::size_t>(static_cast<std::size_t>(scaled), 2);
}

/// The deterministic-size manifest every adversary experiment in this repo
/// uses (bench_common and the fig benches pin size_variation = 0).
abr::VideoManifest job_manifest() {
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  return abr::VideoManifest{mp};
}

std::unique_ptr<abr::AbrProtocol> protocol_param(const JobContext& ctx) {
  const std::string kind = ctx.job->value_or("protocol", "");
  auto protocol = make_abr_protocol(kind);
  if (protocol == nullptr) {
    job_fail(ctx, "unknown protocol '" + kind +
                      "' (bb | bola | mpc | throughput)");
  }
  return protocol;
}

/// Per-trace regret summary shared by both record-traces paths.
void write_summary(const JobContext& ctx, const abr::VideoManifest& manifest,
                   const std::vector<trace::Trace>& traces,
                   const std::string& path, double* mean_regret) {
  util::CsvWriter writer{path};
  writer.write_row(
      std::vector<std::string>{"trace", "optimal_qoe", "protocol_qoe",
                               "regret"});
  double total = 0.0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto target = protocol_param(ctx);
    const double optimal = abr::optimal_playback(manifest, traces[i]).total_qoe;
    const double got =
        abr::run_playback(*target, manifest, traces[i]).total_qoe;
    writer.write_row(std::vector<double>{static_cast<double>(i), optimal, got,
                                         optimal - got});
    total += optimal - got;
  }
  *mean_regret =
      traces.empty() ? 0.0 : total / static_cast<double>(traces.size());
}

JobResult run_gen_traces(const JobContext& ctx) {
  const std::string kind = ctx.job->value_or("generator", "");
  const auto generator = make_trace_generator(kind);
  if (generator == nullptr) {
    job_fail(ctx, "unknown generator '" + kind + "' (fcc | 3g | random)");
  }
  const std::size_t count = scaled_count(size_param(ctx, "count", 100));
  util::Rng rng{ctx.seed};
  const std::vector<trace::Trace> traces = generator->generate_many(count, rng);
  JobResult result;
  result.artifacts.push_back(ctx.artifact("_traces.csv"));
  trace::save_trace_set(traces, result.artifacts.back());
  result.note = std::to_string(count) + " " + generator->name() + " traces";
  return result;
}

JobResult run_train_adversary(const JobContext& ctx) {
  const std::string adversary = ctx.job->value_or("adversary", "ppo");
  if (adversary != "ppo") {
    job_fail(ctx, "train-adversary supports adversary = ppo only; CEM is "
                  "trace-based — use record-traces with adversary = cem");
  }
  auto protocol = protocol_param(ctx);
  const std::size_t steps =
      util::scaled_steps(size_param(ctx, "steps", 80000), 256);
  const abr::VideoManifest manifest = job_manifest();
  core::AbrAdversaryEnv env{manifest, *protocol};
  rl::PpoAgent agent =
      core::train_abr_adversary(env, steps, ctx.seed, nullptr, ctx.pool);
  JobResult result;
  result.artifacts.push_back(ctx.artifact("_adversary.ckpt"));
  rl::save_checkpoint(agent, result.artifacts.back());
  result.note = "PPO adversary vs " + protocol->name() + ", " +
                std::to_string(steps) + " steps";
  return result;
}

JobResult run_record_traces(const JobContext& ctx) {
  const abr::VideoManifest manifest = job_manifest();
  const std::size_t count = scaled_count(size_param(ctx, "count", 20));
  const std::string adversary = ctx.job->value_or("adversary", "ppo");
  std::vector<trace::Trace> traces;

  if (adversary == "cem") {
    core::CemTraceAdversary::Params params;
    params.population = size_param(ctx, "population", params.population);
    const std::size_t nominal_iterations =
        size_param(ctx, "iterations", params.iterations);
    params.iterations = std::max<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(nominal_iterations) *
                                 std::min(1.0, util::bench_scale())),
        2);
    const core::CemTraceAdversary cem{params};
    // One independent CEM search per trace, stream-forked before dispatch:
    // the corpus is bit-identical at any thread count.
    std::vector<util::Rng> streams = util::Rng{ctx.seed}.fork_streams(count);
    traces.resize(count);
    const auto search_one = [&](std::size_t i) {
      auto target = protocol_param(ctx);
      traces[i] = cem.search(manifest, *target, streams[i]).best_trace;
    };
    if (ctx.pool != nullptr) {
      ctx.pool->parallel_for(count, search_one);
    } else {
      for (std::size_t i = 0; i < count; ++i) search_one(i);
    }
  } else if (adversary == "ppo") {
    const std::string* from = ctx.job->find("from");
    if (from == nullptr) {
      job_fail(ctx, "record-traces with adversary = ppo needs from = "
                    "<train-adversary job>");
    }
    const std::string checkpoint =
        ctx.input_ending_with(*from, "_adversary.ckpt");
    auto topology_protocol = protocol_param(ctx);
    core::AbrAdversaryEnv env{manifest, *topology_protocol};
    rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                       core::abr_adversary_ppo_config(), /*seed=*/0};
    rl::load_checkpoint(agent, checkpoint);
    traces = core::record_abr_traces(
        agent, manifest,
        [&ctx]() { return protocol_param(ctx); }, core::AbrAdversaryEnv::Params{},
        count, ctx.seed, /*deterministic=*/false, ctx.pool);
  } else {
    job_fail(ctx, "unknown adversary '" + adversary + "' (ppo | cem)");
  }

  JobResult result;
  result.artifacts.push_back(ctx.artifact("_traces.csv"));
  trace::save_trace_set(traces, result.artifacts.back());
  double mean_regret = 0.0;
  result.artifacts.push_back(ctx.artifact("_summary.csv"));
  write_summary(ctx, manifest, traces, result.artifacts.back(), &mean_regret);
  char note[128];
  std::snprintf(note, sizeof note, "%zu traces, mean regret %.2f QoE",
                traces.size(), mean_regret);
  result.note = note;
  return result;
}

JobResult run_replay(const JobContext& ctx) {
  const std::string* set_job = ctx.job->find("traces");
  std::string set_path;
  if (set_job != nullptr) {
    set_path = ctx.input_ending_with(*set_job, "_traces.csv");
  } else if (const std::string* file = ctx.job->find("trace_file")) {
    set_path = *file;
  } else {
    job_fail(ctx, "replay needs traces = <trace-set job> or trace_file = ...");
  }
  const std::vector<trace::Trace> traces = trace::load_trace_set(set_path);
  const abr::VideoManifest manifest = job_manifest();
  const std::vector<double> qoe = abr::qoe_per_trace(
      [&ctx]() { return protocol_param(ctx); }, manifest, traces, {}, ctx.pool);
  JobResult result;
  result.artifacts.push_back(ctx.artifact("_qoe.csv"));
  util::CsvWriter writer{result.artifacts.back()};
  writer.write_row(std::vector<std::string>{"trace", "qoe"});
  for (std::size_t i = 0; i < qoe.size(); ++i) {
    writer.write_row(std::vector<double>{static_cast<double>(i), qoe[i]});
  }
  char note[128];
  std::snprintf(note, sizeof note, "%zu replays, mean QoE %.2f", qoe.size(),
                qoe.empty() ? 0.0 : util::mean(qoe));
  result.note = note;
  return result;
}

JobResult run_robustify_round(const JobContext& ctx) {
  const abr::VideoManifest manifest = job_manifest();

  // Training corpus: a gen-traces dependency, plus the adversarial trace
  // sets of any previous rounds (the iterated Section-2.3 loop).
  std::vector<trace::Trace> corpus;
  if (const std::string* corpus_from = ctx.job->find("corpus_from")) {
    corpus = trace::load_trace_set(
        ctx.input_ending_with(*corpus_from, "_traces.csv"));
  } else if (const std::string* train_set = ctx.job->find("train_set")) {
    const auto generator = make_trace_generator(*train_set);
    if (generator == nullptr) {
      job_fail(ctx, "unknown train_set '" + *train_set + "'");
    }
    util::Rng rng{ctx.seed ^ 0x9e3779b97f4a7c15ULL};
    corpus = generator->generate_many(
        scaled_count(size_param(ctx, "corpus_count", 100)), rng);
  } else {
    job_fail(ctx, "robustify-round needs corpus_from = <gen-traces job> or "
                  "train_set = fcc|3g|random");
  }
  for (const auto& prev : util::split_list(ctx.job->value_or("traces_from", ""))) {
    const std::vector<trace::Trace> extra =
        trace::load_trace_set(ctx.input_ending_with(prev, "_traces.csv"));
    corpus.insert(corpus.end(), extra.begin(), extra.end());
  }

  abr::PensieveEnv env{manifest, std::move(corpus)};
  rl::PpoAgent pensieve = abr::make_pensieve_agent(manifest, ctx.seed);
  if (const std::string* init = ctx.job->find("init")) {
    rl::load_checkpoint(pensieve,
                        ctx.input_ending_with(*init, "_pensieve.ckpt"));
  }

  core::RobustifyConfig cfg;
  cfg.protocol_steps =
      util::scaled_steps(size_param(ctx, "protocol_steps", 150000), 1024);
  cfg.inject_fraction = double_param(ctx, "inject_fraction", 0.9);
  if (cfg.inject_fraction <= 0.0 || cfg.inject_fraction >= 1.0) {
    job_fail(ctx, "inject_fraction must lie in (0, 1) — a round without an "
                  "adversary phase is plain training");
  }
  cfg.adversary_steps =
      util::scaled_steps(size_param(ctx, "adversary_steps", 80000), 512);
  cfg.adversarial_traces = scaled_count(size_param(ctx, "traces", 100));
  cfg.seed = ctx.seed;
  cfg.pool = ctx.pool;
  const core::RobustifyResult round = core::robustify_pensieve(pensieve, env, cfg);

  // Held-out evaluation with a *pinned* seed so rounds stay comparable.
  const std::string eval_kind = ctx.job->value_or("eval_set", "fcc");
  const auto eval_generator = make_trace_generator(eval_kind);
  if (eval_generator == nullptr) {
    job_fail(ctx, "unknown eval_set '" + eval_kind + "'");
  }
  util::Rng eval_rng{size_param(ctx, "eval_seed", 20190707)};
  const std::vector<trace::Trace> eval_traces = eval_generator->generate_many(
      scaled_count(size_param(ctx, "eval_count", 50)), eval_rng);
  const std::vector<double> qoe = abr::qoe_per_trace(
      [&pensieve]() -> std::unique_ptr<abr::AbrProtocol> {
        return std::make_unique<abr::OwnedPensievePolicy>(pensieve);
      },
      manifest, eval_traces, {}, ctx.pool);
  const double mean_qoe = util::mean(qoe);
  const double p5_qoe = util::percentile(qoe, 5);

  JobResult result;
  result.artifacts.push_back(ctx.artifact("_pensieve.ckpt"));
  rl::save_checkpoint(pensieve, result.artifacts.back());
  result.artifacts.push_back(ctx.artifact("_traces.csv"));
  trace::save_trace_set(round.adversarial_traces, result.artifacts.back());
  result.artifacts.push_back(ctx.artifact("_metrics.csv"));
  {
    util::CsvWriter writer{result.artifacts.back()};
    writer.write_row(std::vector<std::string>{
        "mean_qoe", "p5_qoe", "eval_traces", "corpus_traces",
        "adversarial_traces"});
    writer.write_row(std::vector<double>{
        mean_qoe, p5_qoe, static_cast<double>(eval_traces.size()),
        static_cast<double>(env.traces().size()),
        static_cast<double>(round.adversarial_traces.size())});
  }
  char note[160];
  std::snprintf(note, sizeof note,
                "eval mean QoE %.2f, p5 %.2f (%zu adversarial traces added)",
                mean_qoe, p5_qoe, round.adversarial_traces.size());
  result.note = note;
  return result;
}

}  // namespace

JobRegistry builtin_jobs() {
  JobRegistry registry;
  registry.add("gen-traces", run_gen_traces);
  registry.add("train-adversary", run_train_adversary);
  registry.add("record-traces", run_record_traces);
  registry.add("replay", run_replay);
  registry.add("robustify-round", run_robustify_round);
  return registry;
}

std::unique_ptr<abr::AbrProtocol> make_abr_protocol(const std::string& kind) {
  if (kind == "bb") return std::make_unique<abr::BufferBased>();
  if (kind == "bola") return std::make_unique<abr::Bola>();
  if (kind == "mpc") return std::make_unique<abr::RobustMpc>();
  if (kind == "throughput") return std::make_unique<abr::ThroughputRule>();
  return nullptr;
}

std::unique_ptr<trace::TraceGenerator> make_trace_generator(
    const std::string& kind) {
  if (kind == "fcc") return std::make_unique<trace::FccLikeGenerator>();
  if (kind == "3g") return std::make_unique<trace::Hsdpa3gLikeGenerator>();
  if (kind == "random")
    return std::make_unique<trace::UniformRandomGenerator>();
  return nullptr;
}

}  // namespace netadv::exp
