// Spool-based multi-process campaign execution: any number of worker
// processes (`netadv_cli campaign <spec> --worker`) cooperate on one
// campaign DAG through two shared files per out_dir — the append-mode
// manifest (manifest.hpp) and a claims directory under
// `<out_dir>/spool/claims/`.
//
// The protocol has no coordinator and no shared memory; every decision is
// derived from the filesystem:
//
//  1. A worker reads the manifest and derives each job's state in
//     topological order (derive_spool_view): a job is *settled* when the
//     manifest holds a completed/failed entry whose params_hash and
//     inputs_hash match the current campaign (and, for completed entries,
//     whose artifacts still exist); it is *ready* when every dependency is
//     settled-ok; it *waits* while a dependency is unsettled; it is
//     *blocked* when a dependency settled-failed. Dependents therefore
//     only become claimable after all their inputs' provenance hashes have
//     settled — the inputs_hash is computed from the dependencies' actual
//     artifact bytes, so a dependency re-run with changed outputs
//     invalidates its dependents on every worker identically.
//
//  2. To execute a ready job the worker creates
//     `spool/claims/<job>.claim` with O_CREAT|O_EXCL
//     (util::create_file_exclusive): the kernel guarantees exactly one
//     creator, so duplicate claims are impossible by construction. After
//     claiming, the worker re-reads the manifest (another worker may have
//     settled the job between the read and the claim) before executing.
//
//  3. While a job runs, a heartbeat thread refreshes the claim file's
//     mtime (atomic write-tmp-then-rename, util::replace_file) every
//     lease/4 seconds. A claim whose mtime is older than the lease is
//     presumed dead — its owner was killed (kill -9 stops the heartbeat).
//     A worker breaks a stale claim by *renaming* it to a unique sibling
//     (util::steal_file): rename is atomic, so when several workers race
//     to break the same claim exactly one wins and the rest see ENOENT.
//
//  4. Execution itself goes through the same JobRunner path as
//     single-process run_campaign, appending to the manifest in kAppend
//     mode (one write(2) per line, torn-tail tolerant). Worker-count
//     identity is therefore a corollary of thread-count identity: seeds
//     are resolved per job from the campaign declaration, executors are
//     pure functions of (params, seed, input artifacts), so *which
//     process* runs a job cannot change its bytes.
//
// Idempotence: a spurious double execution (a live worker's claim is
// stolen because its heartbeat stalled past the lease) is harmless — both
// executions write identical artifact bytes and the duplicate manifest
// line is benign (reuse checks take the first match). The one liveness
// caveat: a *hung but alive* worker holds its claim forever, because the
// heartbeat thread keeps refreshing it; kill the process to expire the
// lease.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/manifest.hpp"
#include "exp/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace netadv::exp {

/// `<out_dir>/spool` — claim files live in `<spool>/claims/`.
std::string spool_dir(const std::string& out_dir);

/// `<out_dir>/spool/claims/<job>.claim` — existence means "being worked".
std::string claim_path(const std::string& out_dir, const std::string& job);

/// A job's state as derived from the manifest alone (no claims involved —
/// claims only arbitrate who acts, never what is true).
enum class JobState {
  kWaiting,        ///< some dependency not yet settled
  kReady,          ///< all dependencies settled-ok; claimable
  kBlocked,        ///< a dependency settled-failed; blocked line not yet written
  kSettledOk,      ///< reusable completed/skipped-cached entry exists
  kSettledFailed,  ///< failed entry with matching hashes — terminal this run
  kSettledBlocked, ///< blocked line with matching params_hash already recorded
};

/// Everything a worker derives from one manifest read, per job in
/// declaration order. Exposed for tests: the derivation is pure.
struct SpoolView {
  std::vector<JobState> states;
  std::vector<std::string> params_hash;  ///< always computed
  std::vector<std::string> inputs_hash;  ///< only when deps settled-ok
  /// Dependency artifacts (in `after` order) for ready jobs, straight from
  /// the dependencies' settled manifest entries.
  std::vector<JobRunner::Inputs> inputs;
  /// True when no job is waiting, ready, or blocked-without-line — i.e.
  /// every worker can exit.
  bool all_settled = false;
  std::size_t settled_ok = 0;
  std::size_t settled_failed = 0;
  std::size_t settled_blocked = 0;
};

/// Derive per-job states from a manifest snapshot. Pure function of
/// (campaign, entries, filesystem artifact presence); every worker
/// computes the same view from the same snapshot.
SpoolView derive_spool_view(const Campaign& campaign,
                            const std::vector<ManifestEntry>& entries);

struct SpoolOptions {
  /// Worker name recorded in claim files and logs; default "w<pid>".
  std::string worker;
  /// Claim lease in seconds: a claim untouched for longer is presumed
  /// dead and may be stolen. The heartbeat refreshes at lease/4.
  double lease_s = 30.0;
  /// Idle poll interval while waiting for other workers' jobs to settle.
  int poll_ms = 200;
  /// Pool handed to executors for nested parallelism (null = sequential).
  util::ThreadPool* pool = nullptr;
};

struct WorkerReport {
  std::string worker;
  std::string manifest;
  std::size_t executed = 0;   ///< jobs this worker ran to completion
  std::size_t failed = 0;     ///< jobs this worker ran that failed
  std::size_t blocked = 0;    ///< blocked lines this worker recorded
  std::size_t reclaimed = 0;  ///< stale claims this worker broke
  /// Final whole-campaign tallies (all workers' work combined).
  std::size_t settled_ok = 0;
  std::size_t settled_failed = 0;
  std::size_t settled_blocked = 0;

  /// Whole-campaign success: every job settled ok.
  bool ok() const noexcept {
    return settled_failed == 0 && settled_blocked == 0;
  }
};

/// Run one worker until every job in the campaign is settled (by this
/// worker or any other). Safe to run any number of workers concurrently
/// on the same out_dir, to kill any of them at any time, and to restart
/// them later: state lives entirely in the manifest + claims directory.
/// Throws std::runtime_error for campaign-level problems (unknown kind,
/// unwritable out_dir); job failures surface in the report.
WorkerReport run_worker(const Campaign& campaign, const JobRegistry& registry,
                        const SpoolOptions& options = {});

}  // namespace netadv::exp
