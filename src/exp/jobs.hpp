// Built-in campaign job kinds — the paper's recipe steps as executors.
//
// Target names resolve through the core:: registries (core/registry.hpp),
// so the lists below never go stale: unknown names fail with the live
// registry enumerated, and `netadv_cli list` prints what is available.
// The train/record/replay kinds are domain-neutral — `domain = abr`
// (default) attacks an ABR protocol, `domain = cc` attacks a congestion
// controller over the Table-1 link:
//
//   gen-traces       generator=<trace_generators()>  count=N
//                    -> <id>_traces.csv
//   train-adversary  domain=abr protocol=<abr_protocols()>  steps=N
//                    -> <id>_adversary.ckpt  (PPO, Section 3 topology)
//                    domain=cc  protocol=<cc_senders()>  steps=N
//                    [duration=<episode seconds>]
//                    -> <id>_adversary.ckpt  (PPO, Section 4 topology)
//   record-traces    domain=abr protocol=... count=N  and either
//                    from=<train job> (roll out its checkpoint) or
//                    adversary=cem (population=, iterations= — trace-based
//                    search; searching *is* recording)
//                    -> <id>_traces.csv, <id>_summary.csv (per-trace regret)
//                    domain=cc  protocol=... count=N from=<train job>
//                    [duration=...]
//                    -> <id>_traces.csv (30-ms link schedules),
//                       <id>_summary.csv (per-episode utilization)
//   replay           domain=abr protocol=...  traces=<trace-set job>
//                    -> <id>_qoe.csv (QoE per trace)
//                    domain=cc  protocol=...  traces=<trace-set job>
//                    -> <id>_replay.csv (utilization + throughput per trace)
//   serve            protocol=<abr_protocols()>  qoe=<qoe_models()>
//                    sessions=N  traces=<trace-set job> (or trace_file=)
//                    [batch=off to force per-session pensieve forwards]
//                    -> <id>_sessions.csv (per-session summaries via
//                       serve::SessionEngine; deterministic — throughput
//                       numbers only appear in the job note)
//   robustify-round  one Section-2.3 round: continue Pensieve from
//                    init=<prev round> (or fresh), train an adversary
//                    against it, record traces, retrain on the augmented
//                    corpus (corpus_from=<gen job> plus traces_from=<prev
//                    rounds>); protocol_steps=, inject_fraction=,
//                    adversary_steps=, traces=, eval_set=, eval_count=
//                    -> <id>_pensieve.ckpt, <id>_traces.csv, <id>_metrics.csv
//
// The `pensieve` protocol entry additionally takes `checkpoint = <path>` or
// `checkpoint_from = <job id>` (resolved to that job's _pensieve.ckpt), so
// robustified policies can themselves be attacked/replayed by name.
//
// Step budgets and corpus sizes honor NETADV_SCALE exactly like the bench
// binaries (util::scaled_steps), so `NETADV_SCALE=0.01` smoke-runs a whole
// campaign.
//
// The idempotence contract (what every executor here upholds, and what any
// registered kind must uphold): an executor is a pure function of
// (params, resolved seed, input artifacts). No wall-clock timestamps, no
// ambient randomness, no hidden global state — seeds come pre-forked from
// the campaign declaration (resolve_job_seeds), and every random draw
// flows from them. Because of that, *re-executing a job is always safe*:
// it rewrites the same artifact bytes. That one property is what the
// whole provenance stack leans on — campaign artifacts are bit-identical
// at any thread count and at any spool worker count, --resume can trust
// params_hash + inputs_hash instead of timestamps, and a spool worker
// whose claim was spuriously stolen (spool.hpp) can harmlessly race a
// peer re-running the same job.
#pragma once

#include "exp/scheduler.hpp"

namespace netadv::exp {

/// Registry with every built-in kind above (the CLI's default).
JobRegistry builtin_jobs();

}  // namespace netadv::exp
