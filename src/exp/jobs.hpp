// Built-in campaign job kinds — the paper's recipe steps as executors:
//
//   gen-traces       generator=fcc|3g|random  count=N
//                    -> <id>_traces.csv
//   train-adversary  protocol=bb|bola|mpc|throughput  steps=N
//                    -> <id>_adversary.ckpt  (PPO, Section 3 topology)
//   record-traces    protocol=... count=N  and either from=<train job>
//                    (roll out its checkpoint) or adversary=cem
//                    (population=, iterations= — trace-based search;
//                    searching *is* recording)
//                    -> <id>_traces.csv, <id>_summary.csv (per-trace regret)
//   replay           protocol=...  traces=<trace-set job>
//                    -> <id>_qoe.csv (QoE per trace)
//   robustify-round  one Section-2.3 round: continue Pensieve from
//                    init=<prev round> (or fresh), train an adversary
//                    against it, record traces, retrain on the augmented
//                    corpus (corpus_from=<gen job> plus traces_from=<prev
//                    rounds>); protocol_steps=, inject_fraction=,
//                    adversary_steps=, traces=, eval_set=, eval_count=
//                    -> <id>_pensieve.ckpt, <id>_traces.csv, <id>_metrics.csv
//
// Step budgets and corpus sizes honor NETADV_SCALE exactly like the bench
// binaries (util::scaled_steps), so `NETADV_SCALE=0.01` smoke-runs a whole
// campaign. Every executor is a pure function of (params, resolved seed,
// input artifacts): campaign artifacts are bit-identical at any thread
// count, and the manifest's provenance hashes stay meaningful.
#pragma once

#include <memory>
#include <string>

#include "abr/protocol.hpp"
#include "exp/scheduler.hpp"
#include "trace/generators.hpp"

namespace netadv::exp {

/// Registry with every built-in kind above (the CLI's default).
JobRegistry builtin_jobs();

/// Shared name -> object factories (also used by netadv_cli).
std::unique_ptr<abr::AbrProtocol> make_abr_protocol(const std::string& kind);
std::unique_ptr<trace::TraceGenerator> make_trace_generator(
    const std::string& kind);

}  // namespace netadv::exp
