#include "exp/scheduler.hpp"

#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "util/config.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace netadv::exp {

namespace {

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec;
}

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::string JobContext::artifact(const std::string& suffix) const {
  return out_dir + "/" + job->id + suffix;
}

const std::vector<std::string>& JobContext::artifacts_of(
    const std::string& id) const {
  for (const auto& [dep, artifacts] : inputs) {
    if (dep == id) return artifacts;
  }
  throw std::runtime_error{"job '" + job->id + "': '" + id +
                           "' is not one of its dependencies"};
}

std::string JobContext::input_ending_with(const std::string& id,
                                          const std::string& suffix) const {
  const std::vector<std::string>& artifacts = artifacts_of(id);
  const std::string* found = nullptr;
  for (const auto& path : artifacts) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      if (found != nullptr) {
        throw std::runtime_error{"job '" + job->id + "': dependency '" + id +
                                 "' has multiple artifacts ending with " +
                                 suffix};
      }
      found = &path;
    }
  }
  if (found == nullptr) {
    throw std::runtime_error{"job '" + job->id + "': dependency '" + id +
                             "' has no artifact ending with " + suffix};
  }
  return *found;
}

void JobRegistry::add(const std::string& kind, JobExecutor executor) {
  add(kind, "", std::move(executor));
}

void JobRegistry::add(const std::string& kind, std::string description,
                      JobExecutor executor) {
  executors_[kind] = {std::move(description), std::move(executor)};
}

const JobExecutor* JobRegistry::find(const std::string& kind) const noexcept {
  const auto it = executors_.find(kind);
  return it == executors_.end() ? nullptr : &it->second.executor;
}

std::vector<std::pair<std::string, std::string>> JobRegistry::kinds() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(executors_.size());
  for (const auto& [kind, entry] : executors_) {
    out.emplace_back(kind, entry.description);
  }
  return out;
}

std::string JobRegistry::names(const std::string& separator) const {
  std::string joined;
  for (const auto& [kind, entry] : executors_) {
    if (!joined.empty()) joined += separator;
    joined += kind;
  }
  return joined;
}

const JobOutcome& CampaignReport::outcome_of(const std::string& id) const {
  for (const auto& outcome : outcomes) {
    if (outcome.id == id) return outcome;
  }
  throw std::runtime_error{"campaign report has no job '" + id + "'"};
}

void validate_job_kinds(const Campaign& campaign,
                        const JobRegistry& registry) {
  for (const auto& job : campaign.jobs) {
    if (registry.find(job.kind) == nullptr) {
      throw std::runtime_error{"campaign '" + campaign.name +
                               "': no executor registered for kind '" +
                               job.kind + "' (job '" + job.id + "'; have " +
                               registry.names() + ")"};
    }
  }
}

std::string job_params_hex(const Campaign& campaign, const JobSpec& job,
                           std::uint64_t resolved_seed) {
  return util::hash_hex(job_params_hash(campaign, job, resolved_seed));
}

std::string inputs_hash_hex(const std::vector<std::string>& files) {
  return util::hash_hex(hash_input_artifacts(files));
}

const ManifestEntry* find_reusable_entry(
    const std::vector<ManifestEntry>& prior, const std::string& campaign,
    const std::string& job, const std::string& params_hash,
    const std::string& inputs_hash) {
  for (const auto& cached : prior) {
    if (cached.campaign != campaign || cached.job != job) continue;
    if (cached.status != "completed" && cached.status != "skipped-cached") {
      continue;
    }
    if (cached.params_hash != params_hash ||
        cached.inputs_hash != inputs_hash) {
      continue;
    }
    bool artifacts_present = true;
    for (const auto& path : cached.artifacts) {
      if (!file_exists(path)) {
        artifacts_present = false;
        break;
      }
    }
    if (artifacts_present) return &cached;
  }
  return nullptr;
}

JobRunner::JobRunner(const Campaign& campaign, const JobRegistry& registry,
                     ManifestWriter& manifest, util::ThreadPool* pool)
    : campaign_(campaign),
      registry_(registry),
      manifest_(manifest),
      pool_(pool),
      seeds_(resolve_job_seeds(campaign)),
      threads_(pool != nullptr ? pool->thread_count() : 1) {}

ManifestEntry JobRunner::base_entry(std::size_t j) const {
  ManifestEntry entry;
  entry.campaign = campaign_.name;
  entry.job = campaign_.jobs[j].id;
  entry.kind = campaign_.jobs[j].kind;
  entry.threads = threads_;
  entry.scale = util::bench_scale();
  return entry;
}

JobOutcome JobRunner::block(std::size_t j) {
  const JobSpec& job = campaign_.jobs[j];
  JobOutcome outcome;
  outcome.id = job.id;
  outcome.status = "blocked";
  ManifestEntry entry = base_entry(j);
  entry.status = outcome.status;
  // Blocked entries carry the params hash (inputs are undefined — a dep
  // failed) so spool workers can record "blocked under this config"
  // exactly once and recognise it on re-derivation.
  entry.params_hash = job_params_hex(campaign_, job, seeds_[j]);
  manifest_.append(entry);
  util::log_warn("campaign %s: %s blocked by a failed dependency",
                 campaign_.name.c_str(), job.id.c_str());
  return outcome;
}

JobOutcome JobRunner::run(std::size_t j, const Inputs& inputs,
                          const std::vector<ManifestEntry>& prior) {
  const JobSpec& job = campaign_.jobs[j];
  JobOutcome outcome;
  outcome.id = job.id;

  JobContext ctx;
  ctx.campaign = &campaign_;
  ctx.job = &job;
  ctx.out_dir = campaign_.out_dir;
  ctx.seed = seeds_[j];
  ctx.pool = pool_;
  ctx.inputs = inputs;

  ManifestEntry entry = base_entry(j);
  entry.params_hash = job_params_hex(campaign_, job, ctx.seed);
  std::vector<std::string> input_files;
  for (const auto& [dep, artifacts] : ctx.inputs) {
    input_files.insert(input_files.end(), artifacts.begin(), artifacts.end());
  }
  entry.inputs_hash = inputs_hash_hex(input_files);

  // Resume: a completed prior entry with identical provenance and
  // still-present artifacts is reused, not re-run.
  if (const ManifestEntry* cached =
          find_reusable_entry(prior, campaign_.name, job.id,
                              entry.params_hash, entry.inputs_hash)) {
    outcome.status = "skipped-cached";
    outcome.result.artifacts = cached->artifacts;
    entry.status = outcome.status;
    entry.artifacts = cached->artifacts;
    manifest_.append(entry);
    util::log_info("campaign %s: %s skipped (cached, params %s)",
                   campaign_.name.c_str(), job.id.c_str(),
                   entry.params_hash.c_str());
    return outcome;
  }

  const JobExecutor* executor = registry_.find(job.kind);
  if (executor == nullptr) {
    throw std::runtime_error{"campaign '" + campaign_.name +
                             "': no executor registered for kind '" +
                             job.kind + "' (run validate_job_kinds first)"};
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    outcome.result = (*executor)(ctx);
    outcome.status = "completed";
  } catch (const std::exception& e) {
    outcome.status = "failed";
    outcome.error = e.what();
  }
  outcome.seconds = seconds_since(start);
  entry.status = outcome.status;
  entry.seconds = outcome.seconds;
  entry.artifacts = outcome.result.artifacts;
  manifest_.append(entry);
  if (outcome.status == "failed") {
    util::log_error("campaign %s: %s FAILED after %.1fs: %s",
                    campaign_.name.c_str(), job.id.c_str(), outcome.seconds,
                    outcome.error.c_str());
  } else {
    util::log_info("campaign %s: %s completed in %.1fs%s%s",
                   campaign_.name.c_str(), job.id.c_str(), outcome.seconds,
                   outcome.result.note.empty() ? "" : " — ",
                   outcome.result.note.c_str());
  }
  return outcome;
}

CampaignReport run_campaign(const Campaign& campaign,
                            const JobRegistry& registry,
                            const SchedulerOptions& options) {
  const std::vector<std::vector<std::size_t>> waves =
      topological_waves(campaign);
  validate_job_kinds(campaign, registry);

  std::error_code ec;
  std::filesystem::create_directories(campaign.out_dir, ec);
  if (ec) {
    throw std::runtime_error{"campaign '" + campaign.name +
                             "': cannot create out_dir '" + campaign.out_dir +
                             "': " + ec.message()};
  }

  const std::vector<ManifestEntry> prior =
      options.resume ? read_manifest(manifest_path(campaign.out_dir))
                     : std::vector<ManifestEntry>{};
  ManifestWriter manifest{manifest_path(campaign.out_dir)};
  JobRunner runner{campaign, registry, manifest, options.pool};

  CampaignReport report;
  report.manifest = manifest.path();
  report.outcomes.resize(campaign.jobs.size());

  const auto run_job = [&](std::size_t j) {
    const JobSpec& job = campaign.jobs[j];
    // Dependencies settled in earlier waves; any unsatisfied one blocks us.
    JobRunner::Inputs inputs;
    bool deps_ok = true;
    for (const auto& dep : job.after) {
      const JobOutcome& dep_outcome =
          report.outcomes[campaign.job_index(dep)];
      if (!dep_outcome.satisfied()) {
        deps_ok = false;
        break;
      }
      inputs.emplace_back(dep, dep_outcome.result.artifacts);
    }
    report.outcomes[j] =
        deps_ok ? runner.run(j, inputs, prior) : runner.block(j);
  };

  for (const auto& wave : waves) {
    if (options.pool != nullptr && wave.size() > 1) {
      options.pool->parallel_for(
          wave.size(), [&](std::size_t i) { run_job(wave[i]); });
    } else {
      for (const std::size_t j : wave) run_job(j);
    }
  }

  for (const auto& outcome : report.outcomes) {
    if (outcome.status == "completed") ++report.completed;
    else if (outcome.status == "skipped-cached") ++report.skipped;
    else if (outcome.status == "failed") ++report.failed;
    else ++report.blocked;
  }
  util::log_info(
      "campaign %s: %zu completed, %zu cached, %zu failed, %zu blocked "
      "(manifest: %s)",
      campaign.name.c_str(), report.completed, report.skipped, report.failed,
      report.blocked, report.manifest.c_str());
  return report;
}

std::string format_plan(const Campaign& campaign, bool resume) {
  const std::vector<std::vector<std::size_t>> waves =
      topological_waves(campaign);
  const std::vector<std::uint64_t> seeds = resolve_job_seeds(campaign);
  const std::vector<ManifestEntry> prior =
      resume ? read_manifest(manifest_path(campaign.out_dir))
             : std::vector<ManifestEntry>{};

  std::ostringstream out;
  out << "campaign " << campaign.name << " (seed " << campaign.seed << ", "
      << campaign.jobs.size() << " jobs, " << waves.size()
      << " waves, out_dir " << campaign.out_dir << ")\n";
  for (std::size_t w = 0; w < waves.size(); ++w) {
    out << "wave " << w + 1 << ":\n";
    for (const std::size_t j : waves[w]) {
      const JobSpec& job = campaign.jobs[j];
      out << "  " << job.id << "  [" << job.kind << ", seed " << seeds[j];
      if (!job.after.empty()) {
        out << ", after";
        for (const auto& dep : job.after) out << " " << dep;
      }
      if (resume) {
        const std::string params_hash =
            util::hash_hex(job_params_hash(campaign, job, seeds[j]));
        bool cached = false;
        for (const auto& entry : prior) {
          if (entry.campaign != campaign.name || entry.job != job.id) continue;
          if (entry.status != "completed" && entry.status != "skipped-cached") {
            continue;
          }
          if (entry.params_hash != params_hash) continue;
          cached = true;
          for (const auto& path : entry.artifacts) {
            if (!file_exists(path)) {
              cached = false;
              break;
            }
          }
          if (cached) break;
        }
        out << (cached ? ", cached if inputs match" : ", will run");
      }
      out << "]\n";
    }
  }
  return out.str();
}

}  // namespace netadv::exp
