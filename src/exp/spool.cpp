#include "exp/spool.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/fsatomic.hpp"
#include "util/log.hpp"

namespace netadv::exp {

namespace {

/// Unique sibling name for breaking a stale claim: rename is atomic, so of
/// N workers racing to break the same claim exactly one rename succeeds.
std::string steal_target(const std::string& claim) {
  static std::atomic<unsigned> seq{0};
  return claim + ".stale." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

/// Refreshes a claim file's mtime every lease/4 seconds until destroyed,
/// so a *live* worker's claim never looks stale no matter how long its
/// job runs. kill -9 stops the refresh and the claim ages out.
class ClaimHeartbeat {
 public:
  ClaimHeartbeat(std::string path, std::string content, double lease_s)
      : path_(std::move(path)),
        content_(std::move(content)),
        interval_(std::chrono::milliseconds(
            std::max(1, static_cast<int>(lease_s * 250.0)))) {
    thread_ = std::thread([this] { loop(); });
  }

  ~ClaimHeartbeat() {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock{mutex_};
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      lock.unlock();
      try {
        util::replace_file(path_, content_);
      } catch (const std::exception&) {
        // Transient refresh failure only risks a (harmless) steal.
      }
      lock.lock();
    }
  }

  std::string path_;
  std::string content_;
  std::chrono::milliseconds interval_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

std::vector<std::size_t> topo_order(const Campaign& campaign) {
  std::vector<std::size_t> order;
  order.reserve(campaign.jobs.size());
  for (const auto& wave : topological_waves(campaign)) {
    order.insert(order.end(), wave.begin(), wave.end());
  }
  return order;
}

}  // namespace

std::string spool_dir(const std::string& out_dir) {
  return out_dir + "/spool";
}

std::string claim_path(const std::string& out_dir, const std::string& job) {
  return spool_dir(out_dir) + "/claims/" + job + ".claim";
}

SpoolView derive_spool_view(const Campaign& campaign,
                            const std::vector<ManifestEntry>& entries) {
  const std::size_t n = campaign.jobs.size();
  const std::vector<std::uint64_t> seeds = resolve_job_seeds(campaign);

  SpoolView view;
  view.states.assign(n, JobState::kWaiting);
  view.params_hash.resize(n);
  view.inputs_hash.resize(n);
  view.inputs.resize(n);
  // Artifacts of settled-ok jobs, consumed by their dependents' inputs.
  std::vector<std::vector<std::string>> artifacts(n);

  for (const std::size_t j : topo_order(campaign)) {
    const JobSpec& job = campaign.jobs[j];
    view.params_hash[j] = job_params_hex(campaign, job, seeds[j]);

    // Dependency gate: settled-failed (or blocked) deps block us; any
    // other unsettled dep keeps us waiting.
    bool deps_ok = true;
    bool dep_failed = false;
    JobRunner::Inputs inputs;
    for (const auto& dep : job.after) {
      const std::size_t d = campaign.job_index(dep);
      const JobState ds = view.states[d];
      if (ds == JobState::kSettledFailed || ds == JobState::kBlocked ||
          ds == JobState::kSettledBlocked) {
        dep_failed = true;
        break;
      }
      if (ds != JobState::kSettledOk) {
        deps_ok = false;
        break;
      }
      inputs.emplace_back(dep, artifacts[d]);
    }
    if (dep_failed) {
      // Blocked is only *settled* once its manifest line exists (written
      // exactly once, under a claim).
      bool recorded = false;
      for (const auto& entry : entries) {
        if (entry.campaign == campaign.name && entry.job == job.id &&
            entry.status == "blocked" &&
            entry.params_hash == view.params_hash[j]) {
          recorded = true;
          break;
        }
      }
      view.states[j] =
          recorded ? JobState::kSettledBlocked : JobState::kBlocked;
      continue;
    }
    if (!deps_ok) continue;  // kWaiting

    // All deps settled-ok: the inputs hash is now well-defined (over the
    // dependencies' actual artifact bytes).
    std::vector<std::string> input_files;
    for (const auto& [dep, dep_artifacts] : inputs) {
      input_files.insert(input_files.end(), dep_artifacts.begin(),
                         dep_artifacts.end());
    }
    try {
      view.inputs_hash[j] = inputs_hash_hex(input_files);
    } catch (const std::exception&) {
      continue;  // an input vanished mid-derivation: stay waiting, re-derive
    }

    if (const ManifestEntry* cached =
            find_reusable_entry(entries, campaign.name, job.id,
                                view.params_hash[j], view.inputs_hash[j])) {
      view.states[j] = JobState::kSettledOk;
      artifacts[j] = cached->artifacts;
      continue;
    }
    // A failed entry with the *same* provenance is terminal for this run:
    // re-running the same pure function on the same inputs fails the same
    // way, and N workers must not take turns retrying it. Changing params
    // or inputs changes the hashes and re-enables the job.
    bool failed_match = false;
    for (const auto& entry : entries) {
      if (entry.campaign == campaign.name && entry.job == job.id &&
          entry.status == "failed" &&
          entry.params_hash == view.params_hash[j] &&
          entry.inputs_hash == view.inputs_hash[j]) {
        failed_match = true;
        break;
      }
    }
    if (failed_match) {
      view.states[j] = JobState::kSettledFailed;
      continue;
    }
    view.states[j] = JobState::kReady;
    view.inputs[j] = std::move(inputs);
  }

  view.all_settled = true;
  for (const JobState s : view.states) {
    switch (s) {
      case JobState::kSettledOk: ++view.settled_ok; break;
      case JobState::kSettledFailed: ++view.settled_failed; break;
      case JobState::kSettledBlocked: ++view.settled_blocked; break;
      default: view.all_settled = false; break;
    }
  }
  return view;
}

WorkerReport run_worker(const Campaign& campaign, const JobRegistry& registry,
                        const SpoolOptions& options) {
  validate_job_kinds(campaign, registry);

  std::error_code ec;
  std::filesystem::create_directories(spool_dir(campaign.out_dir) + "/claims",
                                      ec);
  if (ec) {
    throw std::runtime_error{"worker: cannot create spool dir under '" +
                             campaign.out_dir + "': " + ec.message()};
  }

  WorkerReport report;
  report.worker = options.worker;
  if (report.worker.empty()) {
    report.worker = "w";
    report.worker += std::to_string(::getpid());
  }
  const std::string claim_body =
      "worker=" + report.worker + " pid=" + std::to_string(::getpid()) + "\n";

  ManifestWriter manifest{manifest_path(campaign.out_dir),
                          ManifestWriter::Mode::kAppend};
  report.manifest = manifest.path();
  JobRunner runner{campaign, registry, manifest, options.pool};
  const std::vector<std::size_t> order = topo_order(campaign);

  for (;;) {
    const std::vector<ManifestEntry> entries = read_manifest(report.manifest);
    const SpoolView view = derive_spool_view(campaign, entries);
    if (view.all_settled) {
      report.settled_ok = view.settled_ok;
      report.settled_failed = view.settled_failed;
      report.settled_blocked = view.settled_blocked;
      util::log_info("worker %s: campaign %s settled (%zu ok, %zu failed, "
                     "%zu blocked); executed %zu here",
                     report.worker.c_str(), campaign.name.c_str(),
                     report.settled_ok, report.settled_failed,
                     report.settled_blocked, report.executed);
      return report;
    }

    bool progressed = false;
    for (const std::size_t j : order) {
      if (view.states[j] != JobState::kReady &&
          view.states[j] != JobState::kBlocked) {
        continue;
      }
      const std::string claim = claim_path(campaign.out_dir,
                                           campaign.jobs[j].id);

      // Claim: O_CREAT|O_EXCL admits exactly one creator. A claim older
      // than the lease has a dead owner; break it by renaming it away —
      // exactly one of the racing breakers wins the rename.
      bool claimed = util::create_file_exclusive(claim, claim_body);
      if (!claimed) {
        const auto age = util::file_age_seconds(claim);
        if (age && *age > options.lease_s) {
          const std::string stolen = steal_target(claim);
          if (util::steal_file(claim, stolen)) {
            ::unlink(stolen.c_str());
            ++report.reclaimed;
            util::log_warn("worker %s: broke stale claim on %s (age %.1fs)",
                           report.worker.c_str(),
                           campaign.jobs[j].id.c_str(), *age);
            claimed = util::create_file_exclusive(claim, claim_body);
          }
        }
      }
      if (!claimed) continue;

      // Re-derive under the claim: the job may have settled between our
      // manifest read and the claim.
      const SpoolView fresh =
          derive_spool_view(campaign, read_manifest(report.manifest));
      if (fresh.states[j] == JobState::kReady) {
        const ClaimHeartbeat heartbeat{claim, claim_body, options.lease_s};
        const JobOutcome outcome = runner.run(j, fresh.inputs[j], {});
        if (outcome.status == "failed") {
          ++report.failed;
        } else {
          ++report.executed;
        }
        progressed = true;
      } else if (fresh.states[j] == JobState::kBlocked) {
        runner.block(j);
        ++report.blocked;
        progressed = true;
      }
      // else: settled elsewhere while we claimed — nothing to record.
      ::unlink(claim.c_str());
    }

    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
    }
  }
}

}  // namespace netadv::exp
