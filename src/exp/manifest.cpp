#include "exp/manifest.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace netadv::exp {

namespace {

constexpr const char* kHeader =
    "campaign,job,kind,status,params_hash,inputs_hash,seconds,threads,scale,"
    "artifacts";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in{line};
  while (std::getline(in, cell, sep)) cells.push_back(cell);
  if (!line.empty() && line.back() == sep) cells.emplace_back();
  return cells;
}

}  // namespace

std::string manifest_path(const std::string& out_dir) {
  return out_dir + "/" + kManifestFilename;
}

std::vector<ManifestEntry> read_manifest(const std::string& path) {
  std::ifstream in{path};
  std::vector<ManifestEntry> entries;
  if (!in) return entries;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      continue;  // header
    }
    const std::vector<std::string> cells = split(line, ',');
    // A kill mid-append can tear the last line; anything that does not have
    // the full column set is ignored rather than trusted.
    if (cells.size() != 10) continue;
    ManifestEntry entry;
    entry.campaign = cells[0];
    entry.job = cells[1];
    entry.kind = cells[2];
    entry.status = cells[3];
    entry.params_hash = cells[4];
    entry.inputs_hash = cells[5];
    try {
      entry.seconds = std::stod(cells[6]);
      entry.threads = static_cast<std::size_t>(std::stoul(cells[7]));
      entry.scale = std::stod(cells[8]);
    } catch (const std::exception&) {
      continue;  // torn numeric cell
    }
    for (auto& artifact : split(cells[9], ';')) {
      if (!artifact.empty()) entry.artifacts.push_back(std::move(artifact));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

ManifestWriter::ManifestWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error{"ManifestWriter: cannot open " + path};
  }
  std::fprintf(file_, "%s\n", kHeader);
  std::fflush(file_);
}

ManifestWriter::~ManifestWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void ManifestWriter::append(const ManifestEntry& entry) {
  std::string artifacts;
  for (std::size_t i = 0; i < entry.artifacts.size(); ++i) {
    if (i > 0) artifacts += ';';
    artifacts += entry.artifacts[i];
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  std::fprintf(file_, "%s,%s,%s,%s,%s,%s,%.3f,%zu,%g,%s\n",
               entry.campaign.c_str(), entry.job.c_str(), entry.kind.c_str(),
               entry.status.c_str(), entry.params_hash.c_str(),
               entry.inputs_hash.c_str(), entry.seconds, entry.threads,
               entry.scale, artifacts.c_str());
  std::fflush(file_);
}

std::uint64_t hash_input_artifacts(const std::vector<std::string>& paths) {
  std::uint64_t state = util::kFnvOffsetBasis;
  for (const auto& path : paths) {
    state = util::fnv1a64_accumulate(state, path);
    state = util::fnv1a64_accumulate(state, "\n");
    // Fold the file digest in via its hex rendering so the combination stays
    // a plain byte-stream fold.
    state = util::fnv1a64_accumulate(state,
                                     util::hash_hex(util::fnv1a64_file(path)));
  }
  return state;
}

}  // namespace netadv::exp
