#include "exp/manifest.hpp"

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace netadv::exp {

namespace {

constexpr const char* kHeader =
    "campaign,job,kind,status,params_hash,inputs_hash,seconds,threads,scale,"
    "artifacts";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in{line};
  while (std::getline(in, cell, sep)) cells.push_back(cell);
  if (!line.empty() && line.back() == sep) cells.emplace_back();
  return cells;
}

}  // namespace

std::string manifest_path(const std::string& out_dir) {
  return out_dir + "/" + kManifestFilename;
}

std::vector<ManifestEntry> read_manifest(const std::string& path) {
  std::ifstream in{path};
  std::vector<ManifestEntry> entries;
  if (!in) return entries;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      continue;  // header
    }
    const std::vector<std::string> cells = split(line, ',');
    // A kill mid-append can tear the last line; anything that does not have
    // the full column set is ignored rather than trusted.
    if (cells.size() != 10) continue;
    ManifestEntry entry;
    entry.campaign = cells[0];
    entry.job = cells[1];
    entry.kind = cells[2];
    entry.status = cells[3];
    entry.params_hash = cells[4];
    entry.inputs_hash = cells[5];
    try {
      entry.seconds = std::stod(cells[6]);
      entry.threads = static_cast<std::size_t>(std::stoul(cells[7]));
      entry.scale = std::stod(cells[8]);
    } catch (const std::exception&) {
      continue;  // torn numeric cell
    }
    for (auto& artifact : split(cells[9], ';')) {
      if (!artifact.empty()) entry.artifacts.push_back(std::move(artifact));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

ManifestWriter::ManifestWriter(const std::string& path, Mode mode)
    : path_(path), append_(mode == Mode::kAppend) {
  file_ = std::fopen(path.c_str(), append_ ? "a" : "w");
  if (file_ == nullptr) {
    throw std::runtime_error{"ManifestWriter: cannot open " + path};
  }
  // In append mode only a writer that finds the file fresh (or empty)
  // emits the header. Two workers racing past an empty file could both
  // emit it; a stray header row fails read_manifest's numeric-cell parse
  // and is skipped, so duplication is noise, not corruption.
  bool write_header = true;
  if (append_) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    write_header = ec || size == 0;
  }
  if (write_header) {
    std::fprintf(file_, "%s\n", kHeader);
    std::fflush(file_);
  }
}

ManifestWriter::~ManifestWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void ManifestWriter::append(const ManifestEntry& entry) {
  std::string artifacts;
  for (std::size_t i = 0; i < entry.artifacts.size(); ++i) {
    if (i > 0) artifacts += ';';
    artifacts += entry.artifacts[i];
  }
  // Render the whole line first, then emit it as one write(2) on the
  // underlying O_APPEND descriptor: the kernel serializes the offset per
  // write, which is what lets multiple *processes* share one manifest
  // without interleaving partial lines (kAppend mode; kTruncate gets the
  // same single-write behaviour for free).
  char numeric[128];
  std::snprintf(numeric, sizeof numeric, "%.3f,%zu,%g", entry.seconds,
                entry.threads, entry.scale);
  // kAppend lines carry a *leading* newline as well: if a killed worker
  // left a torn tail, the next append terminates the fragment instead of
  // merging with it, so only the torn entry is lost — never the new one.
  // The resulting blank separator lines fail the 10-cell check on read.
  const std::string line = (append_ ? "\n" : "") + entry.campaign + "," +
                           entry.job + "," + entry.kind + "," + entry.status +
                           "," + entry.params_hash + "," + entry.inputs_hash +
                           "," + numeric + "," + artifacts + "\n";
  const std::lock_guard<std::mutex> lock{mutex_};
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fileno(file_), line.data() + off,
                              line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // manifest writes are best-effort once the job has settled
    }
    off += static_cast<std::size_t>(n);
  }
}

std::uint64_t hash_input_artifacts(const std::vector<std::string>& paths) {
  std::uint64_t state = util::kFnvOffsetBasis;
  for (const auto& path : paths) {
    state = util::fnv1a64_accumulate(state, path);
    state = util::fnv1a64_accumulate(state, "\n");
    // Fold the file digest in via its hex rendering so the combination stays
    // a plain byte-stream fold.
    state = util::fnv1a64_accumulate(state,
                                     util::hash_hex(util::fnv1a64_file(path)));
  }
  return state;
}

}  // namespace netadv::exp
