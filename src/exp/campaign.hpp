// Declarative experiment campaigns (netadv::exp).
//
// The paper's contribution is a *recipe* — train protocol, train adversary,
// generate adversarial traces, retrain — and a campaign file states such a
// recipe declaratively: named jobs with a `kind`, parameters, and `after:`
// dependency edges, in the util::spec key=value/section grammar:
//
//   [campaign]
//   name = grid-sweep
//   seed = 2026
//   # out_dir = somewhere        (default: <bench_output_dir>/<name>)
//
//   [job train-bb]
//   kind = train-adversary
//   protocol = bb
//   steps = 80000
//
//   [job rec-bb]
//   kind = record-traces
//   after = train-bb
//   from = train-bb
//   protocol = bb
//   count = 20
//
// A job with `kind = grid` is a sweep template: it expands at load time into
// one concrete job pipeline per point of
// {protocols} x {adversaries} x {seeds}   (train-adversary -> record-traces
//                                          per PPO point; record-traces per
//                                          CEM point), or
// {protocols} x {trace_sets}              (one replay job per point),
// and other jobs may name the grid id in `after` to depend on every
// expanded job. Campaign loading resolves dependencies, rejects cycles and
// unknown ids, and derives the per-job seeds (see resolve_job_seeds) — the
// scheduler (scheduler.hpp) then executes the DAG.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/spec.hpp"

namespace netadv::exp {

/// One declared job after grid expansion.
struct JobSpec {
  std::string id;
  std::string kind;
  std::vector<std::string> after;  ///< ids this job depends on
  /// All parameters in declaration order (excluding id/kind/after/seed).
  std::vector<std::pair<std::string, std::string>> params;
  /// Explicit `seed =` value, if the spec pinned one.
  std::optional<std::uint64_t> seed;

  const std::string* find(const std::string& key) const noexcept;
  std::string value_or(const std::string& key,
                       const std::string& fallback) const;
};

struct Campaign {
  std::string name;
  std::uint64_t seed = 1;
  /// Artifact directory; empty in the spec means
  /// <util::bench_output_dir()>/<name>, resolved at load time.
  std::string out_dir;
  std::vector<JobSpec> jobs;  ///< declaration order (grids pre-expanded)

  /// Index of `id` in jobs, or npos.
  std::size_t job_index(const std::string& id) const noexcept;
};

/// Build a Campaign from parsed spec sections: one [campaign] section plus
/// one [job <id>] section per job. Expands grids, validates ids/deps/cycles.
/// Throws std::runtime_error with the offending spec location on any error.
Campaign parse_campaign(const util::SpecFile& spec);

/// parse_spec_file + parse_campaign.
Campaign load_campaign(const std::string& path);

/// The per-job seeds, resolved deterministically on the caller before any
/// dispatch: stream i of Rng{campaign.seed}.fork_streams(jobs.size()) seeds
/// job i (declaration order), unless the job pinned `seed =` explicitly.
/// Same campaign -> same seeds at every thread count — and at every worker
/// count: a spool worker in another process re-derives the identical seed
/// vector from the spec alone, so no seed state needs to be shared or
/// persisted. Combined with executors that consume no wall-clock time and
/// no ambient entropy (jobs.hpp), this is why re-executing any job — after
/// a crash, a stolen lease, or on a different machine — rewrites the same
/// bytes.
std::vector<std::uint64_t> resolve_job_seeds(const Campaign& campaign);

/// Canonical fingerprint of a job's identity: kind, ordered params, resolved
/// seed, and the campaign name — the manifest's params_hash. Artifact hashes
/// of dependencies are tracked separately (inputs_hash) so an upstream
/// change invalidates downstream cache entries. Deliberately date-free:
/// because the hash covers everything an executor may read, two processes
/// that compute the same (params_hash, inputs_hash) pair are guaranteed the
/// same artifact bytes, so a manifest entry with matching hashes is safe to
/// reuse as a cache hit across --resume runs and across spool workers.
std::uint64_t job_params_hash(const Campaign& campaign, const JobSpec& job,
                              std::uint64_t resolved_seed);

/// Topologically order the DAG into waves: wave k holds every job whose
/// dependencies all sit in waves < k, in declaration order. Throws on
/// dependency cycles (load-time validation also catches them).
std::vector<std::vector<std::size_t>> topological_waves(
    const Campaign& campaign);

}  // namespace netadv::exp
