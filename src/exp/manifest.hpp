// The campaign manifest: one CSV line per job outcome, appended (and
// flushed) the moment the job settles, so a killed campaign still documents
// everything it finished. A re-run with --resume reads the previous
// manifest and skips any completed job whose params_hash and inputs_hash
// still match and whose artifacts still exist — the provenance check that
// makes campaigns resumable without trusting timestamps.
//
// Columns:
//   campaign, job, kind, status, params_hash, inputs_hash, seconds,
//   threads, scale, artifacts
// `status` is completed | skipped-cached | failed | blocked; `artifacts` is
// a ';'-joined path list; threads/scale record the NETADV_* knobs in effect.
// Line order is completion order (nondeterministic across thread counts);
// resume reads are order-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace netadv::exp {

struct ManifestEntry {
  std::string campaign;
  std::string job;
  std::string kind;
  std::string status;
  std::string params_hash;  ///< util::hash_hex of job_params_hash
  std::string inputs_hash;  ///< util::hash_hex over dependency artifacts
  double seconds = 0.0;
  std::size_t threads = 1;
  double scale = 1.0;
  std::vector<std::string> artifacts;
};

inline constexpr const char* kManifestFilename = "campaign_manifest.csv";

/// Path of the manifest inside a campaign's out_dir.
std::string manifest_path(const std::string& out_dir);

/// Parse a manifest written by ManifestWriter. Missing file -> empty vector;
/// a torn final line (the writer died mid-append) is skipped, not fatal.
std::vector<ManifestEntry> read_manifest(const std::string& path);

/// Thread-safe appending writer. In the default kTruncate mode it
/// creates/truncates the file and writes the header on construction; every
/// append is serialized and flushed so concurrent jobs interleave whole
/// lines only and a kill loses at most the line in flight.
///
/// kAppend mode is the multi-process variant used by spool workers
/// (spool.hpp): the file is opened O_APPEND (header written only if the
/// file is new or empty), and each entry is rendered into one buffer and
/// written with a single write(2), so any number of writer *processes*
/// interleave whole lines only — the same torn-line tolerance read_manifest
/// already provides covers the one line a kill -9 can still tear.
class ManifestWriter {
 public:
  enum class Mode { kTruncate, kAppend };

  explicit ManifestWriter(const std::string& path,
                          Mode mode = Mode::kTruncate);
  ~ManifestWriter();

  ManifestWriter(const ManifestWriter&) = delete;
  ManifestWriter& operator=(const ManifestWriter&) = delete;

  void append(const ManifestEntry& entry);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool append_ = false;
  std::mutex mutex_;
};

/// Combined fingerprint of a job's inputs: FNV-1a folded over each input
/// artifact path and file content, in order. Missing files throw.
std::uint64_t hash_input_artifacts(const std::vector<std::string>& paths);

}  // namespace netadv::exp
