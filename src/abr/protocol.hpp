// The ABR protocol interface: given what a real player knows at a decision
// point — buffer level, throughput/download history, upcoming chunk sizes —
// pick the next chunk's quality. Implementations: BufferBased (bb.hpp),
// RobustMpc (mpc.hpp), PensievePolicy (pensieve.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "abr/video.hpp"

namespace netadv::abr {

/// What the player knows when choosing the quality of chunk `chunk_index`.
struct AbrObservation {
  std::size_t chunk_index = 0;
  std::size_t remaining_chunks = 0;
  double buffer_s = 0.0;
  std::size_t last_quality = 0;          ///< quality of the previous chunk
  double last_bitrate_mbps = 0.0;
  /// Most recent first-to-oldest-last window of observed throughputs (Mbps)
  /// and download times (s); empty before the first chunk completes.
  std::vector<double> throughput_history_mbps;
  std::vector<double> download_time_history_s;
  /// Encoded sizes of the upcoming chunk at every quality (bits).
  std::vector<double> next_chunk_sizes_bits;
};

class AbrProtocol {
 public:
  virtual ~AbrProtocol() = default;

  virtual std::string name() const = 0;

  /// Called once before each playback so stateful protocols can reset.
  virtual void begin_video(const VideoManifest& manifest) = 0;

  /// Quality index in [0, manifest.num_qualities()) for the next chunk.
  virtual std::size_t choose_quality(const AbrObservation& observation) = 0;
};

/// Maintains the AbrObservation a player would present to its ABR logic as
/// chunks complete. Shared by the replay runner and the adversary
/// environment so both expose identical state to the protocol under test.
class AbrObservationTracker {
 public:
  explicit AbrObservationTracker(const VideoManifest& manifest,
                                 std::size_t history_window = 8);

  /// Observation for the next decision. `buffer_s`/`next_chunk` come from
  /// the live streaming session.
  const AbrObservation& current() const noexcept { return obs_; }

  /// Refresh the session-dependent fields before a decision.
  void sync_session(std::size_t next_chunk, std::size_t remaining,
                    double buffer_s);

  /// Fold in a completed download.
  void on_chunk(std::size_t quality, double bitrate_mbps,
                double throughput_mbps, double download_time_s);

 private:
  const VideoManifest* manifest_;
  std::size_t history_window_;
  AbrObservation obs_;
};

}  // namespace netadv::abr
