#include "abr/qoe.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace netadv::abr {

double chunk_qoe(double bitrate_mbps, double rebuffer_s,
                 double prev_bitrate_mbps, const QoeParams& params) {
  return bitrate_mbps - params.rebuffer_penalty * rebuffer_s -
         params.smoothness_penalty * std::abs(bitrate_mbps - prev_bitrate_mbps);
}

double total_qoe(std::span<const double> bitrates_mbps,
                 std::span<const double> rebuffer_s, const QoeParams& params) {
  if (bitrates_mbps.empty() || bitrates_mbps.size() != rebuffer_s.size()) {
    throw std::invalid_argument{
        "total_qoe: bitrate/rebuffer spans must be non-empty and equal size "
        "(got " +
        std::to_string(bitrates_mbps.size()) + " bitrates, " +
        std::to_string(rebuffer_s.size()) + " rebuffer entries)"};
  }
  double qoe = 0.0;
  for (std::size_t i = 0; i < bitrates_mbps.size(); ++i) {
    const double prev = i == 0 ? bitrates_mbps[0] : bitrates_mbps[i - 1];
    qoe += chunk_qoe(bitrates_mbps[i], rebuffer_s[i], prev, params);
  }
  return qoe;
}

}  // namespace netadv::abr
