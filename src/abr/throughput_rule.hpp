// Throughput-rule ABR (the "rate-based" baseline family, e.g. the Festive
// lineage): pick the highest bitrate below a safety fraction of the
// harmonic-mean throughput estimate, ignoring the buffer entirely. The
// natural counterpart to BufferBased (buffer-only) and a useful extra
// target: its weakness — trusting recent throughput — is exactly what an
// adversary that whipsaws bandwidth exploits.
#pragma once

#include "abr/protocol.hpp"

namespace netadv::abr {

class ThroughputRule final : public AbrProtocol {
 public:
  struct Params {
    std::size_t window = 5;      ///< harmonic-mean window
    double safety_factor = 0.9;  ///< fraction of the estimate to spend
  };

  ThroughputRule() : ThroughputRule(Params{}) {}
  explicit ThroughputRule(Params params);

  std::string name() const override { return "throughput-rule"; }
  void begin_video(const VideoManifest& manifest) override;
  std::size_t choose_quality(const AbrObservation& observation) override;

  /// The bandwidth estimate the rule would act on now (for tests).
  double estimate_mbps(const AbrObservation& observation) const;

 private:
  Params params_;
  const VideoManifest* manifest_ = nullptr;
};

}  // namespace netadv::abr
