// Offline-optimal ABR given full knowledge of future bandwidth.
//
// Two forms are needed by the paper's framework:
//  * optimal_playback(): dynamic program over the whole video (the "Offline
//    Optimum" line of Figure 3);
//  * optimal_window_qoe(): exact best QoE over a short window of known
//    bandwidths, the r_opt term of the adversary's reward (Equation 1 uses
//    the highest possible QoE over the last 4 network changes).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "abr/qoe.hpp"
#include "abr/video.hpp"
#include "trace/trace.hpp"

namespace netadv::abr {

struct OptimalPlan {
  std::vector<std::size_t> qualities;  ///< one per chunk
  double total_qoe = 0.0;
};

struct OptimalParams {
  QoeParams qoe{};
  double max_buffer_s = 60.0;
  /// Buffer quantization step of the dynamic program; smaller is more exact.
  double buffer_resolution_s = 0.2;
};

/// Best-attainable playback for `manifest` when chunk i downloads at the
/// bandwidth of trace segment i (clamped to the last segment).
OptimalPlan optimal_playback(const VideoManifest& manifest,
                             const trace::Trace& trace,
                             const OptimalParams& params = {});

/// Exact (exhaustive) best QoE over `bandwidths.size()` chunks starting at
/// `start_chunk`, from a known starting buffer. `prev_bitrate_mbps` is the
/// bitrate streamed just before the window: the first in-window chunk is
/// charged smoothness against it, matching how the protocol's own QoE over
/// the same window is computed. Window length is capped by the remaining
/// chunks; complexity is num_qualities^window.
double optimal_window_qoe(const VideoManifest& manifest,
                          std::size_t start_chunk, double start_buffer_s,
                          double prev_bitrate_mbps,
                          std::span<const double> bandwidths_mbps,
                          const QoeParams& qoe = {},
                          double max_buffer_s = 60.0);

/// QoE the given quality choices actually earn over the same window and
/// conditions (the r_protocol counterpart of optimal_window_qoe).
double window_qoe(const VideoManifest& manifest, std::size_t start_chunk,
                  double start_buffer_s, double prev_bitrate_mbps,
                  std::span<const std::size_t> qualities,
                  std::span<const double> bandwidths_mbps,
                  const QoeParams& qoe = {}, double max_buffer_s = 60.0);

}  // namespace netadv::abr
