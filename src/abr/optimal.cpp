#include "abr/optimal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "abr/runner.hpp"

namespace netadv::abr {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// One simulated chunk step shared by all planners.
struct StepOutcome {
  double buffer_after = 0.0;
  double rebuffer = 0.0;
};

StepOutcome simulate_step(const VideoManifest& manifest, std::size_t chunk,
                          std::size_t quality, double bandwidth_mbps,
                          double buffer, double max_buffer_s) {
  const double size_bits = manifest.chunk_size_bits(chunk, quality);
  const double dt = size_bits / (bandwidth_mbps * 1e6);
  StepOutcome out;
  out.rebuffer = std::max(0.0, dt - buffer);
  out.buffer_after = std::min(
      std::max(0.0, buffer - dt) + manifest.chunk_duration_s(), max_buffer_s);
  return out;
}

}  // namespace

OptimalPlan optimal_playback(const VideoManifest& manifest,
                             const trace::Trace& trace,
                             const OptimalParams& params) {
  if (trace.empty()) throw std::invalid_argument{"optimal_playback: empty trace"};
  if (params.buffer_resolution_s <= 0.0 || params.max_buffer_s <= 0.0) {
    throw std::invalid_argument{"optimal_playback: bad parameters"};
  }

  const std::size_t num_q = manifest.num_qualities();
  const std::size_t num_chunks = manifest.num_chunks();
  const auto num_bins = static_cast<std::size_t>(
                            params.max_buffer_s / params.buffer_resolution_s) +
                        1;

  // Floor quantization keeps the DP's buffer estimate pessimistic, so every
  // plan it proposes is realizable; the reported QoE is recomputed by an
  // exact replay below.
  auto bin_of = [&](double buffer) {
    const auto b = static_cast<std::size_t>(
        std::floor(buffer / params.buffer_resolution_s));
    return std::min(b, num_bins - 1);
  };
  auto buffer_of = [&](std::size_t bin) {
    return static_cast<double>(bin) * params.buffer_resolution_s;
  };

  // dp[q][bin]: best QoE after streaming the current chunk at quality q and
  // landing on buffer `bin`. parent[chunk][q][bin]: predecessor (q, bin).
  const std::size_t cells = num_q * num_bins;
  std::vector<double> dp(cells, kNegInf);
  std::vector<double> next(cells, kNegInf);
  std::vector<std::int32_t> parent(num_chunks * cells, -1);
  auto idx = [&](std::size_t q, std::size_t bin) { return q * num_bins + bin; };

  // First chunk: cold start, no smoothness charge.
  {
    const double bw = bandwidth_for_chunk(trace, 0);
    for (std::size_t q = 0; q < num_q; ++q) {
      const StepOutcome out =
          simulate_step(manifest, 0, q, bw, 0.0, params.max_buffer_s);
      const double qoe =
          chunk_qoe(manifest.bitrate_mbps(q), out.rebuffer,
                    manifest.bitrate_mbps(q), params.qoe);
      const std::size_t bin = bin_of(out.buffer_after);
      if (qoe > dp[idx(q, bin)]) dp[idx(q, bin)] = qoe;
    }
  }

  for (std::size_t chunk = 1; chunk < num_chunks; ++chunk) {
    std::fill(next.begin(), next.end(), kNegInf);
    const double bw = bandwidth_for_chunk(trace, chunk);
    for (std::size_t pq = 0; pq < num_q; ++pq) {
      for (std::size_t pbin = 0; pbin < num_bins; ++pbin) {
        const double base = dp[idx(pq, pbin)];
        if (base == kNegInf) continue;
        const double buffer = buffer_of(pbin);
        for (std::size_t q = 0; q < num_q; ++q) {
          const StepOutcome out =
              simulate_step(manifest, chunk, q, bw, buffer, params.max_buffer_s);
          const double qoe =
              base + chunk_qoe(manifest.bitrate_mbps(q), out.rebuffer,
                               manifest.bitrate_mbps(pq), params.qoe);
          const std::size_t bin = bin_of(out.buffer_after);
          if (qoe > next[idx(q, bin)]) {
            next[idx(q, bin)] = qoe;
            parent[chunk * cells + idx(q, bin)] =
                static_cast<std::int32_t>(idx(pq, pbin));
          }
        }
      }
    }
    dp.swap(next);
  }

  // Locate the best terminal cell and walk parents back.
  std::size_t best_cell = 0;
  double best_qoe = kNegInf;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    if (dp[cell] > best_qoe) {
      best_qoe = dp[cell];
      best_cell = cell;
    }
  }

  OptimalPlan plan;
  plan.qualities.assign(num_chunks, 0);
  std::size_t cell = best_cell;
  for (std::size_t chunk = num_chunks; chunk-- > 0;) {
    plan.qualities[chunk] = cell / num_bins;
    if (chunk > 0) {
      const std::int32_t p = parent[chunk * cells + cell];
      if (p < 0) break;  // unreachable by construction
      cell = static_cast<std::size_t>(p);
    }
  }

  // Report the QoE the plan actually earns under exact (unquantized) buffer
  // dynamics; best_qoe is only the DP's pessimistic estimate of it.
  (void)best_qoe;
  double buffer = 0.0;
  double prev_bitrate = manifest.bitrate_mbps(plan.qualities[0]);
  plan.total_qoe = 0.0;
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const double bw = bandwidth_for_chunk(trace, chunk);
    const StepOutcome out = simulate_step(manifest, chunk, plan.qualities[chunk],
                                          bw, buffer, params.max_buffer_s);
    const double bitrate = manifest.bitrate_mbps(plan.qualities[chunk]);
    plan.total_qoe += chunk_qoe(bitrate, out.rebuffer, prev_bitrate, params.qoe);
    buffer = out.buffer_after;
    prev_bitrate = bitrate;
  }
  return plan;
}

double window_qoe(const VideoManifest& manifest, std::size_t start_chunk,
                  double start_buffer_s, double prev_bitrate_mbps,
                  std::span<const std::size_t> qualities,
                  std::span<const double> bandwidths_mbps,
                  const QoeParams& qoe, double max_buffer_s) {
  if (qualities.size() != bandwidths_mbps.size()) {
    throw std::invalid_argument{"window_qoe: size mismatch"};
  }
  double buffer = start_buffer_s;
  double prev = prev_bitrate_mbps;
  double total = 0.0;
  for (std::size_t k = 0; k < qualities.size(); ++k) {
    const std::size_t chunk = start_chunk + k;
    if (chunk >= manifest.num_chunks()) break;
    const StepOutcome out = simulate_step(manifest, chunk, qualities[k],
                                          bandwidths_mbps[k], buffer,
                                          max_buffer_s);
    const double bitrate = manifest.bitrate_mbps(qualities[k]);
    total += chunk_qoe(bitrate, out.rebuffer, prev, qoe);
    buffer = out.buffer_after;
    prev = bitrate;
  }
  return total;
}

namespace {

double best_window_qoe_rec(const VideoManifest& manifest,
                           std::size_t start_chunk, std::size_t depth,
                           double buffer, double prev_bitrate,
                           std::span<const double> bandwidths,
                           const QoeParams& qoe, double max_buffer_s) {
  const std::size_t chunk = start_chunk + depth;
  if (depth >= bandwidths.size() || chunk >= manifest.num_chunks()) return 0.0;
  double best = kNegInf;
  for (std::size_t q = 0; q < manifest.num_qualities(); ++q) {
    const StepOutcome out = simulate_step(manifest, chunk, q,
                                          bandwidths[depth], buffer,
                                          max_buffer_s);
    const double bitrate = manifest.bitrate_mbps(q);
    const double here = chunk_qoe(bitrate, out.rebuffer, prev_bitrate, qoe);
    const double rest =
        best_window_qoe_rec(manifest, start_chunk, depth + 1, out.buffer_after,
                            bitrate, bandwidths, qoe, max_buffer_s);
    best = std::max(best, here + rest);
  }
  return best;
}

}  // namespace

double optimal_window_qoe(const VideoManifest& manifest,
                          std::size_t start_chunk, double start_buffer_s,
                          double prev_bitrate_mbps,
                          std::span<const double> bandwidths_mbps,
                          const QoeParams& qoe, double max_buffer_s) {
  if (bandwidths_mbps.empty()) {
    throw std::invalid_argument{"optimal_window_qoe: empty window"};
  }
  for (double bw : bandwidths_mbps) {
    if (bw <= 0.0) throw std::invalid_argument{"optimal_window_qoe: bad bandwidth"};
  }
  return best_window_qoe_rec(manifest, start_chunk, 0, start_buffer_s,
                             prev_bitrate_mbps, bandwidths_mbps, qoe,
                             max_buffer_s);
}

}  // namespace netadv::abr
