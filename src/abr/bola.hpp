// BOLA (Spiteri, Urgaonkar, Sitaraman — INFOCOM 2016): Lyapunov-based
// buffer-only rate adaptation. Not evaluated in the paper, but a natural
// extra target for the adversarial framework (the paper's framework is
// protocol-agnostic) and a stronger buffer-based baseline than BB.
//
// BOLA-BASIC: pick the quality maximizing (V * (v_q + gamma_p) - Q) / s_q,
// where v_q = ln(s_q / s_min) is the utility of quality q, s_q its chunk
// size, Q the buffer level in chunks, and V scales utility against buffer
// risk (derived from the buffer capacity).
#pragma once

#include "abr/protocol.hpp"

namespace netadv::abr {

class Bola final : public AbrProtocol {
 public:
  struct Params {
    /// Target maximum buffer in seconds used to derive V.
    double buffer_target_s = 40.0;
    /// The gamma * p term (utility units); larger favors avoiding stalls.
    double gamma_p = 5.0;
  };

  Bola() : Bola(Params{}) {}
  explicit Bola(Params params);

  std::string name() const override { return "bola"; }
  void begin_video(const VideoManifest& manifest) override;
  std::size_t choose_quality(const AbrObservation& observation) override;

  /// The Lyapunov trade-off parameter in use (exposed for tests).
  double control_parameter_v() const noexcept { return v_; }

 private:
  Params params_;
  const VideoManifest* manifest_ = nullptr;
  std::vector<double> utilities_;
  double v_ = 0.0;
};

}  // namespace netadv::abr
