// Video model for adaptive bitrate streaming: a fixed ladder of encodings
// and per-chunk sizes. Defaults mirror the Pensieve evaluation setup the
// paper reuses: 48 four-second chunks at
// {300, 750, 1200, 1850, 2850, 4300} kbps.
#pragma once

#include <cstddef>
#include <vector>

namespace netadv::abr {

class VideoManifest {
 public:
  struct Params {
    std::vector<double> bitrates_kbps{300, 750, 1200, 1850, 2850, 4300};
    std::size_t num_chunks = 48;
    double chunk_duration_s = 4.0;
    /// Per-chunk encoded-size variation around the nominal bitrate*duration
    /// (VBR wobble); sizes are drawn deterministically from `size_seed` so a
    /// manifest is a value.
    double size_variation = 0.05;
    unsigned size_seed = 1;
  };

  VideoManifest() : VideoManifest(Params{}) {}
  explicit VideoManifest(Params params);

  std::size_t num_qualities() const noexcept { return bitrates_kbps_.size(); }
  std::size_t num_chunks() const noexcept { return num_chunks_; }
  double chunk_duration_s() const noexcept { return chunk_duration_s_; }
  double bitrate_kbps(std::size_t quality) const {
    return bitrates_kbps_.at(quality);
  }
  double bitrate_mbps(std::size_t quality) const {
    return bitrate_kbps(quality) / 1000.0;
  }
  double max_bitrate_mbps() const { return bitrates_kbps_.back() / 1000.0; }

  /// Encoded size of chunk `index` at `quality`, in bits.
  double chunk_size_bits(std::size_t index, std::size_t quality) const;

  /// Sizes of chunk `index` across all qualities (the "possible sizes of the
  /// next chunk" the paper's adversary and MPC observe), in bits.
  std::vector<double> chunk_sizes_bits(std::size_t index) const;

  double total_duration_s() const noexcept {
    return static_cast<double>(num_chunks_) * chunk_duration_s_;
  }

 private:
  std::vector<double> bitrates_kbps_;
  std::size_t num_chunks_;
  double chunk_duration_s_;
  std::vector<double> size_multipliers_;  // one per chunk
};

}  // namespace netadv::abr
