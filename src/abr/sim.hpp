// Chunk-level streaming simulator — a C++ port of the dynamics of
// Pensieve's sim.py, which the paper uses for both training and testing:
// each chunk download takes size/throughput seconds, the playback buffer
// drains in real time during downloads (stalling when it empties), gains one
// chunk duration per completed chunk, and the client pauses requests when
// the buffer would exceed its cap.
#pragma once

#include <cstddef>
#include <vector>

#include "abr/video.hpp"

namespace netadv::abr {

/// Everything that happened while fetching one chunk.
struct DownloadResult {
  std::size_t chunk_index = 0;
  std::size_t quality = 0;
  double bitrate_mbps = 0.0;
  double download_time_s = 0.0;
  double throughput_mbps = 0.0;  ///< link bandwidth seen by this download
  double rebuffer_s = 0.0;       ///< stall incurred while fetching this chunk
  double sleep_s = 0.0;          ///< client pause because the buffer was full
  double buffer_after_s = 0.0;   ///< playback buffer after the chunk arrived
};

/// One video playback in progress. The caller picks a quality and supplies
/// the link bandwidth in effect for that download (per-chunk network
/// conditions — exactly the adversary's action granularity in Section 3).
class StreamingSession {
 public:
  struct Params {
    double max_buffer_s = 60.0;
    double startup_buffer_s = 0.0;  ///< initial buffer (0: cold start)
  };

  explicit StreamingSession(const VideoManifest& manifest)
      : StreamingSession(manifest, Params{}) {}
  StreamingSession(const VideoManifest& manifest, Params params);

  bool finished() const noexcept { return next_chunk_ >= manifest_->num_chunks(); }
  std::size_t next_chunk() const noexcept { return next_chunk_; }
  std::size_t remaining_chunks() const noexcept {
    return manifest_->num_chunks() - next_chunk_;
  }
  double buffer_s() const noexcept { return buffer_s_; }
  double clock_s() const noexcept { return clock_s_; }
  const VideoManifest& manifest() const noexcept { return *manifest_; }

  /// Download the next chunk at `quality` over a link of `bandwidth_mbps`.
  /// Throws std::logic_error if the video already finished and
  /// std::invalid_argument on a bad quality or non-positive bandwidth.
  DownloadResult download_next(std::size_t quality, double bandwidth_mbps);

  /// Reset to the start of the video.
  void restart();

 private:
  const VideoManifest* manifest_;
  Params params_;
  std::size_t next_chunk_ = 0;
  double buffer_s_ = 0.0;
  double clock_s_ = 0.0;
};

}  // namespace netadv::abr
