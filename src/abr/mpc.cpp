#include "abr/mpc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::abr {

RobustMpc::RobustMpc(Params params) : params_(params) {
  if (params_.horizon == 0 || params_.throughput_window == 0 ||
      params_.max_buffer_s <= 0.0) {
    throw std::invalid_argument{"RobustMpc: bad parameters"};
  }
}

void RobustMpc::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
  past_errors_.clear();
  last_prediction_mbps_ = 0.0;
  has_prediction_ = false;
}

double RobustMpc::predicted_throughput_mbps(
    const AbrObservation& observation) const {
  if (observation.throughput_history_mbps.empty()) {
    // Cold start: assume the lowest encoding is sustainable.
    return manifest_ != nullptr ? manifest_->bitrate_mbps(0) : 1.0;
  }
  const std::size_t n = std::min(params_.throughput_window,
                                 observation.throughput_history_mbps.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    denom += 1.0 / observation.throughput_history_mbps[i];
  }
  double prediction = static_cast<double>(n) / denom;
  if (params_.robust && !past_errors_.empty()) {
    const double max_err =
        *std::max_element(past_errors_.begin(), past_errors_.end());
    prediction /= 1.0 + max_err;
  }
  return prediction;
}

double RobustMpc::qoe_of_plan(const AbrObservation& observation,
                              std::size_t first_quality,
                              double predicted_mbps) const {
  // Exhaustive DFS over quality sequences starting with first_quality,
  // simulating buffer evolution under the predicted throughput.
  struct Frame {
    double buffer = 0.0;
    double prev_bitrate = 0.0;
    double qoe = 0.0;
  };

  const std::size_t total = manifest_->num_chunks();
  const std::size_t depth_limit =
      std::min(params_.horizon, total - observation.chunk_index);

  double best = -1e18;
  // Iterative stack of partial plans: (depth, state, next quality to try).
  struct Node {
    std::size_t depth;
    std::size_t quality;
    Frame frame;
  };
  std::vector<Node> stack;
  stack.push_back({0, first_quality,
                   {observation.buffer_s, observation.last_bitrate_mbps, 0.0}});

  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();

    const std::size_t chunk = observation.chunk_index + node.depth;
    const double size_bits = manifest_->chunk_size_bits(chunk, node.quality);
    const double dt = size_bits / (predicted_mbps * 1e6);
    const double rebuffer = std::max(0.0, dt - node.frame.buffer);
    double buffer = std::max(0.0, node.frame.buffer - dt) +
                    manifest_->chunk_duration_s();
    buffer = std::min(buffer, params_.max_buffer_s);
    const double bitrate = manifest_->bitrate_mbps(node.quality);
    const double qoe = node.frame.qoe +
                       chunk_qoe(bitrate, rebuffer, node.frame.prev_bitrate,
                                 params_.qoe);

    if (node.depth + 1 >= depth_limit) {
      best = std::max(best, qoe);
      continue;
    }
    for (std::size_t q = 0; q < manifest_->num_qualities(); ++q) {
      stack.push_back({node.depth + 1, q, {buffer, bitrate, qoe}});
    }
  }
  return best;
}

std::size_t RobustMpc::choose_quality(const AbrObservation& observation) {
  if (manifest_ == nullptr) throw std::logic_error{"RobustMpc: begin_video not called"};

  // Update the error window with how the previous prediction fared.
  if (has_prediction_ && !observation.throughput_history_mbps.empty()) {
    const double actual = observation.throughput_history_mbps.front();
    if (actual > 0.0) {
      past_errors_.push_back(std::abs(last_prediction_mbps_ - actual) / actual);
      while (past_errors_.size() > params_.throughput_window) {
        past_errors_.pop_front();
      }
    }
  }

  const double predicted = predicted_throughput_mbps(observation);

  // Remember the *undiscounted* harmonic-mean prediction for error tracking.
  if (!observation.throughput_history_mbps.empty()) {
    const std::size_t n = std::min(params_.throughput_window,
                                   observation.throughput_history_mbps.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      denom += 1.0 / observation.throughput_history_mbps[i];
    }
    last_prediction_mbps_ = static_cast<double>(n) / denom;
    has_prediction_ = true;
  }

  std::size_t best_quality = 0;
  double best_qoe = -1e18;
  for (std::size_t q = 0; q < manifest_->num_qualities(); ++q) {
    const double qoe = qoe_of_plan(observation, q, predicted);
    if (qoe > best_qoe) {
      best_qoe = qoe;
      best_quality = q;
    }
  }
  return best_quality;
}

}  // namespace netadv::abr
