// The linear Quality-of-Experience metric from MPC (Yin et al., 2015) that
// the paper adopts (Section 3):
//
//   QoE_lin = sum_i R_i  -  4.3 * sum_i T_i  -  sum_i |R_i - R_{i+1}|
//
// where R_i is the bitrate of chunk i in Mbps and T_i the rebuffering time
// (seconds) incurred by chunk i.
#pragma once

#include <cstddef>
#include <span>

namespace netadv::abr {

struct QoeParams {
  double rebuffer_penalty = 4.3;   ///< per second of stall
  double smoothness_penalty = 1.0; ///< per Mbps of bitrate change
};

/// Contribution of a single chunk given the previous chunk's bitrate.
/// For the first chunk pass `prev_bitrate_mbps == bitrate_mbps` (no
/// smoothness charge), matching the QoE_lin sum which only charges
/// transitions between consecutive chunks.
double chunk_qoe(double bitrate_mbps, double rebuffer_s,
                 double prev_bitrate_mbps, const QoeParams& params = {});

/// QoE_lin of a whole playback from per-chunk bitrates and rebuffer times.
/// Sizes must match and be non-empty.
double total_qoe(std::span<const double> bitrates_mbps,
                 std::span<const double> rebuffer_s,
                 const QoeParams& params = {});

}  // namespace netadv::abr
