#include "abr/bb.hpp"

#include <cmath>
#include <stdexcept>

namespace netadv::abr {

BufferBased::BufferBased(Params params) : params_(params) {
  if (params_.reservoir_s < 0.0 || params_.cushion_s <= 0.0) {
    throw std::invalid_argument{"BufferBased: bad parameters"};
  }
}

void BufferBased::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
}

std::size_t BufferBased::choose_quality(const AbrObservation& observation) {
  if (manifest_ == nullptr) throw std::logic_error{"BufferBased: begin_video not called"};
  const std::size_t top = manifest_->num_qualities() - 1;
  const double buffer = observation.buffer_s;
  if (buffer <= params_.reservoir_s) return 0;
  if (buffer >= params_.reservoir_s + params_.cushion_s) return top;
  const double frac = (buffer - params_.reservoir_s) / params_.cushion_s;
  return static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(top)));
}

}  // namespace netadv::abr
