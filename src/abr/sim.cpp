#include "abr/sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::abr {

StreamingSession::StreamingSession(const VideoManifest& manifest, Params params)
    : manifest_(&manifest), params_(params) {
  if (params_.max_buffer_s <= 0.0 || params_.startup_buffer_s < 0.0 ||
      params_.startup_buffer_s > params_.max_buffer_s) {
    throw std::invalid_argument{"StreamingSession: bad parameters"};
  }
  buffer_s_ = params_.startup_buffer_s;
}

DownloadResult StreamingSession::download_next(std::size_t quality,
                                               double bandwidth_mbps) {
  if (finished()) throw std::logic_error{"StreamingSession: video finished"};
  if (quality >= manifest_->num_qualities()) {
    throw std::invalid_argument{"StreamingSession: bad quality"};
  }
  if (bandwidth_mbps <= 0.0) {
    throw std::invalid_argument{"StreamingSession: bandwidth must be > 0"};
  }

  DownloadResult result;
  result.chunk_index = next_chunk_;
  result.quality = quality;
  result.bitrate_mbps = manifest_->bitrate_mbps(quality);
  result.throughput_mbps = bandwidth_mbps;

  const double size_bits = manifest_->chunk_size_bits(next_chunk_, quality);
  const double dt = size_bits / (bandwidth_mbps * 1e6);
  result.download_time_s = dt;

  // Playback consumes buffer while the chunk downloads; a deficit is a stall.
  result.rebuffer_s = std::max(0.0, dt - buffer_s_);
  buffer_s_ = std::max(0.0, buffer_s_ - dt);
  buffer_s_ += manifest_->chunk_duration_s();

  // Client-side pacing: if the buffer would overflow, the client sleeps
  // (network idle) until there is room, as in Pensieve's simulator.
  if (buffer_s_ > params_.max_buffer_s) {
    result.sleep_s = buffer_s_ - params_.max_buffer_s;
    buffer_s_ = params_.max_buffer_s;
  }
  result.buffer_after_s = buffer_s_;

  clock_s_ += dt + result.sleep_s;
  ++next_chunk_;
  return result;
}

void StreamingSession::restart() {
  next_chunk_ = 0;
  buffer_s_ = params_.startup_buffer_s;
  clock_s_ = 0.0;
}

}  // namespace netadv::abr
