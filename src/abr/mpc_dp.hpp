// mpc-dp — puffer-style model-predictive control by value iteration over a
// discretized buffer grid (Yan et al., NSDI 2020), optimizing a pluggable
// QoeModel instead of QoE_lin only.
//
// Where RobustMpc (mpc.hpp) enumerates every quality sequence over the
// horizon (Q^H plans), mpc-dp solves the same lookahead as a backward
// dynamic program over (depth, discretized buffer level, previous quality):
// cost per decision is H * levels * Q^2 instead of Q^H, so deeper horizons
// and bigger ladders stay cheap — the per-decision budget that matters when
// one process serves thousands of sessions (serve::SessionEngine).
//
// The throughput predictor is RobustMpc's: harmonic mean of the last
// `throughput_window` samples, discounted by the window's maximum relative
// prediction error.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "abr/protocol.hpp"
#include "abr/qoe_model.hpp"

namespace netadv::abr {

class MpcDp final : public AbrProtocol {
 public:
  struct Params {
    std::size_t horizon = 5;            ///< lookahead chunks
    std::size_t buffer_levels = 100;    ///< buffer discretization grid
    std::size_t throughput_window = 5;  ///< harmonic-mean window
    bool robust = true;                 ///< discount by past prediction error
    double max_buffer_s = 60.0;
  };

  /// Default: QoE_lin, so `mpc-dp` is directly comparable to `mpc`.
  MpcDp() : MpcDp(Params{}, std::make_unique<LinQoe>()) {}
  MpcDp(Params params, std::unique_ptr<QoeModel> qoe);

  std::string name() const override { return "mpc-dp"; }
  void begin_video(const VideoManifest& manifest) override;
  std::size_t choose_quality(const AbrObservation& observation) override;

  /// The throughput estimate (Mbps) the planner would use now; exposed for
  /// tests and diagnostics, like RobustMpc's.
  double predicted_throughput_mbps(const AbrObservation& observation) const;

  const QoeModel& qoe() const noexcept { return *qoe_; }

 private:
  double level_buffer(std::size_t level) const;
  std::size_t buffer_level(double buffer_s) const;

  Params params_;
  std::unique_ptr<QoeModel> qoe_;
  const VideoManifest* manifest_ = nullptr;
  // Rolling relative prediction errors for the robust discount.
  std::deque<double> past_errors_;
  double last_prediction_mbps_ = 0.0;
  bool has_prediction_ = false;
  // Value-iteration planes, reused across decisions to avoid per-call
  // allocation on the serving hot path.
  std::vector<double> value_, next_value_;
};

}  // namespace netadv::abr
