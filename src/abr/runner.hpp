// Replays an ABR protocol over a trace (one trace segment per chunk, the
// paper's per-chunk network-change granularity) and collects the per-chunk
// record plus QoE_lin — the measurement core behind Figures 1-4.
#pragma once

#include <cstddef>
#include <vector>

#include "abr/protocol.hpp"
#include "abr/qoe.hpp"
#include "abr/sim.hpp"
#include "abr/video.hpp"
#include "trace/trace.hpp"

namespace netadv::abr {

struct PlaybackRecord {
  std::vector<DownloadResult> chunks;
  double total_qoe = 0.0;
  double mean_chunk_qoe = 0.0;
  double total_rebuffer_s = 0.0;
  double mean_bitrate_mbps = 0.0;
  std::size_t quality_switches = 0;
};

/// Bandwidth (Mbps) in effect for chunk `index`: segment `index` of the
/// trace, clamping to the last segment for traces shorter than the video.
double bandwidth_for_chunk(const trace::Trace& trace, std::size_t index);

/// Run one full playback of `manifest` through `protocol` with per-chunk
/// bandwidths taken from `trace`. `history_window` bounds the
/// throughput/download-time history exposed to the protocol.
PlaybackRecord run_playback(AbrProtocol& protocol,
                            const VideoManifest& manifest,
                            const trace::Trace& trace,
                            const QoeParams& qoe = {},
                            std::size_t history_window = 8);

/// QoE of one playback per trace; the CDF inputs of Figure 1.
std::vector<double> qoe_per_trace(AbrProtocol& protocol,
                                  const VideoManifest& manifest,
                                  const std::vector<trace::Trace>& traces,
                                  const QoeParams& qoe = {});

}  // namespace netadv::abr
