// Replays an ABR protocol over a trace (one trace segment per chunk, the
// paper's per-chunk network-change granularity) and collects the per-chunk
// record plus QoE_lin — the measurement core behind Figures 1-4.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "abr/protocol.hpp"
#include "abr/qoe.hpp"
#include "abr/sim.hpp"
#include "abr/video.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace netadv::abr {

struct PlaybackRecord {
  std::vector<DownloadResult> chunks;
  double total_qoe = 0.0;
  double mean_chunk_qoe = 0.0;
  double total_rebuffer_s = 0.0;
  double mean_bitrate_mbps = 0.0;
  std::size_t quality_switches = 0;
};

/// Bandwidth (Mbps) in effect for chunk `index`: segment `index` of the
/// trace, clamping to the last segment for traces shorter than the video.
double bandwidth_for_chunk(const trace::Trace& trace, std::size_t index);

/// Run one full playback of `manifest` through `protocol` with per-chunk
/// bandwidths taken from `trace`. `history_window` bounds the
/// throughput/download-time history exposed to the protocol.
PlaybackRecord run_playback(AbrProtocol& protocol,
                            const VideoManifest& manifest,
                            const trace::Trace& trace,
                            const QoeParams& qoe = {},
                            std::size_t history_window = 8);

/// QoE of one playback per trace; the CDF inputs of Figure 1.
std::vector<double> qoe_per_trace(AbrProtocol& protocol,
                                  const VideoManifest& manifest,
                                  const std::vector<trace::Trace>& traces,
                                  const QoeParams& qoe = {});

/// Builds a fresh protocol instance per replay task. Must be callable from
/// several threads at once (it only ever constructs new objects), which is
/// what lets each trace replay on its own core without sharing protocol
/// state.
using ProtocolFactory = std::function<std::unique_ptr<AbrProtocol>()>;

/// Parallel qoe_per_trace: replays the traces across `pool` (sequentially
/// when pool is null), one private protocol instance per trace. Results are
/// reduced in trace order, so the output equals the sequential overload for
/// any protocol whose begin_video() fully resets it — and is identical at
/// every thread count.
std::vector<double> qoe_per_trace(const ProtocolFactory& make_protocol,
                                  const VideoManifest& manifest,
                                  const std::vector<trace::Trace>& traces,
                                  const QoeParams& qoe = {},
                                  util::ThreadPool* pool = nullptr);

}  // namespace netadv::abr
