#include "abr/mpc_dp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::abr {

MpcDp::MpcDp(Params params, std::unique_ptr<QoeModel> qoe)
    : params_(params), qoe_(std::move(qoe)) {
  if (params_.horizon == 0 || params_.buffer_levels < 2 ||
      params_.throughput_window == 0 || params_.max_buffer_s <= 0.0 ||
      qoe_ == nullptr) {
    throw std::invalid_argument{"MpcDp: bad parameters"};
  }
}

void MpcDp::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
  qoe_->begin_video(manifest);
  past_errors_.clear();
  last_prediction_mbps_ = 0.0;
  has_prediction_ = false;
}

double MpcDp::predicted_throughput_mbps(
    const AbrObservation& observation) const {
  if (observation.throughput_history_mbps.empty()) {
    // Cold start: assume the lowest encoding is sustainable.
    return manifest_ != nullptr ? manifest_->bitrate_mbps(0) : 1.0;
  }
  const std::size_t n = std::min(params_.throughput_window,
                                 observation.throughput_history_mbps.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    denom += 1.0 / observation.throughput_history_mbps[i];
  }
  double prediction = static_cast<double>(n) / denom;
  if (params_.robust && !past_errors_.empty()) {
    const double max_err =
        *std::max_element(past_errors_.begin(), past_errors_.end());
    prediction /= 1.0 + max_err;
  }
  return prediction;
}

double MpcDp::level_buffer(std::size_t level) const {
  return static_cast<double>(level) * params_.max_buffer_s /
         static_cast<double>(params_.buffer_levels - 1);
}

std::size_t MpcDp::buffer_level(double buffer_s) const {
  const double clamped = std::clamp(buffer_s, 0.0, params_.max_buffer_s);
  const double step =
      params_.max_buffer_s / static_cast<double>(params_.buffer_levels - 1);
  return static_cast<std::size_t>(std::lround(clamped / step));
}

std::size_t MpcDp::choose_quality(const AbrObservation& observation) {
  if (manifest_ == nullptr) {
    throw std::logic_error{"MpcDp: begin_video not called"};
  }

  // Track how the previous (undiscounted) prediction fared, exactly like
  // RobustMpc, so the robust discount sees the same error series.
  if (has_prediction_ && !observation.throughput_history_mbps.empty()) {
    const double actual = observation.throughput_history_mbps.front();
    if (actual > 0.0) {
      past_errors_.push_back(std::abs(last_prediction_mbps_ - actual) /
                             actual);
      while (past_errors_.size() > params_.throughput_window) {
        past_errors_.pop_front();
      }
    }
  }
  const double predicted = predicted_throughput_mbps(observation);
  if (!observation.throughput_history_mbps.empty()) {
    const std::size_t n = std::min(params_.throughput_window,
                                   observation.throughput_history_mbps.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      denom += 1.0 / observation.throughput_history_mbps[i];
    }
    last_prediction_mbps_ = static_cast<double>(n) / denom;
    has_prediction_ = true;
  }

  const std::size_t num_q = manifest_->num_qualities();
  const std::size_t levels = params_.buffer_levels;
  const std::size_t depth_limit =
      std::min(params_.horizon,
               manifest_->num_chunks() - observation.chunk_index);
  const double rebuf_pen = qoe_->rebuffer_penalty();
  const double smooth_pen = qoe_->smoothness_penalty();
  const double chunk_dur = manifest_->chunk_duration_s();

  // next_value_[level * Q + prev_quality] holds the optimal
  // score-to-horizon from depth d+1; zero beyond the horizon.
  next_value_.assign(levels * num_q, 0.0);
  value_.assign(levels * num_q, 0.0);
  std::vector<double> base(num_q);   // quality - rebuffer + continuation
  std::vector<double> score(num_q);  // quality_score at this depth

  for (std::size_t d = depth_limit; d-- > 1;) {
    const std::size_t chunk = observation.chunk_index + d;
    for (std::size_t q = 0; q < num_q; ++q) {
      score[q] = qoe_->quality_score(chunk, q);
    }
    for (std::size_t level = 0; level < levels; ++level) {
      const double buffer = level_buffer(level);
      for (std::size_t q = 0; q < num_q; ++q) {
        const double dt =
            manifest_->chunk_size_bits(chunk, q) / (predicted * 1e6);
        const double rebuffer = std::max(0.0, dt - buffer);
        const double next_buffer = std::min(
            std::max(0.0, buffer - dt) + chunk_dur, params_.max_buffer_s);
        base[q] = score[q] - rebuf_pen * rebuffer +
                  next_value_[buffer_level(next_buffer) * num_q + q];
      }
      for (std::size_t p = 0; p < num_q; ++p) {
        const double prev_score = qoe_->quality_score(chunk - 1, p);
        double best = -1e18;
        for (std::size_t q = 0; q < num_q; ++q) {
          best = std::max(best,
                          base[q] - smooth_pen * std::abs(score[q] -
                                                          prev_score));
        }
        value_[level * num_q + p] = best;
      }
    }
    std::swap(value_, next_value_);
  }

  // Depth 0 uses the *continuous* buffer and the real previous chunk.
  const std::size_t chunk = observation.chunk_index;
  const bool first_chunk = chunk == 0;
  const double prev_score =
      first_chunk ? 0.0
                  : qoe_->quality_score(chunk - 1, observation.last_quality);
  std::size_t best_quality = 0;
  double best = -1e18;
  for (std::size_t q = 0; q < num_q; ++q) {
    const double dt =
        manifest_->chunk_size_bits(chunk, q) / (predicted * 1e6);
    const double rebuffer = std::max(0.0, dt - observation.buffer_s);
    const double next_buffer =
        std::min(std::max(0.0, observation.buffer_s - dt) + chunk_dur,
                 params_.max_buffer_s);
    const double s = qoe_->quality_score(chunk, q);
    const double smooth =
        first_chunk ? 0.0 : smooth_pen * std::abs(s - prev_score);
    const double v = s - rebuf_pen * rebuffer - smooth +
                     next_value_[buffer_level(next_buffer) * num_q + q];
    if (v > best) {
      best = v;
      best_quality = q;
    }
  }
  return best_quality;
}

}  // namespace netadv::abr
