#include "abr/runner.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::abr {

double bandwidth_for_chunk(const trace::Trace& trace, std::size_t index) {
  if (trace.empty()) throw std::invalid_argument{"bandwidth_for_chunk: empty trace"};
  const std::size_t i = std::min(index, trace.size() - 1);
  return trace[i].bandwidth_mbps;
}

PlaybackRecord run_playback(AbrProtocol& protocol,
                            const VideoManifest& manifest,
                            const trace::Trace& trace, const QoeParams& qoe,
                            std::size_t history_window) {
  protocol.begin_video(manifest);
  StreamingSession session{manifest};
  AbrObservationTracker tracker{manifest, history_window};

  PlaybackRecord record;
  record.chunks.reserve(manifest.num_chunks());

  while (!session.finished()) {
    tracker.sync_session(session.next_chunk(), session.remaining_chunks(),
                         session.buffer_s());
    const std::size_t quality = protocol.choose_quality(tracker.current());
    if (quality >= manifest.num_qualities()) {
      throw std::logic_error{"run_playback: protocol returned bad quality"};
    }
    const double bandwidth = bandwidth_for_chunk(trace, session.next_chunk());
    const DownloadResult result = session.download_next(quality, bandwidth);
    record.chunks.push_back(result);
    tracker.on_chunk(quality, result.bitrate_mbps, result.throughput_mbps,
                     result.download_time_s);
  }

  std::vector<double> bitrates;
  std::vector<double> rebuffers;
  bitrates.reserve(record.chunks.size());
  rebuffers.reserve(record.chunks.size());
  double bitrate_sum = 0.0;
  for (std::size_t i = 0; i < record.chunks.size(); ++i) {
    const DownloadResult& c = record.chunks[i];
    bitrates.push_back(c.bitrate_mbps);
    rebuffers.push_back(c.rebuffer_s);
    record.total_rebuffer_s += c.rebuffer_s;
    bitrate_sum += c.bitrate_mbps;
    if (i > 0 && record.chunks[i].quality != record.chunks[i - 1].quality) {
      ++record.quality_switches;
    }
  }
  record.total_qoe = total_qoe(bitrates, rebuffers, qoe);
  record.mean_chunk_qoe =
      record.total_qoe / static_cast<double>(record.chunks.size());
  record.mean_bitrate_mbps =
      bitrate_sum / static_cast<double>(record.chunks.size());
  return record;
}

std::vector<double> qoe_per_trace(AbrProtocol& protocol,
                                  const VideoManifest& manifest,
                                  const std::vector<trace::Trace>& traces,
                                  const QoeParams& qoe) {
  std::vector<double> result;
  result.reserve(traces.size());
  for (const auto& t : traces) {
    // Per-chunk mean QoE keeps numbers comparable across videos of different
    // lengths (the paper's Figure 1 axis is per-video QoE on one video, so
    // the scale is a constant factor).
    result.push_back(run_playback(protocol, manifest, t, qoe).mean_chunk_qoe);
  }
  return result;
}

std::vector<double> qoe_per_trace(const ProtocolFactory& make_protocol,
                                  const VideoManifest& manifest,
                                  const std::vector<trace::Trace>& traces,
                                  const QoeParams& qoe,
                                  util::ThreadPool* pool) {
  auto replay_one = [&](std::size_t i) {
    const std::unique_ptr<AbrProtocol> protocol = make_protocol();
    if (!protocol) {
      throw std::invalid_argument{"qoe_per_trace: factory returned null"};
    }
    return run_playback(*protocol, manifest, traces[i], qoe).mean_chunk_qoe;
  };
  if (pool == nullptr) {
    std::vector<double> result(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) result[i] = replay_one(i);
    return result;
  }
  return pool->parallel_map(traces.size(), replay_one);
}

}  // namespace netadv::abr
