// Pensieve (Mao et al., SIGCOMM 2017) — the learning-based ABR protocol the
// paper both attacks and robustifies. This is a re-implementation on our RL
// substrate: the same observation features and discrete bitrate action space
// as the original, trained with PPO in the chunk-level simulator (the
// original used A3C; the paper itself swaps trainers freely, using
// stable-baselines PPO for its adversaries).
//
// Three pieces:
//  * pensieve_features()  — the feature vector shared by training and serving;
//  * PensieveEnv          — rl::Env where one episode is one video playback
//                           over a trace drawn from a corpus;
//  * PensievePolicy       — AbrProtocol adapter over a trained agent.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "abr/protocol.hpp"
#include "abr/qoe.hpp"
#include "abr/sim.hpp"
#include "abr/video.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "trace/trace.hpp"

namespace netadv::abr {

/// History length of the throughput/download-time windows in the feature
/// vector (Pensieve's k = 8).
inline constexpr std::size_t kPensieveHistory = 8;

/// Feature layout:
///   [0]              last chunk bitrate / max bitrate
///   [1]              buffer (seconds / 10)
///   [2 .. 2+k)       throughput history, Mbps (most recent first, 0-padded)
///   [2+k .. 2+2k)    download-time history, seconds (same order)
///   [2+2k .. 2+2k+Q) next chunk sizes, Mbits
///   [2+2k+Q]         remaining chunks / total chunks
std::size_t pensieve_feature_size(const VideoManifest& manifest);
rl::Vec pensieve_features(const AbrObservation& observation,
                          const VideoManifest& manifest);

/// Training environment: the agent streams one whole video per episode, with
/// per-chunk bandwidth taken from a trace drawn uniformly from the corpus.
/// Reward per step is the chunk's QoE_lin contribution.
class PensieveEnv final : public rl::Env {
 public:
  PensieveEnv(VideoManifest manifest, std::vector<trace::Trace> traces,
              QoeParams qoe = {});

  std::string name() const override { return "pensieve-env"; }
  std::size_t observation_size() const override;
  rl::ActionSpec action_spec() const override;
  rl::Vec reset(util::Rng& rng) override;
  rl::StepResult step(const rl::Vec& action, util::Rng& rng) override;

  /// Swap the training corpus (used by the Section 2.3 robustification
  /// pipeline to append adversarial traces mid-training).
  void set_traces(std::vector<trace::Trace> traces);
  const std::vector<trace::Trace>& traces() const noexcept { return traces_; }
  const VideoManifest& manifest() const noexcept { return manifest_; }

 private:
  rl::Vec observe() const;

  VideoManifest manifest_;
  std::vector<trace::Trace> traces_;
  QoeParams qoe_;

  StreamingSession session_;
  const trace::Trace* current_trace_ = nullptr;
  AbrObservation obs_;
};

/// Default PPO hyperparameters for training Pensieve in this simulator.
rl::PpoConfig pensieve_ppo_config();

/// Construct an untrained Pensieve agent matched to `manifest`.
rl::PpoAgent make_pensieve_agent(const VideoManifest& manifest,
                                 std::uint64_t seed,
                                 const rl::PpoConfig& config = pensieve_ppo_config());

/// Serve a trained agent behind the AbrProtocol interface (deterministic
/// greedy policy, like deploying Pensieve's trained actor). Accepts any
/// rl::Agent, so PPO- and A2C-trained Pensieves serve identically.
class PensievePolicy final : public AbrProtocol {
 public:
  /// Non-owning: `agent` must outlive the policy.
  explicit PensievePolicy(rl::Agent& agent, std::string name = "pensieve");

  std::string name() const override { return name_; }
  void begin_video(const VideoManifest& manifest) override;
  std::size_t choose_quality(const AbrObservation& observation) override;

 private:
  rl::Agent* agent_;
  std::string name_;
  const VideoManifest* manifest_ = nullptr;
};

/// PensievePolicy over a *private copy* of a trained PPO agent. Use one per
/// parallel task: concurrent workers serving the same trained Pensieve must
/// never share an agent (act_deterministic mutates the forward caches), so
/// factories hand each task its own OwnedPensievePolicy and the source agent
/// is only read at construction time.
class OwnedPensievePolicy final : public AbrProtocol {
 public:
  explicit OwnedPensievePolicy(const rl::PpoAgent& agent,
                               std::string name = "pensieve")
      : agent_(agent), policy_(agent_, std::move(name)) {}

  // policy_ points into agent_, so default copy/move would dangle.
  OwnedPensievePolicy(const OwnedPensievePolicy&) = delete;
  OwnedPensievePolicy& operator=(const OwnedPensievePolicy&) = delete;

  std::string name() const override { return policy_.name(); }
  void begin_video(const VideoManifest& manifest) override {
    policy_.begin_video(manifest);
  }
  std::size_t choose_quality(const AbrObservation& observation) override {
    return policy_.choose_quality(observation);
  }

 private:
  rl::PpoAgent agent_;
  PensievePolicy policy_;
};

}  // namespace netadv::abr
