#include "abr/pensieve.hpp"

#include <algorithm>
#include <stdexcept>

#include "abr/runner.hpp"

namespace netadv::abr {

std::size_t pensieve_feature_size(const VideoManifest& manifest) {
  return 2 + 2 * kPensieveHistory + manifest.num_qualities() + 1;
}

rl::Vec pensieve_features(const AbrObservation& observation,
                          const VideoManifest& manifest) {
  rl::Vec f;
  f.reserve(pensieve_feature_size(manifest));
  f.push_back(observation.last_bitrate_mbps / manifest.max_bitrate_mbps());
  f.push_back(observation.buffer_s / 10.0);
  for (std::size_t i = 0; i < kPensieveHistory; ++i) {
    f.push_back(i < observation.throughput_history_mbps.size()
                    ? observation.throughput_history_mbps[i]
                    : 0.0);
  }
  for (std::size_t i = 0; i < kPensieveHistory; ++i) {
    f.push_back(i < observation.download_time_history_s.size()
                    ? observation.download_time_history_s[i]
                    : 0.0);
  }
  for (std::size_t q = 0; q < manifest.num_qualities(); ++q) {
    const double bits = q < observation.next_chunk_sizes_bits.size()
                            ? observation.next_chunk_sizes_bits[q]
                            : manifest.chunk_size_bits(
                                  std::min(observation.chunk_index,
                                           manifest.num_chunks() - 1),
                                  q);
    f.push_back(bits / 1e6);  // Mbits
  }
  f.push_back(static_cast<double>(observation.remaining_chunks) /
              static_cast<double>(manifest.num_chunks()));
  return f;
}

PensieveEnv::PensieveEnv(VideoManifest manifest,
                         std::vector<trace::Trace> traces, QoeParams qoe)
    : manifest_(std::move(manifest)),
      traces_(std::move(traces)),
      qoe_(qoe),
      session_(manifest_) {
  if (traces_.empty()) throw std::invalid_argument{"PensieveEnv: empty corpus"};
  for (const auto& t : traces_) {
    if (t.empty()) throw std::invalid_argument{"PensieveEnv: empty trace in corpus"};
  }
}

std::size_t PensieveEnv::observation_size() const {
  return pensieve_feature_size(manifest_);
}

rl::ActionSpec PensieveEnv::action_spec() const {
  return rl::ActionSpec::discrete(manifest_.num_qualities());
}

void PensieveEnv::set_traces(std::vector<trace::Trace> traces) {
  if (traces.empty()) throw std::invalid_argument{"PensieveEnv: empty corpus"};
  for (const auto& t : traces) {
    if (t.empty()) throw std::invalid_argument{"PensieveEnv: empty trace in corpus"};
  }
  traces_ = std::move(traces);
}

rl::Vec PensieveEnv::observe() const {
  return pensieve_features(obs_, manifest_);
}

rl::Vec PensieveEnv::reset(util::Rng& rng) {
  current_trace_ = &traces_[rng.index(traces_.size())];
  session_.restart();
  obs_ = AbrObservation{};
  obs_.remaining_chunks = manifest_.num_chunks();
  obs_.last_quality = 0;
  obs_.last_bitrate_mbps = manifest_.bitrate_mbps(0);
  obs_.next_chunk_sizes_bits = manifest_.chunk_sizes_bits(0);
  return observe();
}

rl::StepResult PensieveEnv::step(const rl::Vec& action, util::Rng& /*rng*/) {
  if (current_trace_ == nullptr) {
    throw std::logic_error{"PensieveEnv: step before reset"};
  }
  const auto quality = static_cast<std::size_t>(action.at(0));
  if (quality >= manifest_.num_qualities()) {
    throw std::invalid_argument{"PensieveEnv: bad quality action"};
  }

  const double prev_bitrate = obs_.last_bitrate_mbps;
  const double bandwidth =
      bandwidth_for_chunk(*current_trace_, session_.next_chunk());
  const DownloadResult result = session_.download_next(quality, bandwidth);

  rl::StepResult step_result;
  // First chunk carries no smoothness charge (obs_.last_bitrate was seeded
  // to the chosen ladder's base; chunk_qoe handles the |R1-R0| form via the
  // convention prev == own bitrate on chunk 0).
  const double prev_for_qoe =
      result.chunk_index == 0 ? result.bitrate_mbps : prev_bitrate;
  step_result.reward =
      chunk_qoe(result.bitrate_mbps, result.rebuffer_s, prev_for_qoe, qoe_);
  step_result.done = session_.finished();

  obs_.chunk_index = session_.next_chunk();
  obs_.remaining_chunks = session_.remaining_chunks();
  obs_.buffer_s = session_.buffer_s();
  obs_.last_quality = quality;
  obs_.last_bitrate_mbps = result.bitrate_mbps;
  obs_.throughput_history_mbps.insert(obs_.throughput_history_mbps.begin(),
                                      result.throughput_mbps);
  if (obs_.throughput_history_mbps.size() > kPensieveHistory) {
    obs_.throughput_history_mbps.resize(kPensieveHistory);
  }
  obs_.download_time_history_s.insert(obs_.download_time_history_s.begin(),
                                      result.download_time_s);
  if (obs_.download_time_history_s.size() > kPensieveHistory) {
    obs_.download_time_history_s.resize(kPensieveHistory);
  }
  obs_.next_chunk_sizes_bits =
      step_result.done ? std::vector<double>(manifest_.num_qualities(), 0.0)
                       : manifest_.chunk_sizes_bits(session_.next_chunk());

  step_result.observation = observe();
  return step_result;
}

rl::PpoConfig pensieve_ppo_config() {
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {64, 32};
  cfg.learning_rate = 3e-4;
  cfg.n_steps = 1024;
  cfg.minibatch_size = 128;
  cfg.epochs = 8;
  cfg.ent_coef = 0.02;  // Pensieve relies on entropy regularization
  return cfg;
}

rl::PpoAgent make_pensieve_agent(const VideoManifest& manifest,
                                 std::uint64_t seed,
                                 const rl::PpoConfig& config) {
  return rl::PpoAgent{pensieve_feature_size(manifest),
                      rl::ActionSpec::discrete(manifest.num_qualities()),
                      config, seed};
}

PensievePolicy::PensievePolicy(rl::Agent& agent, std::string name)
    : agent_(&agent), name_(std::move(name)) {}

void PensievePolicy::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
}

std::size_t PensievePolicy::choose_quality(const AbrObservation& observation) {
  if (manifest_ == nullptr) {
    throw std::logic_error{"PensievePolicy: begin_video not called"};
  }
  const rl::Vec features = pensieve_features(observation, *manifest_);
  const rl::Vec action = agent_->act_deterministic(features);
  return static_cast<std::size_t>(action[0]);
}

}  // namespace netadv::abr
