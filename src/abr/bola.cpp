#include "abr/bola.hpp"

#include <cmath>
#include <stdexcept>

namespace netadv::abr {

Bola::Bola(Params params) : params_(params) {
  if (params_.buffer_target_s <= 0.0 || params_.gamma_p <= 0.0) {
    throw std::invalid_argument{"Bola: bad parameters"};
  }
}

void Bola::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
  utilities_.clear();
  const double s_min = manifest.bitrate_kbps(0);
  for (std::size_t q = 0; q < manifest.num_qualities(); ++q) {
    utilities_.push_back(std::log(manifest.bitrate_kbps(q) / s_min));
  }
  // V from BOLA's design rule: at the buffer target the lowest quality's
  // score crosses zero -> V = (Q_target - 1) / (v_0 + gamma_p) with
  // utilities/bufffer measured in chunks; v_0 = 0 for the lowest quality.
  const double q_target = params_.buffer_target_s / manifest.chunk_duration_s();
  v_ = (q_target - 1.0) / (utilities_.front() + params_.gamma_p);
}

std::size_t Bola::choose_quality(const AbrObservation& observation) {
  if (manifest_ == nullptr) throw std::logic_error{"Bola: begin_video not called"};
  const double buffer_chunks =
      observation.buffer_s / manifest_->chunk_duration_s();
  std::size_t best = 0;
  double best_score = -1e18;
  for (std::size_t q = 0; q < manifest_->num_qualities(); ++q) {
    // Relative chunk size in "chunks of lowest quality" units keeps the
    // score scale-free.
    const double s_q =
        manifest_->bitrate_kbps(q) / manifest_->bitrate_kbps(0);
    const double score =
        (v_ * (utilities_[q] + params_.gamma_p) - buffer_chunks) / s_q;
    if (score > best_score) {
      best_score = score;
      best = q;
    }
  }
  return best;
}

}  // namespace netadv::abr
