#include "abr/video.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace netadv::abr {

VideoManifest::VideoManifest(Params params)
    : bitrates_kbps_(std::move(params.bitrates_kbps)),
      num_chunks_(params.num_chunks),
      chunk_duration_s_(params.chunk_duration_s) {
  if (bitrates_kbps_.empty() || num_chunks_ == 0 || chunk_duration_s_ <= 0.0) {
    throw std::invalid_argument{"VideoManifest: bad parameters"};
  }
  for (std::size_t i = 0; i < bitrates_kbps_.size(); ++i) {
    if (bitrates_kbps_[i] <= 0.0 ||
        (i > 0 && bitrates_kbps_[i] <= bitrates_kbps_[i - 1])) {
      throw std::invalid_argument{
          "VideoManifest: bitrates must be positive and strictly increasing"};
    }
  }
  if (params.size_variation < 0.0 || params.size_variation >= 1.0) {
    throw std::invalid_argument{"VideoManifest: size_variation out of [0, 1)"};
  }
  util::Rng rng{params.size_seed};
  size_multipliers_.reserve(num_chunks_);
  for (std::size_t i = 0; i < num_chunks_; ++i) {
    size_multipliers_.push_back(
        rng.uniform(1.0 - params.size_variation, 1.0 + params.size_variation));
  }
}

double VideoManifest::chunk_size_bits(std::size_t index,
                                      std::size_t quality) const {
  if (index >= num_chunks_) throw std::out_of_range{"VideoManifest: chunk index"};
  return bitrates_kbps_.at(quality) * 1000.0 * chunk_duration_s_ *
         size_multipliers_[index];
}

std::vector<double> VideoManifest::chunk_sizes_bits(std::size_t index) const {
  std::vector<double> sizes;
  sizes.reserve(num_qualities());
  for (std::size_t q = 0; q < num_qualities(); ++q) {
    sizes.push_back(chunk_size_bits(index, q));
  }
  return sizes;
}

}  // namespace netadv::abr
