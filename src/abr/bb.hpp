// Buffer-Based rate adaptation (Huang et al., SIGCOMM 2014), the "BB"
// baseline of Section 3: quality is a pure function of buffer occupancy —
// lowest rate below the reservoir, highest above reservoir+cushion, linear
// interpolation between. The paper observes BB holding a >= 10 s buffer and
// switching rates inside a 10-15 s band, so the defaults here are
// reservoir 10 s / cushion 5 s.
#pragma once

#include "abr/protocol.hpp"

namespace netadv::abr {

class BufferBased final : public AbrProtocol {
 public:
  struct Params {
    double reservoir_s = 10.0;
    double cushion_s = 5.0;
  };

  BufferBased() : BufferBased(Params{}) {}
  explicit BufferBased(Params params);

  std::string name() const override { return "bb"; }
  void begin_video(const VideoManifest& manifest) override;
  std::size_t choose_quality(const AbrObservation& observation) override;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  const VideoManifest* manifest_ = nullptr;
};

}  // namespace netadv::abr
