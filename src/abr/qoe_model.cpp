#include "abr/qoe_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/csv.hpp"

namespace netadv::abr {

void QoeModel::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
}

const VideoManifest& QoeModel::manifest() const {
  if (manifest_ == nullptr) {
    throw std::logic_error{"qoe model '" + name() +
                           "': begin_video not called"};
  }
  return *manifest_;
}

void QoeModel::check_scored(std::size_t chunk_index,
                            std::size_t quality) const {
  const VideoManifest& m = manifest();
  if (chunk_index >= m.num_chunks()) {
    throw std::out_of_range{
        "qoe model '" + name() + "': chunk " + std::to_string(chunk_index) +
        " out of range [0, " + std::to_string(m.num_chunks()) + ")"};
  }
  if (quality >= m.num_qualities()) {
    throw std::out_of_range{
        "qoe model '" + name() + "': quality " + std::to_string(quality) +
        " out of range [0, " + std::to_string(m.num_qualities()) + ")"};
  }
}

double QoeModel::chunk_score(std::size_t chunk_index, std::size_t quality,
                             double rebuffer_s, double prev_score) const {
  const double score = quality_score(chunk_index, quality);
  return score - rebuffer_penalty() * rebuffer_s -
         smoothness_penalty() * std::abs(score - prev_score);
}

double QoeModel::total_score(std::span<const std::size_t> qualities,
                             std::span<const double> rebuffer_s) const {
  if (qualities.empty() || qualities.size() != rebuffer_s.size()) {
    throw std::invalid_argument{
        "total_score: quality/rebuffer spans must be non-empty and equal "
        "size (got " +
        std::to_string(qualities.size()) + " qualities, " +
        std::to_string(rebuffer_s.size()) + " rebuffer entries)"};
  }
  double total = 0.0;
  double prev_score = quality_score(0, qualities[0]);
  for (std::size_t i = 0; i < qualities.size(); ++i) {
    total += chunk_score(i, qualities[i], rebuffer_s[i], prev_score);
    prev_score = quality_score(i, qualities[i]);
  }
  return total;
}

double LinQoe::quality_score(std::size_t chunk_index,
                             std::size_t quality) const {
  check_scored(chunk_index, quality);
  return manifest().bitrate_mbps(quality);
}

double LogQoe::quality_score(std::size_t chunk_index,
                             std::size_t quality) const {
  check_scored(chunk_index, quality);
  return std::log(manifest().bitrate_mbps(quality) /
                  manifest().bitrate_mbps(0));
}

void save_ssim_table(const SsimTable& table, const std::string& path) {
  if (table.empty() || table.front().empty()) {
    throw std::runtime_error{"save_ssim_table: empty table"};
  }
  util::CsvWriter writer{path};
  std::vector<std::string> header{"chunk"};
  for (std::size_t q = 0; q < table.front().size(); ++q) {
    header.push_back("q" + std::to_string(q));
  }
  writer.write_row(header);
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].size() != table.front().size()) {
      throw std::runtime_error{"save_ssim_table: ragged table at chunk " +
                               std::to_string(i)};
    }
    std::vector<double> row{static_cast<double>(i)};
    row.insert(row.end(), table[i].begin(), table[i].end());
    writer.write_row(row);
  }
}

SsimTable load_ssim_table(const std::string& path) {
  const util::CsvTable csv = util::read_csv(path);
  if (csv.header.empty() || csv.header.front() != "chunk" ||
      csv.header.size() < 2) {
    throw std::runtime_error{"load_ssim_table: " + path +
                             ": expected header chunk,q0,..."};
  }
  SsimTable table;
  table.reserve(csv.rows.size());
  for (std::size_t i = 0; i < csv.rows.size(); ++i) {
    const std::vector<double>& row = csv.rows[i];
    if (static_cast<std::size_t>(row.front()) != i) {
      throw std::runtime_error{"load_ssim_table: " + path + ": row " +
                               std::to_string(i) +
                               " has chunk index out of order"};
    }
    table.emplace_back(row.begin() + 1, row.end());
  }
  if (table.empty()) {
    throw std::runtime_error{"load_ssim_table: " + path + ": no chunks"};
  }
  return table;
}

SsimTable synthetic_ssim_table(const VideoManifest& manifest) {
  SsimTable table(manifest.num_chunks(),
                  std::vector<double>(manifest.num_qualities(), 0.0));
  for (std::size_t i = 0; i < manifest.num_chunks(); ++i) {
    for (std::size_t q = 0; q < manifest.num_qualities(); ++q) {
      table[i][q] =
          5.0 * std::log2(1.0 + manifest.chunk_size_bits(i, q) / 1e6);
    }
  }
  return table;
}

SsimTableQoe::SsimTableQoe(SsimTable table, Params params)
    : params_(params), table_(std::move(table)), explicit_table_(true) {
  if (table_.empty() || table_.front().empty()) {
    throw std::invalid_argument{"SsimTableQoe: empty table"};
  }
}

void SsimTableQoe::begin_video(const VideoManifest& manifest) {
  QoeModel::begin_video(manifest);
  if (!explicit_table_) {
    table_ = synthetic_ssim_table(manifest);
    return;
  }
  if (table_.size() != manifest.num_chunks() ||
      table_.front().size() != manifest.num_qualities()) {
    throw std::invalid_argument{
        "SsimTableQoe: table is " + std::to_string(table_.size()) + " x " +
        std::to_string(table_.front().size()) + " but the video has " +
        std::to_string(manifest.num_chunks()) + " chunks x " +
        std::to_string(manifest.num_qualities()) + " qualities"};
  }
}

double SsimTableQoe::quality_score(std::size_t chunk_index,
                                   std::size_t quality) const {
  check_scored(chunk_index, quality);
  return table_[chunk_index][quality];
}

}  // namespace netadv::abr
