// RobustMPC (Yin et al., SIGCOMM 2015) — the model-predictive ABR baseline
// the paper re-implements: predict throughput as the harmonic mean of the
// last 5 samples discounted by the recent maximum prediction error, then
// exhaustively search bitrate sequences over a lookahead horizon maximizing
// QoE_lin under the predicted throughput, committing only the first choice.
#pragma once

#include <cstddef>
#include <deque>

#include "abr/protocol.hpp"
#include "abr/qoe.hpp"

namespace netadv::abr {

class RobustMpc final : public AbrProtocol {
 public:
  struct Params {
    std::size_t horizon = 5;            ///< lookahead chunks
    std::size_t throughput_window = 5;  ///< harmonic-mean window
    bool robust = true;                 ///< discount by past prediction error
    QoeParams qoe{};
    double max_buffer_s = 60.0;
  };

  RobustMpc() : RobustMpc(Params{}) {}
  explicit RobustMpc(Params params);

  std::string name() const override { return params_.robust ? "mpc" : "fastmpc"; }
  void begin_video(const VideoManifest& manifest) override;
  std::size_t choose_quality(const AbrObservation& observation) override;

  /// The throughput estimate (Mbps) the controller would use now; exposed
  /// for tests and diagnostics.
  double predicted_throughput_mbps(const AbrObservation& observation) const;

 private:
  double qoe_of_plan(const AbrObservation& observation,
                     std::size_t first_quality, double predicted_mbps) const;

  Params params_;
  const VideoManifest* manifest_ = nullptr;
  // Rolling relative prediction errors for the robust discount.
  std::deque<double> past_errors_;
  double last_prediction_mbps_ = 0.0;
  bool has_prediction_ = false;
};

}  // namespace netadv::abr
