#include "abr/throughput_rule.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::abr {

ThroughputRule::ThroughputRule(Params params) : params_(params) {
  if (params_.window == 0 || params_.safety_factor <= 0.0 ||
      params_.safety_factor > 1.0) {
    throw std::invalid_argument{"ThroughputRule: bad parameters"};
  }
}

void ThroughputRule::begin_video(const VideoManifest& manifest) {
  manifest_ = &manifest;
}

double ThroughputRule::estimate_mbps(const AbrObservation& observation) const {
  if (observation.throughput_history_mbps.empty()) {
    return manifest_ != nullptr ? manifest_->bitrate_mbps(0) : 0.3;
  }
  const std::size_t n =
      std::min(params_.window, observation.throughput_history_mbps.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    denom += 1.0 / observation.throughput_history_mbps[i];
  }
  return static_cast<double>(n) / denom;
}

std::size_t ThroughputRule::choose_quality(const AbrObservation& observation) {
  if (manifest_ == nullptr) {
    throw std::logic_error{"ThroughputRule: begin_video not called"};
  }
  const double budget = params_.safety_factor * estimate_mbps(observation);
  std::size_t choice = 0;
  for (std::size_t q = 0; q < manifest_->num_qualities(); ++q) {
    if (manifest_->bitrate_mbps(q) <= budget) choice = q;
  }
  return choice;
}

}  // namespace netadv::abr
