#include "abr/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::abr {

AbrObservationTracker::AbrObservationTracker(const VideoManifest& manifest,
                                             std::size_t history_window)
    : manifest_(&manifest), history_window_(history_window) {
  if (history_window == 0) {
    throw std::invalid_argument{"AbrObservationTracker: zero history window"};
  }
  obs_.last_quality = 0;
  obs_.last_bitrate_mbps = manifest.bitrate_mbps(0);
  obs_.remaining_chunks = manifest.num_chunks();
  obs_.next_chunk_sizes_bits = manifest.chunk_sizes_bits(0);
}

void AbrObservationTracker::sync_session(std::size_t next_chunk,
                                         std::size_t remaining,
                                         double buffer_s) {
  obs_.chunk_index = next_chunk;
  obs_.remaining_chunks = remaining;
  obs_.buffer_s = buffer_s;
  obs_.next_chunk_sizes_bits =
      next_chunk < manifest_->num_chunks()
          ? manifest_->chunk_sizes_bits(next_chunk)
          : std::vector<double>(manifest_->num_qualities(), 0.0);
}

void AbrObservationTracker::on_chunk(std::size_t quality, double bitrate_mbps,
                                     double throughput_mbps,
                                     double download_time_s) {
  obs_.last_quality = quality;
  obs_.last_bitrate_mbps = bitrate_mbps;
  obs_.throughput_history_mbps.insert(obs_.throughput_history_mbps.begin(),
                                      throughput_mbps);
  if (obs_.throughput_history_mbps.size() > history_window_) {
    obs_.throughput_history_mbps.resize(history_window_);
  }
  obs_.download_time_history_s.insert(obs_.download_time_history_s.begin(),
                                      download_time_s);
  if (obs_.download_time_history_s.size() > history_window_) {
    obs_.download_time_history_s.resize(history_window_);
  }
}

}  // namespace netadv::abr
