// Pluggable QoE models — the seam that lets every protocol and campaign be
// scored under more than QoE_lin (qoe.hpp). Three models ship, mirroring the
// metrics the ABR literature actually optimizes:
//
//   lin   QoE_lin: bitrate (Mbps) quality term, the paper's metric
//   log   QoE_log: log(R / R_min) quality term (MPC's concave variant —
//         doubling a high bitrate matters less than doubling a low one)
//   ssim  per-chunk SSIM-in-dB table (puffer's metric): quality is a
//         property of the *encoded chunk*, not the nominal bitrate, loaded
//         from a CSV (or synthesized deterministically from chunk sizes)
//
// Every model scores a playback the same structural way QoE_lin does:
//
//   sum_i  q(i, quality_i) - rebuffer_penalty * T_i
//          - smoothness_penalty * |q(i, quality_i) - q(i-1, quality_{i-1})|
//
// so models differ only in the per-chunk quality term q(i, quality) and the
// penalty weights. `mpc-dp` (mpc_dp.hpp) plans directly against whichever
// model it is constructed with, and serve::SessionEngine scores every
// session under one. Models are registered by name in core::qoe_models()
// (`qoe = ssim` in campaign specs).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "abr/qoe.hpp"
#include "abr/video.hpp"

namespace netadv::abr {

/// Per-chunk quality scores plus penalty weights. Stateless between videos
/// apart from the manifest binding: call begin_video() before scoring, like
/// AbrProtocol. Scoring is const (and thread-safe) after begin_video.
class QoeModel {
 public:
  virtual ~QoeModel() = default;

  virtual std::string name() const = 0;

  /// Bind the model to a video. Table-backed models validate their
  /// dimensions here (std::invalid_argument names both shapes).
  virtual void begin_video(const VideoManifest& manifest);

  /// Quality term of chunk `chunk_index` served at `quality`. Throws
  /// std::out_of_range enumerating the valid ranges on a bad index, and
  /// std::logic_error before begin_video.
  virtual double quality_score(std::size_t chunk_index,
                               std::size_t quality) const = 0;

  /// Penalty per second of stall, in quality_score units.
  virtual double rebuffer_penalty() const = 0;
  /// Penalty weight per unit of |quality_score change| between chunks.
  virtual double smoothness_penalty() const = 0;

  /// One chunk's contribution given the previous chunk's quality score.
  /// Pass `prev_score == quality_score(chunk_index, quality)` for the first
  /// chunk (no smoothness charge), matching the total_qoe convention.
  double chunk_score(std::size_t chunk_index, std::size_t quality,
                     double rebuffer_s, double prev_score) const;

  /// Whole-playback score from per-chunk quality choices and rebuffer
  /// times. Same preconditions as total_qoe: equal-size, non-empty spans
  /// (std::invalid_argument naming both sizes otherwise).
  double total_score(std::span<const std::size_t> qualities,
                     std::span<const double> rebuffer_s) const;

 protected:
  /// The bound manifest; throws std::logic_error before begin_video.
  const VideoManifest& manifest() const;
  /// Shared range check behind every quality_score implementation: throws
  /// std::out_of_range spelling out the valid [0, N) ranges.
  void check_scored(std::size_t chunk_index, std::size_t quality) const;

 private:
  const VideoManifest* manifest_ = nullptr;
};

/// QoE_lin (qoe.hpp) behind the model interface: quality is the nominal
/// bitrate in Mbps. total_score reproduces total_qoe exactly.
class LinQoe final : public QoeModel {
 public:
  explicit LinQoe(QoeParams params = {}) : params_(params) {}

  std::string name() const override { return "lin"; }
  double quality_score(std::size_t chunk_index,
                       std::size_t quality) const override;
  double rebuffer_penalty() const override { return params_.rebuffer_penalty; }
  double smoothness_penalty() const override {
    return params_.smoothness_penalty;
  }

 private:
  QoeParams params_;
};

/// QoE_log (Yin et al. 2015): quality = log(R / R_min), so quality gains
/// saturate at the top of the ladder. Rebuffer weight 2.66 is the MPC
/// paper's pairing for the log metric.
class LogQoe final : public QoeModel {
 public:
  struct Params {
    double rebuffer_penalty = 2.66;
    double smoothness_penalty = 1.0;
  };

  LogQoe() : LogQoe(Params{}) {}
  explicit LogQoe(Params params) : params_(params) {}

  std::string name() const override { return "log"; }
  double quality_score(std::size_t chunk_index,
                       std::size_t quality) const override;
  double rebuffer_penalty() const override { return params_.rebuffer_penalty; }
  double smoothness_penalty() const override {
    return params_.smoothness_penalty;
  }

 private:
  Params params_;
};

/// SSIM-in-dB of every (chunk, quality) cell; row `chunk_index`, column
/// `quality`. The unit is dB (puffer's 10*log10(1/(1-ssim)) transform), but
/// nothing here depends on that — any per-chunk perceptual table works.
using SsimTable = std::vector<std::vector<double>>;

/// CSV interchange: header `chunk,q0,...,q<Q-1>`, one row per chunk in
/// ascending order. Throws std::runtime_error on I/O/format errors,
/// including out-of-order chunk indices.
void save_ssim_table(const SsimTable& table, const std::string& path);
SsimTable load_ssim_table(const std::string& path);

/// A deterministic stand-in table derived from the manifest's encoded chunk
/// sizes (diminishing-returns dB curve in bits spent), for running the ssim
/// model without measured data: 5 * log2(1 + chunk_size_bits / 1e6).
SsimTable synthetic_ssim_table(const VideoManifest& manifest);

/// Table-backed model (puffer's metric). Constructed with a measured table
/// (dimensions validated against the manifest at begin_video) or without
/// one, in which case begin_video synthesizes synthetic_ssim_table().
class SsimTableQoe final : public QoeModel {
 public:
  struct Params {
    double rebuffer_penalty = 8.0;
    double smoothness_penalty = 1.0;
  };

  /// Synthetic table derived from the manifest at begin_video.
  SsimTableQoe() : SsimTableQoe(Params{}) {}
  explicit SsimTableQoe(Params params) : params_(params) {}
  /// Explicit (e.g. CSV-loaded) table; must match the manifest's
  /// num_chunks x num_qualities.
  explicit SsimTableQoe(SsimTable table)
      : SsimTableQoe(std::move(table), Params{}) {}
  SsimTableQoe(SsimTable table, Params params);

  std::string name() const override { return "ssim"; }
  void begin_video(const VideoManifest& manifest) override;
  double quality_score(std::size_t chunk_index,
                       std::size_t quality) const override;
  double rebuffer_penalty() const override { return params_.rebuffer_penalty; }
  double smoothness_penalty() const override {
    return params_.smoothness_penalty;
  }

  const SsimTable& table() const noexcept { return table_; }

 private:
  Params params_;
  SsimTable table_;
  bool explicit_table_ = false;
};

}  // namespace netadv::abr
