#include "trace/trace.hpp"

#include <cmath>

#include "util/csv.hpp"

namespace netadv::trace {

double Trace::total_duration_s() const noexcept {
  double total = 0.0;
  for (const auto& s : segments_) total += s.duration_s;
  return total;
}

const Segment& Trace::at_time(double t_s) const {
  if (segments_.empty()) throw std::logic_error{"Trace::at_time on empty trace"};
  double elapsed = 0.0;
  for (const auto& s : segments_) {
    elapsed += s.duration_s;
    if (t_s < elapsed) return s;
  }
  return segments_.back();
}

double Trace::mean_bandwidth_mbps() const noexcept {
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& s : segments_) {
    weighted += s.bandwidth_mbps * s.duration_s;
    total += s.duration_s;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

double Trace::bandwidth_total_variation() const noexcept {
  double tv = 0.0;
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    tv += std::abs(segments_[i].bandwidth_mbps - segments_[i - 1].bandwidth_mbps);
  }
  return tv;
}

void save_trace(const Trace& trace, const std::string& path) {
  util::CsvWriter writer{path};
  writer.write_row(std::vector<std::string>{"duration_s", "bandwidth_mbps",
                                            "latency_ms", "loss_rate"});
  for (const auto& s : trace.segments()) {
    writer.write_row(std::vector<double>{s.duration_s, s.bandwidth_mbps,
                                         s.latency_ms, s.loss_rate});
  }
}

Trace load_trace(const std::string& path) {
  const util::CsvTable table = util::read_csv(path);
  if (table.header.size() != 4) {
    throw std::runtime_error{"load_trace: expected 4 columns in " + path};
  }
  std::vector<Segment> segments;
  segments.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    if (row.size() != 4) {
      throw std::runtime_error{"load_trace: ragged row in " + path};
    }
    segments.push_back({row[0], row[1], row[2], row[3]});
  }
  return Trace{std::move(segments)};
}

void save_trace_set(const std::vector<Trace>& traces, const std::string& path) {
  util::CsvWriter writer{path};
  writer.write_row(std::vector<std::string>{
      "trace", "duration_s", "bandwidth_mbps", "latency_ms", "loss_rate"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (const auto& s : traces[i].segments()) {
      writer.write_row(std::vector<double>{static_cast<double>(i), s.duration_s,
                                           s.bandwidth_mbps, s.latency_ms,
                                           s.loss_rate});
    }
  }
}

std::vector<Trace> load_trace_set(const std::string& path) {
  const util::CsvTable table = util::read_csv(path);
  if (table.header.size() != 5) {
    throw std::runtime_error{"load_trace_set: expected 5 columns in " + path};
  }
  std::vector<Trace> traces;
  for (const auto& row : table.rows) {
    const auto index = static_cast<std::size_t>(row[0]);
    if (index >= traces.size()) {
      if (index != traces.size()) {
        throw std::runtime_error{"load_trace_set: non-contiguous trace index in " +
                                 path};
      }
      traces.emplace_back();
    } else if (index + 1 != traces.size()) {
      throw std::runtime_error{"load_trace_set: out-of-order trace index in " +
                               path};
    }
    traces.back().append({row[1], row[2], row[3], row[4]});
  }
  return traces;
}

}  // namespace netadv::trace
