#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::trace {

std::vector<Trace> TraceGenerator::generate_many(std::size_t count,
                                                 util::Rng& rng) const {
  std::vector<Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) traces.push_back(generate(rng));
  return traces;
}

UniformRandomGenerator::UniformRandomGenerator(Params params)
    : params_(params) {
  if (params_.segments == 0 || params_.segment_duration_s <= 0.0 ||
      params_.bandwidth_min_mbps <= 0.0 ||
      params_.bandwidth_max_mbps < params_.bandwidth_min_mbps) {
    throw std::invalid_argument{"UniformRandomGenerator: bad parameters"};
  }
}

Trace UniformRandomGenerator::generate(util::Rng& rng) const {
  Trace trace;
  for (std::size_t i = 0; i < params_.segments; ++i) {
    Segment s;
    s.duration_s = params_.segment_duration_s;
    s.bandwidth_mbps =
        rng.uniform(params_.bandwidth_min_mbps, params_.bandwidth_max_mbps);
    s.latency_ms = rng.uniform(params_.latency_min_ms, params_.latency_max_ms);
    s.loss_rate = rng.uniform(params_.loss_min, params_.loss_max);
    trace.append(s);
  }
  return trace;
}

FccLikeGenerator::FccLikeGenerator(Params params) : params_(params) {
  if (params_.segments == 0 ||
      params_.bandwidth_max_mbps < params_.bandwidth_min_mbps) {
    throw std::invalid_argument{"FccLikeGenerator: bad parameters"};
  }
}

Trace FccLikeGenerator::generate(util::Rng& rng) const {
  Trace trace;
  // Broadband plans cluster toward the upper end of the range; draw the
  // level from a beta-like skew by taking the max of two uniforms.
  auto draw_level = [&] {
    const double u = std::max(rng.uniform(), rng.uniform());
    return params_.bandwidth_min_mbps +
           u * (params_.bandwidth_max_mbps - params_.bandwidth_min_mbps);
  };
  double level = draw_level();
  for (std::size_t i = 0; i < params_.segments; ++i) {
    if (rng.bernoulli(params_.level_change_prob)) level = draw_level();
    const double jitter = 1.0 + params_.jitter_frac * rng.normal();
    Segment s;
    s.duration_s = params_.segment_duration_s;
    s.bandwidth_mbps = std::clamp(level * jitter, params_.bandwidth_min_mbps,
                                  params_.bandwidth_max_mbps);
    s.latency_ms = params_.latency_ms;
    s.loss_rate = 0.0;
    trace.append(s);
  }
  return trace;
}

Hsdpa3gLikeGenerator::Hsdpa3gLikeGenerator(Params params) : params_(params) {
  if (params_.segments == 0 ||
      params_.bandwidth_max_mbps < params_.bandwidth_min_mbps ||
      params_.fade_persistence < 0.0 || params_.fade_persistence >= 1.0) {
    throw std::invalid_argument{"Hsdpa3gLikeGenerator: bad parameters"};
  }
}

Trace Hsdpa3gLikeGenerator::generate(util::Rng& rng) const {
  Trace trace;
  double fade = params_.mean_mbps;
  std::size_t dip_remaining = 0;
  for (std::size_t i = 0; i < params_.segments; ++i) {
    // AR(1) slow fade around the mean.
    fade = params_.mean_mbps +
           params_.fade_persistence * (fade - params_.mean_mbps) +
           params_.fade_sigma_mbps * rng.normal();
    double bw = fade;
    if (dip_remaining > 0) {
      --dip_remaining;
      bw = params_.dip_bandwidth_mbps;
    } else if (rng.bernoulli(params_.dip_prob)) {
      dip_remaining = static_cast<std::size_t>(
          std::max(0.0, rng.exponential(1.0 / params_.dip_mean_segments)));
      bw = params_.dip_bandwidth_mbps;
    }
    Segment s;
    s.duration_s = params_.segment_duration_s;
    s.bandwidth_mbps = std::clamp(bw, params_.bandwidth_min_mbps,
                                  params_.bandwidth_max_mbps);
    s.latency_ms = params_.latency_ms;
    s.loss_rate = 0.0;
    trace.append(s);
  }
  return trace;
}

MarkovGenerator::MarkovGenerator(std::vector<State> states,
                                 std::vector<std::vector<double>> transition,
                                 std::size_t segments,
                                 double segment_duration_s)
    : states_(std::move(states)),
      transition_(std::move(transition)),
      segments_(segments),
      segment_duration_s_(segment_duration_s) {
  if (states_.empty() || transition_.size() != states_.size() ||
      segments_ == 0 || segment_duration_s_ <= 0.0) {
    throw std::invalid_argument{"MarkovGenerator: bad parameters"};
  }
  for (const auto& row : transition_) {
    if (row.size() != states_.size()) {
      throw std::invalid_argument{"MarkovGenerator: ragged transition matrix"};
    }
    double sum = 0.0;
    for (double p : row) {
      if (p < 0.0) throw std::invalid_argument{"MarkovGenerator: negative prob"};
      sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      throw std::invalid_argument{"MarkovGenerator: row must sum to 1"};
    }
  }
}

Trace MarkovGenerator::generate(util::Rng& rng) const {
  Trace trace;
  std::size_t state = rng.index(states_.size());
  for (std::size_t i = 0; i < segments_; ++i) {
    const State& s = states_[state];
    trace.append({segment_duration_s_, s.bandwidth_mbps, s.latency_ms,
                  s.loss_rate});
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t next = states_.size() - 1;
    for (std::size_t j = 0; j < states_.size(); ++j) {
      acc += transition_[state][j];
      if (u < acc) {
        next = j;
        break;
      }
    }
    state = next;
  }
  return trace;
}

}  // namespace netadv::trace
