// Network traces: the time-ordered lists of network conditions that the
// paper's adversary emits and that protocols are replayed against. Each
// segment holds conditions fixed for a duration (the paper's "time step").
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace netadv::trace {

/// One fixed-condition segment of a trace.
struct Segment {
  double duration_s = 0.0;       ///< How long these conditions hold.
  double bandwidth_mbps = 0.0;   ///< Link capacity.
  double latency_ms = 0.0;       ///< One-way propagation delay.
  double loss_rate = 0.0;        ///< Bernoulli random loss in [0, 1].
};

/// A time-ordered list of fixed-condition segments.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Segment> segments)
      : segments_(std::move(segments)) {}

  void append(Segment s) { segments_.push_back(s); }
  std::size_t size() const noexcept { return segments_.size(); }
  bool empty() const noexcept { return segments_.empty(); }
  const Segment& operator[](std::size_t i) const { return segments_.at(i); }
  const std::vector<Segment>& segments() const noexcept { return segments_; }

  double total_duration_s() const noexcept;

  /// Conditions at absolute time `t_s` (clamped to the final segment so a
  /// replay can run past the nominal end, as Mahimahi loops do).
  const Segment& at_time(double t_s) const;

  /// Mean bandwidth weighted by segment duration.
  double mean_bandwidth_mbps() const noexcept;

  /// Sum over consecutive segments of |bw_i - bw_{i-1}|: the trace
  /// "non-smoothness" the paper's adversary is penalized for.
  double bandwidth_total_variation() const noexcept;

 private:
  std::vector<Segment> segments_;
};

/// Save/load the CSV interchange format:
/// header `duration_s,bandwidth_mbps,latency_ms,loss_rate`, one segment per
/// row. Throws std::runtime_error on I/O or format errors.
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

/// Save/load a whole corpus in one CSV (the artifact format of
/// netadv::exp trace-set jobs): header
/// `trace,duration_s,bandwidth_mbps,latency_ms,loss_rate`, one segment per
/// row, rows grouped by 0-based trace index in ascending order. Unlike the
/// bandwidth-only corpus dumps some benches emit, this round-trips every
/// segment field, so a loaded set replays exactly. Throws std::runtime_error
/// on I/O or format errors (including out-of-order trace indices).
void save_trace_set(const std::vector<Trace>& traces, const std::string& path);
std::vector<Trace> load_trace_set(const std::string& path);

}  // namespace netadv::trace
