// Interop with Mahimahi's mm-link trace format (Netravali et al., ATC 2015)
// — the emulator the paper modified for its congestion-control adversary.
//
// An mm-link trace is a text file with one integer per line: the millisecond
// timestamp (from trace start) of a packet-delivery opportunity for one
// 1500-byte MTU. Exporting lets traces recorded from netadv adversaries be
// replayed under real Mahimahi against real kernels; importing lets
// collected mm-link traces drive netadv's simulators.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace netadv::trace {

struct MahimahiOptions {
  double packet_bytes = 1500.0;
  /// Bin width used when *importing* (bandwidth is estimated per bin).
  double import_bin_s = 0.1;
  /// Latency/loss attached to imported segments (mm-link traces carry
  /// neither; Mahimahi models them with separate shells).
  double import_latency_ms = 80.0;
  double import_loss = 0.0;
};

/// Write `trace` as packet-delivery opportunities. Throws on I/O failure or
/// an empty trace.
void save_mahimahi_trace(const Trace& trace, const std::string& path,
                         const MahimahiOptions& options = {});

/// Parse an mm-link file into a Trace of fixed-width segments whose
/// bandwidth matches the delivery opportunities per bin. Throws on missing
/// file, unparsable lines, or non-monotone timestamps.
Trace load_mahimahi_trace(const std::string& path,
                          const MahimahiOptions& options = {});

}  // namespace netadv::trace
