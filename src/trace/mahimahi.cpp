#include "trace/mahimahi.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace netadv::trace {

void save_mahimahi_trace(const Trace& trace, const std::string& path,
                         const MahimahiOptions& options) {
  if (trace.empty()) {
    throw std::invalid_argument{"save_mahimahi_trace: empty trace"};
  }
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"save_mahimahi_trace: cannot open " + path};

  const double packet_bits = options.packet_bytes * 8.0;
  double t_ms = 0.0;
  // Fractional-opportunity carry so low rates still emit opportunities at
  // the exact long-run average.
  double carry = 0.0;
  for (const auto& segment : trace.segments()) {
    const double end_ms = t_ms + segment.duration_s * 1000.0;
    // Opportunities per millisecond at this bandwidth.
    const double per_ms = segment.bandwidth_mbps * 1e6 / packet_bits / 1000.0;
    for (double ms = t_ms; ms < end_ms; ms += 1.0) {
      carry += per_ms;
      while (carry >= 1.0) {
        out << static_cast<std::uint64_t>(ms) << '\n';
        carry -= 1.0;
      }
    }
    t_ms = end_ms;
  }
  if (!out) throw std::runtime_error{"save_mahimahi_trace: write failed"};
}

Trace load_mahimahi_trace(const std::string& path,
                          const MahimahiOptions& options) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_mahimahi_trace: cannot open " + path};

  std::vector<std::uint64_t> stamps;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t pos = 0;
    const std::uint64_t ms = std::stoull(line, &pos);
    if (pos != line.size()) {
      throw std::runtime_error{"load_mahimahi_trace: bad line '" + line + "'"};
    }
    if (!stamps.empty() && ms < stamps.back()) {
      throw std::runtime_error{"load_mahimahi_trace: non-monotone timestamps"};
    }
    stamps.push_back(ms);
  }
  if (stamps.empty()) {
    throw std::runtime_error{"load_mahimahi_trace: no delivery opportunities"};
  }

  const double packet_bits = options.packet_bytes * 8.0;
  const double bin_ms = options.import_bin_s * 1000.0;
  const auto total_ms = static_cast<double>(stamps.back()) + 1.0;
  const auto bins = static_cast<std::size_t>(std::ceil(total_ms / bin_ms));

  std::vector<std::size_t> counts(bins, 0);
  for (std::uint64_t ms : stamps) {
    ++counts[static_cast<std::size_t>(static_cast<double>(ms) / bin_ms)];
  }

  Trace trace;
  for (std::size_t b = 0; b < bins; ++b) {
    const double bits = static_cast<double>(counts[b]) * packet_bits;
    const double bw_mbps =
        std::max(bits / options.import_bin_s / 1e6, 1e-3);  // floor: no 0-bw
    trace.append({options.import_bin_s, bw_mbps, options.import_latency_ms,
                  options.import_loss});
  }
  return trace;
}

}  // namespace netadv::trace
