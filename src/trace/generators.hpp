// Synthetic trace generators.
//
// The paper trains/tests on two corpora we cannot ship: the FCC "Measuring
// Broadband America" dataset [8] and the Norway 3G/HSDPA commute traces
// [19]. Per the substitution policy in DESIGN.md we model each corpus's
// published character instead:
//  * FCC broadband: mostly-stable last-mile links — long level-holds with
//    occasional step changes and mild jitter.
//  * Norway 3G/HSDPA: commute-path cellular — low mean rate, strong slow
//    fading, bursty deep dips (tunnels/underpasses) and recovery ramps.
// Both emit bandwidth sequences in the ABR action range used by the paper's
// adversary (0.8-4.8 Mbps by default) so protocol and adversary operate over
// the same support.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace netadv::trace {

/// Interface for anything that can produce traces (synthetic corpora here;
/// core::TraceRecorder produces adversarial ones).
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  virtual std::string name() const = 0;
  virtual Trace generate(util::Rng& rng) const = 0;

  /// Convenience: a corpus of `count` independent traces.
  std::vector<Trace> generate_many(std::size_t count, util::Rng& rng) const;
};

/// I.i.d. uniform conditions per segment — the paper's "random traces"
/// baseline (Figure 1c uses the same action space as the adversary).
class UniformRandomGenerator final : public TraceGenerator {
 public:
  struct Params {
    std::size_t segments = 48;
    double segment_duration_s = 4.0;
    double bandwidth_min_mbps = 0.8;
    double bandwidth_max_mbps = 4.8;
    double latency_min_ms = 80.0;
    double latency_max_ms = 80.0;
    double loss_min = 0.0;
    double loss_max = 0.0;
  };

  UniformRandomGenerator() : UniformRandomGenerator(Params{}) {}
  explicit UniformRandomGenerator(Params params);
  std::string name() const override { return "uniform-random"; }
  Trace generate(util::Rng& rng) const override;

 private:
  Params params_;
};

/// FCC-broadband-like generator (see file comment).
class FccLikeGenerator final : public TraceGenerator {
 public:
  struct Params {
    std::size_t segments = 48;
    double segment_duration_s = 4.0;
    double bandwidth_min_mbps = 0.8;
    double bandwidth_max_mbps = 4.8;
    /// Probability per segment of a step change to a new level.
    double level_change_prob = 0.06;
    /// Std-dev of multiplicative within-level jitter.
    double jitter_frac = 0.05;
    double latency_ms = 80.0;
  };

  FccLikeGenerator() : FccLikeGenerator(Params{}) {}
  explicit FccLikeGenerator(Params params);
  std::string name() const override { return "fcc-broadband-like"; }
  Trace generate(util::Rng& rng) const override;

 private:
  Params params_;
};

/// Norway-3G/HSDPA-like generator (see file comment).
class Hsdpa3gLikeGenerator final : public TraceGenerator {
 public:
  struct Params {
    std::size_t segments = 48;
    double segment_duration_s = 4.0;
    double bandwidth_min_mbps = 0.2;
    double bandwidth_max_mbps = 4.8;
    /// Mean of the slow-fading process.
    double mean_mbps = 1.8;
    /// AR(1) coefficient of the slow fade.
    double fade_persistence = 0.85;
    /// Std-dev of the fade innovation (Mbps).
    double fade_sigma_mbps = 0.5;
    /// Probability per segment of entering a deep dip (tunnel).
    double dip_prob = 0.05;
    /// Mean dip length in segments (geometric).
    double dip_mean_segments = 2.0;
    double dip_bandwidth_mbps = 0.25;
    double latency_ms = 120.0;
  };

  Hsdpa3gLikeGenerator() : Hsdpa3gLikeGenerator(Params{}) {}
  explicit Hsdpa3gLikeGenerator(Params params);
  std::string name() const override { return "hsdpa-3g-like"; }
  Trace generate(util::Rng& rng) const override;

 private:
  Params params_;
};

/// General Markov-modulated generator over a fixed set of condition states;
/// used by tests and by ablations that need controllable burstiness.
class MarkovGenerator final : public TraceGenerator {
 public:
  struct State {
    double bandwidth_mbps = 1.0;
    double latency_ms = 80.0;
    double loss_rate = 0.0;
  };

  /// `transition[i][j]` is P(next = j | current = i); rows must sum to ~1.
  MarkovGenerator(std::vector<State> states,
                  std::vector<std::vector<double>> transition,
                  std::size_t segments, double segment_duration_s);

  std::string name() const override { return "markov"; }
  Trace generate(util::Rng& rng) const override;

 private:
  std::vector<State> states_;
  std::vector<std::vector<double>> transition_;
  std::size_t segments_;
  double segment_duration_s_;
};

}  // namespace netadv::trace
