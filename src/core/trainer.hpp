// The Section 2.3 robustification pipeline:
//   (1) train the protocol of interest,
//   (2) train an adversary against it,
//   (3) use the trained adversary to generate traces,
//   (4) continue the protocol's training with the adversarial traces
//       added to its training dataset.
// Plus the plain adversary-training entry point used by every experiment
// (the paper's Section 3/4 adversaries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "abr/pensieve.hpp"
#include "core/abr_adversary.hpp"
#include "core/cc_adversary.hpp"
#include "core/registry.hpp"
#include "rl/ppo.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace netadv::core {

/// The paper's per-domain PPO setups behind one seam: two hidden layers of
/// 32/16 for ABR adversaries (Section 3), one hidden layer of 4 neurons for
/// CC adversaries (Section 4). kAny is not a trainable domain and throws.
rl::PpoConfig adversary_ppo_config(TargetDomain domain);

/// PPO setup for the ABR adversary: adversary_ppo_config(kAbr).
rl::PpoConfig abr_adversary_ppo_config();

/// PPO setup for the CC adversary: adversary_ppo_config(kCc).
rl::PpoConfig cc_adversary_ppo_config();

/// Train a fresh PPO adversary against any rl::Env for `steps` environment
/// steps — the single generic trainer both domains share (the paper's
/// protocol-agnostic recipe: only `config` differs between ABR and CC).
/// A non-null `pool` parallelizes the gradient step via the agent's
/// shadow-buffer path; trained parameters are bit-identical either way.
rl::PpoAgent train_adversary(rl::Env& env, const rl::PpoConfig& config,
                             std::size_t steps, std::uint64_t seed,
                             const rl::TrainCallback& callback = nullptr,
                             util::ThreadPool* pool = nullptr);

/// Domain-flavored wrappers: train_adversary with that domain's config.
rl::PpoAgent train_abr_adversary(AbrAdversaryEnv& env, std::size_t steps,
                                 std::uint64_t seed,
                                 const rl::TrainCallback& callback = nullptr,
                                 util::ThreadPool* pool = nullptr);

rl::PpoAgent train_cc_adversary(CcAdversaryEnv& env, std::size_t steps,
                                std::uint64_t seed,
                                const rl::TrainCallback& callback = nullptr,
                                util::ThreadPool* pool = nullptr);

/// One independent adversary-training job: its own env (never shared between
/// jobs — envs are stateful), its own PPO config, and its own seed.
struct AdversaryJob {
  rl::Env* env = nullptr;
  rl::PpoConfig config{};
  std::size_t steps = 0;
  std::uint64_t seed = 0;
};

/// Domain-flavored job aliases: the env type selects the config.
struct AbrAdversaryJob {
  AbrAdversaryEnv* env = nullptr;
  std::size_t steps = 0;
  std::uint64_t seed = 0;
};

struct CcAdversaryJob {
  CcAdversaryEnv* env = nullptr;
  std::size_t steps = 0;
  std::uint64_t seed = 0;
};

/// Train independent adversaries concurrently across `pool` (sequentially
/// when null), one job per slot of the returned vector.
///
/// Determinism contract: each job's training is a pure function of its
/// (env, config, steps, seed) — agents, envs, and RNG state are all
/// job-private, and results land in the slot of their own job index — so the
/// returned agents are bit-identical at every thread count, and identical to
/// running the jobs back-to-back through train_adversary. While a job runs
/// on the pool, its own gradient step degrades to the sequential path
/// (nested parallel_for runs inline), which changes nothing: the
/// shadow-buffer path is bit-identical to sequential by construction.
std::vector<rl::PpoAgent> train_adversaries(
    const std::vector<AdversaryJob>& jobs, util::ThreadPool* pool = nullptr);

/// Domain-flavored wrappers over train_adversaries.
std::vector<rl::PpoAgent> train_abr_adversaries(
    const std::vector<AbrAdversaryJob>& jobs, util::ThreadPool* pool = nullptr);

std::vector<rl::PpoAgent> train_cc_adversaries(
    const std::vector<CcAdversaryJob>& jobs, util::ThreadPool* pool = nullptr);

/// Configuration of the full robustification run (Figure 4's treatment).
struct RobustifyConfig {
  std::size_t protocol_steps = 200000;     ///< total Pensieve budget
  double inject_fraction = 0.9;            ///< pause point (0.9 or 0.7)
  std::size_t adversary_steps = 60000;     ///< adversary training budget
  std::size_t adversarial_traces = 100;    ///< traces to generate and add
  std::uint64_t seed = 1;
  AbrAdversaryEnv::Params adversary_params{};
  /// Parallelizes the gradient steps and the adversarial-trace generation;
  /// the result is bit-identical at every pool size (null = sequential).
  util::ThreadPool* pool = nullptr;
};

struct RobustifyResult {
  rl::TrainReport phase1;
  rl::TrainReport adversary_report;
  rl::TrainReport phase2;
  std::vector<trace::Trace> adversarial_traces;
};

/// Run the pipeline on a Pensieve agent training in `env`. The env's corpus
/// is temporarily augmented with the generated adversarial traces for the
/// final (1 - inject_fraction) of the budget and left augmented on return.
/// With inject_fraction >= 1 this is a plain (baseline) training run.
RobustifyResult robustify_pensieve(rl::PpoAgent& pensieve,
                                   abr::PensieveEnv& env,
                                   const RobustifyConfig& config);

}  // namespace netadv::core
