// The online ABR adversary environment (Section 3).
//
// The RL agent *is the network*: each step it picks the link bandwidth for
// the next video chunk (0.8-4.8 Mbps), the target ABR protocol reacts, and
// the adversary is rewarded per Equation 1 with
//   r_opt        = highest possible QoE over the last 4 network changes,
//   r_protocol   = the target's QoE over those same 4 changes,
//   p_smoothing  = |bw_t - bw_{t-1}|.
// Its observation is the history of the last 10 per-chunk tuples
// (previous bitrate, buffer occupancy, next-chunk sizes, remaining chunks,
// last throughput, last download time) — exactly the paper's feature list.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "abr/optimal.hpp"
#include "abr/protocol.hpp"
#include "abr/qoe.hpp"
#include "abr/sim.hpp"
#include "abr/video.hpp"
#include "core/reward.hpp"
#include "rl/env.hpp"
#include "trace/trace.hpp"

namespace netadv::core {

class AbrAdversaryEnv final : public rl::Env {
 public:
  /// What the adversary can see. kFull is the paper's online adversary;
  /// kTimeOnly observes only playback progress — an open-loop, time-indexed
  /// policy standing in for the trace-based formulation of Section 2.1
  /// (bench_ablation_online compares the two).
  enum class ObsMode { kFull, kTimeOnly };

  /// What the adversary optimizes (Section 5, "Different adversarial
  /// goals"). kQoeRegret is the paper's Equation-1 objective; kRebuffering
  /// rewards stall time it induces beyond what an optimal controller would
  /// have suffered; kLowBitrate rewards pushing the target below the
  /// bitrate an optimal controller could have sustained.
  enum class Goal { kQoeRegret, kRebuffering, kLowBitrate };

  struct Params {
    ObsMode obs_mode = ObsMode::kFull;
    Goal goal = Goal::kQoeRegret;
    double bandwidth_min_mbps = 0.8;
    double bandwidth_max_mbps = 4.8;
    /// Section 5, "Constraining Adversaries": when `base_trace` is
    /// non-empty the adversary no longer picks absolute bandwidths —
    /// its action is a bounded *perturbation* of the base trace's
    /// per-chunk bandwidth (|delta| <= max_perturbation_mbps, result still
    /// clamped into [bandwidth_min, bandwidth_max]). This searches for
    /// "small changes to an existing test case" that break the target.
    trace::Trace base_trace{};
    double max_perturbation_mbps = 1.0;
    std::size_t opt_window = 4;        ///< r_opt lookback (network changes)
    std::size_t history = 10;          ///< observations in the state
    double smoothing_weight = 1.0;     ///< scales |bw_t - bw_{t-1}|
    abr::QoeParams qoe{};
    /// Normalize the window QoE terms by the window length so rewards stay
    /// on a per-chunk scale.
    bool per_chunk_reward = true;
  };

  /// `protocol` must outlive the environment.
  AbrAdversaryEnv(abr::VideoManifest manifest, abr::AbrProtocol& protocol)
      : AbrAdversaryEnv(std::move(manifest), protocol, Params{}) {}
  AbrAdversaryEnv(abr::VideoManifest manifest, abr::AbrProtocol& protocol,
                  Params params);

  std::string name() const override { return "abr-adversary"; }
  std::size_t observation_size() const override;
  rl::ActionSpec action_spec() const override;
  rl::Vec reset(util::Rng& rng) override;
  rl::StepResult step(const rl::Vec& action, util::Rng& rng) override;

  /// Decomposed reward of the most recent step (for tests/diagnostics).
  const AdversaryReward& last_reward() const noexcept { return last_reward_; }
  /// Bandwidths chosen so far this episode — the adversarial trace.
  const std::vector<double>& episode_bandwidths() const noexcept {
    return episode_bandwidths_;
  }
  /// Qualities the target picked this episode.
  const std::vector<std::size_t>& episode_qualities() const noexcept {
    return episode_qualities_;
  }
  /// Client buffer after each chunk this episode.
  const std::vector<double>& episode_buffers() const noexcept {
    return episode_buffers_;
  }
  /// Stall time incurred by each chunk this episode.
  const std::vector<double>& episode_rebuffers() const noexcept {
    return episode_rebuffers_;
  }
  const abr::VideoManifest& manifest() const noexcept { return manifest_; }
  const Params& params() const noexcept { return params_; }
  double chunk_duration_s() const noexcept {
    return manifest_.chunk_duration_s();
  }

 private:
  /// One per-chunk observation tuple as the paper lists it.
  struct ObsTuple {
    double prev_bitrate_mbps = 0.0;
    double buffer_s = 0.0;
    std::vector<double> next_sizes_bits;
    double remaining_frac = 0.0;
    double throughput_mbps = 0.0;
    double download_time_s = 0.0;
  };

  /// Snapshot of protocol state just before a chunk, for the r_opt window.
  struct WindowEntry {
    std::size_t chunk = 0;
    double buffer_before_s = 0.0;
    double prev_bitrate_mbps = 0.0;
    double bandwidth_mbps = 0.0;
    std::size_t quality = 0;
  };

  std::size_t tuple_size() const noexcept {
    return 5 + manifest_.num_qualities();
  }
  rl::Vec flatten_history() const;
  void push_tuple(ObsTuple tuple);

  abr::VideoManifest manifest_;
  abr::AbrProtocol* protocol_;
  Params params_;

  abr::StreamingSession session_;
  abr::AbrObservationTracker tracker_;
  std::deque<ObsTuple> history_;
  std::deque<WindowEntry> window_;
  std::vector<double> episode_bandwidths_;
  std::vector<std::size_t> episode_qualities_;
  std::vector<double> episode_buffers_;
  std::vector<double> episode_rebuffers_;
  AdversaryReward last_reward_{};
  bool episode_active_ = false;
};

}  // namespace netadv::core
