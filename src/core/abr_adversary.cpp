#include "core/abr_adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::core {

AbrAdversaryEnv::AbrAdversaryEnv(abr::VideoManifest manifest,
                                 abr::AbrProtocol& protocol, Params params)
    : manifest_(std::move(manifest)),
      protocol_(&protocol),
      params_(params),
      session_(manifest_),
      tracker_(manifest_) {
  if (params_.bandwidth_min_mbps <= 0.0 ||
      params_.bandwidth_max_mbps <= params_.bandwidth_min_mbps) {
    throw std::invalid_argument{"AbrAdversaryEnv: bad bandwidth range"};
  }
  if (params_.opt_window == 0 || params_.history == 0) {
    throw std::invalid_argument{"AbrAdversaryEnv: bad window parameters"};
  }
  if (!params_.base_trace.empty() && params_.max_perturbation_mbps <= 0.0) {
    throw std::invalid_argument{"AbrAdversaryEnv: bad max_perturbation"};
  }
}

std::size_t AbrAdversaryEnv::observation_size() const {
  return params_.obs_mode == ObsMode::kTimeOnly ? 1
                                                : params_.history * tuple_size();
}

rl::ActionSpec AbrAdversaryEnv::action_spec() const {
  if (!params_.base_trace.empty()) {
    return rl::ActionSpec::continuous({-params_.max_perturbation_mbps},
                                      {params_.max_perturbation_mbps});
  }
  return rl::ActionSpec::continuous({params_.bandwidth_min_mbps},
                                    {params_.bandwidth_max_mbps});
}

rl::Vec AbrAdversaryEnv::flatten_history() const {
  if (params_.obs_mode == ObsMode::kTimeOnly) {
    return {static_cast<double>(session_.next_chunk()) /
            static_cast<double>(manifest_.num_chunks())};
  }
  rl::Vec out;
  out.reserve(observation_size());
  // Most recent tuple first; zero-pad to the fixed history length.
  for (std::size_t i = 0; i < params_.history; ++i) {
    if (i < history_.size()) {
      const ObsTuple& t = history_[i];
      out.push_back(t.prev_bitrate_mbps);
      out.push_back(t.buffer_s);
      for (double bits : t.next_sizes_bits) out.push_back(bits / 1e6);
      out.push_back(t.remaining_frac);
      out.push_back(t.throughput_mbps);
      out.push_back(t.download_time_s);
    } else {
      for (std::size_t k = 0; k < tuple_size(); ++k) out.push_back(0.0);
    }
  }
  return out;
}

void AbrAdversaryEnv::push_tuple(ObsTuple tuple) {
  history_.push_front(std::move(tuple));
  while (history_.size() > params_.history) history_.pop_back();
}

rl::Vec AbrAdversaryEnv::reset(util::Rng& /*rng*/) {
  session_.restart();
  tracker_ = abr::AbrObservationTracker{manifest_};
  protocol_->begin_video(manifest_);
  history_.clear();
  window_.clear();
  episode_bandwidths_.clear();
  episode_qualities_.clear();
  episode_buffers_.clear();
  episode_rebuffers_.clear();
  last_reward_ = AdversaryReward{};
  episode_active_ = true;

  // Initial observation: what the protocol is about to see.
  ObsTuple first;
  first.prev_bitrate_mbps = manifest_.bitrate_mbps(0);
  first.buffer_s = 0.0;
  first.next_sizes_bits = manifest_.chunk_sizes_bits(0);
  first.remaining_frac = 1.0;
  push_tuple(std::move(first));
  return flatten_history();
}

rl::StepResult AbrAdversaryEnv::step(const rl::Vec& action,
                                     util::Rng& /*rng*/) {
  if (!episode_active_) throw std::logic_error{"AbrAdversaryEnv: step before reset"};
  const rl::Vec physical = action_spec().to_physical(action);
  double bandwidth = physical[0];
  if (!params_.base_trace.empty()) {
    // Perturbation mode: the action is a delta around the base test case.
    const std::size_t chunk =
        std::min(session_.next_chunk(), params_.base_trace.size() - 1);
    bandwidth = std::clamp(
        params_.base_trace[chunk].bandwidth_mbps + physical[0],
        params_.bandwidth_min_mbps, params_.bandwidth_max_mbps);
  }

  // Record the protocol's pre-chunk state for the r_opt window.
  WindowEntry entry;
  entry.chunk = session_.next_chunk();
  entry.buffer_before_s = session_.buffer_s();
  entry.prev_bitrate_mbps = tracker_.current().last_bitrate_mbps;

  // Let the target choose, then stream the chunk under our conditions.
  tracker_.sync_session(session_.next_chunk(), session_.remaining_chunks(),
                        session_.buffer_s());
  const std::size_t quality = protocol_->choose_quality(tracker_.current());
  if (quality >= manifest_.num_qualities()) {
    throw std::logic_error{"AbrAdversaryEnv: protocol returned bad quality"};
  }
  const abr::DownloadResult result = session_.download_next(quality, bandwidth);
  tracker_.on_chunk(quality, result.bitrate_mbps, result.throughput_mbps,
                    result.download_time_s);

  entry.bandwidth_mbps = bandwidth;
  entry.quality = quality;
  window_.push_back(entry);
  while (window_.size() > params_.opt_window) window_.pop_front();

  episode_bandwidths_.push_back(bandwidth);
  episode_qualities_.push_back(quality);
  episode_buffers_.push_back(result.buffer_after_s);
  episode_rebuffers_.push_back(result.rebuffer_s);

  // Equation 1 over the trailing window of network changes. The optimal and
  // protocol terms depend on the configured goal (Section 5's "different
  // adversarial goals"); kQoeRegret is the paper's headline objective.
  const WindowEntry& start = window_.front();
  std::vector<double> bandwidths;
  std::vector<std::size_t> qualities;
  for (const auto& w : window_) {
    bandwidths.push_back(w.bandwidth_mbps);
    qualities.push_back(w.quality);
  }
  switch (params_.goal) {
    case Goal::kQoeRegret:
      last_reward_.optimal = abr::optimal_window_qoe(
          manifest_, start.chunk, start.buffer_before_s,
          start.prev_bitrate_mbps, bandwidths, params_.qoe);
      last_reward_.protocol = abr::window_qoe(
          manifest_, start.chunk, start.buffer_before_s,
          start.prev_bitrate_mbps, qualities, bandwidths, params_.qoe);
      break;
    case Goal::kRebuffering: {
      // "an ABR adversary could be created with the specific goal of
      // causing rebuffering": optimal stall is what perfect foresight would
      // have suffered (usually 0); protocol term is the negated stall it
      // actually caused, so stall beyond the unavoidable pays the adversary.
      double window_rebuffer = 0.0;
      const std::size_t n = std::min(params_.opt_window, episode_rebuffers_.size());
      for (std::size_t k = episode_rebuffers_.size() - n;
           k < episode_rebuffers_.size(); ++k) {
        window_rebuffer += episode_rebuffers_[k];
      }
      last_reward_.optimal = 0.0;
      last_reward_.protocol = -window_rebuffer;
      break;
    }
    case Goal::kLowBitrate: {
      // "...or low bit-rate playback": reward the gap between the mean
      // offered bandwidth (a bitrate an omniscient controller could stream)
      // and the mean bitrate the target actually played.
      double offered = 0.0;
      double played = 0.0;
      for (std::size_t k = 0; k < window_.size(); ++k) {
        offered += std::min(bandwidths[k], manifest_.max_bitrate_mbps());
        played += manifest_.bitrate_mbps(qualities[k]);
      }
      last_reward_.optimal = offered;
      last_reward_.protocol = played;
      break;
    }
  }
  const double prev_bw = episode_bandwidths_.size() >= 2
                             ? episode_bandwidths_[episode_bandwidths_.size() - 2]
                             : bandwidth;
  last_reward_.smoothing =
      params_.smoothing_weight * std::abs(bandwidth - prev_bw);

  if (params_.per_chunk_reward) {
    const auto n = static_cast<double>(window_.size());
    last_reward_.optimal /= n;
    last_reward_.protocol /= n;
  }

  rl::StepResult step_result;
  step_result.reward = last_reward_.value();
  step_result.done = session_.finished();
  episode_active_ = !step_result.done;

  // Update the adversary's view with what it just observed.
  ObsTuple tuple;
  tuple.prev_bitrate_mbps = result.bitrate_mbps;
  tuple.buffer_s = session_.buffer_s();
  tuple.next_sizes_bits =
      step_result.done
          ? std::vector<double>(manifest_.num_qualities(), 0.0)
          : manifest_.chunk_sizes_bits(session_.next_chunk());
  tuple.remaining_frac = static_cast<double>(session_.remaining_chunks()) /
                         static_cast<double>(manifest_.num_chunks());
  tuple.throughput_mbps = result.throughput_mbps;
  tuple.download_time_s = result.download_time_s;
  push_tuple(std::move(tuple));

  step_result.observation = flatten_history();
  return step_result;
}

}  // namespace netadv::core
