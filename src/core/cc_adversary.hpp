// The online congestion-control adversary environment (Section 4).
//
// Every 30 ms the agent observes (link utilization, queueing delay) and sets
// the link's (bandwidth, latency, loss rate) within Table 1's ranges:
// bandwidth 6-24 Mbps, latency 15-60 ms, loss 0-10%. Its reward is
//
//     r = 1 - U - L - 0.01 * S
//
// where U is link utilization, L the loss rate it chose, and S a smoothing
// factor from the distance between the current bandwidth/latency and
// exponentially-weighted moving averages of both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cc/link.hpp"
#include "cc/runner.hpp"
#include "cc/sender.hpp"
#include "core/reward.hpp"
#include "rl/env.hpp"

namespace netadv::core {

class CcAdversaryEnv final : public rl::Env {
 public:
  using SenderFactory = std::function<std::unique_ptr<cc::CcSender>()>;

  /// What the adversary optimizes (Section 5, "Different adversarial
  /// goals"). kUnderutilization is the paper's r = 1 - U - L - 0.01 S;
  /// kCongestion instead rewards the queueing delay the target inflicts on
  /// the path ("finding conditions in which the protocol causes the highest
  /// amount of congestion").
  enum class Goal { kUnderutilization, kCongestion };

  struct Params {
    Goal goal = Goal::kUnderutilization;
    // Table 1 action ranges.
    double bandwidth_min_mbps = 6.0;
    double bandwidth_max_mbps = 24.0;
    double latency_min_ms = 15.0;
    double latency_max_ms = 60.0;
    double loss_min = 0.0;
    double loss_max = 0.10;

    double epoch_s = 0.030;            ///< adversary action granularity
    double episode_duration_s = 30.0;  ///< Figure 5's trace length
    double smoothing_coefficient = 0.01;
    double ewma_alpha = 0.1;           ///< EWMA used inside S
    /// Queue-delay observation scale (seconds -> O(1) feature).
    double queue_delay_scale_s = 0.25;
    cc::LinkSim::Params link{};
  };

  /// `factory` builds a fresh target sender per episode (default: BBR).
  CcAdversaryEnv() : CcAdversaryEnv(Params{}, nullptr) {}
  explicit CcAdversaryEnv(Params params, SenderFactory factory = nullptr);

  std::string name() const override { return "cc-adversary"; }
  std::size_t observation_size() const override { return 2; }
  rl::ActionSpec action_spec() const override;
  rl::Vec reset(util::Rng& rng) override;
  rl::StepResult step(const rl::Vec& action, util::Rng& rng) override;

  const AdversaryReward& last_reward() const noexcept { return last_reward_; }
  const Params& params() const noexcept { return params_; }
  /// Live access to the flow under attack (for the Figure-5/6 recorders).
  cc::CcRunner* runner() noexcept { return runner_.get(); }
  cc::CcSender* sender() noexcept { return sender_.get(); }
  const cc::IntervalStats& last_interval() const noexcept {
    return last_interval_;
  }
  std::size_t epochs_per_episode() const noexcept {
    return static_cast<std::size_t>(params_.episode_duration_s /
                                    params_.epoch_s + 0.5);
  }

 private:
  rl::Vec observe() const;

  Params params_;
  SenderFactory factory_;

  std::unique_ptr<cc::CcSender> sender_;
  std::unique_ptr<cc::CcRunner> runner_;
  std::size_t epoch_index_ = 0;
  cc::IntervalStats last_interval_{};
  AdversaryReward last_reward_{};

  // Smoothing-factor EWMAs over *normalized* bandwidth/latency so S is
  // dimensionless and the 0.01 coefficient is meaningful.
  double ewma_bw_norm_ = 0.0;
  double ewma_lat_norm_ = 0.0;
  bool ewma_initialized_ = false;
};

}  // namespace netadv::core
