// The fairness adversary — a Section-5 direction made concrete: learn link
// conditions under which flows sharing the bottleneck diverge, even though
// fair sharing is attainable. Every knob and constraint mirrors the paper's
// CC adversary (Table 1 ranges, 30-ms epochs, smoothing via EWMAs); only the
// objective changes:
//
//     r = unfairness - L - 0.01 * S
//
// where `unfairness` is either 1 - Jain(mix throughputs) (RewardKind::kJain)
// or 1 - n * victim-flow utilization (RewardKind::kVictim, the victim being
// the first flow of the mix). The adversary is paid for the imbalance it
// induces, charged for loss it injects (random loss hits all flows
// symmetrically, so it cannot create unfairness "for free"), and penalized
// for noisy traces. Starved intervals earn nothing: Jain of an all-zero
// throughput vector is 1 (trivially fair) and the victim term is gated when
// the link moved no traffic at all.
//
// Three adversary-facing scenario kinds (the core/registry names):
//   fairness       the flow mix alone, staggered arrivals (the baseline);
//   cross-traffic  the mix plus an on/off bursty non-congestion-responsive
//                  accomplice flow whose burst schedule is drawn per episode;
//   late-join      the mix's last flow arrives at a time drawn uniformly per
//                  episode, so the adversary can ambush the join.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/link.hpp"
#include "cc/multiflow.hpp"
#include "cc/sender.hpp"
#include "core/reward.hpp"
#include "rl/env.hpp"

namespace netadv::core {

class OnOffBlastSender;  // the cross-traffic accomplice (defined in the .cpp)

class FairnessAdversaryEnv final : public rl::Env {
 public:
  using SenderFactory = std::function<std::unique_ptr<cc::CcSender>()>;

  /// Which contention story the episode tells (see the header comment).
  enum class Scenario { kFairness, kCrossTraffic, kLateJoin };

  /// What the adversary is paid for: Jain unfairness across the mix, or
  /// suppression of the victim flow (mix flow 0) below its fair share.
  enum class RewardKind { kJain, kVictim };

  struct Params {
    // Table 1 action ranges (same as CcAdversaryEnv).
    double bandwidth_min_mbps = 6.0;
    double bandwidth_max_mbps = 24.0;
    double latency_min_ms = 15.0;
    double latency_max_ms = 60.0;
    double loss_min = 0.0;
    double loss_max = 0.10;

    double epoch_s = 0.030;
    double episode_duration_s = 30.0;
    /// Flow i starts at i * stagger_s: identical flows on a shared link are
    /// symmetric, so without an offset a single-knob adversary has nothing
    /// to grab; staggering desynchronizes their probing schedules. Reward is
    /// gated to epochs where every flow has started.
    double stagger_s = 5.0;
    double smoothing_coefficient = 0.01;
    double ewma_alpha = 0.1;
    double queue_delay_scale_s = 0.25;
    cc::LinkSim::Params link{};

    Scenario scenario = Scenario::kFairness;
    RewardKind reward = RewardKind::kJain;

    /// kCrossTraffic: the accomplice bursts at `cross_rate_mbps` under a
    /// `cross_cwnd_packets` window, on/off with mean period `cross_period_s`
    /// (each on/off stretch is drawn in [0.5, 1.5] x period at reset, so the
    /// schedule is episode-deterministic but not metronomic).
    double cross_rate_mbps = 24.0;
    double cross_cwnd_packets = 64.0;
    double cross_period_s = 1.0;

    /// kLateJoin: the mix's last flow arrives at U(min, max), drawn per
    /// episode from the reset RNG.
    double late_join_min_s = 2.0;
    double late_join_max_s = 10.0;
  };

  /// `factories` build the competing flows each episode (default: two BBRs).
  FairnessAdversaryEnv() : FairnessAdversaryEnv(Params{}) {}
  explicit FairnessAdversaryEnv(Params params,
                                std::vector<SenderFactory> factories = {});
  ~FairnessAdversaryEnv() override;

  std::string name() const override;
  /// Observation: (flow-0 throughput share of the mix, aggregate
  /// utilization, queueing delay) — what an on-path observer can measure.
  /// Always finite: a starved interval's share is defined as 1/n.
  std::size_t observation_size() const override { return 3; }
  rl::ActionSpec action_spec() const override;
  rl::Vec reset(util::Rng& rng) override;
  rl::StepResult step(const rl::Vec& action, util::Rng& rng) override;

  const AdversaryReward& last_reward() const noexcept { return last_reward_; }
  double last_jain() const noexcept { return last_jain_; }
  /// Victim (mix flow 0) share of the link's capacity over the last epoch.
  double last_victim_utilization() const noexcept { return last_victim_util_; }
  /// The whole last interval (per-flow stats include any cross-traffic
  /// accomplice after the first mix_flow_count() entries).
  const cc::MultiFlowRunner::Interval& last_interval() const noexcept {
    return last_interval_;
  }
  /// Flows that belong to the competing mix (excludes the accomplice).
  std::size_t mix_flow_count() const noexcept { return factories_.size(); }
  /// kLateJoin: this episode's drawn arrival time; 0 otherwise.
  double late_join_time_s() const noexcept { return late_join_time_s_; }
  /// When the last mix flow starts this episode; the reward is gated (pay
  /// term forced to its fair value) until one epoch after this.
  double all_started_at_s() const noexcept { return all_started_at_s_; }
  const Params& params() const noexcept { return params_; }
  std::size_t epochs_per_episode() const noexcept {
    return static_cast<std::size_t>(params_.episode_duration_s /
                                    params_.epoch_s + 0.5);
  }

 private:
  rl::Vec observe() const;
  /// Mix-flow throughputs of the last interval (accomplice excluded).
  std::vector<double> mix_throughputs() const;

  Params params_;
  std::vector<SenderFactory> factories_;

  std::vector<std::unique_ptr<cc::CcSender>> senders_;
  std::unique_ptr<OnOffBlastSender> cross_sender_;
  /// Accomplice on/off state at the start of each epoch, drawn at reset.
  std::vector<char> cross_active_;
  std::unique_ptr<cc::MultiFlowRunner> runner_;
  std::size_t epoch_index_ = 0;
  double all_started_at_s_ = 0.0;
  double late_join_time_s_ = 0.0;
  cc::MultiFlowRunner::Interval last_interval_{};
  AdversaryReward last_reward_{};
  double last_jain_ = 1.0;
  double last_victim_util_ = 0.0;

  double ewma_bw_norm_ = 0.0;
  double ewma_lat_norm_ = 0.0;
  bool ewma_initialized_ = false;
};

/// Scenario for a registry adversary-kind name ("fairness", "cross-traffic",
/// "late-join"); nullopt for non-fairness kinds (ppo, cem). The single
/// mapping jobs.cpp and the campaign grid expander both dispatch on.
std::optional<FairnessAdversaryEnv::Scenario> fairness_scenario_for(
    const std::string& adversary_kind);

/// Parse `reward = jain | victim`; throws naming the valid spellings.
FairnessAdversaryEnv::RewardKind parse_fairness_reward(
    const std::string& text);

}  // namespace netadv::core
