// The fairness adversary — a Section-5 direction made concrete: learn link
// conditions under which two flows sharing the bottleneck diverge, even
// though fair sharing is attainable. Every knob and constraint mirrors the
// paper's CC adversary (Table 1 ranges, 30-ms epochs, smoothing via EWMAs);
// only the objective changes:
//
//     r = (1 - Jain(throughputs)) - L - 0.01 * S
//
// i.e. the adversary is paid for unfairness it induces, charged for loss it
// injects (random loss hits both flows symmetrically, so it cannot create
// unfairness "for free"), and penalized for noisy traces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cc/link.hpp"
#include "cc/multiflow.hpp"
#include "cc/sender.hpp"
#include "core/reward.hpp"
#include "rl/env.hpp"

namespace netadv::core {

class FairnessAdversaryEnv final : public rl::Env {
 public:
  using SenderFactory = std::function<std::unique_ptr<cc::CcSender>()>;

  struct Params {
    // Table 1 action ranges (same as CcAdversaryEnv).
    double bandwidth_min_mbps = 6.0;
    double bandwidth_max_mbps = 24.0;
    double latency_min_ms = 15.0;
    double latency_max_ms = 60.0;
    double loss_min = 0.0;
    double loss_max = 0.10;

    double epoch_s = 0.030;
    double episode_duration_s = 30.0;
    /// Flow i starts at i * stagger_s: identical flows on a shared link are
    /// symmetric, so without an offset a single-knob adversary has nothing
    /// to grab; staggering desynchronizes their probing schedules. Reward is
    /// gated to epochs where every flow has started.
    double stagger_s = 5.0;
    double smoothing_coefficient = 0.01;
    double ewma_alpha = 0.1;
    double queue_delay_scale_s = 0.25;
    cc::LinkSim::Params link{};
  };

  /// `factories` build the competing flows each episode (default: two BBRs).
  FairnessAdversaryEnv() : FairnessAdversaryEnv(Params{}) {}
  explicit FairnessAdversaryEnv(Params params,
                                std::vector<SenderFactory> factories = {});

  std::string name() const override { return "fairness-adversary"; }
  /// Observation: (flow-0 throughput share, aggregate utilization,
  /// queueing delay) — what an on-path observer can measure.
  std::size_t observation_size() const override { return 3; }
  rl::ActionSpec action_spec() const override;
  rl::Vec reset(util::Rng& rng) override;
  rl::StepResult step(const rl::Vec& action, util::Rng& rng) override;

  const AdversaryReward& last_reward() const noexcept { return last_reward_; }
  double last_jain() const noexcept { return last_jain_; }
  const Params& params() const noexcept { return params_; }
  std::size_t epochs_per_episode() const noexcept {
    return static_cast<std::size_t>(params_.episode_duration_s /
                                    params_.epoch_s + 0.5);
  }

 private:
  rl::Vec observe() const;

  Params params_;
  std::vector<SenderFactory> factories_;

  std::vector<std::unique_ptr<cc::CcSender>> senders_;
  std::unique_ptr<cc::MultiFlowRunner> runner_;
  std::size_t epoch_index_ = 0;
  cc::MultiFlowRunner::Interval last_interval_{};
  AdversaryReward last_reward_{};
  double last_jain_ = 1.0;

  double ewma_bw_norm_ = 0.0;
  double ewma_lat_norm_ = 0.0;
  bool ewma_initialized_ = false;
};

}  // namespace netadv::core
