#include "core/cc_adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cc/bbr.hpp"

namespace netadv::core {

CcAdversaryEnv::CcAdversaryEnv(Params params, SenderFactory factory)
    : params_(params),
      factory_(factory ? std::move(factory) : [] {
        return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
      }) {
  if (params_.bandwidth_min_mbps <= 0.0 ||
      params_.bandwidth_max_mbps <= params_.bandwidth_min_mbps ||
      params_.latency_min_ms < 0.0 ||
      params_.latency_max_ms < params_.latency_min_ms ||
      params_.loss_min < 0.0 || params_.loss_max > 1.0 ||
      params_.loss_max < params_.loss_min || params_.epoch_s <= 0.0 ||
      params_.episode_duration_s < params_.epoch_s) {
    throw std::invalid_argument{"CcAdversaryEnv: bad parameters"};
  }
}

rl::ActionSpec CcAdversaryEnv::action_spec() const {
  return rl::ActionSpec::continuous(
      {params_.bandwidth_min_mbps, params_.latency_min_ms, params_.loss_min},
      {params_.bandwidth_max_mbps, params_.latency_max_ms, params_.loss_max});
}

rl::Vec CcAdversaryEnv::observe() const {
  return {last_interval_.utilization(),
          std::min(1.0, last_interval_.mean_queue_delay_s /
                            params_.queue_delay_scale_s)};
}

rl::Vec CcAdversaryEnv::reset(util::Rng& rng) {
  sender_ = factory_();
  cc::LinkSim::Params link = params_.link;
  // Episodes start mid-range so the first observation is informative.
  link.initial.bandwidth_mbps =
      0.5 * (params_.bandwidth_min_mbps + params_.bandwidth_max_mbps);
  link.initial.one_way_delay_ms =
      0.5 * (params_.latency_min_ms + params_.latency_max_ms);
  link.initial.loss_rate = 0.0;
  runner_ = std::make_unique<cc::CcRunner>(*sender_, link, rng());
  epoch_index_ = 0;
  last_interval_ = cc::IntervalStats{};
  last_reward_ = AdversaryReward{};
  ewma_initialized_ = false;

  // Let one epoch elapse under the initial conditions so utilization and
  // queueing delay are defined.
  runner_->run_until(params_.epoch_s);
  last_interval_ = runner_->collect();
  ++epoch_index_;
  return observe();
}

rl::StepResult CcAdversaryEnv::step(const rl::Vec& action, util::Rng& /*rng*/) {
  if (!runner_) throw std::logic_error{"CcAdversaryEnv: step before reset"};

  const rl::Vec physical = action_spec().to_physical(action);
  const double bandwidth = physical[0];
  const double latency = physical[1];
  const double loss = physical[2];

  runner_->set_conditions({bandwidth, latency, loss});
  const double t_end = static_cast<double>(epoch_index_ + 1) * params_.epoch_s;
  runner_->run_until(t_end);
  last_interval_ = runner_->collect();
  ++epoch_index_;

  // Smoothing factor S over normalized knobs (EWMA distance).
  const double bw_norm = (bandwidth - params_.bandwidth_min_mbps) /
                         (params_.bandwidth_max_mbps - params_.bandwidth_min_mbps);
  const double lat_norm =
      params_.latency_max_ms > params_.latency_min_ms
          ? (latency - params_.latency_min_ms) /
                (params_.latency_max_ms - params_.latency_min_ms)
          : 0.0;
  if (!ewma_initialized_) {
    ewma_bw_norm_ = bw_norm;
    ewma_lat_norm_ = lat_norm;
    ewma_initialized_ = true;
  }
  const double smoothing_raw =
      std::abs(bw_norm - ewma_bw_norm_) + std::abs(lat_norm - ewma_lat_norm_);
  ewma_bw_norm_ += params_.ewma_alpha * (bw_norm - ewma_bw_norm_);
  ewma_lat_norm_ += params_.ewma_alpha * (lat_norm - ewma_lat_norm_);

  switch (params_.goal) {
    case Goal::kUnderutilization:
      // r = 1 - U - L - 0.01 * S, cast into the Equation-1 decomposition:
      // the optimum is full utilization (1), the protocol earned U + L'
      // where the adversary is charged for the loss it injected.
      last_reward_.optimal = 1.0;
      last_reward_.protocol = last_interval_.utilization() + loss;
      break;
    case Goal::kCongestion:
      // Reward standing queues: optimal behaviour keeps queueing delay at
      // zero, the target "earned" the negated normalized queue it built.
      // Loss injection is still charged so the adversary cannot manufacture
      // congestion signals for free.
      last_reward_.optimal = 0.0;
      last_reward_.protocol = -(last_interval_.mean_queue_delay_s /
                                params_.queue_delay_scale_s) +
                              loss;
      break;
  }
  last_reward_.smoothing = params_.smoothing_coefficient * smoothing_raw;

  rl::StepResult result;
  result.reward = last_reward_.value();
  result.done = epoch_index_ >= epochs_per_episode();
  result.observation = observe();
  return result;
}

}  // namespace netadv::core
