// Equation 1 of the paper — the adversary's reward:
//
//     r_adversary = r_opt - r_protocol - p_smoothing
//
// The first two terms make the adversary hunt for conditions where the
// target performs far below what is *attainable* (ruling out trivially
// hostile networks); the smoothing penalty discourages gratuitous variation
// so the surviving changes point at the exploited weakness (Section 2.1,
// "Seeking explainable examples").
#pragma once

#include <cstddef>

namespace netadv::core {

struct AdversaryReward {
  double optimal = 0.0;    ///< r_opt: best attainable performance
  double protocol = 0.0;   ///< r_protocol: what the target actually got
  double smoothing = 0.0;  ///< p_smoothing: trace-variation penalty

  double value() const noexcept { return optimal - protocol - smoothing; }

  /// Regret component only (how far from optimal, ignoring smoothing).
  double regret() const noexcept { return optimal - protocol; }
};

}  // namespace netadv::core
