#include "core/cem_adversary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "abr/runner.hpp"

namespace netadv::core {

CemTraceAdversary::CemTraceAdversary(Params params) : params_(params) {
  if (params_.population < 2 || params_.elites == 0 ||
      params_.elites > params_.population || params_.iterations == 0 ||
      params_.bandwidth_max_mbps <= params_.bandwidth_min_mbps ||
      params_.initial_std_frac <= 0.0 || params_.min_std_frac <= 0.0) {
    throw std::invalid_argument{"CemTraceAdversary: bad parameters"};
  }
}

CemTraceAdversary::Result CemTraceAdversary::search(
    const abr::VideoManifest& manifest, abr::AbrProtocol& protocol,
    util::Rng& rng) const {
  const std::size_t dims = manifest.num_chunks();
  const double range =
      params_.bandwidth_max_mbps - params_.bandwidth_min_mbps;
  const double mid =
      0.5 * (params_.bandwidth_min_mbps + params_.bandwidth_max_mbps);

  std::vector<double> mean(dims, mid);
  std::vector<double> std_dev(dims, params_.initial_std_frac * range);
  const double std_floor = params_.min_std_frac * range;

  auto make_trace = [&](const std::vector<double>& bandwidths) {
    trace::Trace t;
    for (double bw : bandwidths) {
      t.append({manifest.chunk_duration_s(),
                std::clamp(bw, params_.bandwidth_min_mbps,
                           params_.bandwidth_max_mbps),
                80.0, 0.0});
    }
    return t;
  };

  Result result;
  abr::OptimalParams opt_params;
  opt_params.qoe = params_.qoe;

  struct Scored {
    std::vector<double> genome;
    double objective;
    double regret;
  };

  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    std::vector<Scored> population;
    population.reserve(params_.population);
    for (std::size_t p = 0; p < params_.population; ++p) {
      std::vector<double> genome(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        genome[d] = std::clamp(rng.normal(mean[d], std_dev[d]),
                               params_.bandwidth_min_mbps,
                               params_.bandwidth_max_mbps);
      }
      const trace::Trace candidate = make_trace(genome);
      const double protocol_qoe =
          abr::run_playback(protocol, manifest, candidate, params_.qoe)
              .total_qoe;
      const double optimal_qoe =
          abr::optimal_playback(manifest, candidate, opt_params).total_qoe;
      const double regret = optimal_qoe - protocol_qoe;
      const double objective =
          regret -
          params_.smoothing_weight * candidate.bandwidth_total_variation();
      ++result.evaluations;
      population.push_back({std::move(genome), objective, regret});
    }

    std::partial_sort(population.begin(),
                      population.begin() + params_.elites, population.end(),
                      [](const Scored& a, const Scored& b) {
                        return a.objective > b.objective;
                      });

    if (population.front().objective > result.best_objective) {
      result.best_objective = population.front().objective;
      result.best_regret = population.front().regret;
      result.best_trace = make_trace(population.front().genome);
    }
    result.objective_history.push_back(result.best_objective);

    // Refit the sampling distribution to the elites.
    for (std::size_t d = 0; d < dims; ++d) {
      double m = 0.0;
      for (std::size_t e = 0; e < params_.elites; ++e) {
        m += population[e].genome[d];
      }
      m /= static_cast<double>(params_.elites);
      double var = 0.0;
      for (std::size_t e = 0; e < params_.elites; ++e) {
        const double diff = population[e].genome[d] - m;
        var += diff * diff;
      }
      var /= static_cast<double>(params_.elites);
      mean[d] = m;
      std_dev[d] = std::max(std::sqrt(var), std_floor);
    }
  }
  return result;
}

}  // namespace netadv::core
