// Rolling trained adversaries out against their targets and recording what
// happened — the bridge from an adversary policy to the paper's artifacts:
//  * reusable adversarial traces (replayed against every protocol, Fig. 1-2);
//  * per-chunk ABR episode timelines (Fig. 3);
//  * per-epoch CC timelines with both physical conditions and the raw
//    pre-clipping policy actions (Fig. 5 and Fig. 6).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/abr_adversary.hpp"
#include "core/cc_adversary.hpp"
#include "core/fairness_adversary.hpp"
#include "rl/ppo.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace netadv::core {

/// Run the adversary online against the env's target `count` times and
/// record each episode's bandwidth sequence as a replayable Trace (one
/// segment per chunk). Stochastic actions give a diverse corpus, exactly how
/// the paper's 200 traces were produced; deterministic gives the single
/// noise-free trace.
std::vector<trace::Trace> record_abr_traces(rl::PpoAgent& agent,
                                            AbrAdversaryEnv& env,
                                            std::size_t count, util::Rng& rng,
                                            bool deterministic = false);

/// Builds a fresh target protocol per recording task; must be thread-safe to
/// call (it only constructs new objects).
using ProtocolFactory = std::function<std::unique_ptr<abr::AbrProtocol>()>;

/// Batch corpus generation: record `count` adversarial traces across `pool`
/// (sequentially when null), one fresh (cloned agent, fresh protocol, fresh
/// env) triple per task.
///
/// Determinism contract: per-episode RNG streams are forked from `seed` on
/// the calling thread in episode order before dispatch, each task touches
/// only its own clone/env/stream, and results land in the slot of their own
/// episode index — so the corpus is bit-identical at every thread count,
/// including pool == nullptr.
std::vector<trace::Trace> record_abr_traces(
    const rl::PpoAgent& agent, const abr::VideoManifest& manifest,
    const ProtocolFactory& make_protocol, const AbrAdversaryEnv::Params& params,
    std::size_t count, std::uint64_t seed, bool deterministic = false,
    util::ThreadPool* pool = nullptr);

/// Per-chunk timeline of one adversarial episode (Figure 3's panels).
struct AbrEpisodeRecord {
  std::vector<double> bandwidth_mbps;   ///< adversary's actions
  std::vector<double> bitrate_kbps;     ///< target's selections
  std::vector<double> buffer_s;         ///< client buffer after each chunk
  std::vector<double> rebuffer_s;
  double total_qoe = 0.0;
  trace::Trace trace;                   ///< the same episode as a Trace
};

AbrEpisodeRecord record_abr_episode(rl::PpoAgent& agent, AbrAdversaryEnv& env,
                                    util::Rng& rng,
                                    bool deterministic = true);

/// Per-epoch timeline of one CC adversarial episode.
struct CcEpisodeRecord {
  // Physical link conditions applied per epoch.
  std::vector<double> bandwidth_mbps;
  std::vector<double> latency_ms;
  std::vector<double> loss_rate;
  // Raw policy outputs before clipping (Figure 6 plots these).
  std::vector<double> raw_bandwidth;
  std::vector<double> raw_latency;
  std::vector<double> raw_loss;
  // Target's observed behaviour.
  std::vector<double> throughput_mbps;
  std::vector<double> utilization;
  std::vector<double> queue_delay_s;
  /// BBR state per epoch (cast of BbrSender::Mode; -1 if the target is not
  /// BBR) — lets Figure 6 align adversary actions with probing phases.
  std::vector<int> bbr_mode;
  double mean_utilization = 0.0;
  trace::Trace trace;  ///< per-epoch segments, replayable
};

CcEpisodeRecord record_cc_episode(rl::PpoAgent& agent, CcAdversaryEnv& env,
                                  util::Rng& rng, bool deterministic = true);

/// Batch variant of record_cc_episode: `count` episodes across `pool`
/// (sequentially when null), one fresh (cloned agent, fresh env with a fresh
/// target sender) pair per task. Same determinism contract as the batch
/// record_abr_traces: streams forked from `seed` in episode order on the
/// caller, results reduced by episode index, bit-identical at every thread
/// count. `make_sender` may be null for the env's default target (BBR).
std::vector<CcEpisodeRecord> record_cc_episodes(
    const rl::PpoAgent& agent, const CcAdversaryEnv::Params& params,
    const CcAdversaryEnv::SenderFactory& make_sender, std::size_t count,
    std::uint64_t seed, bool deterministic = false,
    util::ThreadPool* pool = nullptr);

/// Per-epoch timeline of one fairness adversarial episode (a flow mix on
/// the shared bottleneck, optionally with a cross-traffic accomplice or a
/// late-joining flow — whichever scenario the env encodes).
struct FairnessEpisodeRecord {
  // Physical link conditions applied per epoch.
  std::vector<double> bandwidth_mbps;
  std::vector<double> latency_ms;
  std::vector<double> loss_rate;
  /// Per-epoch mix-flow throughputs: flow_throughput_mbps[f][epoch]
  /// (accomplice traffic excluded — it's the attack, not the subject).
  std::vector<std::vector<double>> flow_throughput_mbps;
  std::vector<double> jain;                 ///< per-epoch mix Jain index
  std::vector<double> victim_utilization;   ///< mix flow 0's capacity share
  std::vector<double> aggregate_utilization;
  double mean_jain = 1.0;
  double mean_victim_utilization = 0.0;
  double mean_aggregate_utilization = 0.0;
  double late_join_time_s = 0.0;  ///< kLateJoin: this episode's drawn arrival
  trace::Trace trace;             ///< per-epoch segments, replayable
};

FairnessEpisodeRecord record_fairness_episode(rl::PpoAgent& agent,
                                              FairnessAdversaryEnv& env,
                                              util::Rng& rng,
                                              bool deterministic = true);

/// Batch variant: `count` episodes across `pool` (sequentially when null),
/// one fresh (cloned agent, fresh env with fresh mix senders) pair per task.
/// Same determinism contract as record_cc_episodes: streams forked from
/// `seed` in episode order on the caller, results reduced by episode index,
/// bit-identical at every thread count.
std::vector<FairnessEpisodeRecord> record_fairness_episodes(
    const rl::PpoAgent& agent, const FairnessAdversaryEnv::Params& params,
    std::vector<FairnessAdversaryEnv::SenderFactory> factories,
    std::size_t count, std::uint64_t seed, bool deterministic = false,
    util::ThreadPool* pool = nullptr);

/// Replay a recorded CC trace (fixed conditions per segment) against a
/// sender, ignoring the adversary: used to check that recorded traces
/// reproduce the damage without re-running the adversary (Section 2.1).
struct CcReplayResult {
  double mean_utilization = 0.0;
  double mean_throughput_mbps = 0.0;
  std::vector<double> throughput_mbps;  ///< per segment
};

CcReplayResult replay_cc_trace(cc::CcSender& sender, const trace::Trace& t,
                               const cc::LinkSim::Params& link_params,
                               std::uint64_t seed);

/// Builds a fresh sender per replay task; must be thread-safe to call (it
/// only constructs new objects).
using SenderFactory = std::function<std::unique_ptr<cc::CcSender>()>;

/// Replay a whole trace corpus across `pool` (sequentially when null), one
/// fresh sender per trace. Per-trace link seeds are forked from `seed` in
/// trace order before dispatch, so the result vector is identical at every
/// thread count.
std::vector<CcReplayResult> replay_cc_traces(
    const SenderFactory& make_sender, const std::vector<trace::Trace>& traces,
    const cc::LinkSim::Params& link_params, std::uint64_t seed,
    util::ThreadPool* pool = nullptr);

/// Replay a recorded trace against a whole flow mix on a shared bottleneck —
/// the fairness analogue of replay_cc_trace. Starts are staggered by
/// `stagger_s` like the env's kFairness scenario.
struct FairnessReplayResult {
  double mean_jain = 1.0;
  double mean_victim_utilization = 0.0;
  double mean_aggregate_utilization = 0.0;
  std::vector<double> mean_flow_throughput_mbps;  ///< per flow, episode mean
  std::vector<double> jain;                       ///< per segment
};

FairnessReplayResult replay_fairness_trace(
    const std::vector<SenderFactory>& mix, const trace::Trace& t,
    const cc::LinkSim::Params& link_params, double stagger_s,
    std::uint64_t seed);

/// Corpus variant, same determinism contract as replay_cc_traces.
std::vector<FairnessReplayResult> replay_fairness_traces(
    const std::vector<SenderFactory>& mix,
    const std::vector<trace::Trace>& traces,
    const cc::LinkSim::Params& link_params, double stagger_s,
    std::uint64_t seed, util::ThreadPool* pool = nullptr);

}  // namespace netadv::core
