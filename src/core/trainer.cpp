#include "core/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/recorder.hpp"
#include "util/log.hpp"

namespace netadv::core {

rl::PpoConfig abr_adversary_ppo_config() {
  rl::PpoConfig cfg;
  // "a neural network with two fully connected hidden layers, the first with
  // 32 neurons and the second with 16" (Section 3). PPO with the
  // stable-baselines defaults except a constant learning rate.
  cfg.hidden_sizes = {32, 16};
  cfg.learning_rate = 3e-4;
  cfg.n_steps = 2048;
  cfg.minibatch_size = 128;
  cfg.epochs = 10;
  cfg.ent_coef = 0.005;
  cfg.initial_log_std = -0.3;
  return cfg;
}

rl::PpoConfig cc_adversary_ppo_config() {
  rl::PpoConfig cfg;
  // "a simple neural network with only one hidden layer of 4 neurons"
  // (Section 4).
  cfg.hidden_sizes = {4};
  cfg.learning_rate = 3e-4;
  cfg.n_steps = 2048;
  cfg.minibatch_size = 128;
  cfg.epochs = 10;
  cfg.ent_coef = 0.001;
  cfg.initial_log_std = -0.3;
  return cfg;
}

rl::PpoAgent train_abr_adversary(AbrAdversaryEnv& env, std::size_t steps,
                                 std::uint64_t seed,
                                 const rl::TrainCallback& callback) {
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     abr_adversary_ppo_config(), seed};
  agent.train(env, steps, callback);
  return agent;
}

rl::PpoAgent train_cc_adversary(CcAdversaryEnv& env, std::size_t steps,
                                std::uint64_t seed,
                                const rl::TrainCallback& callback) {
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     cc_adversary_ppo_config(), seed};
  agent.train(env, steps, callback);
  return agent;
}

RobustifyResult robustify_pensieve(rl::PpoAgent& pensieve,
                                   abr::PensieveEnv& env,
                                   const RobustifyConfig& config) {
  if (config.inject_fraction <= 0.0) {
    throw std::invalid_argument{"robustify_pensieve: bad inject_fraction"};
  }

  RobustifyResult result;
  const double frac = std::min(config.inject_fraction, 1.0);
  const auto phase1_steps = static_cast<std::size_t>(
      static_cast<double>(config.protocol_steps) * frac);

  // (1) Train the protocol of interest.
  util::log_info("robustify: phase 1, %zu steps on %zu traces", phase1_steps,
                 env.traces().size());
  result.phase1 = pensieve.train(env, phase1_steps);
  if (frac >= 1.0) return result;  // baseline: no adversarial injection

  // (2) Train an adversary against the partially trained protocol.
  abr::PensievePolicy target{pensieve};
  AbrAdversaryEnv adv_env{env.manifest(), target, config.adversary_params};
  util::log_info("robustify: training adversary for %zu steps",
                 config.adversary_steps);
  rl::PpoAgent adversary{adv_env.observation_size(), adv_env.action_spec(),
                         abr_adversary_ppo_config(), config.seed + 17};
  result.adversary_report = adversary.train(adv_env, config.adversary_steps);

  // (3) Generate adversarial traces from the trained adversary.
  util::Rng trace_rng{config.seed + 29};
  result.adversarial_traces = record_abr_traces(
      adversary, adv_env, config.adversarial_traces, trace_rng,
      /*deterministic=*/false);

  // (4) Continue training on the augmented dataset.
  std::vector<trace::Trace> augmented = env.traces();
  augmented.insert(augmented.end(), result.adversarial_traces.begin(),
                   result.adversarial_traces.end());
  env.set_traces(std::move(augmented));
  const std::size_t phase2_steps = config.protocol_steps - phase1_steps;
  util::log_info("robustify: phase 2, %zu steps on %zu traces", phase2_steps,
                 env.traces().size());
  result.phase2 = pensieve.train(env, phase2_steps);
  return result;
}

}  // namespace netadv::core
