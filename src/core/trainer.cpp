#include "core/trainer.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/recorder.hpp"
#include "rl/kernels.hpp"
#include "util/log.hpp"

namespace netadv::core {

rl::PpoConfig adversary_ppo_config(TargetDomain domain) {
  rl::PpoConfig cfg;
  // PPO with the stable-baselines defaults except a constant learning rate;
  // only the network and the entropy bonus differ per domain.
  cfg.learning_rate = 3e-4;
  cfg.n_steps = 2048;
  cfg.minibatch_size = 128;
  cfg.epochs = 10;
  cfg.initial_log_std = -0.3;
  switch (domain) {
    case TargetDomain::kAbr:
      // "a neural network with two fully connected hidden layers, the first
      // with 32 neurons and the second with 16" (Section 3).
      cfg.hidden_sizes = {32, 16};
      cfg.ent_coef = 0.005;
      return cfg;
    case TargetDomain::kCc:
      // "a simple neural network with only one hidden layer of 4 neurons"
      // (Section 4).
      cfg.hidden_sizes = {4};
      cfg.ent_coef = 0.001;
      return cfg;
    case TargetDomain::kAny:
      break;
  }
  throw std::invalid_argument{
      "adversary_ppo_config: no trainable config for domain 'any'"};
}

rl::PpoConfig abr_adversary_ppo_config() {
  return adversary_ppo_config(TargetDomain::kAbr);
}

rl::PpoConfig cc_adversary_ppo_config() {
  return adversary_ppo_config(TargetDomain::kCc);
}

rl::PpoAgent train_adversary(rl::Env& env, const rl::PpoConfig& config,
                             std::size_t steps, std::uint64_t seed,
                             const rl::TrainCallback& callback,
                             util::ThreadPool* pool) {
  rl::PpoAgent agent{env.observation_size(), env.action_spec(), config, seed};
  agent.set_thread_pool(pool);
  // Which math path a run used (`netadv_cli info` shows the same resolution)
  // — fp32 rollout changes results by rounding, so it matters for
  // reproducing a recorded experiment.
  util::log_debug("train_adversary: %s kernels, fp32 rollout %s",
                  rl::kernels::backend_name(),
                  agent.f32_rollout() ? "on" : "off");
  agent.train(env, steps, callback);
  agent.set_thread_pool(nullptr);
  return agent;
}

rl::PpoAgent train_abr_adversary(AbrAdversaryEnv& env, std::size_t steps,
                                 std::uint64_t seed,
                                 const rl::TrainCallback& callback,
                                 util::ThreadPool* pool) {
  return train_adversary(env, abr_adversary_ppo_config(), steps, seed,
                         callback, pool);
}

rl::PpoAgent train_cc_adversary(CcAdversaryEnv& env, std::size_t steps,
                                std::uint64_t seed,
                                const rl::TrainCallback& callback,
                                util::ThreadPool* pool) {
  return train_adversary(env, cc_adversary_ppo_config(), steps, seed,
                         callback, pool);
}

namespace {

/// Shared fan-out for the two adversary families: run `train_one(i)` for
/// every job slot concurrently (results to their own index), then unwrap.
template <typename TrainOne>
std::vector<rl::PpoAgent> train_concurrently(std::size_t count,
                                             util::ThreadPool* pool,
                                             const TrainOne& train_one) {
  // PpoAgent is not default-constructible, so tasks fill optional slots.
  std::vector<std::optional<rl::PpoAgent>> slots(count);
  auto run = [&](std::size_t i) { slots[i].emplace(train_one(i)); };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) run(i);
  } else {
    pool->parallel_for(count, run);
  }
  std::vector<rl::PpoAgent> agents;
  agents.reserve(count);
  for (auto& slot : slots) agents.push_back(std::move(*slot));
  return agents;
}

}  // namespace

std::vector<rl::PpoAgent> train_adversaries(
    const std::vector<AdversaryJob>& jobs, util::ThreadPool* pool) {
  return train_concurrently(jobs.size(), pool, [&](std::size_t i) {
    const AdversaryJob& job = jobs[i];
    if (job.env == nullptr) {
      throw std::invalid_argument{"train_adversaries: null env"};
    }
    return train_adversary(*job.env, job.config, job.steps, job.seed, nullptr,
                           pool);
  });
}

std::vector<rl::PpoAgent> train_abr_adversaries(
    const std::vector<AbrAdversaryJob>& jobs, util::ThreadPool* pool) {
  std::vector<AdversaryJob> generic;
  generic.reserve(jobs.size());
  for (const AbrAdversaryJob& job : jobs) {
    generic.push_back(
        {job.env, abr_adversary_ppo_config(), job.steps, job.seed});
  }
  return train_adversaries(generic, pool);
}

std::vector<rl::PpoAgent> train_cc_adversaries(
    const std::vector<CcAdversaryJob>& jobs, util::ThreadPool* pool) {
  std::vector<AdversaryJob> generic;
  generic.reserve(jobs.size());
  for (const CcAdversaryJob& job : jobs) {
    generic.push_back(
        {job.env, cc_adversary_ppo_config(), job.steps, job.seed});
  }
  return train_adversaries(generic, pool);
}

RobustifyResult robustify_pensieve(rl::PpoAgent& pensieve,
                                   abr::PensieveEnv& env,
                                   const RobustifyConfig& config) {
  if (config.inject_fraction <= 0.0) {
    throw std::invalid_argument{"robustify_pensieve: bad inject_fraction"};
  }

  RobustifyResult result;
  const double frac = std::min(config.inject_fraction, 1.0);
  const auto phase1_steps = static_cast<std::size_t>(
      static_cast<double>(config.protocol_steps) * frac);

  // Borrow the pool for the protocol's own gradient steps for the duration
  // of the pipeline (restored on return; bit-identical either way).
  util::ThreadPool* const saved_pool = pensieve.thread_pool();
  if (config.pool != nullptr) pensieve.set_thread_pool(config.pool);

  // (1) Train the protocol of interest.
  util::log_info("robustify: phase 1, %zu steps on %zu traces", phase1_steps,
                 env.traces().size());
  result.phase1 = pensieve.train(env, phase1_steps);
  if (frac >= 1.0) {
    pensieve.set_thread_pool(saved_pool);
    return result;  // baseline: no adversarial injection
  }

  // (2) Train an adversary against the partially trained protocol.
  abr::PensievePolicy target{pensieve};
  AbrAdversaryEnv adv_env{env.manifest(), target, config.adversary_params};
  util::log_info("robustify: training adversary for %zu steps",
                 config.adversary_steps);
  rl::PpoAgent adversary{adv_env.observation_size(), adv_env.action_spec(),
                         abr_adversary_ppo_config(), config.seed + 17};
  adversary.set_thread_pool(config.pool);
  result.adversary_report = adversary.train(adv_env, config.adversary_steps);

  // (3) Generate adversarial traces from the trained adversary, fanning one
  // (cloned adversary, cloned target, fresh env) triple per trace across the
  // pool.
  result.adversarial_traces = record_abr_traces(
      adversary, env.manifest(),
      [&pensieve]() -> std::unique_ptr<abr::AbrProtocol> {
        return std::make_unique<abr::OwnedPensievePolicy>(pensieve);
      },
      config.adversary_params, config.adversarial_traces, config.seed + 29,
      /*deterministic=*/false, config.pool);

  // (4) Continue training on the augmented dataset.
  std::vector<trace::Trace> augmented = env.traces();
  augmented.insert(augmented.end(), result.adversarial_traces.begin(),
                   result.adversarial_traces.end());
  env.set_traces(std::move(augmented));
  const std::size_t phase2_steps = config.protocol_steps - phase1_steps;
  util::log_info("robustify: phase 2, %zu steps on %zu traces", phase2_steps,
                 env.traces().size());
  result.phase2 = pensieve.train(env, phase2_steps);
  pensieve.set_thread_pool(saved_pool);
  return result;
}

}  // namespace netadv::core
