#include "core/recorder.hpp"

#include "cc/bbr.hpp"

#include <algorithm>
#include <stdexcept>

namespace netadv::core {

namespace {

/// Drive one episode, collecting raw actions; returns them per step.
std::vector<rl::Vec> run_episode(rl::PpoAgent& agent, rl::Env& env,
                                 util::Rng& rng, bool deterministic) {
  std::vector<rl::Vec> actions;
  rl::Vec obs = env.reset(rng);
  while (true) {
    rl::Vec action = deterministic ? agent.act_deterministic(obs)
                                   : agent.act_stochastic(obs, rng);
    actions.push_back(action);
    rl::StepResult result = env.step(action, rng);
    if (result.done) break;
    obs = std::move(result.observation);
  }
  return actions;
}

}  // namespace

std::vector<trace::Trace> record_abr_traces(rl::PpoAgent& agent,
                                            AbrAdversaryEnv& env,
                                            std::size_t count, util::Rng& rng,
                                            bool deterministic) {
  std::vector<trace::Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    run_episode(agent, env, rng, deterministic);
    trace::Trace t;
    for (double bw : env.episode_bandwidths()) {
      t.append({env.chunk_duration_s(), bw, 80.0, 0.0});
    }
    traces.push_back(std::move(t));
  }
  return traces;
}

std::vector<trace::Trace> record_abr_traces(
    const rl::PpoAgent& agent, const abr::VideoManifest& manifest,
    const ProtocolFactory& make_protocol, const AbrAdversaryEnv::Params& params,
    std::size_t count, std::uint64_t seed, bool deterministic,
    util::ThreadPool* pool) {
  // Fork every episode's stream up front on the caller so episode i replays
  // the same randomness whichever thread picks it up.
  util::Rng master{seed};
  std::vector<util::Rng> streams = master.fork_streams(count);

  auto record_one = [&](std::size_t i) {
    const std::unique_ptr<abr::AbrProtocol> protocol = make_protocol();
    if (!protocol) {
      throw std::invalid_argument{"record_abr_traces: factory returned null"};
    }
    AbrAdversaryEnv env{manifest, *protocol, params};
    rl::PpoAgent clone = agent;
    run_episode(clone, env, streams[i], deterministic);
    trace::Trace t;
    for (double bw : env.episode_bandwidths()) {
      t.append({env.chunk_duration_s(), bw, 80.0, 0.0});
    }
    return t;
  };
  if (pool == nullptr) {
    std::vector<trace::Trace> traces(count);
    for (std::size_t i = 0; i < count; ++i) traces[i] = record_one(i);
    return traces;
  }
  return pool->parallel_map(count, record_one);
}

AbrEpisodeRecord record_abr_episode(rl::PpoAgent& agent, AbrAdversaryEnv& env,
                                    util::Rng& rng, bool deterministic) {
  AbrEpisodeRecord record;
  rl::Vec obs = env.reset(rng);
  double qoe = 0.0;
  while (true) {
    const rl::Vec action = deterministic ? agent.act_deterministic(obs)
                                         : agent.act_stochastic(obs, rng);
    rl::StepResult result = env.step(action, rng);
    qoe += env.last_reward().protocol;  // per-window protocol QoE (diagnostic)
    if (result.done) break;
    obs = std::move(result.observation);
  }
  record.bandwidth_mbps = env.episode_bandwidths();
  for (std::size_t q : env.episode_qualities()) {
    record.bitrate_kbps.push_back(env.manifest().bitrate_kbps(q));
  }
  record.buffer_s = env.episode_buffers();
  record.rebuffer_s = env.episode_rebuffers();

  // Exact episode QoE from the recorded choices.
  std::vector<double> bitrates_mbps;
  for (double kbps : record.bitrate_kbps) bitrates_mbps.push_back(kbps / 1000.0);
  record.total_qoe =
      abr::total_qoe(bitrates_mbps, record.rebuffer_s, env.params().qoe);

  for (double bw : record.bandwidth_mbps) {
    record.trace.append({env.chunk_duration_s(), bw, 80.0, 0.0});
  }
  return record;
}

CcEpisodeRecord record_cc_episode(rl::PpoAgent& agent, CcAdversaryEnv& env,
                                  util::Rng& rng, bool deterministic) {
  CcEpisodeRecord record;
  const rl::ActionSpec spec = env.action_spec();

  rl::Vec obs = env.reset(rng);
  double util_sum = 0.0;
  std::size_t epochs = 0;
  while (true) {
    const rl::Vec raw = deterministic ? agent.act_deterministic(obs)
                                      : agent.act_stochastic(obs, rng);
    const rl::Vec physical = spec.to_physical(raw);

    record.raw_bandwidth.push_back(raw[0]);
    record.raw_latency.push_back(raw[1]);
    record.raw_loss.push_back(raw[2]);
    record.bandwidth_mbps.push_back(physical[0]);
    record.latency_ms.push_back(physical[1]);
    record.loss_rate.push_back(physical[2]);

    rl::StepResult result = env.step(raw, rng);
    if (const auto* bbr = dynamic_cast<const cc::BbrSender*>(env.sender())) {
      record.bbr_mode.push_back(static_cast<int>(bbr->mode()));
    } else {
      record.bbr_mode.push_back(-1);
    }
    const cc::IntervalStats& stats = env.last_interval();
    record.throughput_mbps.push_back(stats.throughput_mbps());
    record.utilization.push_back(stats.utilization());
    record.queue_delay_s.push_back(stats.mean_queue_delay_s);
    util_sum += stats.utilization();
    ++epochs;

    record.trace.append({env.params().epoch_s, physical[0], physical[1],
                         physical[2]});
    if (result.done) break;
    obs = std::move(result.observation);
  }
  record.mean_utilization = epochs > 0 ? util_sum / static_cast<double>(epochs)
                                       : 0.0;
  return record;
}

std::vector<CcEpisodeRecord> record_cc_episodes(
    const rl::PpoAgent& agent, const CcAdversaryEnv::Params& params,
    const CcAdversaryEnv::SenderFactory& make_sender, std::size_t count,
    std::uint64_t seed, bool deterministic, util::ThreadPool* pool) {
  util::Rng master{seed};
  std::vector<util::Rng> streams = master.fork_streams(count);

  auto record_one = [&](std::size_t i) {
    CcAdversaryEnv env{params, make_sender};
    rl::PpoAgent clone = agent;
    return record_cc_episode(clone, env, streams[i], deterministic);
  };
  if (pool == nullptr) {
    std::vector<CcEpisodeRecord> records(count);
    for (std::size_t i = 0; i < count; ++i) records[i] = record_one(i);
    return records;
  }
  return pool->parallel_map(count, record_one);
}

FairnessEpisodeRecord record_fairness_episode(rl::PpoAgent& agent,
                                              FairnessAdversaryEnv& env,
                                              util::Rng& rng,
                                              bool deterministic) {
  FairnessEpisodeRecord record;
  const rl::ActionSpec spec = env.action_spec();

  rl::Vec obs = env.reset(rng);
  record.flow_throughput_mbps.resize(env.mix_flow_count());
  record.late_join_time_s = env.late_join_time_s();
  double jain_sum = 0.0;
  double victim_sum = 0.0;
  double util_sum = 0.0;
  std::size_t epochs = 0;
  while (true) {
    const rl::Vec raw = deterministic ? agent.act_deterministic(obs)
                                      : agent.act_stochastic(obs, rng);
    const rl::Vec physical = spec.to_physical(raw);

    record.bandwidth_mbps.push_back(physical[0]);
    record.latency_ms.push_back(physical[1]);
    record.loss_rate.push_back(physical[2]);

    rl::StepResult result = env.step(raw, rng);
    const cc::MultiFlowRunner::Interval& interval = env.last_interval();
    for (std::size_t f = 0; f < env.mix_flow_count(); ++f) {
      record.flow_throughput_mbps[f].push_back(
          f < interval.flows.size()
              ? interval.flows[f].throughput_mbps(interval.duration_s)
              : 0.0);
    }
    record.jain.push_back(env.last_jain());
    record.victim_utilization.push_back(env.last_victim_utilization());
    record.aggregate_utilization.push_back(interval.aggregate_utilization());
    jain_sum += env.last_jain();
    victim_sum += env.last_victim_utilization();
    util_sum += interval.aggregate_utilization();
    ++epochs;

    record.trace.append({env.params().epoch_s, physical[0], physical[1],
                         physical[2]});
    if (result.done) break;
    obs = std::move(result.observation);
  }
  if (epochs > 0) {
    const auto n = static_cast<double>(epochs);
    record.mean_jain = jain_sum / n;
    record.mean_victim_utilization = victim_sum / n;
    record.mean_aggregate_utilization = util_sum / n;
  }
  return record;
}

std::vector<FairnessEpisodeRecord> record_fairness_episodes(
    const rl::PpoAgent& agent, const FairnessAdversaryEnv::Params& params,
    std::vector<FairnessAdversaryEnv::SenderFactory> factories,
    std::size_t count, std::uint64_t seed, bool deterministic,
    util::ThreadPool* pool) {
  util::Rng master{seed};
  std::vector<util::Rng> streams = master.fork_streams(count);

  auto record_one = [&](std::size_t i) {
    FairnessAdversaryEnv env{params, factories};
    rl::PpoAgent clone = agent;
    return record_fairness_episode(clone, env, streams[i], deterministic);
  };
  if (pool == nullptr) {
    std::vector<FairnessEpisodeRecord> records(count);
    for (std::size_t i = 0; i < count; ++i) records[i] = record_one(i);
    return records;
  }
  return pool->parallel_map(count, record_one);
}

CcReplayResult replay_cc_trace(cc::CcSender& sender, const trace::Trace& t,
                               const cc::LinkSim::Params& link_params,
                               std::uint64_t seed) {
  if (t.empty()) throw std::invalid_argument{"replay_cc_trace: empty trace"};
  cc::CcRunner runner{sender, link_params, seed};
  CcReplayResult result;
  double now = 0.0;
  double util_sum = 0.0;
  double tput_sum = 0.0;
  for (const auto& segment : t.segments()) {
    runner.set_conditions({segment.bandwidth_mbps, segment.latency_ms,
                           segment.loss_rate});
    now += segment.duration_s;
    runner.run_until(now);
    const cc::IntervalStats stats = runner.collect();
    result.throughput_mbps.push_back(stats.throughput_mbps());
    util_sum += stats.utilization();
    tput_sum += stats.throughput_mbps();
  }
  const auto n = static_cast<double>(t.size());
  result.mean_utilization = util_sum / n;
  result.mean_throughput_mbps = tput_sum / n;
  return result;
}

std::vector<CcReplayResult> replay_cc_traces(
    const SenderFactory& make_sender, const std::vector<trace::Trace>& traces,
    const cc::LinkSim::Params& link_params, std::uint64_t seed,
    util::ThreadPool* pool) {
  // Fork one link seed per trace up front (on the caller) so the replay of
  // trace i is the same whichever thread picks it up.
  util::Rng master{seed};
  std::vector<std::uint64_t> seeds(traces.size());
  for (auto& s : seeds) s = master();

  auto replay_one = [&](std::size_t i) {
    const std::unique_ptr<cc::CcSender> sender = make_sender();
    if (!sender) {
      throw std::invalid_argument{"replay_cc_traces: factory returned null"};
    }
    return replay_cc_trace(*sender, traces[i], link_params, seeds[i]);
  };
  if (pool == nullptr) {
    std::vector<CcReplayResult> results(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) results[i] = replay_one(i);
    return results;
  }
  return pool->parallel_map(traces.size(), replay_one);
}

FairnessReplayResult replay_fairness_trace(
    const std::vector<SenderFactory>& mix, const trace::Trace& t,
    const cc::LinkSim::Params& link_params, double stagger_s,
    std::uint64_t seed) {
  if (t.empty()) {
    throw std::invalid_argument{"replay_fairness_trace: empty trace"};
  }
  if (mix.size() < 2) {
    throw std::invalid_argument{"replay_fairness_trace: need >= 2 flows"};
  }
  std::vector<std::unique_ptr<cc::CcSender>> senders;
  std::vector<cc::CcSender*> raw;
  std::vector<double> starts;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    senders.push_back(mix[i]());
    if (!senders.back()) {
      throw std::invalid_argument{
          "replay_fairness_trace: factory returned null"};
    }
    raw.push_back(senders.back().get());
    starts.push_back(static_cast<double>(i) * stagger_s);
  }
  cc::MultiFlowRunner runner{raw, link_params, seed, starts};

  FairnessReplayResult result;
  result.mean_flow_throughput_mbps.assign(mix.size(), 0.0);
  double now = 0.0;
  double jain_sum = 0.0;
  double victim_sum = 0.0;
  double util_sum = 0.0;
  for (const auto& segment : t.segments()) {
    runner.set_conditions({segment.bandwidth_mbps, segment.latency_ms,
                           segment.loss_rate});
    now += segment.duration_s;
    runner.run_until(now);
    const cc::MultiFlowRunner::Interval interval = runner.collect();
    const double jain = cc::jain_fairness_index(interval.throughputs_mbps());
    result.jain.push_back(jain);
    jain_sum += jain;
    victim_sum += interval.capacity_bits > 0.0 && !interval.flows.empty()
                      ? std::min(1.0, interval.flows[0].delivered_bits /
                                          interval.capacity_bits)
                      : 0.0;
    util_sum += interval.aggregate_utilization();
    for (std::size_t f = 0; f < mix.size() && f < interval.flows.size();
         ++f) {
      result.mean_flow_throughput_mbps[f] +=
          interval.flows[f].throughput_mbps(interval.duration_s);
    }
  }
  const auto n = static_cast<double>(t.size());
  result.mean_jain = jain_sum / n;
  result.mean_victim_utilization = victim_sum / n;
  result.mean_aggregate_utilization = util_sum / n;
  for (double& v : result.mean_flow_throughput_mbps) v /= n;
  return result;
}

std::vector<FairnessReplayResult> replay_fairness_traces(
    const std::vector<SenderFactory>& mix,
    const std::vector<trace::Trace>& traces,
    const cc::LinkSim::Params& link_params, double stagger_s,
    std::uint64_t seed, util::ThreadPool* pool) {
  util::Rng master{seed};
  std::vector<std::uint64_t> seeds(traces.size());
  for (auto& s : seeds) s = master();

  auto replay_one = [&](std::size_t i) {
    return replay_fairness_trace(mix, traces[i], link_params, stagger_s,
                                 seeds[i]);
  };
  if (pool == nullptr) {
    std::vector<FairnessReplayResult> results(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      results[i] = replay_one(i);
    }
    return results;
  }
  return pool->parallel_map(traces.size(), replay_one);
}

}  // namespace netadv::core
