// The domain-neutral target registry.
//
// The paper's core claim is that the adversary framework is
// *protocol-agnostic*: the same RL recipe applies to ABR (§2/§3) and to
// congestion control (§4). This header is where that claim lives in code —
// one typed, self-describing registry per target family
//
//   abr_protocols()     name -> abr::AbrProtocol factory   (bb, bola, ...)
//   cc_senders()        name -> cc::CcSender factory       (bbr, cubic, ...)
//   trace_generators()  name -> trace::TraceGenerator      (fcc, 3g, random)
//   adversary_kinds()   name -> metadata only              (ppo, cem)
//   qoe_models()        name -> abr::QoeModel factory      (lin, log, ssim)
//
// plus the TargetDomain seam the trainer/recorder/campaign layers dispatch
// on. Every entry carries (domain, description, factory), so consumers never
// hand-maintain name lists: unknown-name errors enumerate the live registry,
// and `netadv_cli list` prints it.
//
// Factories may be parameterized via FactoryArgs (e.g. the `pensieve` entry
// takes `checkpoint = <path>`); plain entries ignore the args. Factories
// only construct new objects, so they are safe to call concurrently — the
// batch recorder/replay APIs take exactly the std::function<unique_ptr<T>()>
// closures Registry::factory() returns.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace netadv::abr {
class AbrProtocol;
class QoeModel;
}
namespace netadv::cc {
class CcSender;
}
namespace netadv::trace {
class TraceGenerator;
}

namespace netadv::core {

/// Which target family an entry (or an experiment) belongs to. kAny marks
/// domain-neutral machinery (campaign job kinds, the ppo adversary).
enum class TargetDomain { kAbr, kCc, kAny };

std::string to_string(TargetDomain domain);

/// Parse "abr" | "cc"; throws std::runtime_error naming the valid spellings.
TargetDomain parse_domain(const std::string& text);

/// Key -> value parameters handed to registry factories. Owned overrides
/// (set) shadow an optional fallback lookup (bind) — jobs bind their
/// JobSpec's params and inject resolved artifact paths as overrides.
class FactoryArgs {
 public:
  using Lookup = std::function<const std::string*(const std::string&)>;

  FactoryArgs() = default;

  void set(std::string key, std::string value) {
    owned_.emplace_back(std::move(key), std::move(value));
  }
  void bind(Lookup fallback) { fallback_ = std::move(fallback); }

  const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : owned_) {
      if (k == key) return &v;
    }
    return fallback_ ? fallback_(key) : nullptr;
  }
  std::string value_or(const std::string& key,
                       const std::string& fallback) const {
    const std::string* value = find(key);
    return value != nullptr ? *value : fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> owned_;
  Lookup fallback_;
};

/// Self-description of one registry entry.
struct EntryInfo {
  std::string name;
  TargetDomain domain = TargetDomain::kAny;
  std::string description;
};

/// The untyped part every registry shares: entry metadata, name lookup, and
/// the enumerating error text.
class RegistryBase {
 public:
  /// `category` names what the registry holds in error messages
  /// ("protocol", "sender", "generator", "adversary").
  explicit RegistryBase(std::string category)
      : category_(std::move(category)) {}

  const std::string& category() const noexcept { return category_; }
  const std::vector<EntryInfo>& entries() const noexcept { return entries_; }
  bool contains(const std::string& name) const noexcept {
    return index_of(name) != npos;
  }
  const EntryInfo* info(const std::string& name) const noexcept {
    const std::size_t i = index_of(name);
    return i == npos ? nullptr : &entries_[i];
  }

  /// Every registered name, registration order, joined by `separator` —
  /// "bb | bola | mpc" for error text, "bb|bola|mpc" for usage lines.
  std::string names(const std::string& separator = " | ") const {
    std::string joined;
    for (const auto& entry : entries_) {
      if (!joined.empty()) joined += separator;
      joined += entry.name;
    }
    return joined;
  }

  /// The uniform unknown-name error: enumerates the live registry so the
  /// message can never drift from what is actually registered.
  [[noreturn]] void throw_unknown(const std::string& name) const {
    throw std::runtime_error{"unknown " + category_ + " '" + name + "' (" +
                             names() + ")"};
  }

 protected:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t index_of(const std::string& name) const noexcept {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].name == name) return i;
    }
    return npos;
  }

  /// Registration-time duplicate rejection: registries are the single source
  /// of truth, so a silently shadowed entry would be a latent lie.
  std::size_t add_info(EntryInfo info) {
    if (contains(info.name)) {
      throw std::invalid_argument{"duplicate " + category_ +
                                  " registration: '" + info.name + "'"};
    }
    entries_.push_back(std::move(info));
    return entries_.size() - 1;
  }

 private:
  std::string category_;
  std::vector<EntryInfo> entries_;
};

/// Metadata-only registry (adversary kinds: training is structural, so
/// there is no factory — jobs.cpp dispatches on the name).
class InfoRegistry final : public RegistryBase {
 public:
  using RegistryBase::RegistryBase;
  void add(std::string name, TargetDomain domain, std::string description) {
    add_info({std::move(name), domain, std::move(description)});
  }
};

/// Typed registry: name -> factory + metadata.
template <typename T>
class Registry final : public RegistryBase {
 public:
  using Factory = std::function<std::unique_ptr<T>(const FactoryArgs&)>;

  using RegistryBase::RegistryBase;

  void add(std::string name, TargetDomain domain, std::string description,
           Factory factory) {
    add_info({std::move(name), domain, std::move(description)});
    factories_.push_back(std::move(factory));
  }

  /// nullptr on an unknown name; a known entry's factory may still throw
  /// (e.g. pensieve without `checkpoint =`).
  std::unique_ptr<T> try_make(const std::string& name,
                              const FactoryArgs& args = {}) const {
    const std::size_t i = index_of(name);
    return i == npos ? nullptr : factories_[i](args);
  }

  /// Like try_make but an unknown name throws, enumerating the registry.
  std::unique_ptr<T> make(const std::string& name,
                          const FactoryArgs& args = {}) const {
    const std::size_t i = index_of(name);
    if (i == npos) throw_unknown(name);
    return factories_[i](args);
  }

  /// Resolve `name` once, up front (unknown names throw here, before any
  /// work), and return a repeatable thread-safe factory — the shape the
  /// batch recorder/replay APIs take.
  std::function<std::unique_ptr<T>()> factory(const std::string& name,
                                              FactoryArgs args = {}) const {
    const std::size_t i = index_of(name);
    if (i == npos) throw_unknown(name);
    return [factory = &factories_[i], args = std::move(args)] {
      return (*factory)(args);
    };
  }

 private:
  std::vector<Factory> factories_;
};

/// The live registries (immutable singletons, built on first use).
const Registry<abr::AbrProtocol>& abr_protocols();
const Registry<cc::CcSender>& cc_senders();
const Registry<trace::TraceGenerator>& trace_generators();
const InfoRegistry& adversary_kinds();
/// QoE scoring models (abr/qoe_model.hpp): `lin` (QoE_lin, the paper's
/// metric), `log`, and `ssim` (per-chunk table; `ssim_table = <csv>`
/// selects a measured table, otherwise a deterministic synthetic one).
/// Campaigns select one with `qoe = <name>`; `mpc-dp` plans against it.
const Registry<abr::QoeModel>& qoe_models();

/// Resolve a flow-mix spec ("bbr,cubic" / "bbr,bbr,vivace") into per-flow
/// sender factories via cc_senders(). The mix is what fairness adversaries
/// attack, so it needs at least two flows; unknown names throw the
/// registry's enumerating error.
std::vector<std::function<std::unique_ptr<cc::CcSender>()>> resolve_flow_mix(
    const std::string& flows_csv);

}  // namespace netadv::core
