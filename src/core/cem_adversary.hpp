// A true *trace-based* adversary (the Section-2.1 alternative the paper
// discusses and sets aside): the whole trace is one decision, evaluated by
// replaying the target protocol over it. Because "each trace constitutes
// only a single data point", gradient-free search fits better than RL here;
// this implementation uses the cross-entropy method (CEM) over the vector
// of per-chunk bandwidths.
//
// Objective per candidate trace (mirrors Equation 1 at whole-video scope):
//   offline-optimal QoE  −  target's QoE  −  w_s * bandwidth total variation.
//
// Its products are, by construction, perfectly replayable — the advantage
// the paper credits trace-based adversaries — at the cost of far worse
// sample-efficiency (bench_ablation_online quantifies the comparison).
#pragma once

#include <cstddef>
#include <vector>

#include "abr/optimal.hpp"
#include "abr/protocol.hpp"
#include "abr/qoe.hpp"
#include "abr/video.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace netadv::core {

class CemTraceAdversary {
 public:
  struct Params {
    std::size_t population = 32;
    std::size_t elites = 8;
    std::size_t iterations = 20;
    double bandwidth_min_mbps = 0.8;
    double bandwidth_max_mbps = 4.8;
    /// Initial sampling std as a fraction of the bandwidth range.
    double initial_std_frac = 0.3;
    /// Std floor (fraction of range) preventing premature collapse.
    double min_std_frac = 0.02;
    double smoothing_weight = 1.0;
    abr::QoeParams qoe{};
  };

  CemTraceAdversary() : CemTraceAdversary(Params{}) {}
  explicit CemTraceAdversary(Params params);

  struct Result {
    trace::Trace best_trace;
    double best_objective = -1e18;  ///< regret minus smoothing penalty
    double best_regret = 0.0;       ///< optimal QoE - protocol QoE
    /// Best objective after each CEM iteration (for convergence plots).
    std::vector<double> objective_history;
    std::size_t evaluations = 0;    ///< protocol playbacks consumed
  };

  /// Search for a trace maximizing the target's optimality gap.
  Result search(const abr::VideoManifest& manifest,
                abr::AbrProtocol& protocol, util::Rng& rng) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace netadv::core
