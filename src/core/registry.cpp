#include "core/registry.hpp"

#include "abr/bb.hpp"
#include "abr/bola.hpp"
#include "abr/mpc.hpp"
#include "abr/mpc_dp.hpp"
#include "abr/pensieve.hpp"
#include "abr/qoe_model.hpp"
#include "abr/throughput_rule.hpp"
#include "abr/video.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/vivace.hpp"
#include "rl/checkpoint.hpp"
#include "trace/generators.hpp"
#include "util/spec.hpp"

namespace netadv::core {

std::string to_string(TargetDomain domain) {
  switch (domain) {
    case TargetDomain::kAbr:
      return "abr";
    case TargetDomain::kCc:
      return "cc";
    case TargetDomain::kAny:
      return "any";
  }
  return "any";
}

TargetDomain parse_domain(const std::string& text) {
  if (text == "abr") return TargetDomain::kAbr;
  if (text == "cc") return TargetDomain::kCc;
  throw std::runtime_error{"unknown domain '" + text + "' (abr | cc)"};
}

namespace {

/// Plain entries: default-construct, ignore args.
template <typename Base, typename Concrete>
typename Registry<Base>::Factory plain() {
  return [](const FactoryArgs&) -> std::unique_ptr<Base> {
    return std::make_unique<Concrete>();
  };
}

/// The one parameterized entry: Pensieve serves a trained checkpoint, so
/// `checkpoint = <path>` selects *which* Pensieve — campaigns can target a
/// freshly robustified policy by pointing at a round's `_pensieve.ckpt`.
std::unique_ptr<abr::AbrProtocol> make_pensieve(const FactoryArgs& args) {
  const std::string* checkpoint = args.find("checkpoint");
  if (checkpoint == nullptr) {
    throw std::runtime_error{
        "protocol 'pensieve' needs checkpoint = <path to a trained "
        "_pensieve.ckpt> (or checkpoint_from = <robustify-round job> in a "
        "campaign)"};
  }
  // The deterministic-size manifest every adversary experiment uses
  // (size_variation = 0) — it fixes the ladder, i.e. the net topology.
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  const abr::VideoManifest manifest{mp};
  rl::PpoAgent agent = abr::make_pensieve_agent(manifest, /*seed=*/0);
  rl::load_checkpoint(agent, *checkpoint);
  return std::make_unique<abr::OwnedPensievePolicy>(agent);
}

/// `ssim_table = <path>` loads a measured per-chunk table; without it the
/// model synthesizes a deterministic curve from the manifest's chunk sizes.
std::unique_ptr<abr::QoeModel> make_ssim_qoe(const FactoryArgs& args) {
  if (const std::string* table = args.find("ssim_table")) {
    return std::make_unique<abr::SsimTableQoe>(abr::load_ssim_table(*table));
  }
  return std::make_unique<abr::SsimTableQoe>();
}

Registry<abr::QoeModel> build_qoe_models() {
  Registry<abr::QoeModel> reg{"qoe model"};
  const auto abr = TargetDomain::kAbr;
  reg.add("lin", abr,
          "QoE_lin: bitrate - 4.3*rebuffer - |bitrate change| (the paper's "
          "metric)",
          plain<abr::QoeModel, abr::LinQoe>());
  reg.add("log", abr,
          "QoE_log: log(R/R_min) quality term, MPC's concave variant",
          plain<abr::QoeModel, abr::LogQoe>());
  reg.add("ssim", abr,
          "per-chunk SSIM-dB table (ssim_table = <csv>, else a synthetic "
          "size-derived curve)",
          make_ssim_qoe);
  return reg;
}

/// `qoe = lin | log | ssim` (default lin) selects the model mpc-dp plans
/// against; extra args (e.g. `ssim_table =`) forward to the model factory.
std::unique_ptr<abr::AbrProtocol> make_mpc_dp(const FactoryArgs& args) {
  return std::make_unique<abr::MpcDp>(
      abr::MpcDp::Params{}, qoe_models().make(args.value_or("qoe", "lin"),
                                              args));
}

Registry<abr::AbrProtocol> build_abr_protocols() {
  Registry<abr::AbrProtocol> reg{"protocol"};
  const auto abr = TargetDomain::kAbr;
  reg.add("bb", abr, "buffer-based rate control (Fig. 3's target)",
          plain<abr::AbrProtocol, abr::BufferBased>());
  reg.add("bola", abr, "BOLA Lyapunov-utility controller",
          plain<abr::AbrProtocol, abr::Bola>());
  reg.add("mpc", abr, "RobustMPC model-predictive controller",
          plain<abr::AbrProtocol, abr::RobustMpc>());
  reg.add("mpc-dp", abr,
          "puffer-style DP over a discretized buffer grid (qoe = "
          "lin|log|ssim)",
          make_mpc_dp);
  reg.add("throughput", abr, "last-throughput rate matcher",
          plain<abr::AbrProtocol, abr::ThroughputRule>());
  reg.add("pensieve", abr,
          "PPO-trained Pensieve policy (checkpoint = <path> required)",
          make_pensieve);
  return reg;
}

Registry<cc::CcSender> build_cc_senders() {
  Registry<cc::CcSender> reg{"sender"};
  const auto cc = TargetDomain::kCc;
  reg.add("bbr", cc, "BBRv1 model-based state machine (Fig. 5's target)",
          plain<cc::CcSender, cc::BbrSender>());
  reg.add("cubic", cc, "CUBIC loss-based window growth",
          plain<cc::CcSender, cc::CubicSender>());
  reg.add("copa", cc, "Copa delay-based target-rate controller",
          plain<cc::CcSender, cc::CopaSender>());
  reg.add("vivace", cc, "PCC Vivace online-learning rate control",
          plain<cc::CcSender, cc::VivaceSender>());
  reg.add("reno", cc, "NewReno AIMD baseline",
          plain<cc::CcSender, cc::RenoSender>());
  return reg;
}

Registry<trace::TraceGenerator> build_trace_generators() {
  Registry<trace::TraceGenerator> reg{"generator"};
  const auto any = TargetDomain::kAny;
  reg.add("fcc", any, "FCC-broadband-like synthetic corpus",
          plain<trace::TraceGenerator, trace::FccLikeGenerator>());
  reg.add("3g", any, "Norway-3G/HSDPA-like synthetic corpus",
          plain<trace::TraceGenerator, trace::Hsdpa3gLikeGenerator>());
  reg.add("random", any, "uniform-random bandwidth levels",
          plain<trace::TraceGenerator, trace::UniformRandomGenerator>());
  return reg;
}

InfoRegistry build_adversary_kinds() {
  InfoRegistry reg{"adversary"};
  reg.add("ppo", TargetDomain::kAny,
          "RL adversary, the paper's recipe (train-adversary -> "
          "record-traces); attacks ABR protocols and CC senders alike");
  reg.add("cem", TargetDomain::kAbr,
          "cross-entropy trace search (Section 2.1's trace-based "
          "alternative); record-traces only — searching *is* recording");
  reg.add("fairness", TargetDomain::kCc,
          "RL fairness adversary over a flow mix (flows = a,b,...); paid "
          "for unfairness it induces (reward = jain | victim)");
  reg.add("cross-traffic", TargetDomain::kCc,
          "fairness adversary plus an on/off bursty non-responsive "
          "accomplice flow, burst schedule drawn per episode");
  reg.add("late-join", TargetDomain::kCc,
          "fairness adversary where the mix's last flow joins at a "
          "randomized time, so the adversary can ambush the arrival");
  return reg;
}

}  // namespace

const Registry<abr::AbrProtocol>& abr_protocols() {
  static const Registry<abr::AbrProtocol> registry = build_abr_protocols();
  return registry;
}

const Registry<cc::CcSender>& cc_senders() {
  static const Registry<cc::CcSender> registry = build_cc_senders();
  return registry;
}

const Registry<trace::TraceGenerator>& trace_generators() {
  static const Registry<trace::TraceGenerator> registry =
      build_trace_generators();
  return registry;
}

const InfoRegistry& adversary_kinds() {
  static const InfoRegistry registry = build_adversary_kinds();
  return registry;
}

const Registry<abr::QoeModel>& qoe_models() {
  static const Registry<abr::QoeModel> registry = build_qoe_models();
  return registry;
}

std::vector<std::function<std::unique_ptr<cc::CcSender>()>> resolve_flow_mix(
    const std::string& flows_csv) {
  const std::vector<std::string> names = util::split_list(flows_csv);
  if (names.size() < 2) {
    throw std::runtime_error{"flow mix '" + flows_csv +
                             "' needs at least two flows (e.g. flows = "
                             "bbr,cubic)"};
  }
  std::vector<std::function<std::unique_ptr<cc::CcSender>()>> factories;
  factories.reserve(names.size());
  for (const auto& name : names) {
    factories.push_back(cc_senders().factory(name));
  }
  return factories;
}

}  // namespace netadv::core
