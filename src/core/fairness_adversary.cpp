#include "core/fairness_adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cc/bbr.hpp"

namespace netadv::core {

FairnessAdversaryEnv::FairnessAdversaryEnv(Params params,
                                           std::vector<SenderFactory> factories)
    : params_(params), factories_(std::move(factories)) {
  if (params_.bandwidth_min_mbps <= 0.0 ||
      params_.bandwidth_max_mbps <= params_.bandwidth_min_mbps ||
      params_.latency_max_ms < params_.latency_min_ms ||
      params_.loss_min < 0.0 || params_.loss_max > 1.0 ||
      params_.loss_max < params_.loss_min || params_.epoch_s <= 0.0 ||
      params_.episode_duration_s < params_.epoch_s ||
      params_.stagger_s < 0.0) {
    throw std::invalid_argument{"FairnessAdversaryEnv: bad parameters"};
  }
  if (factories_.empty()) {
    const auto make_bbr = [] {
      return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
    };
    factories_ = {make_bbr, make_bbr};
  }
  if (factories_.size() < 2) {
    throw std::invalid_argument{"FairnessAdversaryEnv: need >= 2 flows"};
  }
  for (const auto& f : factories_) {
    if (!f) throw std::invalid_argument{"FairnessAdversaryEnv: null factory"};
  }
}

rl::ActionSpec FairnessAdversaryEnv::action_spec() const {
  return rl::ActionSpec::continuous(
      {params_.bandwidth_min_mbps, params_.latency_min_ms, params_.loss_min},
      {params_.bandwidth_max_mbps, params_.latency_max_ms, params_.loss_max});
}

rl::Vec FairnessAdversaryEnv::observe() const {
  const auto tput = last_interval_.throughputs_mbps();
  double total = 0.0;
  for (double t : tput) total += t;
  const double share0 = total > 0.0 && !tput.empty() ? tput[0] / total : 0.5;
  double qdelay = 0.0;
  // Approximate path queueing from the flows' mean RTT above the base RTT.
  if (!last_interval_.flows.empty()) {
    const double base_rtt =
        2.0 * params_.link.initial.one_way_delay_ms / 1000.0;
    double rtt_sum = 0.0;
    std::size_t n = 0;
    for (const auto& f : last_interval_.flows) {
      if (f.packets_delivered > 0) {
        rtt_sum += f.mean_rtt_s;
        ++n;
      }
    }
    if (n > 0) qdelay = std::max(0.0, rtt_sum / static_cast<double>(n) - base_rtt);
  }
  return {share0, last_interval_.aggregate_utilization(),
          std::min(1.0, qdelay / params_.queue_delay_scale_s)};
}

rl::Vec FairnessAdversaryEnv::reset(util::Rng& rng) {
  senders_.clear();
  std::vector<cc::CcSender*> raw;
  for (const auto& factory : factories_) {
    senders_.push_back(factory());
    raw.push_back(senders_.back().get());
  }
  cc::LinkSim::Params link = params_.link;
  link.initial.bandwidth_mbps =
      0.5 * (params_.bandwidth_min_mbps + params_.bandwidth_max_mbps);
  link.initial.one_way_delay_ms =
      0.5 * (params_.latency_min_ms + params_.latency_max_ms);
  link.initial.loss_rate = 0.0;
  std::vector<double> starts;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    starts.push_back(static_cast<double>(i) * params_.stagger_s);
  }
  runner_ = std::make_unique<cc::MultiFlowRunner>(raw, link, rng(), starts);
  epoch_index_ = 0;
  last_reward_ = AdversaryReward{};
  last_jain_ = 1.0;
  ewma_initialized_ = false;

  runner_->run_until(params_.epoch_s);
  last_interval_ = runner_->collect();
  ++epoch_index_;
  return observe();
}

rl::StepResult FairnessAdversaryEnv::step(const rl::Vec& action,
                                          util::Rng& /*rng*/) {
  if (!runner_) throw std::logic_error{"FairnessAdversaryEnv: step before reset"};

  const rl::Vec physical = action_spec().to_physical(action);
  const double bandwidth = physical[0];
  const double latency = physical[1];
  const double loss = physical[2];

  runner_->set_conditions({bandwidth, latency, loss});
  const double t_end = static_cast<double>(epoch_index_ + 1) * params_.epoch_s;
  runner_->run_until(t_end);
  last_interval_ = runner_->collect();
  ++epoch_index_;

  const double bw_norm = (bandwidth - params_.bandwidth_min_mbps) /
                         (params_.bandwidth_max_mbps - params_.bandwidth_min_mbps);
  const double lat_norm =
      params_.latency_max_ms > params_.latency_min_ms
          ? (latency - params_.latency_min_ms) /
                (params_.latency_max_ms - params_.latency_min_ms)
          : 0.0;
  if (!ewma_initialized_) {
    ewma_bw_norm_ = bw_norm;
    ewma_lat_norm_ = lat_norm;
    ewma_initialized_ = true;
  }
  const double smoothing_raw =
      std::abs(bw_norm - ewma_bw_norm_) + std::abs(lat_norm - ewma_lat_norm_);
  ewma_bw_norm_ += params_.ewma_alpha * (bw_norm - ewma_bw_norm_);
  ewma_lat_norm_ += params_.ewma_alpha * (lat_norm - ewma_lat_norm_);

  // Jain of 1 is attainable (fair sharing); the adversary is paid for the
  // gap it opens, Equation-1 style. Before the last flow has started the
  // imbalance is structural, not earned: gate the reward at jain = 1.
  const double all_started_at =
      static_cast<double>(factories_.size() - 1) * params_.stagger_s;
  last_jain_ = cc::jain_fairness_index(last_interval_.throughputs_mbps());
  if (last_interval_.flows.empty() ||
      last_interval_.aggregate_utilization() <= 0.0 ||
      runner_->now_s() <= all_started_at + params_.epoch_s) {
    last_jain_ = 1.0;  // nothing earned yet
  }
  last_reward_.optimal = 1.0;
  last_reward_.protocol = last_jain_ + loss;
  last_reward_.smoothing = params_.smoothing_coefficient * smoothing_raw;

  rl::StepResult result;
  result.reward = last_reward_.value();
  result.done = epoch_index_ >= epochs_per_episode();
  result.observation = observe();
  return result;
}

}  // namespace netadv::core
