#include "core/fairness_adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cc/bbr.hpp"

namespace netadv::core {

/// The cross-traffic accomplice: a non-congestion-responsive blast source
/// the env gates on/off per epoch. During "on" stretches it paces at a fixed
/// rate under a fixed window; during "off" stretches its window is zero, so
/// the runner stops scheduling sends while in-flight packets drain normally.
/// Deliberately deaf to ACKs and losses — real bursty cross-traffic (incast
/// waves, UDP blasts) does not back off, which is what makes it useful to an
/// adversary.
class OnOffBlastSender final : public cc::CcSender {
 public:
  OnOffBlastSender(double rate_mbps, double cwnd_packets)
      : rate_bps_(rate_mbps * 1e6), cwnd_packets_(cwnd_packets) {}

  std::string name() const override { return "cross-blast"; }
  void start(double /*now_s*/) override { active_ = true; }
  void on_ack(const cc::AckInfo& /*ack*/) override {}
  void on_loss(const cc::LossInfo& /*loss*/) override {}
  double pacing_rate_bps() const override { return rate_bps_; }
  double cwnd_packets() const override { return active_ ? cwnd_packets_ : 0.0; }

  void set_active(bool active) noexcept { active_ = active; }

 private:
  double rate_bps_;
  double cwnd_packets_;
  bool active_ = true;
};

FairnessAdversaryEnv::~FairnessAdversaryEnv() = default;

FairnessAdversaryEnv::FairnessAdversaryEnv(Params params,
                                           std::vector<SenderFactory> factories)
    : params_(params), factories_(std::move(factories)) {
  if (params_.bandwidth_min_mbps <= 0.0 ||
      params_.bandwidth_max_mbps <= params_.bandwidth_min_mbps ||
      params_.latency_max_ms < params_.latency_min_ms ||
      params_.loss_min < 0.0 || params_.loss_max > 1.0 ||
      params_.loss_max < params_.loss_min || params_.epoch_s <= 0.0 ||
      params_.episode_duration_s < params_.epoch_s ||
      params_.stagger_s < 0.0 || params_.cross_rate_mbps <= 0.0 ||
      params_.cross_cwnd_packets <= 0.0 || params_.cross_period_s <= 0.0 ||
      params_.late_join_min_s < 0.0 ||
      params_.late_join_max_s < params_.late_join_min_s) {
    throw std::invalid_argument{"FairnessAdversaryEnv: bad parameters"};
  }
  if (factories_.empty()) {
    const auto make_bbr = [] {
      return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
    };
    factories_ = {make_bbr, make_bbr};
  }
  if (factories_.size() < 2) {
    throw std::invalid_argument{"FairnessAdversaryEnv: need >= 2 flows"};
  }
  for (const auto& f : factories_) {
    if (!f) throw std::invalid_argument{"FairnessAdversaryEnv: null factory"};
  }
}

std::string FairnessAdversaryEnv::name() const {
  switch (params_.scenario) {
    case Scenario::kCrossTraffic:
      return "cross-traffic-adversary";
    case Scenario::kLateJoin:
      return "late-join-adversary";
    case Scenario::kFairness:
      break;
  }
  return "fairness-adversary";
}

rl::ActionSpec FairnessAdversaryEnv::action_spec() const {
  return rl::ActionSpec::continuous(
      {params_.bandwidth_min_mbps, params_.latency_min_ms, params_.loss_min},
      {params_.bandwidth_max_mbps, params_.latency_max_ms, params_.loss_max});
}

std::vector<double> FairnessAdversaryEnv::mix_throughputs() const {
  std::vector<double> tput;
  const std::size_t n =
      std::min(factories_.size(), last_interval_.flows.size());
  tput.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tput.push_back(
        last_interval_.flows[i].throughput_mbps(last_interval_.duration_s));
  }
  return tput;
}

rl::Vec FairnessAdversaryEnv::observe() const {
  const std::vector<double> tput = mix_throughputs();
  double total = 0.0;
  for (double t : tput) total += t;
  // A starved interval has no meaningful share; 0/0 must not reach the
  // policy network. Define it as the fair share 1/n.
  const double share0 =
      total > 0.0 && !tput.empty()
          ? tput[0] / total
          : 1.0 / static_cast<double>(std::max<std::size_t>(
                1, factories_.size()));
  double qdelay = 0.0;
  // Approximate path queueing from the mix flows' mean RTT above the base
  // RTT. mean_rtt_s is always meaningful (delivery-free intervals carry the
  // previous value, never 0 ms), so every flow contributes.
  if (!last_interval_.flows.empty()) {
    const double base_rtt =
        2.0 * params_.link.initial.one_way_delay_ms / 1000.0;
    double rtt_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0;
         i < std::min(factories_.size(), last_interval_.flows.size()); ++i) {
      rtt_sum += last_interval_.flows[i].mean_rtt_s;
      ++n;
    }
    if (n > 0) {
      qdelay = std::max(0.0, rtt_sum / static_cast<double>(n) - base_rtt);
    }
  }
  return {share0, last_interval_.aggregate_utilization(),
          std::min(1.0, qdelay / params_.queue_delay_scale_s)};
}

rl::Vec FairnessAdversaryEnv::reset(util::Rng& rng) {
  senders_.clear();
  cross_sender_.reset();
  cross_active_.clear();
  std::vector<cc::CcSender*> raw;
  for (const auto& factory : factories_) {
    senders_.push_back(factory());
    raw.push_back(senders_.back().get());
  }

  std::vector<double> starts;
  late_join_time_s_ = 0.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    starts.push_back(static_cast<double>(i) * params_.stagger_s);
  }
  if (params_.scenario == Scenario::kLateJoin) {
    // The last mix flow's arrival is the episode's randomized event; the
    // adversary learns to ambush it.
    late_join_time_s_ = std::min(
        rng.uniform(params_.late_join_min_s, params_.late_join_max_s),
        params_.episode_duration_s);
    starts.back() = late_join_time_s_;
  }
  if (params_.scenario == Scenario::kCrossTraffic) {
    cross_sender_ = std::make_unique<OnOffBlastSender>(
        params_.cross_rate_mbps, params_.cross_cwnd_packets);
    raw.push_back(cross_sender_.get());
    starts.push_back(0.0);
    // Draw the whole on/off schedule up front (episode-deterministic): each
    // stretch lasts [0.5, 1.5] x period, starting from a random phase.
    const std::size_t epochs = epochs_per_episode();
    cross_active_.resize(epochs + 1);
    bool on = rng.bernoulli(0.5);
    double until = rng.uniform(0.5, 1.5) * params_.cross_period_s;
    for (std::size_t e = 0; e <= epochs; ++e) {
      const double t = static_cast<double>(e) * params_.epoch_s;
      while (t >= until) {
        on = !on;
        until += rng.uniform(0.5, 1.5) * params_.cross_period_s;
      }
      cross_active_[e] = on ? 1 : 0;
    }
  }
  all_started_at_s_ = 0.0;
  for (std::size_t i = 0; i < factories_.size(); ++i) {
    all_started_at_s_ = std::max(all_started_at_s_, starts[i]);
  }

  cc::LinkSim::Params link = params_.link;
  link.initial.bandwidth_mbps =
      0.5 * (params_.bandwidth_min_mbps + params_.bandwidth_max_mbps);
  link.initial.one_way_delay_ms =
      0.5 * (params_.latency_min_ms + params_.latency_max_ms);
  link.initial.loss_rate = 0.0;
  runner_ = std::make_unique<cc::MultiFlowRunner>(raw, link, rng(), starts);
  epoch_index_ = 0;
  last_reward_ = AdversaryReward{};
  last_jain_ = 1.0;
  last_victim_util_ = 0.0;
  ewma_initialized_ = false;

  if (cross_sender_) cross_sender_->set_active(cross_active_[0] != 0);
  runner_->run_until(params_.epoch_s);
  last_interval_ = runner_->collect();
  ++epoch_index_;
  return observe();
}

rl::StepResult FairnessAdversaryEnv::step(const rl::Vec& action,
                                          util::Rng& /*rng*/) {
  if (!runner_) throw std::logic_error{"FairnessAdversaryEnv: step before reset"};

  const rl::Vec physical = action_spec().to_physical(action);
  const double bandwidth = physical[0];
  const double latency = physical[1];
  const double loss = physical[2];

  if (cross_sender_ && epoch_index_ < cross_active_.size()) {
    cross_sender_->set_active(cross_active_[epoch_index_] != 0);
  }
  runner_->set_conditions({bandwidth, latency, loss});
  const double t_end = static_cast<double>(epoch_index_ + 1) * params_.epoch_s;
  runner_->run_until(t_end);
  last_interval_ = runner_->collect();
  ++epoch_index_;

  const double bw_norm = (bandwidth - params_.bandwidth_min_mbps) /
                         (params_.bandwidth_max_mbps - params_.bandwidth_min_mbps);
  const double lat_norm =
      params_.latency_max_ms > params_.latency_min_ms
          ? (latency - params_.latency_min_ms) /
                (params_.latency_max_ms - params_.latency_min_ms)
          : 0.0;
  if (!ewma_initialized_) {
    ewma_bw_norm_ = bw_norm;
    ewma_lat_norm_ = lat_norm;
    ewma_initialized_ = true;
  }
  const double smoothing_raw =
      std::abs(bw_norm - ewma_bw_norm_) + std::abs(lat_norm - ewma_lat_norm_);
  ewma_bw_norm_ += params_.ewma_alpha * (bw_norm - ewma_bw_norm_);
  ewma_lat_norm_ += params_.ewma_alpha * (lat_norm - ewma_lat_norm_);

  // Unfairness of 0 is attainable (fair sharing); the adversary is paid for
  // the gap it opens, Equation-1 style. Before the last mix flow has started
  // the imbalance is structural, not earned, and an interval where the link
  // moved nothing at all offers nothing to divide unfairly — both gate the
  // pay term to its fair value.
  const std::size_t n = factories_.size();
  last_jain_ = cc::jain_fairness_index(mix_throughputs());
  // min() clamp as in aggregate_utilization(): queued packets from the
  // previous epoch can deliver just past the boundary, nudging a single
  // interval's ratio above 1.
  last_victim_util_ =
      last_interval_.capacity_bits > 0.0 && !last_interval_.flows.empty()
          ? std::min(1.0, last_interval_.flows[0].delivered_bits /
                              last_interval_.capacity_bits)
          : 0.0;
  // Victim pay term: 1 at the victim's fair share (or above), 0 when fully
  // starved — same scale as the Jain term.
  double victim_term =
      std::min(1.0, static_cast<double>(n) * last_victim_util_);
  if (last_interval_.flows.empty() ||
      last_interval_.aggregate_utilization() <= 0.0 ||
      runner_->now_s() <= all_started_at_s_ + params_.epoch_s) {
    last_jain_ = 1.0;  // nothing earned yet
    victim_term = 1.0;
  }
  last_reward_.optimal = 1.0;
  last_reward_.protocol =
      (params_.reward == RewardKind::kVictim ? victim_term : last_jain_) +
      loss;
  last_reward_.smoothing = params_.smoothing_coefficient * smoothing_raw;

  rl::StepResult result;
  result.reward = last_reward_.value();
  result.done = epoch_index_ >= epochs_per_episode();
  result.observation = observe();
  return result;
}

std::optional<FairnessAdversaryEnv::Scenario> fairness_scenario_for(
    const std::string& adversary_kind) {
  using Scenario = FairnessAdversaryEnv::Scenario;
  if (adversary_kind == "fairness") return Scenario::kFairness;
  if (adversary_kind == "cross-traffic") return Scenario::kCrossTraffic;
  if (adversary_kind == "late-join") return Scenario::kLateJoin;
  return std::nullopt;
}

FairnessAdversaryEnv::RewardKind parse_fairness_reward(
    const std::string& text) {
  if (text == "jain") return FairnessAdversaryEnv::RewardKind::kJain;
  if (text == "victim") return FairnessAdversaryEnv::RewardKind::kVictim;
  throw std::runtime_error{"unknown fairness reward '" + text +
                           "' (jain | victim)"};
}

}  // namespace netadv::core
