// Dense row-major matrix of doubles plus the handful of BLAS-level-2 kernels
// the MLP needs (gemv, transposed gemv, rank-1 update). The free functions
// here are thin wrappers over the dispatched kernel layer in kernels.hpp,
// which implements the canonical accumulation orders (4-lane fp64, 8-lane
// fp32) once per backend — bit-identical across backends, thread counts,
// and ISAs (DESIGN.md §7). The float overloads mirror the inference-only
// f32 kernel surface: forward kernels and dot only, no gradient kernels,
// because training math stays float64 (the precision contract).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace netadv::rl {

using Vec = std::vector<double>;

/// Float vector for the fp32 inference fast path (mirrors Vec).
using FVec = std::vector<float>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  double& at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range{"Matrix::at"};
    return data_[r * cols_ + c];
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  void fill(double value) noexcept {
    for (auto& x : data_) x = value;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = W x + b. Requires x.size() == W.cols() (and b.size() == W.rows()).
/// W may be given as a raw span (the MLP stores parameters contiguously).
/// Per row: bias + the canonical 4-lane dot (kernels.hpp).
void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y);
void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y);

/// Batched forward: Y = X W^T + 1 b^T, with X a (batch x cols) row-major
/// block and Y (batch x rows). Each output row uses exactly the gemv
/// accumulation order, so batched inference over N observations is
/// bit-identical to N gemv calls — the property the VecEnv determinism
/// guarantee rests on — while amortizing per-call overhead and reusing W
/// across the batch.
void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y);
void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y);

/// y = W^T g — propagates a gradient through a linear layer.
void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y);

/// W += g x^T — accumulates the weight gradient of a linear layer.
void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x);

/// Dot product; requires equal sizes.
double dot(std::span<const double> a, std::span<const double> b);
float dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double l2_norm(std::span<const double> a);

}  // namespace netadv::rl
