#include "rl/adam.hpp"

#include <cmath>
#include <stdexcept>

#include "rl/matrix.hpp"

namespace netadv::rl {

Adam::Adam(std::size_t param_count, AdamConfig config)
    : config_(config), m_(param_count, 0.0), v_(param_count, 0.0) {}

void Adam::step(std::span<double> params, std::span<const double> grads) {
  if (params.size() != m_.size() || grads.size() != m_.size()) {
    throw std::invalid_argument{"Adam::step: size mismatch"};
  }
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = config_.learning_rate;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grads[i];
    m_[i] = b1 * m_[i] + (1.0 - b1) * g;
    v_[i] = b2 * v_[i] + (1.0 - b2) * g * g;
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    params[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

void Adam::reset() noexcept {
  t_ = 0;
  for (auto& x : m_) x = 0.0;
  for (auto& x : v_) x = 0.0;
}

double clip_grad_norm(std::span<double> grads, double max_norm) {
  const double norm = l2_norm(grads);
  if (max_norm <= 0.0 || norm <= max_norm || norm == 0.0) return norm;
  const double scale = max_norm / norm;
  for (auto& g : grads) g *= scale;
  return norm;
}

}  // namespace netadv::rl
