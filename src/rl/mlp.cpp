#include "rl/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "rl/kernels.hpp"

namespace netadv::rl {

bool f32_rollout_env_default() noexcept {
  const char* env = std::getenv("NETADV_F32_ROLLOUT");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

namespace {

double activate(Activation act, double z) noexcept {
  switch (act) {
    case Activation::kTanh:
      return std::tanh(z);
    case Activation::kRelu:
      return z > 0.0 ? z : 0.0;
    case Activation::kIdentity:
      return z;
  }
  return z;
}

/// Derivative expressed in terms of pre-activation z and post-activation a.
double activate_grad(Activation act, double z, double a) noexcept {
  switch (act) {
    case Activation::kTanh:
      return 1.0 - a * a;
    case Activation::kRelu:
      return z > 0.0 ? 1.0 : 0.0;
    case Activation::kIdentity:
      return 1.0;
  }
  return 1.0;
}

/// float32 activation for the fp32 inference path (tanhf, not a widened
/// double tanh — the point is to stay in single precision end to end).
float activate_f32(Activation act, float z) noexcept {
  switch (act) {
    case Activation::kTanh:
      return std::tanh(z);
    case Activation::kRelu:
      return z > 0.0f ? z : 0.0f;
    case Activation::kIdentity:
      return z;
  }
  return z;
}

}  // namespace

Mlp::Mlp(std::vector<std::size_t> sizes, Activation hidden_activation,
         double final_gain, util::Rng& rng)
    : sizes_(std::move(sizes)), hidden_(hidden_activation) {
  if (sizes_.size() < 2) throw std::invalid_argument{"Mlp needs >= 2 layer sizes"};
  for (std::size_t s : sizes_) {
    if (s == 0) throw std::invalid_argument{"Mlp layer size must be > 0"};
  }

  std::size_t offset = 0;
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    Layer l;
    l.in = sizes_[i];
    l.out = sizes_[i + 1];
    l.w_offset = offset;
    offset += l.in * l.out;
    l.b_offset = offset;
    offset += l.out;
    layers_.push_back(l);
  }
  params_.assign(offset, 0.0);
  grads_.assign(offset, 0.0);

  // Xavier-uniform initialization; the final (linear) layer additionally
  // scaled by final_gain so policy heads start near-deterministic-uniform.
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    const bool last = (i + 1 == layers_.size());
    const double limit = std::sqrt(6.0 / static_cast<double>(l.in + l.out)) *
                         (last ? final_gain : 1.0);
    auto w = weight(l);
    for (auto& value : w) value = rng.uniform(-limit, limit);
    // Biases start at zero (already the case from assign()).
  }

  ws_.pre.resize(layers_.size());
  ws_.post.resize(layers_.size() + 1);
}

const Vec& Mlp::forward(const Vec& input) {
  const Vec& out = forward(input, ws_);
  forward_done_ = true;
  return out;
}

const Vec& Mlp::forward(const Vec& input, Workspace& ws) const {
  if (input.size() != input_size()) {
    throw std::invalid_argument{"Mlp::forward: wrong input size"};
  }
  ws.pre.resize(layers_.size());
  ws.post.resize(layers_.size() + 1);
  ws.post[0] = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    ws.pre[i].assign(l.out, 0.0);
    kernels::gemv(weight(l), l.out, l.in, ws.post[i],
         {params_.data() + l.b_offset, l.out}, ws.pre[i]);
    const bool last = (i + 1 == layers_.size());
    const Activation act = last ? Activation::kIdentity : hidden_;
    ws.post[i + 1].resize(l.out);
    for (std::size_t j = 0; j < l.out; ++j) {
      ws.post[i + 1][j] = activate(act, ws.pre[i][j]);
    }
  }
  return ws.post.back();
}

std::vector<Vec> Mlp::forward_batch(const std::vector<Vec>& inputs,
                                    std::vector<Workspace>* caches) const {
  const std::size_t batch = inputs.size();
  Vec current(batch * input_size());
  for (std::size_t n = 0; n < batch; ++n) {
    if (inputs[n].size() != input_size()) {
      throw std::invalid_argument{"Mlp::forward_batch: wrong input size"};
    }
    std::copy(inputs[n].begin(), inputs[n].end(),
              current.begin() + static_cast<std::ptrdiff_t>(n * input_size()));
  }
  if (caches != nullptr) {
    caches->resize(batch);
    for (std::size_t n = 0; n < batch; ++n) {
      Workspace& ws = (*caches)[n];
      ws.pre.resize(layers_.size());
      ws.post.resize(layers_.size() + 1);
      ws.post[0] = inputs[n];
    }
  }

  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    Vec next(batch * l.out);
    kernels::gemm(weight(l), l.out, l.in, current, batch,
         {params_.data() + l.b_offset, l.out}, next);
    if (caches != nullptr) {
      // Record pre-activations before the in-place activation overwrite.
      for (std::size_t n = 0; n < batch; ++n) {
        (*caches)[n].pre[i].assign(
            next.begin() + static_cast<std::ptrdiff_t>(n * l.out),
            next.begin() + static_cast<std::ptrdiff_t>((n + 1) * l.out));
      }
    }
    const bool last = (i + 1 == layers_.size());
    const Activation act = last ? Activation::kIdentity : hidden_;
    if (act != Activation::kIdentity) {
      for (auto& z : next) z = activate(act, z);
    }
    if (caches != nullptr) {
      for (std::size_t n = 0; n < batch; ++n) {
        (*caches)[n].post[i + 1].assign(
            next.begin() + static_cast<std::ptrdiff_t>(n * l.out),
            next.begin() + static_cast<std::ptrdiff_t>((n + 1) * l.out));
      }
    }
    current = std::move(next);
  }

  std::vector<Vec> outputs(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    outputs[n].assign(
        current.begin() + static_cast<std::ptrdiff_t>(n * output_size()),
        current.begin() + static_cast<std::ptrdiff_t>((n + 1) * output_size()));
  }
  return outputs;
}

void Mlp::sync_f32_mirror() const {
  // Double-checked: the acquire fast path keeps already-synced concurrent
  // inference lock-free; only an actual conversion takes the mutex.
  if (f32_.version.load(std::memory_order_acquire) == version_) return;
  std::lock_guard<std::mutex> lock{f32_.mu};
  if (f32_.version.load(std::memory_order_relaxed) == version_) return;
  f32_.values.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    f32_.values[i] = static_cast<float>(params_[i]);
  }
  f32_.version.store(version_, std::memory_order_release);
}

std::span<const float> Mlp::forward_f32(const Vec& input,
                                        F32Workspace& ws) const {
  if (input.size() != input_size()) {
    throw std::invalid_argument{"Mlp::forward_f32: wrong input size"};
  }
  sync_f32_mirror();
  ws.current.resize(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    ws.current[i] = static_cast<float>(input[i]);
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    ws.next.assign(l.out, 0.0f);
    kernels::gemv(
        std::span<const float>{f32_.values.data() + l.w_offset, l.in * l.out},
        l.out, l.in, ws.current,
        std::span<const float>{f32_.values.data() + l.b_offset, l.out},
        ws.next);
    const bool last = (i + 1 == layers_.size());
    const Activation act = last ? Activation::kIdentity : hidden_;
    if (act != Activation::kIdentity) {
      for (auto& z : ws.next) z = activate_f32(act, z);
    }
    std::swap(ws.current, ws.next);
  }
  return ws.current;
}

std::vector<Vec> Mlp::forward_batch_f32(const std::vector<Vec>& inputs) const {
  const std::size_t batch = inputs.size();
  sync_f32_mirror();
  std::vector<float> current(batch * input_size());
  for (std::size_t n = 0; n < batch; ++n) {
    if (inputs[n].size() != input_size()) {
      throw std::invalid_argument{"Mlp::forward_batch_f32: wrong input size"};
    }
    for (std::size_t i = 0; i < input_size(); ++i) {
      current[n * input_size() + i] = static_cast<float>(inputs[n][i]);
    }
  }

  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    std::vector<float> next(batch * l.out);
    kernels::gemm(
        std::span<const float>{f32_.values.data() + l.w_offset, l.in * l.out},
        l.out, l.in, current, batch,
        std::span<const float>{f32_.values.data() + l.b_offset, l.out}, next);
    const bool last = (i + 1 == layers_.size());
    const Activation act = last ? Activation::kIdentity : hidden_;
    if (act != Activation::kIdentity) {
      for (auto& z : next) z = activate_f32(act, z);
    }
    current = std::move(next);
  }

  std::vector<Vec> outputs(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    outputs[n].resize(output_size());
    for (std::size_t j = 0; j < output_size(); ++j) {
      outputs[n][j] =
          static_cast<double>(current[n * output_size() + j]);
    }
  }
  return outputs;
}

Vec Mlp::backward(const Vec& grad_output) {
  if (!forward_done_) throw std::logic_error{"Mlp::backward before forward"};
  return backward(grad_output, ws_, grads_);
}

Vec Mlp::backward(const Vec& grad_output, const Workspace& ws,
                  std::span<double> grads) const {
  if (grad_output.size() != output_size()) {
    throw std::invalid_argument{"Mlp::backward: wrong gradient size"};
  }
  if (grads.size() != params_.size()) {
    throw std::invalid_argument{"Mlp::backward: wrong gradient buffer size"};
  }
  if (ws.post.size() != layers_.size() + 1) {
    throw std::logic_error{"Mlp::backward before forward"};
  }

  Vec delta = grad_output;  // dLoss/dPost of current layer
  for (std::size_t idx = layers_.size(); idx-- > 0;) {
    const Layer& l = layers_[idx];
    const bool last = (idx + 1 == layers_.size());
    const Activation act = last ? Activation::kIdentity : hidden_;
    // dLoss/dPre = dLoss/dPost * act'(pre)
    for (std::size_t j = 0; j < l.out; ++j) {
      delta[j] *= activate_grad(act, ws.pre[idx][j], ws.post[idx + 1][j]);
    }
    kernels::rank1_update({grads.data() + l.w_offset, l.in * l.out}, l.out,
                          l.in, delta, ws.post[idx]);
    double* bg = grads.data() + l.b_offset;
    for (std::size_t j = 0; j < l.out; ++j) bg[j] += delta[j];

    Vec next(l.in, 0.0);
    kernels::gemv_transposed(weight(l), l.out, l.in, delta, next);
    delta = std::move(next);
  }
  return delta;
}

void Mlp::zero_grad() noexcept {
  for (auto& g : grads_) g = 0.0;
}

}  // namespace netadv::rl
