// Plain-text checkpointing of a PpoAgent: layer topology, actor/critic
// parameters, Gaussian log-std, and observation-normalizer statistics.
// Benches train an adversary once and reuse it; examples load shipped
// policies. The format is a line-oriented key/value text file so diffs and
// debugging stay humane.
//
// Format versions: v2 (written) stores the normalizer's raw second moment
// (obs_m2), making save -> load -> save a byte-identical round trip; v1
// (still loadable — cached bench adversaries ship in it) stored variance,
// whose 1/(n-1) scaling does not invert bit-exactly.
#pragma once

#include <string>

#include "rl/ppo.hpp"

namespace netadv::rl {

/// Write the agent's learnable state to `path`. Throws std::runtime_error on
/// I/O failure.
void save_checkpoint(const PpoAgent& agent, const std::string& path);

/// Restore learnable state in place. The agent must have been constructed
/// with the same topology (observation size, hidden sizes, action space);
/// throws std::runtime_error on mismatch or parse failure.
void load_checkpoint(PpoAgent& agent, const std::string& path);

}  // namespace netadv::rl
