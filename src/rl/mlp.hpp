// Fully connected multi-layer perceptron with reverse-mode gradients.
//
// Parameters (weights then biases, layer by layer) live in one contiguous
// vector so the optimizer and the checkpoint code can treat the network as a
// flat parameter array. forward() caches activations; backward() consumes
// them and *accumulates* into the gradient array, which is what minibatch
// training wants (call zero_grad() between minibatches).
//
// For concurrent per-sample gradient computation there is a second, const
// entry point pair: forward(input, Workspace&) / backward(grad, Workspace&,
// grads) run the identical arithmetic against caller-owned activation caches
// and a caller-owned gradient buffer, so any number of threads can
// backpropagate through one shared network at once (parameters are only
// read). The PPO/A2C shadow-buffer minibatch path is built on this.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace netadv::rl {

enum class Activation { kTanh, kRelu, kIdentity };

class Mlp {
 public:
  /// Caller-owned activation caches for the const forward/backward pair.
  /// One Workspace per concurrent task; a Workspace may be reused across
  /// samples (buffers are resized on each forward).
  struct Workspace {
    std::vector<Vec> pre;   ///< per-layer pre-activations z
    std::vector<Vec> post;  ///< per-layer post-activations a (post[0] = input)
  };

  /// `sizes` is {input, hidden..., output}; at least {in, out}.
  /// Hidden layers use `hidden_activation`; the output layer is linear, with
  /// its initial weights scaled by `final_gain` (0.01 is the usual PPO trick
  /// for policy heads; 1.0 for value heads).
  Mlp(std::vector<std::size_t> sizes, Activation hidden_activation,
      double final_gain, util::Rng& rng);

  std::size_t input_size() const noexcept { return sizes_.front(); }
  std::size_t output_size() const noexcept { return sizes_.back(); }
  std::size_t param_count() const noexcept { return params_.size(); }
  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Forward pass; the returned reference is valid until the next forward().
  const Vec& forward(const Vec& input);

  /// Forward pass into a caller-owned workspace. Const and safe to call from
  /// several threads on the same network at once; the arithmetic (and hence
  /// the result, bit for bit) is identical to the member-cache forward().
  /// The returned reference aliases ws.post.back().
  const Vec& forward(const Vec& input, Workspace& ws) const;

  /// Inference-only batched forward over N inputs via the gemm kernel.
  /// Bit-identical to calling forward() per input (same accumulation order),
  /// but does not touch the activation caches, so it is const, safe to call
  /// between forward()/backward() pairs, and safe from several threads on
  /// the same network at once.
  std::vector<Vec> forward_batch(const std::vector<Vec>& inputs) const;

  /// Backpropagate `grad_output` (dLoss/dOutput for the *last* forward()),
  /// accumulating parameter gradients; returns dLoss/dInput.
  Vec backward(const Vec& grad_output);

  /// Backpropagate against the activations cached in `ws` by the const
  /// forward(), *accumulating* into the caller-owned `grads` buffer (size
  /// param_count(), same weights-then-biases layout as grads()). Const and
  /// thread-safe for distinct (ws, grads) pairs — this is the shadow-buffer
  /// half of the deterministic parallel minibatch: each sample's gradient is
  /// a single accumulation term per parameter, so summing shadow buffers in
  /// sample-index order reproduces the sequential gradient bit for bit.
  Vec backward(const Vec& grad_output, const Workspace& ws,
               std::span<double> grads) const;

  void zero_grad() noexcept;

  std::span<double> params() noexcept { return params_; }
  std::span<const double> params() const noexcept { return params_; }
  std::span<double> grads() noexcept { return grads_; }
  std::span<const double> grads() const noexcept { return grads_; }

  const std::vector<std::size_t>& layer_sizes() const noexcept { return sizes_; }
  Activation hidden_activation() const noexcept { return hidden_; }

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::size_t w_offset = 0;  // rows=out, cols=in
    std::size_t b_offset = 0;
  };

  std::span<double> weight(const Layer& l) noexcept {
    return {params_.data() + l.w_offset, l.in * l.out};
  }
  std::span<const double> weight(const Layer& l) const noexcept {
    return {params_.data() + l.w_offset, l.in * l.out};
  }
  std::span<double> bias(const Layer& l) noexcept {
    return {params_.data() + l.b_offset, l.out};
  }
  std::span<double> weight_grad(const Layer& l) noexcept {
    return {grads_.data() + l.w_offset, l.in * l.out};
  }
  std::span<double> bias_grad(const Layer& l) noexcept {
    return {grads_.data() + l.b_offset, l.out};
  }

  std::vector<std::size_t> sizes_;
  Activation hidden_;
  std::vector<Layer> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;

  // Activation caches from the last member forward(); the member
  // forward/backward pair simply runs the const workspace pair against this.
  Workspace ws_;
  bool forward_done_ = false;
};

}  // namespace netadv::rl
