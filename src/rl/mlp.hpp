// Fully connected multi-layer perceptron with reverse-mode gradients.
//
// Parameters (weights then biases, layer by layer) live in one contiguous
// vector so the optimizer and the checkpoint code can treat the network as a
// flat parameter array. forward() caches activations; backward() consumes
// them and *accumulates* into the gradient array, which is what minibatch
// training wants (call zero_grad() between minibatches).
//
// For concurrent per-sample gradient computation there is a second, const
// entry point pair: forward(input, Workspace&) / backward(grad, Workspace&,
// grads) run the identical arithmetic against caller-owned activation caches
// and a caller-owned gradient buffer, so any number of threads can
// backpropagate through one shared network at once (parameters are only
// read). The PPO/A2C shadow-buffer minibatch path is built on this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace netadv::rl {

enum class Activation { kTanh, kRelu, kIdentity };

/// Process-wide default for the fp32 rollout fast path, from the
/// NETADV_F32_ROLLOUT environment variable ("1" | "on" | "true" = enabled;
/// anything else, or unset, = disabled). Agents read this once at
/// construction; set_f32_rollout() overrides per agent. Default OFF because
/// fp32 inference differs from fp64 by rounding — every golden artifact is
/// recorded against the fp64 path.
bool f32_rollout_env_default() noexcept;

class Mlp {
 public:
  /// Caller-owned activation caches for the const forward/backward pair.
  /// One Workspace per concurrent task; a Workspace may be reused across
  /// samples (buffers are resized on each forward).
  struct Workspace {
    std::vector<Vec> pre;   ///< per-layer pre-activations z
    std::vector<Vec> post;  ///< per-layer post-activations a (post[0] = input)
  };

  /// Scratch buffers for the fp32 inference path (forward_f32); one per
  /// concurrent task, reusable across calls.
  struct F32Workspace {
    FVec current;
    FVec next;
  };

  /// `sizes` is {input, hidden..., output}; at least {in, out}.
  /// Hidden layers use `hidden_activation`; the output layer is linear, with
  /// its initial weights scaled by `final_gain` (0.01 is the usual PPO trick
  /// for policy heads; 1.0 for value heads).
  Mlp(std::vector<std::size_t> sizes, Activation hidden_activation,
      double final_gain, util::Rng& rng);

  std::size_t input_size() const noexcept { return sizes_.front(); }
  std::size_t output_size() const noexcept { return sizes_.back(); }
  std::size_t param_count() const noexcept { return params_.size(); }
  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Forward pass; the returned reference is valid until the next forward().
  const Vec& forward(const Vec& input);

  /// Forward pass into a caller-owned workspace. Const and safe to call from
  /// several threads on the same network at once; the arithmetic (and hence
  /// the result, bit for bit) is identical to the member-cache forward().
  /// The returned reference aliases ws.post.back().
  const Vec& forward(const Vec& input, Workspace& ws) const;

  /// Inference-only batched forward over N inputs via the gemm kernel.
  /// Bit-identical to calling forward() per input (same accumulation order),
  /// but does not touch the activation caches, so it is const, safe to call
  /// between forward()/backward() pairs, and safe from several threads on
  /// the same network at once.
  ///
  /// When `caches` is non-null it is resized to the batch and filled with
  /// each sample's full activation record — exactly what forward(input,
  /// Workspace&) would have produced, because gemm computes each output
  /// element in the same canonical order as gemv. The caches are valid for
  /// backward(grad, ws, grads) until the parameters change (track
  /// param_version()); PPO/A2C use this to reuse rollout-time activations in
  /// the shadow-gradient minibatch path instead of recomputing forwards.
  std::vector<Vec> forward_batch(const std::vector<Vec>& inputs,
                                 std::vector<Workspace>* caches = nullptr) const;

  /// fp32 inference forward: runs the whole network in float32 against a
  /// lazily-synced fp32 mirror of the parameters, using the f32 kernel
  /// overloads (kLanesF32 canonical order — see kernels.hpp). Roughly half
  /// the memory traffic and twice the SIMD width of forward(); the result
  /// differs from the fp64 path by rounding, so it is reserved for
  /// action-selection/rollout, never for gradients (DESIGN.md §7 precision
  /// contract). The mirror re-syncs automatically whenever the parameters
  /// may have changed (see param_version()); syncing is thread-safe, so
  /// concurrent const callers with distinct workspaces are fine. The
  /// returned span aliases `ws` and is valid until the next call with the
  /// same workspace.
  std::span<const float> forward_f32(const Vec& input, F32Workspace& ws) const;

  /// Batched fp32 inference via the f32 gemm kernel; bit-identical to
  /// forward_f32 per input. Outputs are widened to double for drop-in use
  /// by callers that consume fp64 heads.
  std::vector<Vec> forward_batch_f32(const std::vector<Vec>& inputs) const;

  /// Backpropagate `grad_output` (dLoss/dOutput for the *last* forward()),
  /// accumulating parameter gradients; returns dLoss/dInput.
  Vec backward(const Vec& grad_output);

  /// Backpropagate against the activations cached in `ws` by the const
  /// forward(), *accumulating* into the caller-owned `grads` buffer (size
  /// param_count(), same weights-then-biases layout as grads()). Const and
  /// thread-safe for distinct (ws, grads) pairs — this is the shadow-buffer
  /// half of the deterministic parallel minibatch: each sample's gradient is
  /// a single accumulation term per parameter, so summing shadow buffers in
  /// sample-index order reproduces the sequential gradient bit for bit.
  Vec backward(const Vec& grad_output, const Workspace& ws,
               std::span<double> grads) const;

  void zero_grad() noexcept;

  /// Mutable parameter access. Handing out a writable view means the
  /// parameters MAY change, so this conservatively bumps param_version() —
  /// that one rule keeps every mutation site (optimizer steps, checkpoint
  /// restore, perturbation search) invalidating the fp32 mirror and any
  /// version-stamped activation caches without each caller remembering to.
  /// Over-invalidation is harmless: a spurious bump costs one re-sync or
  /// one recomputed forward, never a wrong result.
  std::span<double> params() noexcept {
    ++version_;
    return params_;
  }
  std::span<const double> params() const noexcept { return params_; }
  std::span<double> grads() noexcept { return grads_; }
  std::span<const double> grads() const noexcept { return grads_; }

  /// Monotone counter identifying the current parameter values; bumped by
  /// every mutable params() access. Cached results stamped with this value
  /// (the fp32 mirror, rollout activation caches) are reusable exactly while
  /// the stamp still matches.
  std::uint64_t param_version() const noexcept { return version_; }

  /// True while the fp32 mirror matches the current parameters (i.e. the
  /// last forward_f32 since the last mutable params() access re-synced it).
  bool f32_mirror_fresh() const noexcept {
    return f32_.version.load(std::memory_order_acquire) == version_;
  }

  const std::vector<std::size_t>& layer_sizes() const noexcept { return sizes_; }
  Activation hidden_activation() const noexcept { return hidden_; }

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::size_t w_offset = 0;  // rows=out, cols=in
    std::size_t b_offset = 0;
  };

  /// Lazily-synced float32 copy of the flat parameter array (same offsets).
  /// `version` is the param_version() the values were converted from, 0
  /// meaning never synced (version_ starts at 1). mutable + internally
  /// locked so const inference paths can sync it; the atomic version makes
  /// the fast path (already synced) a lock-free acquire load, and the mutex
  /// only serializes the rare conversion. Copying an Mlp copies the values
  /// but gives the copy fresh synchronization state.
  struct F32Mirror {
    FVec values;
    std::atomic<std::uint64_t> version{0};
    std::mutex mu;

    F32Mirror() = default;
    F32Mirror(const F32Mirror& other)
        : values(other.values),
          version(other.version.load(std::memory_order_acquire)) {}
    F32Mirror& operator=(const F32Mirror& other) {
      values = other.values;
      version.store(other.version.load(std::memory_order_acquire),
                    std::memory_order_release);
      return *this;
    }
  };

  /// Ensure the fp32 mirror matches the current parameters.
  void sync_f32_mirror() const;

  std::span<double> weight(const Layer& l) noexcept {
    return {params_.data() + l.w_offset, l.in * l.out};
  }
  std::span<const double> weight(const Layer& l) const noexcept {
    return {params_.data() + l.w_offset, l.in * l.out};
  }
  std::span<double> bias(const Layer& l) noexcept {
    return {params_.data() + l.b_offset, l.out};
  }
  std::span<double> weight_grad(const Layer& l) noexcept {
    return {grads_.data() + l.w_offset, l.in * l.out};
  }
  std::span<double> bias_grad(const Layer& l) noexcept {
    return {grads_.data() + l.b_offset, l.out};
  }

  std::vector<std::size_t> sizes_;
  Activation hidden_;
  std::vector<Layer> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;

  // Starts at 1 so a zero-stamped cache (or the never-synced mirror) can
  // never accidentally match.
  std::uint64_t version_ = 1;
  mutable F32Mirror f32_;

  // Activation caches from the last member forward(); the member
  // forward/backward pair simply runs the const workspace pair against this.
  Workspace ws_;
  bool forward_done_ = false;
};

}  // namespace netadv::rl
