#include "rl/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace netadv::rl {

namespace {
constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)
}

void softmax(std::span<const double> logits, std::span<double> probs) {
  assert(logits.size() == probs.size());
  assert(!logits.empty());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    sum += probs[i];
  }
  for (auto& p : probs) p /= sum;
}

std::size_t Categorical::sample(std::span<const double> logits,
                                util::Rng& rng) {
  Vec probs(logits.size());
  softmax(logits, probs);
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;  // guard against rounding
}

std::size_t Categorical::mode(std::span<const double> logits) {
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double Categorical::log_prob(std::span<const double> logits,
                             std::size_t action) {
  assert(action < logits.size());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double l : logits) sum += std::exp(l - max_logit);
  return logits[action] - max_logit - std::log(sum);
}

double Categorical::entropy(std::span<const double> logits) {
  Vec probs(logits.size());
  softmax(logits, probs);
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

Vec Categorical::log_prob_grad(std::span<const double> logits,
                               std::size_t action) {
  Vec grad(logits.size());
  softmax(logits, grad);
  for (auto& g : grad) g = -g;
  grad[action] += 1.0;
  return grad;
}

Vec Categorical::entropy_grad(std::span<const double> logits) {
  // H = -sum_i p_i log p_i with p = softmax(logits).
  // dH/dlogit_j = -p_j * (log p_j + H).
  Vec probs(logits.size());
  softmax(logits, probs);
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  Vec grad(logits.size(), 0.0);
  for (std::size_t j = 0; j < probs.size(); ++j) {
    const double log_p = probs[j] > 0.0 ? std::log(probs[j]) : 0.0;
    grad[j] = -probs[j] * (log_p + h);
  }
  return grad;
}

Vec DiagGaussian::sample(std::span<const double> mean,
                         std::span<const double> log_std, util::Rng& rng) {
  assert(mean.size() == log_std.size());
  Vec action(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    action[i] = mean[i] + std::exp(log_std[i]) * rng.normal();
  }
  return action;
}

double DiagGaussian::log_prob(std::span<const double> mean,
                              std::span<const double> log_std,
                              std::span<const double> action) {
  assert(mean.size() == log_std.size() && mean.size() == action.size());
  double logp = 0.0;
  for (std::size_t i = 0; i < mean.size(); ++i) {
    const double std_i = std::exp(log_std[i]);
    const double z = (action[i] - mean[i]) / std_i;
    logp += -0.5 * z * z - log_std[i] - 0.5 * kLogTwoPi;
  }
  return logp;
}

double DiagGaussian::entropy(std::span<const double> log_std) {
  // H = sum_i (log_std_i + 0.5 * log(2*pi*e)).
  double h = 0.0;
  for (double ls : log_std) h += ls + 0.5 * (kLogTwoPi + 1.0);
  return h;
}

Vec DiagGaussian::log_prob_grad_mean(std::span<const double> mean,
                                     std::span<const double> log_std,
                                     std::span<const double> action) {
  Vec grad(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    const double var = std::exp(2.0 * log_std[i]);
    grad[i] = (action[i] - mean[i]) / var;
  }
  return grad;
}

Vec DiagGaussian::log_prob_grad_log_std(std::span<const double> mean,
                                        std::span<const double> log_std,
                                        std::span<const double> action) {
  Vec grad(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    const double std_i = std::exp(log_std[i]);
    const double z = (action[i] - mean[i]) / std_i;
    grad[i] = z * z - 1.0;
  }
  return grad;
}

}  // namespace netadv::rl
