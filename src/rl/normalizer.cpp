#include "rl/normalizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netadv::rl {

namespace {
constexpr double kEps = 1e-8;
}

RunningNormalizer::RunningNormalizer(std::size_t dims, double clip)
    : mean_(dims, 0.0), m2_(dims, 0.0), clip_(clip) {
  if (dims == 0) throw std::invalid_argument{"RunningNormalizer dims must be > 0"};
}

void RunningNormalizer::update(const Vec& x) {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument{"RunningNormalizer::update: size mismatch"};
  }
  ++count_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(count_);
    m2_[i] += delta * (x[i] - mean_[i]);
  }
}

Vec RunningNormalizer::normalize(const Vec& x) const {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument{"RunningNormalizer::normalize: size mismatch"};
  }
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double var =
        count_ < 2 ? 1.0 : m2_[i] / static_cast<double>(count_ - 1);
    out[i] = std::clamp((x[i] - mean_[i]) / std::sqrt(var + kEps), -clip_, clip_);
  }
  return out;
}

Vec RunningNormalizer::variance() const {
  Vec var(mean_.size(), 1.0);
  if (count_ >= 2) {
    for (std::size_t i = 0; i < var.size(); ++i) {
      var[i] = m2_[i] / static_cast<double>(count_ - 1);
    }
  }
  return var;
}

void RunningNormalizer::restore(Vec mean, Vec variance, std::size_t count) {
  if (mean.size() != mean_.size() || variance.size() != mean_.size()) {
    throw std::invalid_argument{"RunningNormalizer::restore: size mismatch"};
  }
  mean_ = std::move(mean);
  count_ = count;
  if (count_ < 2) {
    // With fewer than two samples Welford has accumulated no squared
    // deviations: m2_ is identically 0 (variance() returned a placeholder 1
    // that never came from m2_). Restoring variance * 1 here used to plant
    // a spurious 1.0 that contaminated variance() once count_ reached 2.
    for (auto& m2 : m2_) m2 = 0.0;
    return;
  }
  const auto n = static_cast<double>(count_ - 1);
  for (std::size_t i = 0; i < m2_.size(); ++i) m2_[i] = variance[i] * n;
}

void RunningNormalizer::restore_moments(Vec mean, Vec m2, std::size_t count) {
  if (mean.size() != mean_.size() || m2.size() != mean_.size()) {
    throw std::invalid_argument{
        "RunningNormalizer::restore_moments: size mismatch"};
  }
  mean_ = std::move(mean);
  m2_ = std::move(m2);
  count_ = count;
}

ReturnNormalizer::ReturnNormalizer(double gamma, double clip)
    : gamma_(gamma), clip_(clip) {}

double ReturnNormalizer::normalize(double reward, bool done) {
  running_return_ = gamma_ * running_return_ + reward;
  ++count_;
  const double delta = running_return_ - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (running_return_ - mean_);
  const double var = count_ < 2 ? 1.0 : m2_ / static_cast<double>(count_ - 1);
  const double scaled = reward / std::sqrt(var + kEps);
  if (done) running_return_ = 0.0;
  return std::clamp(scaled, -clip_, clip_);
}

}  // namespace netadv::rl
