#include "rl/matrix.hpp"

#include <cmath>

#include "rl/kernels.hpp"

namespace netadv::rl {

// The historical entry points delegate to the dispatched kernel layer
// (kernels.hpp), which owns the canonical accumulation orders and the
// backend selection.

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  kernels::gemv(w, rows, cols, x, b, y);
}

void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y) {
  kernels::gemv(w, rows, cols, x, b, y);
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  kernels::gemm(w, rows, cols, x, batch, b, y);
}

void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y) {
  kernels::gemm(w, rows, cols, x, batch, b, y);
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  kernels::gemv_transposed(w, rows, cols, g, y);
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  kernels::rank1_update(w, rows, cols, g, x);
}

double dot(std::span<const double> a, std::span<const double> b) {
  return kernels::dot(a, b);
}

float dot(std::span<const float> a, std::span<const float> b) {
  return kernels::dot(a, b);
}

double l2_norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace netadv::rl
