#include "rl/matrix.hpp"

#include <cassert>
#include <cmath>

namespace netadv::rl {

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = b[r];
    const double* row = w.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x.data() + n * cols;
    double* yn = y.data() + n * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      double acc = b[r];
      const double* row = w.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c) acc += row[c] * xn[c];
      yn[r] = acc;
    }
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    for (std::size_t c = 0; c < cols; ++c) y[c] += row[c] * gr;
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    for (std::size_t c = 0; c < cols; ++c) row[c] += gr * x[c];
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double l2_norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace netadv::rl
