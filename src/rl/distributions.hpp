// Policy heads: categorical (discrete actions, e.g. Pensieve's bitrate
// ladder) and diagonal Gaussian with state-independent learned log-std
// (continuous actions, e.g. the adversary's bandwidth/latency/loss tuple).
//
// Each provides sampling, log-probability, entropy, and the analytic
// gradients PPO needs: d(logp)/d(head inputs) and d(entropy)/d(head inputs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace netadv::rl {

/// Softmax of `logits` written into `probs` (same size), numerically stable.
void softmax(std::span<const double> logits, std::span<double> probs);

/// Categorical distribution over n actions, parameterized by logits.
struct Categorical {
  /// Sample an action index.
  static std::size_t sample(std::span<const double> logits, util::Rng& rng);
  /// Highest-probability action (deterministic policy).
  static std::size_t mode(std::span<const double> logits);
  static double log_prob(std::span<const double> logits, std::size_t action);
  static double entropy(std::span<const double> logits);
  /// d log p(action) / d logits = onehot(action) - softmax(logits).
  static Vec log_prob_grad(std::span<const double> logits, std::size_t action);
  /// d H / d logits.
  static Vec entropy_grad(std::span<const double> logits);
};

/// Diagonal Gaussian over R^d. The mean comes from the policy network; the
/// log standard deviations are free parameters owned by the agent (the
/// stable-baselines convention).
struct DiagGaussian {
  static Vec sample(std::span<const double> mean,
                    std::span<const double> log_std, util::Rng& rng);
  static double log_prob(std::span<const double> mean,
                         std::span<const double> log_std,
                         std::span<const double> action);
  static double entropy(std::span<const double> log_std);
  /// d log p / d mean.
  static Vec log_prob_grad_mean(std::span<const double> mean,
                                std::span<const double> log_std,
                                std::span<const double> action);
  /// d log p / d log_std.
  static Vec log_prob_grad_log_std(std::span<const double> mean,
                                   std::span<const double> log_std,
                                   std::span<const double> action);
  // d H / d log_std is identically 1 per dimension.
};

}  // namespace netadv::rl
