// Vectorized environment execution: N independent replicas of an Env stepped
// as one batch, the parallel experience-collection substrate PPO training
// and the figure benches run on.
//
// Determinism contract: every replica owns a private RNG stream forked from
// the VecEnv seed in index order at construction, and batch results are
// always reduced in replica-index order. Because no stream is ever shared
// across replicas, stepping the batch on 1 thread or 16 produces bit-equal
// trajectories — thread count is purely a wall-clock knob.
//
// Replicas auto-reset: when a step ends an episode, the returned observation
// is already the first observation of the replica's next episode (the usual
// gym VecEnv convention), with the done flag marking the boundary.
//
// Because batch results arrive in replica-index order, the PPO rollout can
// forward the whole observation batch at once (Mlp::forward_batch, the gemm
// kernel) and stamp each replica's activation record into its transition's
// rollout cache: gemm computes every output element in the same canonical
// order as per-sample gemv (kernels.hpp), so the cached activations — later
// reused by the shadow-gradient minibatch — are bit-identical to what N
// separate forwards would have produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rl/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netadv::rl {

class VecEnv {
 public:
  /// Builds replica `index`. The factory owns the decision of what a replica
  /// is (fresh target protocol, fresh simulator, ...) and must hand over
  /// full ownership — replicas may be stepped concurrently, so they cannot
  /// share mutable state.
  using Factory = std::function<std::unique_ptr<Env>(std::size_t index)>;

  struct StepBatch {
    std::vector<Vec> observations;       // next obs (post-auto-reset if done)
    std::vector<double> rewards;
    std::vector<std::uint8_t> dones;     // 1 when the step ended an episode
  };

  /// `pool` of nullptr steps replicas sequentially on the caller.
  VecEnv(const Factory& factory, std::size_t n, std::uint64_t seed,
         util::ThreadPool* pool = nullptr);

  std::size_t size() const noexcept { return envs_.size(); }
  std::string name() const { return envs_.front()->name(); }
  std::size_t observation_size() const {
    return envs_.front()->observation_size();
  }
  ActionSpec action_spec() const { return envs_.front()->action_spec(); }

  /// Reset every replica (each on its own stream); observations in replica
  /// order.
  const std::vector<Vec>& reset_all();

  /// Step replica i with actions[i] for all i, in parallel across the pool.
  const StepBatch& step(const std::vector<Vec>& actions);

  Env& env(std::size_t i) { return *envs_.at(i); }
  /// Pool the replicas are stepped on (nullptr = sequential). PPO training
  /// borrows it for shadow-buffer minibatch gradients too.
  util::ThreadPool* pool() const noexcept { return pool_; }
  /// Replica i's private stream — also the right stream for sampling the
  /// action fed to replica i, keeping the whole (sample, step) pair on one
  /// per-replica sequence.
  util::Rng& rng(std::size_t i) { return rngs_.at(i); }

 private:
  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<util::Rng> rngs_;
  util::ThreadPool* pool_;
  std::vector<Vec> reset_obs_;
  StepBatch batch_;
};

}  // namespace netadv::rl
