#include "rl/toy_envs.hpp"

#include <stdexcept>

namespace netadv::rl {

ContextualBanditEnv::ContextualBanditEnv(std::size_t contexts,
                                         std::size_t arms,
                                         std::size_t episode_length)
    : contexts_(contexts), arms_(arms), episode_length_(episode_length) {
  if (contexts == 0 || arms < 2 || episode_length == 0) {
    throw std::invalid_argument{"ContextualBanditEnv: bad parameters"};
  }
}

Vec ContextualBanditEnv::make_observation() const {
  Vec obs(contexts_, 0.0);
  obs[context_] = 1.0;
  return obs;
}

Vec ContextualBanditEnv::reset(util::Rng& rng) {
  steps_ = 0;
  context_ = rng.index(contexts_);
  return make_observation();
}

StepResult ContextualBanditEnv::step(const Vec& action, util::Rng& rng) {
  const auto arm = static_cast<std::size_t>(action.at(0));
  if (arm >= arms_) throw std::invalid_argument{"ContextualBanditEnv: bad arm"};
  StepResult result;
  result.reward = (arm == correct_arm(context_)) ? 1.0 : 0.0;
  ++steps_;
  result.done = steps_ >= episode_length_;
  context_ = rng.index(contexts_);
  result.observation = make_observation();
  return result;
}

TargetChaseEnv::TargetChaseEnv(std::size_t episode_length)
    : episode_length_(episode_length) {
  if (episode_length == 0) {
    throw std::invalid_argument{"TargetChaseEnv: bad episode length"};
  }
}

Vec TargetChaseEnv::reset(util::Rng& rng) {
  steps_ = 0;
  target_ = rng.uniform(-1.0, 1.0);
  return {target_};
}

StepResult TargetChaseEnv::step(const Vec& action, util::Rng& rng) {
  const Vec physical = action_spec().to_physical(action);
  const double err = physical[0] - 0.5 * target_;
  StepResult result;
  result.reward = -err * err;
  ++steps_;
  result.done = steps_ >= episode_length_;
  target_ = rng.uniform(-1.0, 1.0);
  result.observation = {target_};
  return result;
}

}  // namespace netadv::rl
