#include "rl/agent.hpp"

namespace netadv::rl {

double Agent::evaluate(Env& env, std::size_t episodes, util::Rng& rng,
                       bool deterministic) {
  double total = 0.0;
  for (std::size_t e = 0; e < episodes; ++e) {
    Vec obs = env.reset(rng);
    double episode_reward = 0.0;
    while (true) {
      const Vec action = deterministic ? act_deterministic(obs)
                                       : act_stochastic(obs, rng);
      StepResult result = env.step(action, rng);
      episode_reward += result.reward;
      if (result.done) break;
      obs = std::move(result.observation);
    }
    total += episode_reward;
  }
  return total / static_cast<double>(episodes);
}

}  // namespace netadv::rl
