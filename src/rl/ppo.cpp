#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rl/distributions.hpp"
#include "rl/kernels.hpp"
#include "util/log.hpp"

namespace netadv::rl {

namespace {

std::vector<std::size_t> make_actor_sizes(std::size_t obs,
                                          const PpoConfig& cfg,
                                          const ActionSpec& spec) {
  std::vector<std::size_t> sizes{obs};
  sizes.insert(sizes.end(), cfg.hidden_sizes.begin(), cfg.hidden_sizes.end());
  sizes.push_back(spec.type == ActionType::kDiscrete ? spec.num_actions
                                                     : spec.low.size());
  return sizes;
}

std::vector<std::size_t> make_critic_sizes(std::size_t obs,
                                           const PpoConfig& cfg) {
  std::vector<std::size_t> sizes{obs};
  sizes.insert(sizes.end(), cfg.hidden_sizes.begin(), cfg.hidden_sizes.end());
  sizes.push_back(1);
  return sizes;
}

/// Fill the episode-statistics tail of a TrainReport.
void finalize_report(TrainReport& report, std::size_t steps_done,
                     const std::vector<double>& episode_rewards) {
  report.steps = steps_done;
  report.episodes = episode_rewards.size();
  if (!episode_rewards.empty()) {
    double sum = 0.0;
    for (double r : episode_rewards) sum += r;
    report.mean_episode_reward =
        sum / static_cast<double>(episode_rewards.size());
    const std::size_t tail =
        std::max<std::size_t>(1, episode_rewards.size() / 10);
    double tail_sum = 0.0;
    for (std::size_t i = episode_rewards.size() - tail;
         i < episode_rewards.size(); ++i) {
      tail_sum += episode_rewards[i];
    }
    report.final_mean_episode_reward = tail_sum / static_cast<double>(tail);
  }
}

}  // namespace

PpoAgent::PpoAgent(std::size_t observation_size, ActionSpec action_spec,
                   PpoConfig config, std::uint64_t seed)
    : obs_size_(observation_size),
      action_spec_(std::move(action_spec)),
      config_(std::move(config)),
      rng_(seed),
      actor_(make_actor_sizes(observation_size, config_, action_spec_),
             config_.activation, /*final_gain=*/0.01, rng_),
      critic_(make_critic_sizes(observation_size, config_),
              config_.activation, /*final_gain=*/1.0, rng_),
      actor_opt_(actor_.param_count(), {.learning_rate = config_.learning_rate}),
      critic_opt_(critic_.param_count(),
                  {.learning_rate = config_.learning_rate}),
      log_std_opt_(action_spec_.type == ActionType::kContinuous
                       ? action_spec_.low.size()
                       : 0,
                   {.learning_rate = config_.learning_rate}),
      obs_normalizer_(observation_size),
      return_normalizer_(config_.gamma),
      f32_rollout_(f32_rollout_env_default()) {
  if (observation_size == 0) {
    throw std::invalid_argument{"PpoAgent: observation_size must be > 0"};
  }
  if (action_spec_.type == ActionType::kDiscrete &&
      action_spec_.num_actions < 2) {
    throw std::invalid_argument{"PpoAgent: discrete space needs >= 2 actions"};
  }
  if (action_spec_.type == ActionType::kContinuous) {
    if (action_spec_.low.empty() ||
        action_spec_.low.size() != action_spec_.high.size()) {
      throw std::invalid_argument{"PpoAgent: bad continuous action bounds"};
    }
    log_std_.assign(action_spec_.low.size(), config_.initial_log_std);
    log_std_grad_.assign(action_spec_.low.size(), 0.0);
  }
  if (config_.minibatch_size == 0 || config_.minibatch_size > config_.n_steps) {
    throw std::invalid_argument{"PpoAgent: bad minibatch size"};
  }
}

Vec PpoAgent::normalized(const Vec& observation) const {
  return config_.normalize_observations ? obs_normalizer_.normalize(observation)
                                        : observation;
}

Vec PpoAgent::actor_head(const Vec& obs) {
  if (f32_rollout_) {
    const std::span<const float> head = actor_.forward_f32(obs, actor_f32_ws_);
    return Vec(head.begin(), head.end());
  }
  const Vec& head = actor_.forward(obs);
  return head;
}

Vec PpoAgent::act_stochastic(const Vec& observation, util::Rng& rng) {
  const Vec head = actor_head(normalized(observation));
  if (discrete()) {
    return {static_cast<double>(Categorical::sample(head, rng))};
  }
  return DiagGaussian::sample(head, log_std_, rng);
}

Vec PpoAgent::act_deterministic(const Vec& observation) {
  Vec head = actor_head(normalized(observation));
  if (discrete()) {
    return {static_cast<double>(Categorical::mode(head))};
  }
  return head;
}

std::vector<Vec> PpoAgent::act_deterministic_batch(
    const std::vector<Vec>& observations) {
  std::vector<Vec> norm(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    norm[i] = normalized(observations[i]);
  }
  std::vector<Vec> heads = f32_rollout_ ? actor_.forward_batch_f32(norm)
                                        : actor_.forward_batch(norm);
  if (discrete()) {
    std::vector<Vec> actions(heads.size());
    for (std::size_t i = 0; i < heads.size(); ++i) {
      actions[i] = {static_cast<double>(Categorical::mode(heads[i]))};
    }
    return actions;
  }
  return heads;
}

double PpoAgent::value_estimate(const Vec& observation) {
  const Vec obs = normalized(observation);
  if (f32_rollout_) {
    return static_cast<double>(critic_.forward_f32(obs, critic_f32_ws_)[0]);
  }
  return critic_.forward(obs)[0];
}

TrainReport PpoAgent::train(Env& env, std::size_t total_steps,
                            const TrainCallback& callback) {
  if (env.observation_size() != obs_size_) {
    throw std::invalid_argument{"PpoAgent::train: env observation size mismatch"};
  }

  TrainReport report;
  RolloutBuffer buffer{config_.n_steps};

  Vec raw_obs = env.reset(rng_);
  double episode_reward = 0.0;
  std::vector<double> episode_rewards;

  std::size_t steps_done = 0;
  std::size_t update_index = 0;
  while (steps_done < total_steps) {
    buffer.clear();
    std::size_t episodes_this_update = 0;
    double episode_reward_sum_this_update = 0.0;

    while (!buffer.full()) {
      if (config_.normalize_observations) obs_normalizer_.update(raw_obs);
      const Vec obs = normalized(raw_obs);

      Transition t;
      t.observation = obs;
      // Score the step through the selected precision path. The fp64 path
      // forwards into the transition's activation cache (bit-identical to
      // the member forward — same const workspace routine) so the gradient
      // epochs can reuse these activations; the fp32 path has no fp64
      // activations to cache, so the stamps stay 0 (never reused).
      Vec head_store;
      const Vec* head;
      if (f32_rollout_) {
        head_store = actor_head(obs);
        head = &head_store;
        t.value = static_cast<double>(critic_.forward_f32(obs, critic_f32_ws_)[0]);
      } else if (use_activation_cache_) {
        head = &actor_.forward(obs, t.cache.actor);
        t.cache.actor_version = actor_.param_version();
        t.value = critic_.forward(obs, t.cache.critic)[0];
        t.cache.critic_version = critic_.param_version();
      } else {
        head = &actor_.forward(obs);
        t.value = critic_.forward(obs)[0];
      }
      if (discrete()) {
        const std::size_t a = Categorical::sample(*head, rng_);
        t.action = {static_cast<double>(a)};
        t.log_prob = Categorical::log_prob(*head, a);
      } else {
        t.action = DiagGaussian::sample(*head, log_std_, rng_);
        t.log_prob = DiagGaussian::log_prob(*head, log_std_, t.action);
      }

      StepResult result = env.step(t.action, rng_);
      episode_reward += result.reward;
      t.reward = config_.normalize_rewards
                     ? return_normalizer_.normalize(result.reward, result.done)
                     : result.reward;
      t.done = result.done;
      buffer.add(std::move(t));
      ++steps_done;

      if (result.done) {
        episode_rewards.push_back(episode_reward);
        episode_reward_sum_this_update += episode_reward;
        ++episodes_this_update;
        episode_reward = 0.0;
        raw_obs = env.reset(rng_);
      } else {
        raw_obs = std::move(result.observation);
      }
    }

    // The bootstrap value uses the same precision as the rollout values it
    // joins in the GAE recursion.
    const Vec last_norm = normalized(raw_obs);
    const double last_value =
        f32_rollout_
            ? static_cast<double>(critic_.forward_f32(last_norm,
                                                      critic_f32_ws_)[0])
            : critic_.forward(last_norm)[0];
    buffer.compute_advantages(last_value, config_.gamma, config_.gae_lambda);

    const MinibatchStats last_stats = run_update_epochs(buffer);

    ++update_index;
    report.updates = update_index;
    report.final_policy_loss = last_stats.policy_loss;
    report.final_value_loss = last_stats.value_loss;
    report.final_entropy = last_stats.entropy;

    if (callback) {
      UpdateInfo info;
      info.update_index = update_index;
      info.total_steps_done = steps_done;
      info.mean_episode_reward =
          episodes_this_update > 0
              ? episode_reward_sum_this_update /
                    static_cast<double>(episodes_this_update)
              : 0.0;
      info.policy_loss = last_stats.policy_loss;
      info.value_loss = last_stats.value_loss;
      info.entropy = last_stats.entropy;
      callback(info);
    }
  }

  finalize_report(report, steps_done, episode_rewards);
  return report;
}

TrainReport PpoAgent::train(VecEnv& venv, std::size_t total_steps,
                            const TrainCallback& callback) {
  if (venv.observation_size() != obs_size_) {
    throw std::invalid_argument{"PpoAgent::train: env observation size mismatch"};
  }
  const std::size_t n_envs = venv.size();
  const std::size_t steps_per_env =
      std::max<std::size_t>(1, config_.n_steps / n_envs);
  const std::size_t rollout_len = steps_per_env * n_envs;
  if (config_.minibatch_size > rollout_len) {
    throw std::invalid_argument{
        "PpoAgent::train: minibatch larger than vectorized rollout"};
  }

  // Adopt the venv's pool for the gradient step unless the caller already
  // attached one; the shadow-buffer path is bit-identical to sequential, so
  // this only changes wall-clock.
  util::ThreadPool* const saved_pool = pool_;
  if (pool_ == nullptr) pool_ = venv.pool();

  TrainReport report;
  RolloutBuffer buffer{rollout_len};

  // The running-return accumulator inside ReturnNormalizer is a temporal
  // filter over one reward stream, so each replica gets its own instance.
  std::vector<ReturnNormalizer> return_norms(
      n_envs, ReturnNormalizer{config_.gamma});

  std::vector<Vec> raw_obs = venv.reset_all();
  std::vector<double> episode_reward(n_envs, 0.0);
  std::vector<double> episode_rewards;
  std::vector<std::vector<Transition>> trajectories(n_envs);
  std::vector<Vec> norm_obs(n_envs);
  std::vector<Vec> actions(n_envs);
  std::vector<Mlp::Workspace> actor_caches;
  std::vector<Mlp::Workspace> critic_caches;
  const bool fill_caches = !f32_rollout_ && use_activation_cache_;

  std::size_t steps_done = 0;
  std::size_t update_index = 0;
  while (steps_done < total_steps) {
    buffer.clear();
    for (auto& traj : trajectories) {
      traj.clear();
      traj.reserve(steps_per_env);
    }
    std::size_t episodes_this_update = 0;
    double episode_reward_sum_this_update = 0.0;

    for (std::size_t step = 0; step < steps_per_env; ++step) {
      // Normalizer statistics fold in replica-index order — a fixed
      // sequence regardless of how many threads step the replicas.
      if (config_.normalize_observations) {
        for (const Vec& obs : raw_obs) obs_normalizer_.update(obs);
      }
      for (std::size_t i = 0; i < n_envs; ++i) {
        norm_obs[i] = normalized(raw_obs[i]);
      }

      const std::vector<Vec> heads =
          f32_rollout_
              ? actor_.forward_batch_f32(norm_obs)
              : actor_.forward_batch(norm_obs,
                                     fill_caches ? &actor_caches : nullptr);
      const std::vector<Vec> values =
          f32_rollout_
              ? critic_.forward_batch_f32(norm_obs)
              : critic_.forward_batch(norm_obs,
                                      fill_caches ? &critic_caches : nullptr);

      for (std::size_t i = 0; i < n_envs; ++i) {
        Transition t;
        t.observation = norm_obs[i];
        if (discrete()) {
          const std::size_t a = Categorical::sample(heads[i], venv.rng(i));
          t.action = {static_cast<double>(a)};
          t.log_prob = Categorical::log_prob(heads[i], a);
        } else {
          t.action = DiagGaussian::sample(heads[i], log_std_, venv.rng(i));
          t.log_prob = DiagGaussian::log_prob(heads[i], log_std_, t.action);
        }
        t.value = values[i][0];
        if (fill_caches) {
          t.cache.actor = std::move(actor_caches[i]);
          t.cache.actor_version = actor_.param_version();
          t.cache.critic = std::move(critic_caches[i]);
          t.cache.critic_version = critic_.param_version();
        }
        actions[i] = t.action;
        trajectories[i].push_back(std::move(t));
      }

      const VecEnv::StepBatch& result = venv.step(actions);
      for (std::size_t i = 0; i < n_envs; ++i) {
        Transition& t = trajectories[i].back();
        const bool done = result.dones[i] != 0;
        episode_reward[i] += result.rewards[i];
        t.reward = config_.normalize_rewards
                       ? return_norms[i].normalize(result.rewards[i], done)
                       : result.rewards[i];
        t.done = done;
        if (done) {
          episode_rewards.push_back(episode_reward[i]);
          episode_reward_sum_this_update += episode_reward[i];
          ++episodes_this_update;
          episode_reward[i] = 0.0;
        }
        raw_obs[i] = result.observations[i];
      }
      steps_done += n_envs;
    }

    for (std::size_t i = 0; i < n_envs; ++i) {
      norm_obs[i] = normalized(raw_obs[i]);
    }
    // Same precision as the rollout values feeding the GAE recursion.
    const std::vector<Vec> bootstrap = f32_rollout_
                                           ? critic_.forward_batch_f32(norm_obs)
                                           : critic_.forward_batch(norm_obs);
    std::vector<double> last_values(n_envs);
    for (std::size_t i = 0; i < n_envs; ++i) last_values[i] = bootstrap[i][0];

    for (auto& traj : trajectories) {
      for (auto& t : traj) buffer.add(std::move(t));
    }
    buffer.compute_advantages_segmented(last_values, config_.gamma,
                                        config_.gae_lambda);

    const MinibatchStats last_stats = run_update_epochs(buffer);

    ++update_index;
    report.updates = update_index;
    report.final_policy_loss = last_stats.policy_loss;
    report.final_value_loss = last_stats.value_loss;
    report.final_entropy = last_stats.entropy;

    if (callback) {
      UpdateInfo info;
      info.update_index = update_index;
      info.total_steps_done = steps_done;
      info.mean_episode_reward =
          episodes_this_update > 0
              ? episode_reward_sum_this_update /
                    static_cast<double>(episodes_this_update)
              : 0.0;
      info.policy_loss = last_stats.policy_loss;
      info.value_loss = last_stats.value_loss;
      info.entropy = last_stats.entropy;
      callback(info);
    }
  }

  pool_ = saved_pool;
  finalize_report(report, steps_done, episode_rewards);
  return report;
}

PpoAgent::MinibatchStats PpoAgent::run_update_epochs(
    const RolloutBuffer& buffer) {
  MinibatchStats last_stats;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto indices = buffer.shuffled_indices(rng_);
    for (std::size_t begin = 0; begin < indices.size();
         begin += config_.minibatch_size) {
      const std::size_t end =
          std::min(begin + config_.minibatch_size, indices.size());
      last_stats = update_minibatch(buffer, indices, begin, end);
    }
  }
  return last_stats;
}

void PpoAgent::accumulate_sample(const Transition& t, double inv_batch,
                                 std::span<double> actor_grads,
                                 std::span<double> critic_grads,
                                 std::span<double> log_std_grads,
                                 std::span<double> stats_terms,
                                 GradWorkspace& ws) const {
  // Reuse the rollout-time activations when their version stamp still
  // matches the network (bit-identical — see ActivationCache); otherwise
  // recompute the forward into the task-private workspace. With the default
  // PPO schedule only the pre-first-optimizer-step minibatches hit, but a
  // full-batch single-epoch schedule (and every A2C update) reuses the
  // whole rollout.
  const bool actor_cached =
      use_activation_cache_ && t.cache.actor_version == actor_.param_version();
  const bool critic_cached = use_activation_cache_ &&
                             t.cache.critic_version == critic_.param_version();
  const Mlp::Workspace& actor_ws = actor_cached ? t.cache.actor : ws.actor;
  const Mlp::Workspace& critic_ws = critic_cached ? t.cache.critic : ws.critic;
  const Vec& head =
      actor_cached ? t.cache.actor.post.back()
                   : actor_.forward(t.observation, ws.actor);

  double log_prob_new = 0.0;
  if (discrete()) {
    log_prob_new =
        Categorical::log_prob(head, static_cast<std::size_t>(t.action[0]));
  } else {
    log_prob_new = DiagGaussian::log_prob(head, log_std_, t.action);
  }
  const double ratio = std::exp(log_prob_new - t.log_prob);
  const double clipped_ratio =
      std::clamp(ratio, 1.0 - config_.clip_range, 1.0 + config_.clip_range);
  const double surr1 = ratio * t.advantage;
  const double surr2 = clipped_ratio * t.advantage;
  stats_terms[0] += -std::min(surr1, surr2) * inv_batch;

  // Policy gradient flows only where the unclipped surrogate is active.
  const double dloss_dlogp = (surr1 <= surr2) ? -t.advantage * ratio : 0.0;

  Vec head_grad(head.size(), 0.0);
  if (discrete()) {
    const auto a = static_cast<std::size_t>(t.action[0]);
    const Vec logp_grad = Categorical::log_prob_grad(head, a);
    const Vec ent_grad = Categorical::entropy_grad(head);
    stats_terms[2] += Categorical::entropy(head) * inv_batch;
    for (std::size_t i = 0; i < head.size(); ++i) {
      head_grad[i] = (dloss_dlogp * logp_grad[i] -
                      config_.ent_coef * ent_grad[i]) *
                     inv_batch;
    }
  } else {
    const Vec logp_grad_mean =
        DiagGaussian::log_prob_grad_mean(head, log_std_, t.action);
    const Vec logp_grad_ls =
        DiagGaussian::log_prob_grad_log_std(head, log_std_, t.action);
    stats_terms[2] += DiagGaussian::entropy(log_std_) * inv_batch;
    for (std::size_t i = 0; i < head.size(); ++i) {
      head_grad[i] = dloss_dlogp * logp_grad_mean[i] * inv_batch;
    }
    // dH/dlog_std = 1 per dimension.
    for (std::size_t i = 0; i < log_std_.size(); ++i) {
      log_std_grads[i] += (dloss_dlogp * logp_grad_ls[i] -
                           config_.ent_coef * 1.0) *
                          inv_batch;
    }
  }
  actor_.backward(head_grad, actor_ws, actor_grads);

  const double v = critic_cached
                       ? t.cache.critic.post.back()[0]
                       : critic_.forward(t.observation, ws.critic)[0];
  const double v_err = v - t.return_;
  stats_terms[1] += 0.5 * v_err * v_err * inv_batch;
  critic_.backward({config_.vf_coef * v_err * inv_batch}, critic_ws,
                   critic_grads);
}

PpoAgent::MinibatchStats PpoAgent::update_minibatch(
    const RolloutBuffer& buffer, const std::vector<std::size_t>& indices,
    std::size_t begin, std::size_t end) {
  actor_.zero_grad();
  critic_.zero_grad();
  for (auto& g : log_std_grad_) g = 0.0;

  MinibatchStats stats;
  const std::size_t m = end - begin;
  const double inv_batch = 1.0 / static_cast<double>(m);

  if (pool_ != nullptr && pool_->thread_count() > 1 && m > 1) {
    // Shadow-buffer path: each sample gets a private gradient slot, computed
    // against the shared read-only parameters, then slots are reduced here
    // in sample-index order. Every sample contributes exactly one term per
    // parameter (one rank-1 update per weight, one add per bias and per
    // log_std entry), so slot_k == the sequential path's k-th addend and the
    // ordered reduction reproduces its left-to-right accumulation exactly.
    const std::size_t ap = actor_.param_count();
    const std::size_t cp = critic_.param_count();
    const std::size_t ls = log_std_.size();
    const std::size_t stride = ap + cp + ls;
    shadow_grads_.resize(m * stride);
    shadow_stats_.resize(m * 3);
    if (sample_ws_.size() < m) sample_ws_.resize(m);
    pool_->parallel_for(m, [&](std::size_t k) {
      double* slot = shadow_grads_.data() + k * stride;
      std::fill(slot, slot + stride, 0.0);
      double* st = shadow_stats_.data() + k * 3;
      std::fill(st, st + 3, 0.0);
      accumulate_sample(buffer[indices[begin + k]], inv_batch,
                        {slot, ap}, {slot + ap, cp}, {slot + ap + cp, ls},
                        {st, 3}, sample_ws_[k]);
    });
    auto ag = actor_.grads();
    auto cg = critic_.grads();
    for (std::size_t k = 0; k < m; ++k) {
      const double* slot = shadow_grads_.data() + k * stride;
      for (std::size_t i = 0; i < ap; ++i) ag[i] += slot[i];
      for (std::size_t i = 0; i < cp; ++i) cg[i] += slot[ap + i];
      for (std::size_t i = 0; i < ls; ++i) {
        log_std_grad_[i] += slot[ap + cp + i];
      }
      const double* st = shadow_stats_.data() + k * 3;
      stats.policy_loss += st[0];
      stats.value_loss += st[1];
      stats.entropy += st[2];
    }
  } else {
    if (sample_ws_.empty()) sample_ws_.resize(1);
    for (std::size_t k = begin; k < end; ++k) {
      double terms[3] = {0.0, 0.0, 0.0};
      accumulate_sample(buffer[indices[k]], inv_batch, actor_.grads(),
                        critic_.grads(), log_std_grad_, terms, sample_ws_[0]);
      stats.policy_loss += terms[0];
      stats.value_loss += terms[1];
      stats.entropy += terms[2];
    }
  }

  // Global gradient-norm clip across actor, critic, and log_std.
  if (config_.max_grad_norm > 0.0) {
    const double sq = kernels::dot(actor_.grads(), actor_.grads()) +
                      kernels::dot(critic_.grads(), critic_.grads()) +
                      kernels::dot(log_std_grad_, log_std_grad_);
    const double norm = std::sqrt(sq);
    if (norm > config_.max_grad_norm && norm > 0.0) {
      const double scale = config_.max_grad_norm / norm;
      for (auto& g : actor_.grads()) g *= scale;
      for (auto& g : critic_.grads()) g *= scale;
      for (auto& g : log_std_grad_) g *= scale;
    }
  }

  actor_opt_.step(actor_.params(), actor_.grads());
  critic_opt_.step(critic_.params(), critic_.grads());
  if (!log_std_.empty()) {
    log_std_opt_.step(log_std_, log_std_grad_);
    // Keep exploration noise in a sane band; exp(-5) is effectively
    // deterministic, exp(1) spans the whole normalized action range.
    for (auto& ls : log_std_) ls = std::clamp(ls, -5.0, 1.0);
  }
  return stats;
}

}  // namespace netadv::rl
