#include "rl/vec_env.hpp"

namespace netadv::rl {

namespace {

void for_each_replica(util::ThreadPool* pool, std::size_t n,
                      const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

}  // namespace

VecEnv::VecEnv(const Factory& factory, std::size_t n, std::uint64_t seed,
               util::ThreadPool* pool)
    : pool_(pool) {
  if (n == 0) throw std::invalid_argument{"VecEnv: need at least one replica"};
  util::Rng master{seed};
  rngs_ = master.fork_streams(n);
  envs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto env = factory(i);
    if (!env) throw std::invalid_argument{"VecEnv: factory returned null"};
    envs_.push_back(std::move(env));
  }
  const std::size_t obs = envs_.front()->observation_size();
  for (const auto& env : envs_) {
    if (env->observation_size() != obs) {
      throw std::invalid_argument{"VecEnv: replicas disagree on observation size"};
    }
  }
}

const std::vector<Vec>& VecEnv::reset_all() {
  reset_obs_.assign(size(), Vec{});
  for_each_replica(pool_, size(), [this](std::size_t i) {
    reset_obs_[i] = envs_[i]->reset(rngs_[i]);
  });
  return reset_obs_;
}

const VecEnv::StepBatch& VecEnv::step(const std::vector<Vec>& actions) {
  if (actions.size() != size()) {
    throw std::invalid_argument{"VecEnv::step: one action per replica required"};
  }
  batch_.observations.assign(size(), Vec{});
  batch_.rewards.assign(size(), 0.0);
  batch_.dones.assign(size(), 0);
  for_each_replica(pool_, size(), [this, &actions](std::size_t i) {
    StepResult result = envs_[i]->step(actions[i], rngs_[i]);
    batch_.rewards[i] = result.reward;
    batch_.dones[i] = result.done ? 1 : 0;
    batch_.observations[i] =
        result.done ? envs_[i]->reset(rngs_[i]) : std::move(result.observation);
  });
  return batch_;
}

}  // namespace netadv::rl
