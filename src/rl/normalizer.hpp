// Running observation/return normalization (the VecNormalize trick from
// stable-baselines): PPO on raw physical units (Mbps, seconds, chunk bytes)
// conditions poorly, so observations are whitened by running mean/variance
// and rewards scaled by the running std of the discounted return.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/matrix.hpp"

namespace netadv::rl {

/// Per-dimension running mean/variance (parallel Welford) with whitening.
class RunningNormalizer {
 public:
  explicit RunningNormalizer(std::size_t dims, double clip = 10.0);

  /// Fold one observation into the statistics.
  void update(const Vec& x);

  /// Whiten: (x - mean) / sqrt(var + eps), clipped to [-clip, clip].
  Vec normalize(const Vec& x) const;

  std::size_t dims() const noexcept { return mean_.size(); }
  std::size_t count() const noexcept { return count_; }
  const Vec& mean() const noexcept { return mean_; }
  Vec variance() const;
  /// Raw Welford second moment (sum of squared deviations). Checkpoints
  /// store this instead of variance() so restore_moments() is an exact
  /// bit-level round trip — variance() multiplies by 1/(n-1), which does
  /// not invert exactly in floating point.
  const Vec& m2() const noexcept { return m2_; }

  /// Restore from checkpointed mean/variance (legacy v1 checkpoints).
  /// Inverts variance() up to rounding; with count < 2 the internal second
  /// moment is restored to its only possible value, 0.
  void restore(Vec mean, Vec variance, std::size_t count);

  /// Restore from checkpointed mean/m2; exact inverse of mean() + m2() +
  /// count(), bit for bit.
  void restore_moments(Vec mean, Vec m2, std::size_t count);

 private:
  Vec mean_;
  Vec m2_;
  std::size_t count_ = 0;
  double clip_;
};

/// Scales rewards by the running std of the discounted return; keeps
/// training-signal magnitude stable across domains.
class ReturnNormalizer {
 public:
  explicit ReturnNormalizer(double gamma, double clip = 10.0);

  /// Feed the raw reward (and whether the episode ended); returns the
  /// scaled reward used for the update.
  double normalize(double reward, bool done);

  std::size_t count() const noexcept { return count_; }

 private:
  double gamma_;
  double clip_;
  double running_return_ = 0.0;
  // Welford over running returns.
  double mean_ = 0.0;
  double m2_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace netadv::rl
