// Tiny environments with known optimal policies, used as correctness gates
// for the PPO substrate before it is trusted to train adversaries.
#pragma once

#include <cstddef>

#include "rl/env.hpp"

namespace netadv::rl {

/// Contextual bandit: the observation one-hot encodes one of `contexts`
/// states; exactly one arm per context pays +1, all others pay 0. An optimal
/// policy earns `episode_length` per episode.
class ContextualBanditEnv final : public Env {
 public:
  ContextualBanditEnv(std::size_t contexts, std::size_t arms,
                      std::size_t episode_length);

  std::string name() const override { return "contextual-bandit"; }
  std::size_t observation_size() const override { return contexts_; }
  ActionSpec action_spec() const override {
    return ActionSpec::discrete(arms_);
  }
  Vec reset(util::Rng& rng) override;
  StepResult step(const Vec& action, util::Rng& rng) override;

  /// The rewarded arm for a context (deterministic: (2*context+1) % arms).
  std::size_t correct_arm(std::size_t context) const noexcept {
    return (2 * context + 1) % arms_;
  }

 private:
  Vec make_observation() const;

  std::size_t contexts_;
  std::size_t arms_;
  std::size_t episode_length_;
  std::size_t context_ = 0;
  std::size_t steps_ = 0;
};

/// One-dimensional continuous regression-as-control task: observe a target
/// position in [-1, 1]; reward is -(action - 0.5 * target)^2 after the env's
/// [-1,1] clipping and physical mapping. The optimum is a linear policy.
class TargetChaseEnv final : public Env {
 public:
  explicit TargetChaseEnv(std::size_t episode_length);

  std::string name() const override { return "target-chase"; }
  std::size_t observation_size() const override { return 1; }
  ActionSpec action_spec() const override {
    return ActionSpec::continuous({-1.0}, {1.0});
  }
  Vec reset(util::Rng& rng) override;
  StepResult step(const Vec& action, util::Rng& rng) override;

 private:
  std::size_t episode_length_;
  double target_ = 0.0;
  std::size_t steps_ = 0;
};

}  // namespace netadv::rl
