// NEON (AArch64 Advanced SIMD) implementation of the canonical accumulation
// orders (kernels.hpp). Advanced SIMD is baseline on AArch64, so this TU
// needs no extra ISA flags; it is compiled only on aarch64 targets (CMake
// NETADV_SIMD=neon/auto).
//
// NEON registers are 128-bit, half the canonical lane count in doubles, so
// the canonical orders map onto PAIRS of q-register accumulators instead of
// one wide register:
//
//   fp64: lanes {0,1} live in acc01, lanes {2,3} in acc23. Each 4-element
//   step fmas a[i..i+1] into acc01 and a[i+2..i+3] into acc23 — element i
//   still lands in lane i % 4, exactly the scalar chain.
//
//   fp32: lanes {0..3} in acc0123, lanes {4..7} in acc4567, stepping 8
//   elements — element i lands in lane i % 8.
//
// Tails fold into the lane arrays by std::fma / std::fmaf and the lanes
// combine in the fixed trees from kernels.hpp, so results are bit-identical
// to the scalar reference (vfmaq is a fused multiply-add, one rounding,
// same as std::fma). Element-wise kernels have no cross-lane reduction:
// vfmaq for gemv_transposed, mul-then-add for rank1_update (see the
// rank1_update contract in kernels.hpp).
#include "rl/kernels.hpp"

#ifdef NETADV_HAVE_NEON

#include <arm_neon.h>

#include <cassert>
#include <cmath>

namespace netadv::rl::kernels::neon {

namespace {

/// Canonical 4-lane double dot on two 2-wide accumulators. Bit-identical to
/// kernels.cpp's dot_canonical.
inline double dot_canonical_neon(const double* a, const double* b,
                                 std::size_t n) noexcept {
  float64x2_t acc01 = vdupq_n_f64(0.0);  // canonical lanes {0, 1}
  float64x2_t acc23 = vdupq_n_f64(0.0);  // canonical lanes {2, 3}
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    acc01 = vfmaq_f64(acc01, vld1q_f64(a + i), vld1q_f64(b + i));
    acc23 = vfmaq_f64(acc23, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  double lane[kLanes];
  vst1q_f64(lane, acc01);
  vst1q_f64(lane + 2, acc23);
  for (std::size_t i = n4; i < n; ++i) {
    lane[i - n4] = std::fma(a[i], b[i], lane[i - n4]);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// Canonical 8-lane float dot on two 4-wide accumulators. Bit-identical to
/// kernels.cpp's dot_canonical_f32.
inline float dot_canonical_neon_f32(const float* a, const float* b,
                                    std::size_t n) noexcept {
  float32x4_t acc0123 = vdupq_n_f32(0.0f);  // canonical lanes {0..3}
  float32x4_t acc4567 = vdupq_n_f32(0.0f);  // canonical lanes {4..7}
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < n8; i += 8) {
    acc0123 = vfmaq_f32(acc0123, vld1q_f32(a + i), vld1q_f32(b + i));
    acc4567 = vfmaq_f32(acc4567, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  float lane[kLanesF32];
  vst1q_f32(lane, acc0123);
  vst1q_f32(lane + 4, acc4567);
  for (std::size_t i = n8; i < n; ++i) {
    lane[i - n8] = std::fmaf(a[i], b[i], lane[i - n8]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical_neon(w.data() + r * cols, x.data(), cols);
  }
}

void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical_neon_f32(w.data() + r * cols, x.data(), cols);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    gemv(w, rows, cols, x.subspan(n * cols, cols), b,
         y.subspan(n * rows, rows));
  }
}

void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    gemv(w, rows, cols, x.subspan(n * cols, cols), b,
         y.subspan(n * rows, rows));
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  const std::size_t c2 = cols & ~static_cast<std::size_t>(1);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    const float64x2_t grv = vdupq_n_f64(gr);
    for (std::size_t c = 0; c < c2; c += 2) {
      vst1q_f64(y.data() + c,
                vfmaq_f64(vld1q_f64(y.data() + c), vld1q_f64(row + c), grv));
    }
    for (std::size_t c = c2; c < cols; ++c) {
      y[c] = std::fma(row[c], gr, y[c]);
    }
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  const std::size_t c2 = cols & ~static_cast<std::size_t>(1);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    const float64x2_t grv = vdupq_n_f64(gr);
    // Mul-then-add on purpose (not vfmaq) — see the rank1_update contract
    // in kernels.hpp.
    for (std::size_t c = 0; c < c2; c += 2) {
      vst1q_f64(row + c,
                vaddq_f64(vld1q_f64(row + c),
                          vmulq_f64(grv, vld1q_f64(x.data() + c))));
    }
    for (std::size_t c = c2; c < cols; ++c) {
      row[c] += gr * x[c];
    }
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return dot_canonical_neon(a.data(), b.data(), a.size());
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return dot_canonical_neon_f32(a.data(), b.data(), a.size());
}

}  // namespace netadv::rl::kernels::neon

#endif  // NETADV_HAVE_NEON
