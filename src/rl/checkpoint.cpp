#include "rl/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace netadv::rl {

namespace {

void write_vector(std::ostream& out, const std::string& key,
                  std::span<const double> values) {
  out << key << ' ' << values.size();
  out.precision(17);
  for (double v : values) out << ' ' << v;
  out << '\n';
}

std::vector<double> read_vector(std::istream& in, const std::string& expected_key) {
  std::string key;
  std::size_t n = 0;
  if (!(in >> key >> n) || key != expected_key) {
    throw std::runtime_error{"checkpoint: expected key '" + expected_key + "'"};
  }
  std::vector<double> values(n);
  for (auto& v : values) {
    if (!(in >> v)) throw std::runtime_error{"checkpoint: truncated vector " + key};
  }
  return values;
}

}  // namespace

void save_checkpoint(const PpoAgent& agent, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"save_checkpoint: cannot open " + path};

  out << "netadv-ppo-checkpoint v2\n";
  out << "obs_size " << agent.observation_size() << '\n';
  const auto& spec = agent.action_spec();
  if (spec.type == ActionType::kDiscrete) {
    out << "action discrete " << spec.num_actions << '\n';
  } else {
    out << "action continuous " << spec.low.size() << '\n';
  }
  write_vector(out, "actor", agent.actor().params());
  write_vector(out, "critic", agent.critic().params());
  write_vector(out, "log_std", agent.log_std());
  write_vector(out, "obs_mean", agent.obs_normalizer().mean());
  // Raw Welford m2, not variance: exact round trip (see checkpoint.hpp).
  write_vector(out, "obs_m2", agent.obs_normalizer().m2());
  out << "obs_count " << agent.obs_normalizer().count() << '\n';
  if (!out) throw std::runtime_error{"save_checkpoint: write failed for " + path};
}

void load_checkpoint(PpoAgent& agent, const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_checkpoint: cannot open " + path};

  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != "netadv-ppo-checkpoint" ||
      (version != "v1" && version != "v2")) {
    throw std::runtime_error{"load_checkpoint: bad header in " + path};
  }

  std::string key;
  std::size_t obs_size = 0;
  if (!(in >> key >> obs_size) || key != "obs_size" ||
      obs_size != agent.observation_size()) {
    throw std::runtime_error{"load_checkpoint: observation size mismatch"};
  }

  std::string action_kind;
  std::size_t action_n = 0;
  if (!(in >> key >> action_kind >> action_n) || key != "action") {
    throw std::runtime_error{"load_checkpoint: missing action spec"};
  }
  const auto& spec = agent.action_spec();
  const bool discrete = spec.type == ActionType::kDiscrete;
  if ((discrete && (action_kind != "discrete" || action_n != spec.num_actions)) ||
      (!discrete && (action_kind != "continuous" || action_n != spec.low.size()))) {
    throw std::runtime_error{"load_checkpoint: action space mismatch"};
  }

  const auto actor = read_vector(in, "actor");
  if (actor.size() != agent.actor().param_count()) {
    throw std::runtime_error{"load_checkpoint: actor parameter count mismatch"};
  }
  std::copy(actor.begin(), actor.end(), agent.actor().params().begin());

  const auto critic = read_vector(in, "critic");
  if (critic.size() != agent.critic().param_count()) {
    throw std::runtime_error{"load_checkpoint: critic parameter count mismatch"};
  }
  std::copy(critic.begin(), critic.end(), agent.critic().params().begin());

  const auto log_std = read_vector(in, "log_std");
  if (log_std.size() != agent.log_std().size()) {
    throw std::runtime_error{"load_checkpoint: log_std size mismatch"};
  }
  agent.log_std() = log_std;

  auto obs_mean = read_vector(in, "obs_mean");
  auto obs_second = read_vector(in, version == "v2" ? "obs_m2" : "obs_var");
  std::size_t obs_count = 0;
  if (!(in >> key >> obs_count) || key != "obs_count") {
    throw std::runtime_error{"load_checkpoint: missing obs_count"};
  }
  if (version == "v2") {
    agent.obs_normalizer().restore_moments(std::move(obs_mean),
                                           std::move(obs_second), obs_count);
  } else {
    agent.obs_normalizer().restore(std::move(obs_mean), std::move(obs_second),
                                   obs_count);
  }
}

}  // namespace netadv::rl
