// Synchronous Advantage Actor-Critic (A2C — the single-worker form of the
// A3C algorithm Pensieve was originally trained with, Mnih et al. 2016).
// Versus PPO: one on-policy gradient step per short rollout, no surrogate
// clipping, no minibatch epochs. Provided so the Pensieve substitution can
// be trained with its native algorithm family and as a second trainer for
// comparison experiments.
#pragma once

#include <cstdint>
#include <span>

#include "rl/adam.hpp"
#include "rl/agent.hpp"
#include "rl/mlp.hpp"
#include "rl/normalizer.hpp"
#include "rl/rollout.hpp"
#include "util/thread_pool.hpp"

namespace netadv::rl {

struct A2cConfig {
  std::vector<std::size_t> hidden_sizes{64, 64};
  Activation activation = Activation::kTanh;
  double learning_rate = 7e-4;   // A2C's customary default
  std::size_t n_steps = 32;      // short rollouts, one update each
  double gamma = 0.99;
  double gae_lambda = 1.0;       // plain n-step returns by default
  double ent_coef = 0.01;
  double vf_coef = 0.5;
  double max_grad_norm = 0.5;
  double initial_log_std = 0.0;
  bool normalize_observations = true;
  bool normalize_rewards = true;
};

class A2cAgent final : public Agent {
 public:
  A2cAgent(std::size_t observation_size, ActionSpec action_spec,
           A2cConfig config, std::uint64_t seed);

  Vec act_stochastic(const Vec& observation, util::Rng& rng) override;
  Vec act_deterministic(const Vec& observation) override;
  double value_estimate(const Vec& observation) override;
  TrainReport train(Env& env, std::size_t total_steps,
                    const TrainCallback& callback = nullptr) override;

  /// Attach a pool for shadow-buffer update gradients (nullptr restores the
  /// sequential path). Same determinism contract as PpoAgent: per-sample
  /// shadow buffers reduced in sample-index order make trained parameters
  /// byte-identical at any pool size. The pool is borrowed, not owned.
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }
  util::ThreadPool* thread_pool() const noexcept { return pool_; }

  /// fp32 inference fast path for act_*/value_estimate and rollout scoring;
  /// same contract as PpoAgent::set_f32_rollout (gradients and checkpoints
  /// stay float64, default from NETADV_F32_ROLLOUT, disables the activation
  /// cache while on).
  void set_f32_rollout(bool on) noexcept { f32_rollout_ = on; }
  bool f32_rollout() const noexcept { return f32_rollout_; }

  /// Version-stamped reuse of rollout-time activations in the update's
  /// gradient pass (see ActivationCache). A2C takes exactly one gradient
  /// step per rollout, so with the cache on *every* sample of every update
  /// reuses its rollout forward — bit-identical, never approximate.
  void set_activation_cache(bool on) noexcept { use_activation_cache_ = on; }
  bool activation_cache_enabled() const noexcept {
    return use_activation_cache_;
  }

  // Read access for tests/inspection (A2C has no checkpoint format yet).
  const Mlp& actor() const noexcept { return actor_; }
  const Mlp& critic() const noexcept { return critic_; }

  const A2cConfig& config() const noexcept { return config_; }
  const ActionSpec& action_spec() const noexcept override {
    return action_spec_;
  }
  std::size_t observation_size() const noexcept override { return obs_size_; }

 private:
  Vec normalized(const Vec& observation) const;
  /// Policy head for one (already normalized) observation via the precision
  /// path selected by set_f32_rollout().
  Vec actor_head(const Vec& obs);
  bool discrete() const noexcept {
    return action_spec_.type == ActionType::kDiscrete;
  }

  struct UpdateStats {
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
  };
  struct GradWorkspace {
    Mlp::Workspace actor;
    Mlp::Workspace critic;
  };
  /// One sample's loss terms and gradients, accumulated into the caller's
  /// buffers; const and safe to run concurrently for distinct buffers.
  void accumulate_sample(const Transition& t, double inv_n,
                         std::span<double> actor_grads,
                         std::span<double> critic_grads,
                         std::span<double> log_std_grads,
                         std::span<double> stats_terms,
                         GradWorkspace& ws) const;
  UpdateStats apply_update(const RolloutBuffer& buffer);

  std::size_t obs_size_;
  ActionSpec action_spec_;
  A2cConfig config_;
  util::Rng rng_;

  Mlp actor_;
  Mlp critic_;
  Vec log_std_;
  Vec log_std_grad_;

  Adam actor_opt_;
  Adam critic_opt_;
  Adam log_std_opt_;

  RunningNormalizer obs_normalizer_;
  ReturnNormalizer return_normalizer_;

  // Inference fast-path state (see set_f32_rollout / set_activation_cache).
  bool f32_rollout_;
  bool use_activation_cache_ = true;
  Mlp::F32Workspace actor_f32_ws_;
  Mlp::F32Workspace critic_f32_ws_;

  // Shadow-buffer gradient scratch (see set_thread_pool).
  util::ThreadPool* pool_ = nullptr;
  std::vector<double> shadow_grads_;
  std::vector<double> shadow_stats_;
  std::vector<GradWorkspace> sample_ws_;
};

}  // namespace netadv::rl
