// The trainable-agent interface shared by the PPO and A2C trainers, so
// protocols and recorders can hold "an RL policy" without committing to an
// algorithm (Pensieve's original trainer was A3C; the paper's adversaries
// use PPO — both live behind this interface here).
#pragma once

#include <cstddef>
#include <functional>

#include "rl/env.hpp"
#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace netadv::rl {

/// Aggregate statistics of a train() call.
struct TrainReport {
  std::size_t steps = 0;
  std::size_t updates = 0;
  std::size_t episodes = 0;
  double mean_episode_reward = 0.0;       // over the whole run
  double final_mean_episode_reward = 0.0; // over the last 10% of episodes
  double final_policy_loss = 0.0;
  double final_value_loss = 0.0;
  double final_entropy = 0.0;
};

/// Per-update progress snapshot passed to the training callback.
struct UpdateInfo {
  std::size_t update_index = 0;
  std::size_t total_steps_done = 0;
  double mean_episode_reward = 0.0;  // over episodes finished this update
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
};

using TrainCallback = std::function<void(const UpdateInfo&)>;

class Agent {
 public:
  virtual ~Agent() = default;

  /// Sample an action from the current policy (no statistics updates).
  virtual Vec act_stochastic(const Vec& observation, util::Rng& rng) = 0;

  /// Deterministic action: categorical mode or Gaussian mean.
  virtual Vec act_deterministic(const Vec& observation) = 0;

  /// Critic estimate of an observation's value.
  virtual double value_estimate(const Vec& observation) = 0;

  /// Run the algorithm for at least `total_steps` environment steps.
  virtual TrainReport train(Env& env, std::size_t total_steps,
                            const TrainCallback& callback = nullptr) = 0;

  virtual std::size_t observation_size() const = 0;
  virtual const ActionSpec& action_spec() const = 0;

  /// Mean raw episode reward over `episodes` fresh episodes.
  double evaluate(Env& env, std::size_t episodes, util::Rng& rng,
                  bool deterministic = true);
};

}  // namespace netadv::rl
