// AVX2+FMA implementation of the canonical 4-lane accumulation order
// (kernels.hpp). This is the only translation unit compiled with
// -mavx2 -mfma; it must stay free of code that runs before the runtime
// dispatch check, and everything here must compute exactly the canonical
// order so results are bit-identical to kernels.cpp's scalar path:
//
//  * reductions: one 256-bit accumulator whose lane j holds the partial sum
//    of elements i with i % 4 == j (a contiguous 4-wide load puts a[i + j]
//    in lane j), tail elements folded into lanes 0..tail-1 by scalar fma,
//    lanes combined as (l0 + l1) + (l2 + l3);
//  * element-wise kernels: same per-element operation and order as the
//    scalar loop (vectorization only batches independent elements) — vfmadd
//    for gemv_transposed, mul-then-add for rank1_update (see kernels.hpp).
#include "rl/kernels.hpp"

#ifdef NETADV_HAVE_AVX2

#include <immintrin.h>

#include <cassert>
#include <cmath>

namespace netadv::rl::kernels::avx2 {

namespace {

/// Canonical dot product, AVX2 edition. Matches kernels.cpp's
/// dot_canonical bit for bit (see file comment).
inline double dot_canonical_avx2(const double* a, const double* b,
                                 std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (std::size_t i = n4; i < n; ++i) {
    lane[i - n4] = std::fma(a[i], b[i], lane[i - n4]);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// The canonical 8-lane reduction tree, in-register. _mm_hadd_ps performs
/// the exact pairwise float additions the scalar tree
///   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))
/// spells out — each hadd slot is one of the tree's adds on the same two
/// operands — so this is a latency optimization, never a value change.
inline float reduce_canonical_f32(__m256 acc) noexcept {
  const __m128 lo = _mm256_castps256_ps128(acc);    // l0..l3
  const __m128 hi = _mm256_extractf128_ps(acc, 1);  // l4..l7
  const __m128 s1 = _mm_hadd_ps(lo, hi);  // [l0+l1, l2+l3, l4+l5, l6+l7]
  const __m128 s2 = _mm_hadd_ps(s1, s1);  // [(l0+l1)+(l2+l3), (l4+l5)+(l6+l7), ..]
  return _mm_cvtss_f32(s2) +
         _mm_cvtss_f32(_mm_shuffle_ps(s2, s2, 0x55));
}

/// Canonical float dot product: one 8-wide accumulator whose lane j holds
/// the partial sum of elements i with i % 8 == j; tail folded by std::fmaf;
/// lanes combined in the fixed kLanesF32 tree (kernels.hpp). Matches
/// kernels.cpp's dot_canonical_f32 bit for bit.
inline float dot_canonical_avx2_f32(const float* a, const float* b,
                                    std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < n8; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  if (n8 == n) return reduce_canonical_f32(acc);
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  for (std::size_t i = n8; i < n; ++i) {
    lane[i - n8] = std::fmaf(a[i], b[i], lane[i - n8]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

/// Two canonical float dots sharing one pass over x: independent 8-lane
/// accumulators per row (identical chains to dot_canonical_avx2_f32), with
/// the x load amortized across the pair. Row-pairing halves the x traffic of
/// the fp32 inference gemv, whose matrices have even row counts in every MLP
/// layer this project builds.
inline void dot_pair_f32(const float* row0, const float* row1, const float* x,
                         std::size_t n, float* out0, float* out1) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(row0 + i), xv, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(row1 + i), xv, acc1);
  }
  if (n8 == n) {
    *out0 = reduce_canonical_f32(acc0);
    *out1 = reduce_canonical_f32(acc1);
    return;
  }
  alignas(32) float lane0[8], lane1[8];
  _mm256_store_ps(lane0, acc0);
  _mm256_store_ps(lane1, acc1);
  for (std::size_t i = n8; i < n; ++i) {
    lane0[i - n8] = std::fmaf(row0[i], x[i], lane0[i - n8]);
    lane1[i - n8] = std::fmaf(row1[i], x[i], lane1[i - n8]);
  }
  *out0 = ((lane0[0] + lane0[1]) + (lane0[2] + lane0[3])) +
          ((lane0[4] + lane0[5]) + (lane0[6] + lane0[7]));
  *out1 = ((lane1[0] + lane1[1]) + (lane1[2] + lane1[3])) +
          ((lane1[4] + lane1[5]) + (lane1[6] + lane1[7]));
}

}  // namespace

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical_avx2(w.data() + r * cols, x.data(), cols);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x.data() + n * cols;
    double* yn = y.data() + n * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      yn[r] = b[r] + dot_canonical_avx2(w.data() + r * cols, xn, cols);
    }
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  const std::size_t c4 = cols & ~static_cast<std::size_t>(3);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    const __m256d grv = _mm256_set1_pd(gr);
    for (std::size_t c = 0; c < c4; c += 4) {
      const __m256d yv = _mm256_loadu_pd(y.data() + c);
      _mm256_storeu_pd(y.data() + c,
                       _mm256_fmadd_pd(_mm256_loadu_pd(row + c), grv, yv));
    }
    for (std::size_t c = c4; c < cols; ++c) {
      y[c] = std::fma(row[c], gr, y[c]);
    }
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  const std::size_t c4 = cols & ~static_cast<std::size_t>(3);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    const __m256d grv = _mm256_set1_pd(gr);
    // Mul-then-add on purpose (not vfmadd) — see the rank1_update contract
    // in kernels.hpp.
    for (std::size_t c = 0; c < c4; c += 4) {
      const __m256d rowv = _mm256_loadu_pd(row + c);
      _mm256_storeu_pd(
          row + c,
          _mm256_add_pd(rowv, _mm256_mul_pd(grv, _mm256_loadu_pd(x.data() + c))));
    }
    for (std::size_t c = c4; c < cols; ++c) {
      row[c] += gr * x[c];
    }
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return dot_canonical_avx2(a.data(), b.data(), a.size());
}

// ---------------------------------------------------------------------------
// fp32 inference path (kLanesF32 = 8 canonical order; no gradient kernels —
// see kernels.hpp).

void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  const std::size_t r2 = rows & ~static_cast<std::size_t>(1);
  for (std::size_t r = 0; r < r2; r += 2) {
    float d0, d1;
    dot_pair_f32(w.data() + r * cols, w.data() + (r + 1) * cols, x.data(),
                 cols, &d0, &d1);
    y[r] = b[r] + d0;
    y[r + 1] = b[r + 1] + d1;
  }
  if (r2 < rows) {
    y[r2] =
        b[r2] + dot_canonical_avx2_f32(w.data() + r2 * cols, x.data(), cols);
  }
}

void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    gemv(w, rows, cols, x.subspan(n * cols, cols), b,
         y.subspan(n * rows, rows));
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return dot_canonical_avx2_f32(a.data(), b.data(), a.size());
}

}  // namespace netadv::rl::kernels::avx2

#endif  // NETADV_HAVE_AVX2
