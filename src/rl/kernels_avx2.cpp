// AVX2+FMA implementation of the canonical 4-lane accumulation order
// (kernels.hpp). This is the only translation unit compiled with
// -mavx2 -mfma; it must stay free of code that runs before the runtime
// dispatch check, and everything here must compute exactly the canonical
// order so results are bit-identical to kernels.cpp's scalar path:
//
//  * reductions: one 256-bit accumulator whose lane j holds the partial sum
//    of elements i with i % 4 == j (a contiguous 4-wide load puts a[i + j]
//    in lane j), tail elements folded into lanes 0..tail-1 by scalar fma,
//    lanes combined as (l0 + l1) + (l2 + l3);
//  * element-wise kernels: same per-element operation and order as the
//    scalar loop (vectorization only batches independent elements) — vfmadd
//    for gemv_transposed, mul-then-add for rank1_update (see kernels.hpp).
#include "rl/kernels.hpp"

#ifdef NETADV_HAVE_AVX2

#include <immintrin.h>

#include <cassert>
#include <cmath>

namespace netadv::rl::kernels::avx2 {

namespace {

/// Canonical dot product, AVX2 edition. Matches kernels.cpp's
/// dot_canonical bit for bit (see file comment).
inline double dot_canonical_avx2(const double* a, const double* b,
                                 std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (std::size_t i = n4; i < n; ++i) {
    lane[i - n4] = std::fma(a[i], b[i], lane[i - n4]);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical_avx2(w.data() + r * cols, x.data(), cols);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x.data() + n * cols;
    double* yn = y.data() + n * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      yn[r] = b[r] + dot_canonical_avx2(w.data() + r * cols, xn, cols);
    }
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  const std::size_t c4 = cols & ~static_cast<std::size_t>(3);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    const __m256d grv = _mm256_set1_pd(gr);
    for (std::size_t c = 0; c < c4; c += 4) {
      const __m256d yv = _mm256_loadu_pd(y.data() + c);
      _mm256_storeu_pd(y.data() + c,
                       _mm256_fmadd_pd(_mm256_loadu_pd(row + c), grv, yv));
    }
    for (std::size_t c = c4; c < cols; ++c) {
      y[c] = std::fma(row[c], gr, y[c]);
    }
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  const std::size_t c4 = cols & ~static_cast<std::size_t>(3);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    const __m256d grv = _mm256_set1_pd(gr);
    // Mul-then-add on purpose (not vfmadd) — see the rank1_update contract
    // in kernels.hpp.
    for (std::size_t c = 0; c < c4; c += 4) {
      const __m256d rowv = _mm256_loadu_pd(row + c);
      _mm256_storeu_pd(
          row + c,
          _mm256_add_pd(rowv, _mm256_mul_pd(grv, _mm256_loadu_pd(x.data() + c))));
    }
    for (std::size_t c = c4; c < cols; ++c) {
      row[c] += gr * x[c];
    }
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return dot_canonical_avx2(a.data(), b.data(), a.size());
}

}  // namespace netadv::rl::kernels::avx2

#endif  // NETADV_HAVE_AVX2
