#include "rl/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace netadv::rl {

RolloutBuffer::RolloutBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument{"RolloutBuffer capacity must be > 0"};
  data_.reserve(capacity);
}

void RolloutBuffer::add(Transition t) {
  if (full()) throw std::logic_error{"RolloutBuffer::add on full buffer"};
  data_.push_back(std::move(t));
}

void RolloutBuffer::gae_backward(std::size_t begin, std::size_t end,
                                 double last_value, double gamma,
                                 double lambda) {
  double gae = 0.0;
  for (std::size_t i = end; i-- > begin;) {
    Transition& t = data_[i];
    const double next_value = (i + 1 < end) ? data_[i + 1].value : last_value;
    const double next_non_terminal = t.done ? 0.0 : 1.0;
    const double delta =
        t.reward + gamma * next_value * next_non_terminal - t.value;
    gae = delta + gamma * lambda * next_non_terminal * gae;
    t.advantage = gae;
    t.return_ = t.advantage + t.value;
  }
}

void RolloutBuffer::standardize_advantages() {
  // Standardize advantages (not the return targets).
  double mean = 0.0;
  for (const auto& t : data_) mean += t.advantage;
  mean /= static_cast<double>(data_.size());
  double var = 0.0;
  for (const auto& t : data_) {
    const double d = t.advantage - mean;
    var += d * d;
  }
  var /= static_cast<double>(data_.size());
  const double std = std::sqrt(var) + 1e-8;
  for (auto& t : data_) t.advantage = (t.advantage - mean) / std;
}

void RolloutBuffer::compute_advantages(double last_value, double gamma,
                                       double lambda) {
  if (data_.empty()) throw std::logic_error{"compute_advantages on empty buffer"};
  gae_backward(0, data_.size(), last_value, gamma, lambda);
  standardize_advantages();
}

void RolloutBuffer::compute_advantages_segmented(
    const std::vector<double>& last_values, double gamma, double lambda) {
  if (data_.empty()) throw std::logic_error{"compute_advantages on empty buffer"};
  if (last_values.empty() || data_.size() % last_values.size() != 0) {
    throw std::invalid_argument{
        "compute_advantages_segmented: buffer not divisible into segments"};
  }
  const std::size_t segment = data_.size() / last_values.size();
  for (std::size_t s = 0; s < last_values.size(); ++s) {
    gae_backward(s * segment, (s + 1) * segment, last_values[s], gamma, lambda);
  }
  standardize_advantages();
}

std::vector<std::size_t> RolloutBuffer::shuffled_indices(util::Rng& rng) const {
  std::vector<std::size_t> idx(data_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.index(i)]);
  }
  return idx;
}

}  // namespace netadv::rl
