// Fixed-horizon rollout storage with Generalized Advantage Estimation
// (Schulman et al., 2016). The PPO trainer fills one buffer per iteration,
// calls compute_advantages() with the bootstrap value, then consumes
// shuffled minibatches for several epochs.
//
// Determinism contract: everything here runs on the calling thread. The GAE
// passes are sequential backward scans, and shuffled_indices() derives its
// permutation only from the caller's Rng state — so the minibatch sample
// order (the order the shadow-gradient path reduces in, see rl/ppo.hpp) is a
// pure function of the seed, never of the thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rl/matrix.hpp"
#include "rl/mlp.hpp"
#include "util/rng.hpp"

namespace netadv::rl {

/// Rollout-time activation record for the networks that scored a transition,
/// stamped with the Mlp::param_version() the activations were computed
/// under. The gradient path may reuse a workspace in place of recomputing
/// the forward pass exactly while its stamp still matches the network —
/// activations are a pure function of (parameters, observation), and the
/// batched rollout forward computes every element in the same canonical
/// kernel order as the per-sample forward, so reuse is bit-identical, never
/// approximate. A zero stamp means "not recorded" and can never match (live
/// versions start at 1).
struct ActivationCache {
  Mlp::Workspace actor;
  Mlp::Workspace critic;
  std::uint64_t actor_version = 0;
  std::uint64_t critic_version = 0;
};

struct Transition {
  Vec observation;   // normalized observation fed to the nets
  Vec action;        // raw policy action (index for discrete)
  double log_prob = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool done = false;      // episode terminated at this step
  double advantage = 0.0; // filled by compute_advantages
  double return_ = 0.0;   // advantage + value (TD(lambda) return target)
  ActivationCache cache;  // rollout activations (see ActivationCache)
};

class RolloutBuffer {
 public:
  explicit RolloutBuffer(std::size_t capacity);

  void add(Transition t);
  bool full() const noexcept { return data_.size() == capacity_; }
  std::size_t size() const noexcept { return data_.size(); }
  void clear() noexcept { data_.clear(); }

  const Transition& operator[](std::size_t i) const { return data_.at(i); }

  /// Backward GAE pass. `last_value` is V(s_{T}) used to bootstrap the final
  /// (non-terminal) transition. Advantages are then standardized across the
  /// buffer (mean 0, std 1), the usual PPO normalization.
  void compute_advantages(double last_value, double gamma, double lambda);

  /// GAE for a buffer holding the trajectories of N environment replicas
  /// laid out replica-major (replica 0's steps, then replica 1's, ...), all
  /// of equal length size() / last_values.size(). Each segment runs its own
  /// backward pass bootstrapped by its replica's last_values entry; the
  /// final standardization is global across the whole buffer, matching the
  /// single-env normalization.
  void compute_advantages_segmented(const std::vector<double>& last_values,
                                    double gamma, double lambda);

  /// A random permutation of [0, size()) for minibatching. Fisher–Yates on
  /// the caller's rng: the permutation depends only on the rng state, so
  /// every epoch's minibatch composition is reproducible from the seed.
  std::vector<std::size_t> shuffled_indices(util::Rng& rng) const;

 private:
  void gae_backward(std::size_t begin, std::size_t end, double last_value,
                    double gamma, double lambda);
  void standardize_advantages();

  std::size_t capacity_;
  std::vector<Transition> data_;
};

}  // namespace netadv::rl
