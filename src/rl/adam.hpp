// Adam optimizer over a flat parameter array (Kingma & Ba, 2015), with the
// bias-corrected moment estimates used by stable-baselines' PPO.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netadv::rl {

struct AdamConfig {
  double learning_rate = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Adam {
 public:
  Adam(std::size_t param_count, AdamConfig config = {});

  /// Apply one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  /// `params` and `grads` must both have exactly `param_count` elements.
  void step(std::span<double> params, std::span<const double> grads);

  void set_learning_rate(double lr) noexcept { config_.learning_rate = lr; }
  double learning_rate() const noexcept { return config_.learning_rate; }
  std::size_t step_count() const noexcept { return t_; }
  void reset() noexcept;

 private:
  AdamConfig config_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

/// Scale `grads` in place so its global L2 norm is at most `max_norm`;
/// returns the pre-clipping norm. No-op when max_norm <= 0.
double clip_grad_norm(std::span<double> grads, double max_norm);

}  // namespace netadv::rl
