// Proximal Policy Optimization (clip variant; Schulman et al., 2017) over
// the Env interface, with the stable-baselines default hyperparameters the
// paper relied on: clipped surrogate, GAE(lambda), several epochs of
// shuffled minibatches per rollout, entropy bonus, global gradient-norm
// clipping, and observation/return normalization.
//
// The actor and critic are separate MLPs. Discrete action spaces use a
// categorical head; continuous spaces use a diagonal Gaussian whose log-std
// is a learned state-independent parameter vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rl/adam.hpp"
#include "rl/agent.hpp"
#include "rl/env.hpp"
#include "rl/mlp.hpp"
#include "rl/normalizer.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netadv::rl {

struct PpoConfig {
  std::vector<std::size_t> hidden_sizes{64, 64};
  Activation activation = Activation::kTanh;
  double learning_rate = 3e-4;
  std::size_t n_steps = 2048;        // rollout horizon per update
  std::size_t minibatch_size = 64;
  std::size_t epochs = 10;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_range = 0.2;
  double ent_coef = 0.0;
  double vf_coef = 0.5;
  double max_grad_norm = 0.5;
  double initial_log_std = 0.0;      // continuous head only
  bool normalize_observations = true;
  bool normalize_rewards = true;
};

class PpoAgent final : public Agent {
 public:
  PpoAgent(std::size_t observation_size, ActionSpec action_spec,
           PpoConfig config, std::uint64_t seed);

  /// Sample an action from the current policy. Does not update normalizer
  /// statistics; safe for evaluation.
  Vec act_stochastic(const Vec& observation, util::Rng& rng) override;

  /// Deterministic action: categorical mode or Gaussian mean (the paper's
  /// "actions before exploration noise", Figure 6).
  Vec act_deterministic(const Vec& observation) override;

  /// Batched deterministic actions over N observations through the gemm
  /// forward path; bit-identical to N act_deterministic calls.
  std::vector<Vec> act_deterministic_batch(const std::vector<Vec>& observations);

  /// Critic estimate of the (normalized-reward) value of an observation.
  double value_estimate(const Vec& observation) override;

  /// Run PPO for at least `total_steps` environment steps (rounded up to a
  /// whole number of rollouts).
  TrainReport train(Env& env, std::size_t total_steps,
                    const TrainCallback& callback = nullptr) override;

  /// Vectorized PPO: each update's rollout is collected from venv.size()
  /// replicas stepped concurrently (n_steps / size() steps per replica,
  /// batched policy/critic inference, per-segment GAE). Action sampling and
  /// every replica's dynamics run on the replica's private RNG stream, so
  /// the trained parameters depend only on the seed and replica count —
  /// never on the pool's thread count.
  TrainReport train(VecEnv& venv, std::size_t total_steps,
                    const TrainCallback& callback = nullptr);

  /// Attach a pool for shadow-buffer minibatch gradients (nullptr restores
  /// the sequential path).
  ///
  /// Determinism contract: with a pool attached, each minibatch sample's
  /// gradient is computed into a private per-sample shadow buffer against
  /// the (read-only) current parameters, then the shadow buffers are reduced
  /// on the calling thread in sample-index order. Because every sample
  /// contributes exactly one accumulation term per parameter, the reduction
  /// reproduces the sequential left-to-right float accumulation bit for bit:
  /// trained parameters are byte-identical at any pool size, including no
  /// pool at all. The pool is borrowed, not owned — it must outlive every
  /// train() call.
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }
  util::ThreadPool* thread_pool() const noexcept { return pool_; }

  struct MinibatchStats {
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
  };

  /// Route inference-style forwards (act_*, value_estimate, and the rollout
  /// action/value scoring inside train()) through the fp32 fast path
  /// (Mlp::forward_f32). Gradients, optimizer state, and checkpoints stay
  /// float64 regardless (DESIGN.md §7 precision contract). fp32 results
  /// differ from fp64 by rounding, so this is OFF by default (overridable
  /// process-wide with NETADV_F32_ROLLOUT=1) — enabling it during training
  /// changes trained parameters relative to golden artifacts, and it also
  /// disables the rollout activation cache for those rollouts (fp32
  /// activations cannot seed fp64 gradients).
  void set_f32_rollout(bool on) noexcept { f32_rollout_ = on; }
  bool f32_rollout() const noexcept { return f32_rollout_; }

  /// Record each rollout transition's forward activations and reuse them in
  /// the gradient path while the parameters are unchanged (version-stamped,
  /// bit-identical reuse — see ActivationCache in rl/rollout.hpp). Default
  /// ON: it never changes results, only wall-clock and memory. Turn OFF to
  /// drop the per-transition activation storage on memory-tight rollouts.
  void set_activation_cache(bool on) noexcept { use_activation_cache_ = on; }
  bool activation_cache_enabled() const noexcept {
    return use_activation_cache_;
  }

  /// The shuffled-minibatch epochs shared by both train() entry points:
  /// config().epochs passes of shuffled minibatches over `buffer`, one
  /// optimizer step per minibatch. Public so benches and tests can drive the
  /// gradient phase against an externally assembled rollout (e.g. to measure
  /// the activation cache); train() is the normal entry point.
  MinibatchStats run_update_epochs(const RolloutBuffer& buffer);

  const PpoConfig& config() const noexcept { return config_; }
  const ActionSpec& action_spec() const noexcept override { return action_spec_; }
  std::size_t observation_size() const noexcept override { return obs_size_; }

  // Checkpoint access (see rl/checkpoint.hpp).
  Mlp& actor() noexcept { return actor_; }
  const Mlp& actor() const noexcept { return actor_; }
  Mlp& critic() noexcept { return critic_; }
  const Mlp& critic() const noexcept { return critic_; }
  Vec& log_std() noexcept { return log_std_; }
  const Vec& log_std() const noexcept { return log_std_; }
  RunningNormalizer& obs_normalizer() noexcept { return obs_normalizer_; }
  const RunningNormalizer& obs_normalizer() const noexcept {
    return obs_normalizer_;
  }

 private:
  Vec normalized(const Vec& observation) const;
  /// Policy head for one (already normalized) observation via the precision
  /// path selected by set_f32_rollout().
  Vec actor_head(const Vec& obs);
  bool discrete() const noexcept {
    return action_spec_.type == ActionType::kDiscrete;
  }

  /// Activation caches for one concurrent per-sample gradient task.
  struct GradWorkspace {
    Mlp::Workspace actor;
    Mlp::Workspace critic;
  };
  /// One sample's loss terms and parameter gradients, *accumulated* into the
  /// caller's buffers (actor/critic grads, log_std grad, and the three
  /// MinibatchStats terms in stats_terms). Const — reads parameters only —
  /// so tasks with distinct buffers can run it concurrently. Sequential and
  /// shadow-buffer minibatches both run exactly this routine, which is what
  /// makes them bit-identical.
  void accumulate_sample(const Transition& t, double inv_batch,
                         std::span<double> actor_grads,
                         std::span<double> critic_grads,
                         std::span<double> log_std_grads,
                         std::span<double> stats_terms,
                         GradWorkspace& ws) const;
  MinibatchStats update_minibatch(const RolloutBuffer& buffer,
                                  const std::vector<std::size_t>& indices,
                                  std::size_t begin, std::size_t end);

  std::size_t obs_size_;
  ActionSpec action_spec_;
  PpoConfig config_;
  util::Rng rng_;

  Mlp actor_;
  Mlp critic_;
  Vec log_std_;        // continuous head parameter
  Vec log_std_grad_;

  Adam actor_opt_;
  Adam critic_opt_;
  Adam log_std_opt_;

  RunningNormalizer obs_normalizer_;
  ReturnNormalizer return_normalizer_;

  // Inference fast-path state (see set_f32_rollout / set_activation_cache).
  bool f32_rollout_;
  bool use_activation_cache_ = true;
  Mlp::F32Workspace actor_f32_ws_;
  Mlp::F32Workspace critic_f32_ws_;

  // Shadow-buffer minibatch scratch (see set_thread_pool). Not part of the
  // agent's logical state; copied agents just get fresh scratch.
  util::ThreadPool* pool_ = nullptr;
  std::vector<double> shadow_grads_;   // per-sample [actor|critic|log_std]
  std::vector<double> shadow_stats_;   // per-sample 3 loss terms
  std::vector<GradWorkspace> sample_ws_;
};

}  // namespace netadv::rl
