// Scalar reference implementation of the canonical 4-lane fma accumulation
// order (see kernels.hpp) plus the runtime backend dispatch. This TU is
// compiled without ISA-specific flags so the binary runs on any x86-64 (or
// non-x86) host; std::fma is correctly rounded everywhere, which is what
// makes it bit-identical to the AVX2 FMA path.
#include "rl/kernels.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

namespace netadv::rl::kernels {

namespace {

/// Canonical dot product: kLanes interleaved fma partial sums, combined in
/// the fixed tree (l0 + l1) + (l2 + l3). The single source of truth for the
/// accumulation order; the AVX2 kernel computes exactly this.
inline double dot_canonical(const double* a, const double* b,
                            std::size_t n) noexcept {
  double lane[kLanes] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    lane[i % kLanes] = std::fma(a[i], b[i], lane[i % kLanes]);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace

namespace scalar {

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical(w.data() + r * cols, x.data(), cols);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x.data() + n * cols;
    double* yn = y.data() + n * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      yn[r] = b[r] + dot_canonical(w.data() + r * cols, xn, cols);
    }
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    for (std::size_t c = 0; c < cols; ++c) {
      y[c] = std::fma(row[c], gr, y[c]);
    }
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    // Mul-then-add on purpose — see the rank1_update contract in kernels.hpp.
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] += gr * x[c];
    }
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return dot_canonical(a.data(), b.data(), a.size());
}

}  // namespace scalar

#ifndef NETADV_HAVE_AVX2
// NETADV_SIMD=off build: keep the avx2:: names linkable so tests and benches
// can always call them; they degrade to the (bit-identical) scalar kernels.
namespace avx2 {
void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  scalar::gemv(w, rows, cols, x, b, y);
}
void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  scalar::gemm(w, rows, cols, x, batch, b, y);
}
void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  scalar::gemv_transposed(w, rows, cols, g, y);
}
void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  scalar::rank1_update(w, rows, cols, g, x);
}
double dot(std::span<const double> a, std::span<const double> b) {
  return scalar::dot(a, b);
}
}  // namespace avx2
#endif  // !NETADV_HAVE_AVX2

bool avx2_compiled() noexcept {
#ifdef NETADV_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool avx2_runtime_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

Backend resolve_initial_backend() noexcept {
  const bool capable = avx2_compiled() && avx2_runtime_supported();
  const char* env = std::getenv("NETADV_SIMD");
  if (env != nullptr && std::strcmp(env, "off") == 0) return Backend::kScalar;
  if (env != nullptr && std::strcmp(env, "avx2") == 0) {
    if (!capable) {
      util::log_warn("NETADV_SIMD=avx2 requested but %s; using scalar kernels",
                     avx2_compiled() ? "the CPU lacks AVX2/FMA"
                                     : "AVX2 was compiled out");
      return Backend::kScalar;
    }
    return Backend::kAvx2;
  }
  if (env != nullptr && std::strcmp(env, "auto") != 0 &&
      std::strcmp(env, "") != 0) {
    util::log_warn("NETADV_SIMD='%s' not recognized (off | avx2 | auto); "
                   "using auto",
                   env);
  }
  return capable ? Backend::kAvx2 : Backend::kScalar;
}

std::atomic<Backend>& backend_slot() noexcept {
  static std::atomic<Backend> slot{resolve_initial_backend()};
  return slot;
}

}  // namespace

Backend active_backend() noexcept {
  return backend_slot().load(std::memory_order_relaxed);
}

const char* backend_name() noexcept {
  return active_backend() == Backend::kAvx2 ? "avx2" : "scalar";
}

Backend set_backend(Backend backend) noexcept {
  if (backend == Backend::kAvx2 &&
      !(avx2_compiled() && avx2_runtime_supported())) {
    backend = Backend::kScalar;
  }
  backend_slot().store(backend, std::memory_order_relaxed);
  return backend;
}

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  if (active_backend() == Backend::kAvx2) {
    avx2::gemv(w, rows, cols, x, b, y);
  } else {
    scalar::gemv(w, rows, cols, x, b, y);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  if (active_backend() == Backend::kAvx2) {
    avx2::gemm(w, rows, cols, x, batch, b, y);
  } else {
    scalar::gemm(w, rows, cols, x, batch, b, y);
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  if (active_backend() == Backend::kAvx2) {
    avx2::gemv_transposed(w, rows, cols, g, y);
  } else {
    scalar::gemv_transposed(w, rows, cols, g, y);
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  if (active_backend() == Backend::kAvx2) {
    avx2::rank1_update(w, rows, cols, g, x);
  } else {
    scalar::rank1_update(w, rows, cols, g, x);
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  return active_backend() == Backend::kAvx2 ? avx2::dot(a, b)
                                            : scalar::dot(a, b);
}

}  // namespace netadv::rl::kernels
