// Scalar reference implementation of the canonical accumulation orders
// (see kernels.hpp) plus the runtime backend dispatch. This TU is compiled
// without ISA-specific flags so the binary runs on any x86-64 (or non-x86)
// host; std::fma / std::fmaf are correctly rounded everywhere, which is what
// makes the scalar path bit-identical to the fused-multiply-add hardware
// backends.
#include "rl/kernels.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

namespace netadv::rl::kernels {

namespace {

/// Canonical double dot product: kLanes interleaved fma partial sums,
/// combined in the fixed tree (l0 + l1) + (l2 + l3). The single source of
/// truth for the fp64 accumulation order; every SIMD backend computes
/// exactly this.
inline double dot_canonical(const double* a, const double* b,
                            std::size_t n) noexcept {
  double lane[kLanes] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    lane[i % kLanes] = std::fma(a[i], b[i], lane[i % kLanes]);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// Canonical float dot product: kLanesF32 interleaved fmaf partial sums,
/// combined as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). The single source of
/// truth for the fp32 accumulation order.
inline float dot_canonical_f32(const float* a, const float* b,
                               std::size_t n) noexcept {
  float lane[kLanesF32] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (std::size_t i = 0; i < n; ++i) {
    lane[i % kLanesF32] = std::fmaf(a[i], b[i], lane[i % kLanesF32]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace

namespace scalar {

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical(w.data() + r * cols, x.data(), cols);
  }
}

void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] = b[r] + dot_canonical_f32(w.data() + r * cols, x.data(), cols);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x.data() + n * cols;
    double* yn = y.data() + n * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      yn[r] = b[r] + dot_canonical(w.data() + r * cols, xn, cols);
    }
  }
}

void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x.data() + n * cols;
    float* yn = y.data() + n * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      yn[r] = b[r] + dot_canonical_f32(w.data() + r * cols, xn, cols);
    }
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    for (std::size_t c = 0; c < cols; ++c) {
      y[c] = std::fma(row[c], gr, y[c]);
    }
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    // Mul-then-add on purpose — see the rank1_update contract in kernels.hpp.
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] += gr * x[c];
    }
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return dot_canonical(a.data(), b.data(), a.size());
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return dot_canonical_f32(a.data(), b.data(), a.size());
}

}  // namespace scalar

// Builds that compile a backend TU out keep its namespace linkable so tests
// and benches can always call it by name; the stubs degrade to the
// (bit-identical) scalar kernels.
#define NETADV_KERNEL_SCALAR_FORWARDS                                         \
  void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,    \
            std::span<const double> x, std::span<const double> b,             \
            std::span<double> y) {                                            \
    scalar::gemv(w, rows, cols, x, b, y);                                     \
  }                                                                           \
  void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,     \
            std::span<const float> x, std::span<const float> b,               \
            std::span<float> y) {                                             \
    scalar::gemv(w, rows, cols, x, b, y);                                     \
  }                                                                           \
  void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,    \
            std::span<const double> x, std::size_t batch,                     \
            std::span<const double> b, std::span<double> y) {                 \
    scalar::gemm(w, rows, cols, x, batch, b, y);                              \
  }                                                                           \
  void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,     \
            std::span<const float> x, std::size_t batch,                      \
            std::span<const float> b, std::span<float> y) {                   \
    scalar::gemm(w, rows, cols, x, batch, b, y);                              \
  }                                                                           \
  void gemv_transposed(std::span<const double> w, std::size_t rows,           \
                       std::size_t cols, std::span<const double> g,           \
                       std::span<double> y) {                                 \
    scalar::gemv_transposed(w, rows, cols, g, y);                             \
  }                                                                           \
  void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,  \
                    std::span<const double> g, std::span<const double> x) {   \
    scalar::rank1_update(w, rows, cols, g, x);                                \
  }                                                                           \
  double dot(std::span<const double> a, std::span<const double> b) {          \
    return scalar::dot(a, b);                                                 \
  }                                                                           \
  float dot(std::span<const float> a, std::span<const float> b) {             \
    return scalar::dot(a, b);                                                 \
  }

#ifndef NETADV_HAVE_AVX2
namespace avx2 {
NETADV_KERNEL_SCALAR_FORWARDS
}  // namespace avx2
#endif  // !NETADV_HAVE_AVX2

#ifndef NETADV_HAVE_AVX512
namespace avx512 {
NETADV_KERNEL_SCALAR_FORWARDS
}  // namespace avx512
#endif  // !NETADV_HAVE_AVX512

#ifndef NETADV_HAVE_NEON
namespace neon {
NETADV_KERNEL_SCALAR_FORWARDS
}  // namespace neon
#endif  // !NETADV_HAVE_NEON

#undef NETADV_KERNEL_SCALAR_FORWARDS

bool avx2_compiled() noexcept {
#ifdef NETADV_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool avx512_compiled() noexcept {
#ifdef NETADV_HAVE_AVX512
  return true;
#else
  return false;
#endif
}

bool neon_compiled() noexcept {
#ifdef NETADV_HAVE_NEON
  return true;
#else
  return false;
#endif
}

bool avx2_runtime_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool avx512_runtime_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // The backend TU is built with -mavx512f only, but its odd-row tails use
  // 256-bit FMA, so require the AVX2+FMA baseline too.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool neon_runtime_supported() noexcept {
#if defined(__aarch64__)
  return true;  // Advanced SIMD is baseline on AArch64.
#else
  return false;
#endif
}

bool backend_available(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return avx2_compiled() && avx2_runtime_supported();
    case Backend::kAvx512:
      return avx512_compiled() && avx512_runtime_supported();
    case Backend::kNeon:
      return neon_compiled() && neon_runtime_supported();
  }
  return false;
}

Backend best_backend() noexcept {
  if (backend_available(Backend::kAvx512)) return Backend::kAvx512;
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "scalar";
}

namespace {

Backend resolve_initial_backend() noexcept {
  const char* env = std::getenv("NETADV_SIMD");
  if (env != nullptr && std::strcmp(env, "off") == 0) return Backend::kScalar;
  const struct {
    const char* name;
    Backend backend;
  } forced[] = {{"avx2", Backend::kAvx2},
                {"avx512", Backend::kAvx512},
                {"neon", Backend::kNeon}};
  for (const auto& f : forced) {
    if (env == nullptr || std::strcmp(env, f.name) != 0) continue;
    if (!backend_available(f.backend)) {
      bool compiled = false, cpu_ok = false;
      switch (f.backend) {
        case Backend::kAvx2:
          compiled = avx2_compiled();
          cpu_ok = avx2_runtime_supported();
          break;
        case Backend::kAvx512:
          compiled = avx512_compiled();
          cpu_ok = avx512_runtime_supported();
          break;
        case Backend::kNeon:
          compiled = neon_compiled();
          cpu_ok = neon_runtime_supported();
          break;
        case Backend::kScalar:
          break;
      }
      const Backend fallback = best_backend();
      util::log_warn(
          "NETADV_SIMD=%s requested but %s; falling back to %s kernels",
          f.name,
          !compiled ? "that backend was compiled out"
          : !cpu_ok ? "the CPU does not support that ISA"
                    : "that backend is unavailable",
          backend_name(fallback));
      return fallback;
    }
    return f.backend;
  }
  if (env != nullptr && std::strcmp(env, "auto") != 0 &&
      std::strcmp(env, "") != 0) {
    util::log_warn(
        "NETADV_SIMD='%s' not recognized (off | avx2 | avx512 | neon | "
        "auto); using auto",
        env);
  }
  return best_backend();
}

std::atomic<Backend>& backend_slot() noexcept {
  static std::atomic<Backend> slot{resolve_initial_backend()};
  return slot;
}

}  // namespace

Backend active_backend() noexcept {
  return backend_slot().load(std::memory_order_relaxed);
}

const char* backend_name() noexcept { return backend_name(active_backend()); }

Backend set_backend(Backend backend) noexcept {
  if (!backend_available(backend)) backend = Backend::kScalar;
  backend_slot().store(backend, std::memory_order_relaxed);
  return backend;
}

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::gemv(w, rows, cols, x, b, y);
    case Backend::kAvx2:
      return avx2::gemv(w, rows, cols, x, b, y);
    case Backend::kNeon:
      return neon::gemv(w, rows, cols, x, b, y);
    case Backend::kScalar:
      return scalar::gemv(w, rows, cols, x, b, y);
  }
}

void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::gemv(w, rows, cols, x, b, y);
    case Backend::kAvx2:
      return avx2::gemv(w, rows, cols, x, b, y);
    case Backend::kNeon:
      return neon::gemv(w, rows, cols, x, b, y);
    case Backend::kScalar:
      return scalar::gemv(w, rows, cols, x, b, y);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::gemm(w, rows, cols, x, batch, b, y);
    case Backend::kAvx2:
      return avx2::gemm(w, rows, cols, x, batch, b, y);
    case Backend::kNeon:
      return neon::gemm(w, rows, cols, x, batch, b, y);
    case Backend::kScalar:
      return scalar::gemm(w, rows, cols, x, batch, b, y);
  }
}

void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::gemm(w, rows, cols, x, batch, b, y);
    case Backend::kAvx2:
      return avx2::gemm(w, rows, cols, x, batch, b, y);
    case Backend::kNeon:
      return neon::gemm(w, rows, cols, x, batch, b, y);
    case Backend::kScalar:
      return scalar::gemm(w, rows, cols, x, batch, b, y);
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::gemv_transposed(w, rows, cols, g, y);
    case Backend::kAvx2:
      return avx2::gemv_transposed(w, rows, cols, g, y);
    case Backend::kNeon:
      return neon::gemv_transposed(w, rows, cols, g, y);
    case Backend::kScalar:
      return scalar::gemv_transposed(w, rows, cols, g, y);
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::rank1_update(w, rows, cols, g, x);
    case Backend::kAvx2:
      return avx2::rank1_update(w, rows, cols, g, x);
    case Backend::kNeon:
      return neon::rank1_update(w, rows, cols, g, x);
    case Backend::kScalar:
      return scalar::rank1_update(w, rows, cols, g, x);
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::dot(a, b);
    case Backend::kAvx2:
      return avx2::dot(a, b);
    case Backend::kNeon:
      return neon::dot(a, b);
    case Backend::kScalar:
      return scalar::dot(a, b);
  }
  return scalar::dot(a, b);
}

float dot(std::span<const float> a, std::span<const float> b) {
  switch (active_backend()) {
    case Backend::kAvx512:
      return avx512::dot(a, b);
    case Backend::kAvx2:
      return avx2::dot(a, b);
    case Backend::kNeon:
      return neon::dot(a, b);
    case Backend::kScalar:
      return scalar::dot(a, b);
  }
  return scalar::dot(a, b);
}

}  // namespace netadv::rl::kernels
