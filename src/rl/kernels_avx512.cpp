// AVX-512F implementation of the canonical accumulation orders
// (kernels.hpp). Compiled with -mavx512f only (which implies the AVX2+FMA
// baseline for the 256-bit tails); every entry point sits behind the runtime
// CPU dispatch in kernels.cpp.
//
// The pitfall this file is built around: widening a reduction to one 8-wide
// (or 16-wide) accumulator would change the accumulation order — element i
// would land in lane i % 8 instead of the canonical i % 4 — and break
// bit-identity with the scalar/AVX2 paths. Instead, a zmm register here
// holds the canonical accumulators of TWO OUTPUT ROWS:
//
//   zmm = [ row0.lane0..3 | row1.lane0..3 ]       (fp64)
//
// Each step broadcasts one 4-wide slice of x to both halves and fmadds the
// matching slices of the two weight rows, so each half computes exactly the
// scalar chain for its row — the 512-bit width buys row parallelism, not a
// different reduction. Odd trailing rows and the plain dot() fall back to
// the 256-bit canonical kernels (identical to the AVX2 TU). Element-wise
// kernels (gemv_transposed, rank1_update) have no cross-lane reduction, so
// they use straight 512-bit ops: vfmadd for gemv_transposed, mul-then-add
// for rank1_update (see the rank1_update contract in kernels.hpp).
//
// fp32 deliberately does NOT pack two 8-lane rows into one zmm: with only
// AVX512F the half-register shuffles that packing needs (broadcast an
// 8-float slice to both halves, insert an 8-float half) must go through
// f64x4 bit-cast forms — _mm512_broadcast_f32x8/_mm512_insertf32x8 require
// AVX512DQ — and those two port-5 shuffles per 8 columns cost more than the
// packing saves. The profitable fp32 shape is the shuffle-free one: two
// independent 8-lane ymm accumulators sharing each x load, with the
// canonical reduction tree done in-register by pairwise hadd (the identical
// FP additions, so bit-identity is untouched).
#include "rl/kernels.hpp"

#ifdef NETADV_HAVE_AVX512

// GCC implements the unmasked AVX-512 insert/broadcast intrinsics as masked
// builtins whose merge source is _mm512_undefined_pd(); with -Wextra that
// trips -Wmaybe-uninitialized inside the compiler's own avx512fintrin.h
// (GCC bug 105593). The merge source is dead — the mask is all-ones — so
// the warning is spurious; suppress it for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <cassert>
#include <cmath>

namespace netadv::rl::kernels::avx512 {

namespace {

/// Canonical 4-lane double dot, 256-bit edition — identical to the AVX2
/// backend's; used for odd trailing rows and plain dot().
inline double dot_canonical_256(const double* a, const double* b,
                                std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (std::size_t i = n4; i < n; ++i) {
    lane[i - n4] = std::fma(a[i], b[i], lane[i - n4]);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// The canonical 8-lane reduction tree, in-register. _mm_hadd_ps performs
/// the exact pairwise float additions the scalar tree
///   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))
/// spells out, so this is a latency optimization, never a value change.
inline float reduce_canonical_f32(__m256 acc) noexcept {
  const __m128 lo = _mm256_castps256_ps128(acc);    // l0..l3
  const __m128 hi = _mm256_extractf128_ps(acc, 1);  // l4..l7
  const __m128 s1 = _mm_hadd_ps(lo, hi);  // [l0+l1, l2+l3, l4+l5, l6+l7]
  const __m128 s2 = _mm_hadd_ps(s1, s1);  // [(l0+l1)+(l2+l3), (l4+l5)+(l6+l7), ..]
  return _mm_cvtss_f32(s2) +
         _mm_cvtss_f32(_mm_shuffle_ps(s2, s2, 0x55));
}

/// Canonical 8-lane float dot, 256-bit edition — identical to the AVX2
/// backend's.
inline float dot_canonical_256_f32(const float* a, const float* b,
                                   std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < n8; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  if (n8 == n) return reduce_canonical_f32(acc);
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  for (std::size_t i = n8; i < n; ++i) {
    lane[i - n8] = std::fmaf(a[i], b[i], lane[i - n8]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

/// Two canonical double dots at once: row0's 4 lanes in the low zmm half,
/// row1's in the high half. Bit-identical to two dot_canonical_256 calls.
inline void dot_pair(const double* row0, const double* row1, const double* x,
                     std::size_t n, double* out0, double* out1) noexcept {
  __m512d acc = _mm512_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m512d xb = _mm512_broadcast_f64x4(_mm256_loadu_pd(x + i));
    const __m512d wp = _mm512_insertf64x4(
        _mm512_castpd256_pd512(_mm256_loadu_pd(row0 + i)),
        _mm256_loadu_pd(row1 + i), 1);
    acc = _mm512_fmadd_pd(wp, xb, acc);
  }
  alignas(64) double lane[8];
  _mm512_store_pd(lane, acc);
  for (std::size_t i = n4; i < n; ++i) {
    lane[i - n4] = std::fma(row0[i], x[i], lane[i - n4]);
    lane[4 + (i - n4)] = std::fma(row1[i], x[i], lane[4 + (i - n4)]);
  }
  *out0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  *out1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
}

/// Two canonical float dots sharing one pass over x — the shuffle-free fp32
/// shape (see the header comment): one 8-lane ymm accumulator per row, x
/// loaded once per step for both.
inline void dot_pair_f32(const float* row0, const float* row1, const float* x,
                         std::size_t n, float* out0, float* out1) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(row0 + i), xv, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(row1 + i), xv, acc1);
  }
  if (n8 == n) {
    *out0 = reduce_canonical_f32(acc0);
    *out1 = reduce_canonical_f32(acc1);
    return;
  }
  alignas(32) float lane0[8], lane1[8];
  _mm256_store_ps(lane0, acc0);
  _mm256_store_ps(lane1, acc1);
  for (std::size_t i = n8; i < n; ++i) {
    lane0[i - n8] = std::fmaf(row0[i], x[i], lane0[i - n8]);
    lane1[i - n8] = std::fmaf(row1[i], x[i], lane1[i - n8]);
  }
  *out0 = ((lane0[0] + lane0[1]) + (lane0[2] + lane0[3])) +
          ((lane0[4] + lane0[5]) + (lane0[6] + lane0[7]));
  *out1 = ((lane1[0] + lane1[1]) + (lane1[2] + lane1[3])) +
          ((lane1[4] + lane1[5]) + (lane1[6] + lane1[7]));
}

}  // namespace

void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  const std::size_t r2 = rows & ~static_cast<std::size_t>(1);
  for (std::size_t r = 0; r < r2; r += 2) {
    double d0, d1;
    dot_pair(w.data() + r * cols, w.data() + (r + 1) * cols, x.data(), cols,
             &d0, &d1);
    y[r] = b[r] + d0;
    y[r + 1] = b[r + 1] + d1;
  }
  if (r2 < rows) {
    y[r2] = b[r2] + dot_canonical_256(w.data() + r2 * cols, x.data(), cols);
  }
}

void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(b.size() == rows);
  assert(y.size() == rows);
  const std::size_t r2 = rows & ~static_cast<std::size_t>(1);
  for (std::size_t r = 0; r < r2; r += 2) {
    float d0, d1;
    dot_pair_f32(w.data() + r * cols, w.data() + (r + 1) * cols, x.data(),
                 cols, &d0, &d1);
    y[r] = b[r] + d0;
    y[r + 1] = b[r + 1] + d1;
  }
  if (r2 < rows) {
    y[r2] =
        b[r2] + dot_canonical_256_f32(w.data() + r2 * cols, x.data(), cols);
  }
}

void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    gemv(w, rows, cols, x.subspan(n * cols, cols), b,
         y.subspan(n * rows, rows));
  }
}

void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y) {
  assert(w.size() == rows * cols);
  assert(x.size() == batch * cols);
  assert(b.size() == rows);
  assert(y.size() == batch * rows);
  for (std::size_t n = 0; n < batch; ++n) {
    gemv(w, rows, cols, x.subspan(n * cols, cols), b,
         y.subspan(n * rows, rows));
  }
}

void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(y.size() == cols);
  for (std::size_t c = 0; c < cols; ++c) y[c] = 0.0;
  const std::size_t c8 = cols & ~static_cast<std::size_t>(7);
  const std::size_t c4 = cols & ~static_cast<std::size_t>(3);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w.data() + r * cols;
    const double gr = g[r];
    const __m512d grv8 = _mm512_set1_pd(gr);
    for (std::size_t c = 0; c < c8; c += 8) {
      const __m512d yv = _mm512_loadu_pd(y.data() + c);
      _mm512_storeu_pd(y.data() + c,
                       _mm512_fmadd_pd(_mm512_loadu_pd(row + c), grv8, yv));
    }
    if (c8 < c4) {
      const __m256d grv4 = _mm256_set1_pd(gr);
      const __m256d yv = _mm256_loadu_pd(y.data() + c8);
      _mm256_storeu_pd(y.data() + c8,
                       _mm256_fmadd_pd(_mm256_loadu_pd(row + c8), grv4, yv));
    }
    for (std::size_t c = c4; c < cols; ++c) {
      y[c] = std::fma(row[c], gr, y[c]);
    }
  }
}

void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x) {
  assert(w.size() == rows * cols);
  assert(g.size() == rows);
  assert(x.size() == cols);
  const std::size_t c8 = cols & ~static_cast<std::size_t>(7);
  const std::size_t c4 = cols & ~static_cast<std::size_t>(3);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = w.data() + r * cols;
    const double gr = g[r];
    const __m512d grv8 = _mm512_set1_pd(gr);
    // Mul-then-add on purpose (not vfmadd) — see the rank1_update contract
    // in kernels.hpp.
    for (std::size_t c = 0; c < c8; c += 8) {
      const __m512d rowv = _mm512_loadu_pd(row + c);
      _mm512_storeu_pd(
          row + c,
          _mm512_add_pd(rowv,
                        _mm512_mul_pd(grv8, _mm512_loadu_pd(x.data() + c))));
    }
    if (c8 < c4) {
      const __m256d grv4 = _mm256_set1_pd(gr);
      const __m256d rowv = _mm256_loadu_pd(row + c8);
      _mm256_storeu_pd(
          row + c8,
          _mm256_add_pd(rowv,
                        _mm256_mul_pd(grv4, _mm256_loadu_pd(x.data() + c8))));
    }
    for (std::size_t c = c4; c < cols; ++c) {
      row[c] += gr * x[c];
    }
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return dot_canonical_256(a.data(), b.data(), a.size());
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return dot_canonical_256_f32(a.data(), b.data(), a.size());
}

}  // namespace netadv::rl::kernels::avx512

#endif  // NETADV_HAVE_AVX512
