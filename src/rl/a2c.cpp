#include "rl/a2c.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rl/distributions.hpp"
#include "rl/kernels.hpp"

namespace netadv::rl {

namespace {

std::vector<std::size_t> actor_sizes(std::size_t obs, const A2cConfig& cfg,
                                     const ActionSpec& spec) {
  std::vector<std::size_t> sizes{obs};
  sizes.insert(sizes.end(), cfg.hidden_sizes.begin(), cfg.hidden_sizes.end());
  sizes.push_back(spec.type == ActionType::kDiscrete ? spec.num_actions
                                                     : spec.low.size());
  return sizes;
}

std::vector<std::size_t> critic_sizes(std::size_t obs, const A2cConfig& cfg) {
  std::vector<std::size_t> sizes{obs};
  sizes.insert(sizes.end(), cfg.hidden_sizes.begin(), cfg.hidden_sizes.end());
  sizes.push_back(1);
  return sizes;
}

}  // namespace

A2cAgent::A2cAgent(std::size_t observation_size, ActionSpec action_spec,
                   A2cConfig config, std::uint64_t seed)
    : obs_size_(observation_size),
      action_spec_(std::move(action_spec)),
      config_(std::move(config)),
      rng_(seed),
      actor_(actor_sizes(observation_size, config_, action_spec_),
             config_.activation, /*final_gain=*/0.01, rng_),
      critic_(critic_sizes(observation_size, config_), config_.activation,
              /*final_gain=*/1.0, rng_),
      actor_opt_(actor_.param_count(), {.learning_rate = config_.learning_rate}),
      critic_opt_(critic_.param_count(),
                  {.learning_rate = config_.learning_rate}),
      log_std_opt_(action_spec_.type == ActionType::kContinuous
                       ? action_spec_.low.size()
                       : 0,
                   {.learning_rate = config_.learning_rate}),
      obs_normalizer_(observation_size),
      return_normalizer_(config_.gamma),
      f32_rollout_(f32_rollout_env_default()) {
  if (observation_size == 0) {
    throw std::invalid_argument{"A2cAgent: observation_size must be > 0"};
  }
  if (action_spec_.type == ActionType::kDiscrete &&
      action_spec_.num_actions < 2) {
    throw std::invalid_argument{"A2cAgent: discrete space needs >= 2 actions"};
  }
  if (action_spec_.type == ActionType::kContinuous) {
    if (action_spec_.low.empty() ||
        action_spec_.low.size() != action_spec_.high.size()) {
      throw std::invalid_argument{"A2cAgent: bad continuous action bounds"};
    }
    log_std_.assign(action_spec_.low.size(), config_.initial_log_std);
    log_std_grad_.assign(action_spec_.low.size(), 0.0);
  }
  if (config_.n_steps == 0) throw std::invalid_argument{"A2cAgent: bad n_steps"};
}

Vec A2cAgent::normalized(const Vec& observation) const {
  return config_.normalize_observations
             ? obs_normalizer_.normalize(observation)
             : observation;
}

Vec A2cAgent::actor_head(const Vec& obs) {
  if (f32_rollout_) {
    const std::span<const float> out = actor_.forward_f32(obs, actor_f32_ws_);
    return Vec{out.begin(), out.end()};
  }
  return actor_.forward(obs);
}

Vec A2cAgent::act_stochastic(const Vec& observation, util::Rng& rng) {
  const Vec head = actor_head(normalized(observation));
  if (discrete()) {
    return {static_cast<double>(Categorical::sample(head, rng))};
  }
  return DiagGaussian::sample(head, log_std_, rng);
}

Vec A2cAgent::act_deterministic(const Vec& observation) {
  const Vec head = actor_head(normalized(observation));
  if (discrete()) {
    return {static_cast<double>(Categorical::mode(head))};
  }
  return head;
}

double A2cAgent::value_estimate(const Vec& observation) {
  const Vec obs = normalized(observation);
  if (f32_rollout_) {
    return static_cast<double>(critic_.forward_f32(obs, critic_f32_ws_)[0]);
  }
  return critic_.forward(obs)[0];
}

void A2cAgent::accumulate_sample(const Transition& t, double inv_n,
                                 std::span<double> actor_grads,
                                 std::span<double> critic_grads,
                                 std::span<double> log_std_grads,
                                 std::span<double> stats_terms,
                                 GradWorkspace& ws) const {
  // Reuse rollout-time activations while the version stamp still matches
  // (bit-identical — see ActivationCache). A2C updates once per rollout, so
  // every sample hits when the cache is on.
  const bool actor_cached =
      use_activation_cache_ && t.cache.actor_version == actor_.param_version();
  const bool critic_cached = use_activation_cache_ &&
                             t.cache.critic_version == critic_.param_version();
  const Mlp::Workspace& actor_ws = actor_cached ? t.cache.actor : ws.actor;
  const Mlp::Workspace& critic_ws = critic_cached ? t.cache.critic : ws.critic;
  const Vec& head = actor_cached ? t.cache.actor.post.back()
                                 : actor_.forward(t.observation, ws.actor);

  // Vanilla policy gradient: dLoss/dlogp = -advantage.
  const double dloss_dlogp = -t.advantage;
  Vec head_grad(head.size(), 0.0);
  if (discrete()) {
    const auto a = static_cast<std::size_t>(t.action[0]);
    const Vec logp_grad = Categorical::log_prob_grad(head, a);
    const Vec ent_grad = Categorical::entropy_grad(head);
    stats_terms[0] += -Categorical::log_prob(head, a) * t.advantage * inv_n;
    stats_terms[2] += Categorical::entropy(head) * inv_n;
    for (std::size_t j = 0; j < head.size(); ++j) {
      head_grad[j] = (dloss_dlogp * logp_grad[j] -
                      config_.ent_coef * ent_grad[j]) *
                     inv_n;
    }
  } else {
    const Vec logp_grad_mean =
        DiagGaussian::log_prob_grad_mean(head, log_std_, t.action);
    const Vec logp_grad_ls =
        DiagGaussian::log_prob_grad_log_std(head, log_std_, t.action);
    stats_terms[0] +=
        -DiagGaussian::log_prob(head, log_std_, t.action) * t.advantage *
        inv_n;
    stats_terms[2] += DiagGaussian::entropy(log_std_) * inv_n;
    for (std::size_t j = 0; j < head.size(); ++j) {
      head_grad[j] = dloss_dlogp * logp_grad_mean[j] * inv_n;
    }
    for (std::size_t j = 0; j < log_std_.size(); ++j) {
      log_std_grads[j] += (dloss_dlogp * logp_grad_ls[j] -
                           config_.ent_coef * 1.0) *
                          inv_n;
    }
  }
  actor_.backward(head_grad, actor_ws, actor_grads);

  const double v = critic_cached
                       ? t.cache.critic.post.back()[0]
                       : critic_.forward(t.observation, ws.critic)[0];
  const double v_err = v - t.return_;
  stats_terms[1] += 0.5 * v_err * v_err * inv_n;
  critic_.backward({config_.vf_coef * v_err * inv_n}, critic_ws, critic_grads);
}

A2cAgent::UpdateStats A2cAgent::apply_update(const RolloutBuffer& buffer) {
  actor_.zero_grad();
  critic_.zero_grad();
  for (auto& g : log_std_grad_) g = 0.0;

  UpdateStats stats;
  const std::size_t n = buffer.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  if (pool_ != nullptr && pool_->thread_count() > 1 && n > 1) {
    // Shadow-buffer path; see PpoAgent::update_minibatch for the argument
    // that index-ordered reduction of per-sample slots is bit-identical to
    // the sequential accumulation.
    const std::size_t ap = actor_.param_count();
    const std::size_t cp = critic_.param_count();
    const std::size_t ls = log_std_.size();
    const std::size_t stride = ap + cp + ls;
    shadow_grads_.resize(n * stride);
    shadow_stats_.resize(n * 3);
    if (sample_ws_.size() < n) sample_ws_.resize(n);
    pool_->parallel_for(n, [&](std::size_t k) {
      double* slot = shadow_grads_.data() + k * stride;
      std::fill(slot, slot + stride, 0.0);
      double* st = shadow_stats_.data() + k * 3;
      std::fill(st, st + 3, 0.0);
      accumulate_sample(buffer[k], inv_n, {slot, ap}, {slot + ap, cp},
                        {slot + ap + cp, ls}, {st, 3}, sample_ws_[k]);
    });
    auto ag = actor_.grads();
    auto cg = critic_.grads();
    for (std::size_t k = 0; k < n; ++k) {
      const double* slot = shadow_grads_.data() + k * stride;
      for (std::size_t i = 0; i < ap; ++i) ag[i] += slot[i];
      for (std::size_t i = 0; i < cp; ++i) cg[i] += slot[ap + i];
      for (std::size_t i = 0; i < ls; ++i) {
        log_std_grad_[i] += slot[ap + cp + i];
      }
      const double* st = shadow_stats_.data() + k * 3;
      stats.policy_loss += st[0];
      stats.value_loss += st[1];
      stats.entropy += st[2];
    }
  } else {
    if (sample_ws_.empty()) sample_ws_.resize(1);
    for (std::size_t i = 0; i < n; ++i) {
      double terms[3] = {0.0, 0.0, 0.0};
      accumulate_sample(buffer[i], inv_n, actor_.grads(), critic_.grads(),
                        log_std_grad_, terms, sample_ws_[0]);
      stats.policy_loss += terms[0];
      stats.value_loss += terms[1];
      stats.entropy += terms[2];
    }
  }

  if (config_.max_grad_norm > 0.0) {
    const double sq = kernels::dot(actor_.grads(), actor_.grads()) +
                      kernels::dot(critic_.grads(), critic_.grads()) +
                      kernels::dot(log_std_grad_, log_std_grad_);
    const double norm = std::sqrt(sq);
    if (norm > config_.max_grad_norm && norm > 0.0) {
      const double scale = config_.max_grad_norm / norm;
      for (auto& g : actor_.grads()) g *= scale;
      for (auto& g : critic_.grads()) g *= scale;
      for (auto& g : log_std_grad_) g *= scale;
    }
  }

  actor_opt_.step(actor_.params(), actor_.grads());
  critic_opt_.step(critic_.params(), critic_.grads());
  if (!log_std_.empty()) {
    log_std_opt_.step(log_std_, log_std_grad_);
    for (auto& ls : log_std_) ls = std::clamp(ls, -5.0, 1.0);
  }
  return stats;
}

TrainReport A2cAgent::train(Env& env, std::size_t total_steps,
                            const TrainCallback& callback) {
  if (env.observation_size() != obs_size_) {
    throw std::invalid_argument{"A2cAgent::train: env observation size mismatch"};
  }

  TrainReport report;
  RolloutBuffer buffer{config_.n_steps};

  Vec raw_obs = env.reset(rng_);
  double episode_reward = 0.0;
  std::vector<double> episode_rewards;

  std::size_t steps_done = 0;
  std::size_t update_index = 0;
  while (steps_done < total_steps) {
    buffer.clear();
    std::size_t episodes_this_update = 0;
    double episode_reward_sum = 0.0;

    while (!buffer.full()) {
      if (config_.normalize_observations) obs_normalizer_.update(raw_obs);
      const Vec obs = normalized(raw_obs);

      Transition t;
      t.observation = obs;
      // Score the step via the selected precision path; the fp64 path
      // records activations into the transition's cache (stamped with the
      // current param version) so apply_update() can reuse them instead of
      // recomputing the forwards. Forwards consume no RNG, so ordering the
      // critic before sampling is bit-identical.
      Vec head_store;
      const Vec* head;
      if (f32_rollout_) {
        head_store = actor_head(obs);
        head = &head_store;
        t.value = static_cast<double>(critic_.forward_f32(obs, critic_f32_ws_)[0]);
      } else if (use_activation_cache_) {
        head = &actor_.forward(obs, t.cache.actor);
        t.cache.actor_version = actor_.param_version();
        t.value = critic_.forward(obs, t.cache.critic)[0];
        t.cache.critic_version = critic_.param_version();
      } else {
        head = &actor_.forward(obs);
        t.value = critic_.forward(obs)[0];
      }
      if (discrete()) {
        const std::size_t a = Categorical::sample(*head, rng_);
        t.action = {static_cast<double>(a)};
        t.log_prob = Categorical::log_prob(*head, a);
      } else {
        t.action = DiagGaussian::sample(*head, log_std_, rng_);
        t.log_prob = DiagGaussian::log_prob(*head, log_std_, t.action);
      }

      StepResult result = env.step(t.action, rng_);
      episode_reward += result.reward;
      t.reward = config_.normalize_rewards
                     ? return_normalizer_.normalize(result.reward, result.done)
                     : result.reward;
      t.done = result.done;
      buffer.add(std::move(t));
      ++steps_done;

      if (result.done) {
        episode_rewards.push_back(episode_reward);
        episode_reward_sum += episode_reward;
        ++episodes_this_update;
        episode_reward = 0.0;
        raw_obs = env.reset(rng_);
      } else {
        raw_obs = std::move(result.observation);
      }
    }

    // The bootstrap value uses the same precision as the rollout values it
    // joins in the GAE recursion.
    const Vec last_norm = normalized(raw_obs);
    const double last_value =
        f32_rollout_
            ? static_cast<double>(critic_.forward_f32(last_norm,
                                                      critic_f32_ws_)[0])
            : critic_.forward(last_norm)[0];
    buffer.compute_advantages(last_value, config_.gamma, config_.gae_lambda);
    const UpdateStats stats = apply_update(buffer);

    ++update_index;
    report.updates = update_index;
    report.final_policy_loss = stats.policy_loss;
    report.final_value_loss = stats.value_loss;
    report.final_entropy = stats.entropy;

    if (callback) {
      UpdateInfo info;
      info.update_index = update_index;
      info.total_steps_done = steps_done;
      info.mean_episode_reward =
          episodes_this_update > 0
              ? episode_reward_sum / static_cast<double>(episodes_this_update)
              : 0.0;
      info.policy_loss = stats.policy_loss;
      info.value_loss = stats.value_loss;
      info.entropy = stats.entropy;
      callback(info);
    }
  }

  report.steps = steps_done;
  report.episodes = episode_rewards.size();
  if (!episode_rewards.empty()) {
    double sum = 0.0;
    for (double r : episode_rewards) sum += r;
    report.mean_episode_reward =
        sum / static_cast<double>(episode_rewards.size());
    const std::size_t tail =
        std::max<std::size_t>(1, episode_rewards.size() / 10);
    double tail_sum = 0.0;
    for (std::size_t i = episode_rewards.size() - tail;
         i < episode_rewards.size(); ++i) {
      tail_sum += episode_rewards[i];
    }
    report.final_mean_episode_reward = tail_sum / static_cast<double>(tail);
  }
  return report;
}

}  // namespace netadv::rl
