// Vectorized math kernels for the MLP core (gemv, gemm, transposed gemv,
// rank-1 update, dot) behind runtime CPU dispatch, preserving the repo's
// bit-exactness contract — in two precisions.
//
// The canonical accumulation order
// --------------------------------
// Floating-point addition is not associative, so a vectorized reduction that
// sums in a different order than the scalar loop would break the determinism
// contract (DESIGN.md §7): trained parameters must be bit-identical across
// ISAs and NETADV_THREADS. Instead of forcing SIMD to mimic a serial sum,
// the *canonical* order is defined to be the one SIMD computes naturally —
// kLanes (= 4, the AVX2 double width) interleaved partial sums combined in a
// fixed tree:
//
//   lane[i % 4] = fma(a[i], b[i], lane[i % 4])      for i = 0 .. n-1
//   total       = (lane[0] + lane[1]) + (lane[2] + lane[3])
//
// Every accumulation step is a *fused* multiply-add (one rounding), because
// that is what AVX2 FMA hardware executes; the scalar fallback uses
// std::fma, which is correctly rounded by IEEE 754 and therefore
// bit-identical to the hardware instruction. Element-wise kernels
// (gemv_transposed, rank1_update) have no cross-lane reduction at all —
// each output element accumulates in the same per-element order either way
// — so they are bit-identical by construction. rank1_update deliberately
// uses mul-then-add (two roundings) rather than fma: the gradient buffer it
// accumulates into is reduced across samples by plain addition in the
// parallel shadow-slot path (DESIGN.md §7), and only separate rounding of
// the product keeps in-place accumulation equal to slot-then-reduce.
//
// Wider ISAs keep the same order. A 512-bit register does NOT widen the
// reduction (that would interleave each lane's fma chain into two partial
// chains and shift the result); instead the AVX-512 backend packs the
// canonical 4-lane accumulators of TWO OUTPUT ROWS into one zmm — two
// 4-wide accumulators per register, each half computing exactly the scalar
// chain. NEON (128-bit) splits the 4 lanes across two q registers: lanes
// {0,1} in one accumulator, lanes {2,3} in the other, fma'd in the same
// element order. Both are bit-identical to the scalar reference.
//
// The float32 inference path
// --------------------------
// The f32 overload set (gemv / gemm / dot on float spans) is the rollout
// fast path: half the bytes, twice the SIMD width. Its canonical order is
// kLanesF32 = 8 interleaved fmaf partial sums (the AVX2 float width),
// combined in the fixed tree
//
//   ((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))
//
// with the same widening rules: AVX-512 packs two rows' 8-lane accumulators
// per zmm, NEON splits the 8 lanes across two 4-wide q registers. std::fmaf
// is correctly rounded, so scalar and SIMD f32 agree bit for bit. There are
// deliberately NO f32 gradient kernels (gemv_transposed / rank1_update):
// training math stays float64 (DESIGN.md §7, precision contract).
//
// Backends are always available by name (`kernels::scalar`, `kernels::avx2`,
// `kernels::avx512`, `kernels::neon`); names whose TU was compiled out (or
// whose ISA the CPU lacks) forward to the scalar implementation, so callers
// never need to guard. The unqualified entry points dispatch through the
// active backend, chosen at first use from (a) which backend TUs were
// compiled in (CMake knob NETADV_SIMD), (b) what the CPU supports, and
// (c) the NETADV_SIMD environment variable (off | avx2 | avx512 | neon |
// auto). Forcing a backend the host cannot run logs a note and falls back
// to the best supported one instead of crashing.
//
// One-time break: adopting this canonical order changed the results of every
// accumulation-based kernel relative to the pre-SIMD serial order, so golden
// values from runs before this layer existed shift once (and never again).
#pragma once

#include <cstddef>
#include <span>

namespace netadv::rl::kernels {

/// Number of interleaved partial sums in the canonical double reduction
/// order (the AVX2 register width in doubles).
inline constexpr std::size_t kLanes = 4;

/// Number of interleaved partial sums in the canonical float reduction
/// order (the AVX2 register width in floats).
inline constexpr std::size_t kLanesF32 = 8;

enum class Backend { kScalar, kAvx2, kAvx512, kNeon };

/// True if the backend's translation unit was compiled in (CMake NETADV_SIMD).
bool avx2_compiled() noexcept;
bool avx512_compiled() noexcept;
bool neon_compiled() noexcept;

/// True if the running CPU supports the backend's ISA.
bool avx2_runtime_supported() noexcept;
bool avx512_runtime_supported() noexcept;
bool neon_runtime_supported() noexcept;

/// True if `backend` is both compiled in and supported by this CPU (kScalar
/// is always available).
bool backend_available(Backend backend) noexcept;

/// The widest available backend — what NETADV_SIMD=auto resolves to:
/// avx512 > avx2 > neon > scalar.
Backend best_backend() noexcept;

/// The backend the unqualified kernels currently dispatch to.
Backend active_backend() noexcept;

/// Human-readable backend names ("scalar", "avx2", "avx512", "neon").
const char* backend_name() noexcept;
const char* backend_name(Backend backend) noexcept;

/// Force a backend (tests and benches). Requesting a backend that is not
/// compiled in or not supported by the CPU selects kScalar instead; returns
/// the backend actually activated. Safe to call between parallel regions;
/// the active backend is read atomically by the kernels.
Backend set_backend(Backend backend) noexcept;

// ---------------------------------------------------------------------------
// Dispatched entry points. Semantics and bit-exact results are identical
// across backends; only wall-clock differs. The float overloads form the
// inference-only f32 fast path (no gradient kernels — see file comment).

/// y = W x + b, W row-major (rows x cols). Per row: bias + canonical dot.
void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y);
void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> b,
          std::span<float> y);

/// Batched forward: Y = X W^T + 1 b^T with X (batch x cols) and Y
/// (batch x rows), each output element computed exactly like gemv's.
void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y);
void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::size_t batch,
          std::span<const float> b, std::span<float> y);

/// y = W^T g. Element-wise fma accumulation over rows (no lane reduction).
void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y);

/// W += g x^T. Element-wise mul-then-add (NOT fma): the two-rounding form
/// makes in-place accumulation across samples bit-equal to the parallel
/// shadow-slot reduce, which sums per-sample products with plain adds.
void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x);

/// Canonical 4-lane (double) / 8-lane (float) dot; requires equal sizes.
double dot(std::span<const double> a, std::span<const double> b);
float dot(std::span<const float> a, std::span<const float> b);

// ---------------------------------------------------------------------------
// Named backends, for bit-identity tests and the kernel micro-bench. Every
// backend exports the same overload set; a backend that is unavailable on
// this build/host forwards to scalar.

#define NETADV_KERNEL_BACKEND_DECLS                                          \
  void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,   \
            std::span<const double> x, std::span<const double> b,            \
            std::span<double> y);                                            \
  void gemv(std::span<const float> w, std::size_t rows, std::size_t cols,    \
            std::span<const float> x, std::span<const float> b,              \
            std::span<float> y);                                             \
  void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,   \
            std::span<const double> x, std::size_t batch,                    \
            std::span<const double> b, std::span<double> y);                 \
  void gemm(std::span<const float> w, std::size_t rows, std::size_t cols,    \
            std::span<const float> x, std::size_t batch,                     \
            std::span<const float> b, std::span<float> y);                   \
  void gemv_transposed(std::span<const double> w, std::size_t rows,          \
                       std::size_t cols, std::span<const double> g,          \
                       std::span<double> y);                                 \
  void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols, \
                    std::span<const double> g, std::span<const double> x);   \
  double dot(std::span<const double> a, std::span<const double> b);          \
  float dot(std::span<const float> a, std::span<const float> b);

namespace scalar {
NETADV_KERNEL_BACKEND_DECLS
}  // namespace scalar

namespace avx2 {
NETADV_KERNEL_BACKEND_DECLS
}  // namespace avx2

namespace avx512 {
NETADV_KERNEL_BACKEND_DECLS
}  // namespace avx512

namespace neon {
NETADV_KERNEL_BACKEND_DECLS
}  // namespace neon

#undef NETADV_KERNEL_BACKEND_DECLS

}  // namespace netadv::rl::kernels
