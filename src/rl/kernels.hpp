// Vectorized math kernels for the MLP core (gemv, gemm, transposed gemv,
// rank-1 update, dot) behind runtime CPU dispatch, preserving the repo's
// bit-exactness contract.
//
// The canonical accumulation order
// --------------------------------
// Floating-point addition is not associative, so a vectorized reduction that
// sums in a different order than the scalar loop would break the determinism
// contract (DESIGN.md §7): trained parameters must be bit-identical across
// ISAs and NETADV_THREADS. Instead of forcing SIMD to mimic a serial sum,
// the *canonical* order is defined to be the one SIMD computes naturally —
// kLanes (= 4, the AVX2 double width) interleaved partial sums combined in a
// fixed tree:
//
//   lane[i % 4] = fma(a[i], b[i], lane[i % 4])      for i = 0 .. n-1
//   total       = (lane[0] + lane[1]) + (lane[2] + lane[3])
//
// Every accumulation step is a *fused* multiply-add (one rounding), because
// that is what AVX2 FMA hardware executes; the scalar fallback uses
// std::fma, which is correctly rounded by IEEE 754 and therefore
// bit-identical to the hardware instruction. Element-wise kernels
// (gemv_transposed, rank1_update) have no cross-lane reduction at all —
// each output element accumulates in the same per-element order either way
// — so they are bit-identical by construction. rank1_update deliberately
// uses mul-then-add (two roundings) rather than fma: the gradient buffer it
// accumulates into is reduced across samples by plain addition in the
// parallel shadow-slot path (DESIGN.md §7), and only separate rounding of
// the product keeps in-place accumulation equal to slot-then-reduce.
//
// Both backends are always available by name (`kernels::scalar`,
// `kernels::avx2`); the unqualified entry points dispatch through the active
// backend, chosen at first use from (a) whether AVX2 code was compiled in
// (CMake knob NETADV_SIMD=off|avx2), (b) whether the CPU supports AVX2+FMA,
// and (c) the NETADV_SIMD environment variable (off | avx2 | auto). When
// AVX2 is compiled out or unsupported, `kernels::avx2::*` forwards to the
// scalar implementation, so callers never need to guard.
//
// One-time break: adopting this canonical order changed the results of every
// accumulation-based kernel relative to the pre-SIMD serial order, so golden
// values from runs before this layer existed shift once (and never again).
#pragma once

#include <cstddef>
#include <span>

namespace netadv::rl::kernels {

/// Number of interleaved partial sums in the canonical reduction order
/// (the AVX2 register width in doubles).
inline constexpr std::size_t kLanes = 4;

enum class Backend { kScalar, kAvx2 };

/// True if the AVX2 translation unit was compiled in (NETADV_SIMD=avx2).
bool avx2_compiled() noexcept;

/// True if the running CPU supports AVX2 and FMA.
bool avx2_runtime_supported() noexcept;

/// The backend the unqualified kernels currently dispatch to.
Backend active_backend() noexcept;

/// Human-readable name of the active backend ("scalar" or "avx2").
const char* backend_name() noexcept;

/// Force a backend (tests and benches). Requesting kAvx2 when it is not
/// compiled in or not supported by the CPU selects kScalar instead; returns
/// the backend actually activated. Safe to call between parallel regions;
/// the active backend is read atomically by the kernels.
Backend set_backend(Backend backend) noexcept;

// ---------------------------------------------------------------------------
// Dispatched entry points. Semantics and bit-exact results are identical
// across backends; only wall-clock differs.

/// y = W x + b, W row-major (rows x cols). Per row: bias + canonical dot.
void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y);

/// Batched forward: Y = X W^T + 1 b^T with X (batch x cols) and Y
/// (batch x rows), each output element computed exactly like gemv's.
void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y);

/// y = W^T g. Element-wise fma accumulation over rows (no lane reduction).
void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y);

/// W += g x^T. Element-wise mul-then-add (NOT fma): the two-rounding form
/// makes in-place accumulation across samples bit-equal to the parallel
/// shadow-slot reduce, which sums per-sample products with plain adds.
void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x);

/// Canonical 4-lane dot product; requires equal sizes.
double dot(std::span<const double> a, std::span<const double> b);

// ---------------------------------------------------------------------------
// Named backends, for bit-identity tests and the kernel micro-bench.

namespace scalar {
void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y);
void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y);
void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y);
void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x);
double dot(std::span<const double> a, std::span<const double> b);
}  // namespace scalar

namespace avx2 {
void gemv(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<const double> b,
          std::span<double> y);
void gemm(std::span<const double> w, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::size_t batch,
          std::span<const double> b, std::span<double> y);
void gemv_transposed(std::span<const double> w, std::size_t rows,
                     std::size_t cols, std::span<const double> g,
                     std::span<double> y);
void rank1_update(std::span<double> w, std::size_t rows, std::size_t cols,
                  std::span<const double> g, std::span<const double> x);
double dot(std::span<const double> a, std::span<const double> b);
}  // namespace avx2

}  // namespace netadv::rl::kernels
