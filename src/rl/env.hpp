// The environment interface every RL-trainable system in netadv implements:
// the Pensieve training environment, the ABR adversary environment, and the
// congestion-control adversary environment, plus the toy self-test envs.
//
// Conventions (gym-like):
//  * reset() returns the first observation of an episode.
//  * step() takes the *raw* policy action. For discrete spaces the action is
//    a one-element vector holding the index; for continuous spaces it is the
//    unclipped Gaussian sample — the env (via ActionSpec helpers) clips to
//    [-1, 1] and maps linearly into its physical ranges, mirroring the
//    paper's remark that "exploration and clipping done by PPO will return
//    the actions to the acceptable range".
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace netadv::rl {

enum class ActionType { kDiscrete, kContinuous };

/// Declares an environment's action space.
struct ActionSpec {
  ActionType type = ActionType::kDiscrete;
  /// Discrete: number of choices. Continuous: unused.
  std::size_t num_actions = 0;
  /// Continuous: physical bounds per dimension (sizes define dimensionality).
  Vec low;
  Vec high;

  static ActionSpec discrete(std::size_t n) {
    ActionSpec spec;
    spec.type = ActionType::kDiscrete;
    spec.num_actions = n;
    return spec;
  }

  static ActionSpec continuous(Vec low, Vec high) {
    ActionSpec spec;
    spec.type = ActionType::kContinuous;
    spec.low = std::move(low);
    spec.high = std::move(high);
    return spec;
  }

  std::size_t dims() const noexcept {
    return type == ActionType::kDiscrete ? 1 : low.size();
  }

  /// Map a raw policy output to physical units: clip to [-1, 1], then scale
  /// linearly into [low, high] per dimension.
  Vec to_physical(const Vec& raw) const {
    Vec out(low.size());
    for (std::size_t i = 0; i < low.size(); ++i) {
      const double clipped = std::clamp(raw[i], -1.0, 1.0);
      out[i] = low[i] + (clipped + 1.0) * 0.5 * (high[i] - low[i]);
    }
    return out;
  }

  /// Inverse of to_physical for in-range values (used by tests/recorders).
  Vec to_normalized(const Vec& physical) const {
    Vec out(low.size());
    for (std::size_t i = 0; i < low.size(); ++i) {
      out[i] = 2.0 * (physical[i] - low[i]) / (high[i] - low[i]) - 1.0;
    }
    return out;
  }
};

struct StepResult {
  Vec observation;
  double reward = 0.0;
  bool done = false;
};

/// Abstract RL environment. Implementations own all domain state; the RNG is
/// passed in so a single experiment seed drives everything.
class Env {
 public:
  virtual ~Env() = default;

  virtual std::string name() const = 0;
  virtual std::size_t observation_size() const = 0;
  virtual ActionSpec action_spec() const = 0;

  /// Start a new episode and return its first observation.
  virtual Vec reset(util::Rng& rng) = 0;

  /// Advance one step. Must not be called after a step returned done=true
  /// until reset() is called again.
  virtual StepResult step(const Vec& action, util::Rng& rng) = 0;
};

}  // namespace netadv::rl
