// netadv::serve — the session-serving front end.
//
// Everything else in the repo replays ONE (protocol, trace) pair per task; a
// real ABR deployment multiplexes thousands of concurrent playbacks through
// one process. SessionEngine reproduces that shape on the simulator: each
// session owns a trace cursor, a StreamingSession, an observation tracker,
// and (in per-session mode) a private protocol instance, and the engine
// drives all of them in lockstep "ticks" — one quality decision plus one
// chunk download per active session per tick — until every session finishes
// its video.
//
// Two decision paths share the identical session dynamics:
//
//   per-session  run(factory, ...): every session gets its own AbrProtocol
//                from a ProtocolFactory; a tick's decisions+downloads fan out
//                over the shared util::ThreadPool, each task confined to its
//                own session slot (the DESIGN.md §7 determinism contract).
//   batched      run(policy, ...): observations of all active sessions are
//                gathered in session order and answered by ONE
//                BatchPolicy::choose_batch call (for pensieve: one
//                gemm-shaped act_deterministic_batch instead of N gemv
//                forwards), then downloads fan out as above.
//
// Determinism: session i always streams trace (i mod num_traces), decisions
// depend only on that session's own history, and summaries are reduced in
// session order — so the SessionSummary vector is a pure function of
// (manifest, traces, protocol, sessions) and is bit-identical at any thread
// count and across the two decision paths (given bit-identical policies,
// e.g. OwnedPensievePolicy vs PensieveBatchPolicy over the same agent).
// Wall-clock only ever appears in ServeStats, never in summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "abr/qoe_model.hpp"
#include "abr/runner.hpp"
#include "abr/sim.hpp"
#include "abr/video.hpp"
#include "serve/batch_policy.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace netadv::serve {

/// Deterministic end-of-playback record of one session. This is the unit
/// the byte-identity CI check compares across thread counts, so it must
/// never contain wall-clock or thread-dependent values.
struct SessionSummary {
  std::size_t session = 0;      ///< session index in [0, num_sessions)
  std::size_t trace = 0;        ///< trace index the session streamed
  std::size_t chunks = 0;       ///< chunks downloaded (== manifest chunks)
  double qoe = 0.0;             ///< total score under the selected QoE model
  double qoe_lin = 0.0;         ///< QoE_lin (abr::total_qoe), for comparison
  double rebuffer_s = 0.0;      ///< total stall time
  double mean_bitrate_mbps = 0.0;
  std::size_t quality_switches = 0;

  bool operator==(const SessionSummary&) const = default;
};

/// Write summaries as CSV (header + one row per session, session order).
/// Fixed formatting (%.17g) so equal summaries produce byte-equal files.
void save_session_summaries(std::span<const SessionSummary> summaries,
                            const std::string& path);

/// Throughput/latency side-channel of one run. Latencies are wall-clock and
/// thus nondeterministic; they are reported by bench_serve / `netadv_cli
/// serve` but never written into job artifacts.
struct ServeStats {
  std::size_t sessions = 0;
  std::size_t decisions = 0;
  std::size_t ticks = 0;
  double elapsed_s = 0.0;
  /// One entry per decision (batched mode: batch time / batch size,
  /// replicated). Feed to util::percentile for p50/p99.
  std::vector<double> decision_latency_s;

  double sessions_per_s() const noexcept {
    return elapsed_s > 0.0 ? static_cast<double>(sessions) / elapsed_s : 0.0;
  }
  double decisions_per_s() const noexcept {
    return elapsed_s > 0.0 ? static_cast<double>(decisions) / elapsed_s : 0.0;
  }
};

/// Multiplexes N concurrent simulated playbacks through one process.
class SessionEngine {
 public:
  struct Params {
    std::size_t history_window = 8;          ///< observation history depth
    abr::StreamingSession::Params session;   ///< per-session buffer dynamics
  };

  /// Sessions stream `manifest`; session i draws per-chunk bandwidth from
  /// traces[i % traces.size()]. Throws std::invalid_argument on an empty
  /// trace set.
  SessionEngine(abr::VideoManifest manifest, std::vector<trace::Trace> traces)
      : SessionEngine(std::move(manifest), std::move(traces), Params{}) {}
  SessionEngine(abr::VideoManifest manifest, std::vector<trace::Trace> traces,
                Params params);

  const abr::VideoManifest& manifest() const noexcept { return manifest_; }
  const std::vector<trace::Trace>& traces() const noexcept { return traces_; }

  /// Per-session mode: one private protocol instance per session from
  /// `make_protocol`, decisions+downloads fanned out per tick over `pool`
  /// (sequential when null). `qoe` scores every finished session (the model
  /// is begin_video-bound here; scoring is const afterwards, so one model
  /// serves all sessions). Returns summaries in session order; fills
  /// `stats` when non-null. Throws std::invalid_argument when sessions == 0.
  std::vector<SessionSummary> run(const abr::ProtocolFactory& make_protocol,
                                  abr::QoeModel& qoe, std::size_t sessions,
                                  util::ThreadPool* pool = nullptr,
                                  ServeStats* stats = nullptr);

  /// Batched mode: all active sessions' observations answered by one
  /// policy.choose_batch call per tick; downloads still fan out over `pool`.
  std::vector<SessionSummary> run(BatchPolicy& policy, abr::QoeModel& qoe,
                                  std::size_t sessions,
                                  util::ThreadPool* pool = nullptr,
                                  ServeStats* stats = nullptr);

 private:
  struct Session;

  std::vector<Session> make_sessions(std::size_t sessions) const;
  void apply_download(Session& session, std::size_t quality) const;
  std::vector<SessionSummary> summarize(std::span<const Session> sessions,
                                        abr::QoeModel& qoe) const;

  abr::VideoManifest manifest_;
  std::vector<trace::Trace> traces_;
  Params params_;
};

}  // namespace netadv::serve
