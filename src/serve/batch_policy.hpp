// Cross-session batched decision-making — the neural-protocol fast path of
// the serving front end (engine.hpp).
//
// A per-session AbrProtocol answers one observation at a time, so serving N
// pensieve sessions costs N gemv-bound forwards per tick. A BatchPolicy
// instead answers a whole tick's worth of observations at once;
// PensieveBatchPolicy gathers the feature vectors and runs ONE
// PpoAgent::act_deterministic_batch (gemm-shaped, f32-capable under
// NETADV_F32_ROLLOUT) per tick. act_deterministic_batch is bit-identical to
// N act_deterministic calls, so the batched path reproduces the per-session
// path's decisions — and therefore its session summaries — exactly; only
// decisions/sec changes. bench_serve measures the gap.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "abr/pensieve.hpp"
#include "abr/protocol.hpp"
#include "abr/video.hpp"
#include "rl/ppo.hpp"

namespace netadv::serve {

/// One decision per observation, computed jointly. Called from the engine's
/// serial gather step (never concurrently with itself), so implementations
/// may keep mutable state.
class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once before a serving run, with the engine's manifest.
  virtual void begin_serving(const abr::VideoManifest& manifest) = 0;

  /// Quality index for each observation, in order. Every pointer is
  /// non-null and valid only for the duration of the call.
  virtual std::vector<std::size_t> choose_batch(
      std::span<const abr::AbrObservation* const> observations) = 0;
};

/// Pensieve behind the batch seam: features via pensieve_features(), one
/// act_deterministic_batch per tick. Owns a private copy of the agent
/// (inference mutates forward caches), like OwnedPensievePolicy.
class PensieveBatchPolicy final : public BatchPolicy {
 public:
  explicit PensieveBatchPolicy(const rl::PpoAgent& agent) : agent_(agent) {}

  PensieveBatchPolicy(const PensieveBatchPolicy&) = delete;
  PensieveBatchPolicy& operator=(const PensieveBatchPolicy&) = delete;

  std::string name() const override { return "pensieve-batch"; }
  void begin_serving(const abr::VideoManifest& manifest) override {
    manifest_ = &manifest;
  }
  std::vector<std::size_t> choose_batch(
      std::span<const abr::AbrObservation* const> observations) override;

 private:
  rl::PpoAgent agent_;
  const abr::VideoManifest* manifest_ = nullptr;
};

}  // namespace netadv::serve
