#include "serve/batch_policy.hpp"

#include <stdexcept>

namespace netadv::serve {

std::vector<std::size_t> PensieveBatchPolicy::choose_batch(
    std::span<const abr::AbrObservation* const> observations) {
  if (manifest_ == nullptr) {
    throw std::logic_error{"PensieveBatchPolicy: begin_serving not called"};
  }
  std::vector<rl::Vec> features;
  features.reserve(observations.size());
  for (const abr::AbrObservation* obs : observations) {
    features.push_back(abr::pensieve_features(*obs, *manifest_));
  }
  const std::vector<rl::Vec> actions = agent_.act_deterministic_batch(features);
  std::vector<std::size_t> qualities;
  qualities.reserve(actions.size());
  for (const rl::Vec& action : actions) {
    qualities.push_back(static_cast<std::size_t>(action[0]));
  }
  return qualities;
}

}  // namespace netadv::serve
