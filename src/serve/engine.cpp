#include "serve/engine.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "abr/protocol.hpp"

namespace netadv::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

/// One live playback. Everything a tick task touches lives here, so
/// parallel tick bodies confine their writes to their own slot.
struct SessionEngine::Session {
  Session(const abr::VideoManifest& manifest, std::size_t trace,
          const SessionEngine::Params& params)
      : trace_index(trace),
        stream(manifest, params.session),
        tracker(manifest, params.history_window) {}

  std::size_t trace_index;
  abr::StreamingSession stream;
  abr::AbrObservationTracker tracker;
  std::unique_ptr<abr::AbrProtocol> protocol;  ///< per-session mode only

  // Per-chunk accumulators, appended in playback order.
  std::vector<std::size_t> qualities;
  std::vector<double> bitrates_mbps;
  std::vector<double> rebuffers_s;
};

SessionEngine::SessionEngine(abr::VideoManifest manifest,
                             std::vector<trace::Trace> traces, Params params)
    : manifest_(std::move(manifest)),
      traces_(std::move(traces)),
      params_(params) {
  if (traces_.empty()) {
    throw std::invalid_argument{"SessionEngine: trace set must be non-empty"};
  }
}

std::vector<SessionEngine::Session> SessionEngine::make_sessions(
    std::size_t sessions) const {
  if (sessions == 0) {
    throw std::invalid_argument{"SessionEngine: need at least one session"};
  }
  std::vector<Session> out;
  out.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    out.emplace_back(manifest_, i % traces_.size(), params_);
    out.back().qualities.reserve(manifest_.num_chunks());
    out.back().bitrates_mbps.reserve(manifest_.num_chunks());
    out.back().rebuffers_s.reserve(manifest_.num_chunks());
  }
  return out;
}

void SessionEngine::apply_download(Session& session,
                                   std::size_t quality) const {
  const double bandwidth = abr::bandwidth_for_chunk(
      traces_[session.trace_index], session.stream.next_chunk());
  const abr::DownloadResult result =
      session.stream.download_next(quality, bandwidth);
  session.tracker.on_chunk(result.quality, result.bitrate_mbps,
                           result.throughput_mbps, result.download_time_s);
  session.qualities.push_back(result.quality);
  session.bitrates_mbps.push_back(result.bitrate_mbps);
  session.rebuffers_s.push_back(result.rebuffer_s);
}

std::vector<SessionSummary> SessionEngine::summarize(
    std::span<const Session> sessions, abr::QoeModel& qoe) const {
  std::vector<SessionSummary> out;
  out.reserve(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const Session& s = sessions[i];
    SessionSummary summary;
    summary.session = i;
    summary.trace = s.trace_index;
    summary.chunks = s.qualities.size();
    summary.qoe = qoe.total_score(s.qualities, s.rebuffers_s);
    summary.qoe_lin = abr::total_qoe(s.bitrates_mbps, s.rebuffers_s);
    double bitrate_sum = 0.0;
    for (std::size_t c = 0; c < s.qualities.size(); ++c) {
      summary.rebuffer_s += s.rebuffers_s[c];
      bitrate_sum += s.bitrates_mbps[c];
      if (c > 0 && s.qualities[c] != s.qualities[c - 1]) {
        ++summary.quality_switches;
      }
    }
    summary.mean_bitrate_mbps =
        bitrate_sum / static_cast<double>(s.qualities.size());
    out.push_back(summary);
  }
  return out;
}

std::vector<SessionSummary> SessionEngine::run(
    const abr::ProtocolFactory& make_protocol, abr::QoeModel& qoe,
    std::size_t num_sessions, util::ThreadPool* pool, ServeStats* stats) {
  std::vector<Session> sessions = make_sessions(num_sessions);
  for (Session& s : sessions) {
    s.protocol = make_protocol();
    s.protocol->begin_video(manifest_);
  }
  qoe.begin_video(manifest_);

  ServeStats local;
  local.sessions = num_sessions;
  const auto run_start = std::chrono::steady_clock::now();

  std::vector<std::size_t> active;
  std::vector<double> latencies;  // per-active-slot, this tick
  active.reserve(num_sessions);
  while (true) {
    active.clear();
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (!sessions[i].stream.finished()) active.push_back(i);
    }
    if (active.empty()) break;
    ++local.ticks;
    local.decisions += active.size();

    latencies.assign(active.size(), 0.0);
    const auto tick = [&](std::size_t k) {
      Session& s = sessions[active[k]];
      s.tracker.sync_session(s.stream.next_chunk(), s.stream.remaining_chunks(),
                             s.stream.buffer_s());
      const auto decide_start = std::chrono::steady_clock::now();
      const std::size_t quality = s.protocol->choose_quality(s.tracker.current());
      latencies[k] = seconds_since(decide_start);
      apply_download(s, quality);
    };
    if (pool != nullptr) {
      pool->parallel_for(active.size(), tick);
    } else {
      for (std::size_t k = 0; k < active.size(); ++k) tick(k);
    }
    local.decision_latency_s.insert(local.decision_latency_s.end(),
                                    latencies.begin(), latencies.end());
  }

  local.elapsed_s = seconds_since(run_start);
  if (stats != nullptr) *stats = std::move(local);
  return summarize(sessions, qoe);
}

std::vector<SessionSummary> SessionEngine::run(BatchPolicy& policy,
                                               abr::QoeModel& qoe,
                                               std::size_t num_sessions,
                                               util::ThreadPool* pool,
                                               ServeStats* stats) {
  std::vector<Session> sessions = make_sessions(num_sessions);
  policy.begin_serving(manifest_);
  qoe.begin_video(manifest_);

  ServeStats local;
  local.sessions = num_sessions;
  const auto run_start = std::chrono::steady_clock::now();

  std::vector<std::size_t> active;
  std::vector<const abr::AbrObservation*> observations;
  active.reserve(num_sessions);
  observations.reserve(num_sessions);
  while (true) {
    active.clear();
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (!sessions[i].stream.finished()) active.push_back(i);
    }
    if (active.empty()) break;
    ++local.ticks;
    local.decisions += active.size();

    // Serial gather in session order: the whole tick's observations feed
    // one choose_batch call.
    observations.clear();
    for (const std::size_t i : active) {
      Session& s = sessions[i];
      s.tracker.sync_session(s.stream.next_chunk(), s.stream.remaining_chunks(),
                             s.stream.buffer_s());
      observations.push_back(&s.tracker.current());
    }
    const auto decide_start = std::chrono::steady_clock::now();
    const std::vector<std::size_t> qualities = policy.choose_batch(observations);
    const double batch_s = seconds_since(decide_start);
    if (qualities.size() != active.size()) {
      throw std::logic_error{"SessionEngine: batch policy returned " +
                             std::to_string(qualities.size()) +
                             " decisions for " + std::to_string(active.size()) +
                             " observations"};
    }
    local.decision_latency_s.insert(
        local.decision_latency_s.end(), active.size(),
        batch_s / static_cast<double>(active.size()));

    const auto download = [&](std::size_t k) {
      apply_download(sessions[active[k]], qualities[k]);
    };
    if (pool != nullptr) {
      pool->parallel_for(active.size(), download);
    } else {
      for (std::size_t k = 0; k < active.size(); ++k) download(k);
    }
  }

  local.elapsed_s = seconds_since(run_start);
  if (stats != nullptr) *stats = std::move(local);
  return summarize(sessions, qoe);
}

void save_session_summaries(std::span<const SessionSummary> summaries,
                            const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error{"save_session_summaries: cannot open " + path};
  }
  std::fprintf(f,
               "session,trace,chunks,qoe,qoe_lin,rebuffer_s,"
               "mean_bitrate_mbps,quality_switches\n");
  for (const SessionSummary& s : summaries) {
    // %.17g round-trips doubles exactly: bit-equal summaries <=> byte-equal
    // files, which is what the cross-thread-count CI identity check compares.
    std::fprintf(f, "%zu,%zu,%zu,%.17g,%.17g,%.17g,%.17g,%zu\n", s.session,
                 s.trace, s.chunks, s.qoe, s.qoe_lin, s.rebuffer_s,
                 s.mean_bitrate_mbps, s.quality_switches);
  }
  std::fclose(f);
}

}  // namespace netadv::serve
