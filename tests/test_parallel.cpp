// Determinism gates for the parallel execution layer: the same seed must
// produce bit-identical results at thread counts 1, 2, and 8 — replayed QoE
// vectors, CC replay metrics, VecEnv trajectories, trained PPO/A2C
// parameters through the shadow-buffer gradient path, concurrently trained
// adversaries, and batch-recorded adversarial corpora. Also covers
// ThreadPool semantics (coverage, ordering, exception propagation) and the
// batched gemm forward path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "abr/bb.hpp"
#include "abr/mpc.hpp"
#include "abr/runner.hpp"
#include "cc/cubic.hpp"
#include "core/recorder.hpp"
#include "core/trainer.hpp"
#include "rl/a2c.hpp"
#include "rl/mlp.hpp"
#include "rl/ppo.hpp"
#include "rl/toy_envs.hpp"
#include "rl/vec_env.hpp"
#include "trace/generators.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netadv;

const std::size_t kThreadCounts[] = {1, 2, 8};

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MapReturnsResultsInIndexOrder) {
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    const auto out =
        pool.parallel_map(100, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
  }
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  util::ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error{"boom"};
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exceptional batch.
  const auto out = pool.parallel_map(8, [](std::size_t i) { return i; });
  EXPECT_EQ(out.size(), 8u);
}

TEST(ThreadPool, ReentrantParallelForRunsInline) {
  util::ThreadPool pool{4};
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ThreadSafeLoggingSmoke) {
  // No assertion beyond "does not crash/TSan-trip": many threads logging.
  util::ThreadPool pool{8};
  pool.parallel_for(64, [](std::size_t i) {
    util::log_debug("parallel log line %zu", i);
  });
}

TEST(RngForkStreams, IndependentOfConsumptionOrder) {
  util::Rng a{42};
  util::Rng b{42};
  auto streams_a = a.fork_streams(4);
  auto streams_b = b.fork_streams(4);
  // Consume in different orders; each stream still yields the same values.
  std::vector<std::uint64_t> first_a(4), first_b(4);
  for (std::size_t i = 0; i < 4; ++i) first_a[i] = streams_a[i]();
  for (std::size_t i = 4; i-- > 0;) first_b[i] = streams_b[i]();
  EXPECT_EQ(first_a, first_b);
}

TEST(BatchedForward, MatchesPerSampleForwardBitExactly) {
  util::Rng rng{7};
  rl::Mlp net{{11, 32, 16, 5}, rl::Activation::kTanh, 0.01, rng};
  std::vector<rl::Vec> inputs;
  for (std::size_t n = 0; n < 17; ++n) {
    rl::Vec x(11);
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    inputs.push_back(std::move(x));
  }
  const auto batched = net.forward_batch(inputs);
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t n = 0; n < inputs.size(); ++n) {
    const rl::Vec& single = net.forward(inputs[n]);
    ASSERT_EQ(batched[n].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[n][j], single[j]);  // bit-identical, not just close
    }
  }
}

std::vector<double> replay_qoe_at(std::size_t threads,
                                  const abr::VideoManifest& manifest,
                                  const std::vector<trace::Trace>& traces) {
  util::ThreadPool pool{threads};
  return abr::qoe_per_trace(
      []() -> std::unique_ptr<abr::AbrProtocol> {
        return std::make_unique<abr::RobustMpc>();
      },
      manifest, traces, {}, &pool);
}

TEST(ParallelReplay, AbrQoeIdenticalAcrossThreadCounts) {
  const abr::VideoManifest manifest;
  trace::UniformRandomGenerator gen{{}};
  util::Rng rng{2024};
  const auto traces = gen.generate_many(24, rng);

  // Sequential single-instance replay is the reference result.
  abr::RobustMpc mpc;
  const auto reference = abr::qoe_per_trace(mpc, manifest, traces);

  for (std::size_t threads : kThreadCounts) {
    const auto parallel = replay_qoe_at(threads, manifest, traces);
    ASSERT_EQ(parallel.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel[i], reference[i])
          << "trace " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelReplay, CcReplayIdenticalAcrossThreadCounts) {
  trace::UniformRandomGenerator gen{{}};
  util::Rng rng{99};
  std::vector<trace::Trace> traces;
  for (const auto& full : gen.generate_many(8, rng)) {
    // Keep only a few segments per trace so the packet-level sim stays cheap.
    const std::size_t keep = std::min<std::size_t>(6, full.size());
    std::vector<trace::Segment> head(full.segments().begin(),
                                     full.segments().begin() +
                                         static_cast<std::ptrdiff_t>(keep));
    traces.emplace_back(std::move(head));
  }

  auto replay_at = [&](std::size_t threads) {
    util::ThreadPool pool{threads};
    return core::replay_cc_traces(
        []() -> std::unique_ptr<cc::CcSender> {
          return std::make_unique<cc::CubicSender>();
        },
        traces, {}, 5, &pool);
  };

  const auto reference = replay_at(1);
  for (std::size_t threads : kThreadCounts) {
    const auto results = replay_at(threads);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[i].mean_utilization, reference[i].mean_utilization);
      EXPECT_EQ(results[i].mean_throughput_mbps,
                reference[i].mean_throughput_mbps);
      EXPECT_EQ(results[i].throughput_mbps, reference[i].throughput_mbps);
    }
  }
}

rl::VecEnv::StepBatch roll_vecenv_at(std::size_t threads) {
  util::ThreadPool pool{threads};
  rl::VecEnv venv{[](std::size_t) { return std::make_unique<rl::ContextualBanditEnv>(3, 4, 5); },
                  /*n=*/6, /*seed=*/17, &pool};
  venv.reset_all();
  rl::VecEnv::StepBatch last;
  for (int step = 0; step < 20; ++step) {
    std::vector<rl::Vec> actions(venv.size(),
                                 rl::Vec{static_cast<double>(step % 4)});
    last = venv.step(actions);
  }
  return last;
}

TEST(VecEnv, TrajectoriesIdenticalAcrossThreadCounts) {
  const auto reference = roll_vecenv_at(1);
  for (std::size_t threads : kThreadCounts) {
    const auto batch = roll_vecenv_at(threads);
    EXPECT_EQ(batch.observations, reference.observations);
    EXPECT_EQ(batch.rewards, reference.rewards);
    EXPECT_EQ(batch.dones, reference.dones);
  }
}

rl::PpoAgent train_vec_ppo_at(std::size_t threads) {
  util::set_log_level(util::LogLevel::kWarn);
  util::ThreadPool pool{threads};
  rl::VecEnv venv{[](std::size_t) { return std::make_unique<rl::ContextualBanditEnv>(2, 3, 8); },
                  /*n=*/4, /*seed=*/23, &pool};
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {16, 8};
  cfg.n_steps = 128;
  cfg.minibatch_size = 32;
  cfg.epochs = 3;
  rl::PpoAgent agent{venv.observation_size(), venv.action_spec(), cfg, 31};
  agent.train(venv, 512);
  return agent;
}

TEST(VecPpo, TrainedParametersIdenticalAcrossThreadCounts) {
  const rl::PpoAgent reference = train_vec_ppo_at(1);
  for (std::size_t threads : kThreadCounts) {
    rl::PpoAgent agent = train_vec_ppo_at(threads);
    const auto ref_actor = reference.actor().params();
    const auto actor = agent.actor().params();
    ASSERT_EQ(actor.size(), ref_actor.size());
    for (std::size_t i = 0; i < actor.size(); ++i) {
      ASSERT_EQ(actor[i], ref_actor[i])
          << "actor param " << i << " differs at " << threads << " threads";
    }
    const auto ref_critic = reference.critic().params();
    const auto critic = agent.critic().params();
    ASSERT_EQ(critic.size(), ref_critic.size());
    for (std::size_t i = 0; i < critic.size(); ++i) {
      ASSERT_EQ(critic[i], ref_critic[i])
          << "critic param " << i << " differs at " << threads << " threads";
    }
    EXPECT_EQ(agent.obs_normalizer().mean(), reference.obs_normalizer().mean());
    EXPECT_EQ(agent.obs_normalizer().count(),
              reference.obs_normalizer().count());
  }
}

/// Every parameter of `agent` must equal `reference` bit for bit.
void expect_identical_agents(const rl::PpoAgent& agent,
                             const rl::PpoAgent& reference,
                             std::size_t threads) {
  const auto ref_actor = reference.actor().params();
  const auto actor = agent.actor().params();
  ASSERT_EQ(actor.size(), ref_actor.size());
  for (std::size_t i = 0; i < actor.size(); ++i) {
    ASSERT_EQ(actor[i], ref_actor[i])
        << "actor param " << i << " differs at " << threads << " threads";
  }
  const auto ref_critic = reference.critic().params();
  const auto critic = agent.critic().params();
  ASSERT_EQ(critic.size(), ref_critic.size());
  for (std::size_t i = 0; i < critic.size(); ++i) {
    ASSERT_EQ(critic[i], ref_critic[i])
        << "critic param " << i << " differs at " << threads << " threads";
  }
  ASSERT_EQ(agent.log_std(), reference.log_std())
      << "log_std differs at " << threads << " threads";
}

rl::PpoAgent train_ppo_shadow_at(util::ThreadPool* pool, bool continuous,
                                 bool activation_cache = true) {
  util::set_log_level(util::LogLevel::kWarn);
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {16, 8};
  cfg.n_steps = 128;
  cfg.minibatch_size = 32;
  cfg.epochs = 3;
  cfg.ent_coef = 0.01;
  std::unique_ptr<rl::Env> env;
  if (continuous) {
    env = std::make_unique<rl::TargetChaseEnv>(16);
  } else {
    env = std::make_unique<rl::ContextualBanditEnv>(2, 3, 8);
  }
  rl::PpoAgent agent{env->observation_size(), env->action_spec(), cfg, 31};
  agent.set_thread_pool(pool);
  agent.set_activation_cache(activation_cache);
  agent.train(*env, 384);
  return agent;
}

TEST(ParallelGradients, PpoDiscreteShadowPathMatchesSequential) {
  const rl::PpoAgent reference =
      train_ppo_shadow_at(nullptr, /*continuous=*/false);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    const rl::PpoAgent agent = train_ppo_shadow_at(&pool, false);
    expect_identical_agents(agent, reference, threads);
  }
}

TEST(ParallelGradients, PpoContinuousShadowPathMatchesSequential) {
  // Continuous head also exercises the log_std shadow slots.
  const rl::PpoAgent reference =
      train_ppo_shadow_at(nullptr, /*continuous=*/true);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    const rl::PpoAgent agent = train_ppo_shadow_at(&pool, true);
    expect_identical_agents(agent, reference, threads);
  }
}

TEST(ParallelGradients, ActivationCacheIdenticalAcrossThreadCountsAndToggle) {
  // The rollout activation cache must be orthogonal to the shadow-gradient
  // thread count: cached workspaces are read-only during the concurrent
  // per-sample gradient phase, and reuse is bit-identical, so all four
  // combinations of {cache on/off} x {sequential/pooled} train the same
  // parameters.
  const rl::PpoAgent reference = train_ppo_shadow_at(
      nullptr, /*continuous=*/false, /*activation_cache=*/true);
  for (std::size_t threads : kThreadCounts) {
    for (bool cache : {true, false}) {
      util::ThreadPool pool{threads};
      const rl::PpoAgent agent =
          train_ppo_shadow_at(&pool, /*continuous=*/false, cache);
      expect_identical_agents(agent, reference, threads);
    }
  }
}

std::vector<double> train_a2c_shadow_at(util::ThreadPool* pool) {
  util::set_log_level(util::LogLevel::kWarn);
  rl::A2cConfig cfg;
  cfg.hidden_sizes = {12};
  cfg.n_steps = 32;
  rl::ContextualBanditEnv env{2, 3, 8};
  rl::A2cAgent agent{env.observation_size(), env.action_spec(), cfg, 19};
  agent.set_thread_pool(pool);
  agent.train(env, 256);
  // A2cAgent has no checkpoint accessors; probe the policy through actions
  // and values on a fixed observation grid instead.
  std::vector<double> signature;
  for (std::size_t c = 0; c < 2; ++c) {
    rl::Vec obs(2, 0.0);
    obs[c] = 1.0;
    signature.push_back(agent.act_deterministic(obs)[0]);
    signature.push_back(agent.value_estimate(obs));
  }
  return signature;
}

TEST(ParallelGradients, A2cShadowPathMatchesSequential) {
  const std::vector<double> reference = train_a2c_shadow_at(nullptr);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    EXPECT_EQ(train_a2c_shadow_at(&pool), reference)
        << "A2C policy differs at " << threads << " threads";
  }
}

std::vector<rl::PpoAgent> train_adversary_pair_at(util::ThreadPool* pool) {
  util::set_log_level(util::LogLevel::kWarn);
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  const abr::VideoManifest m{mp};
  abr::BufferBased bb0;
  abr::BufferBased bb1;
  core::AbrAdversaryEnv env0{m, bb0};
  core::AbrAdversaryEnv env1{m, bb1};
  // One PPO update each (n_steps = 2048 in the adversary config).
  return core::train_abr_adversaries(
      {{.env = &env0, .steps = 1, .seed = 7},
       {.env = &env1, .steps = 1, .seed = 13}},
      pool);
}

TEST(ParallelAdversaries, ConcurrentTrainingMatchesSequentialTraining) {
  const std::vector<rl::PpoAgent> reference = train_adversary_pair_at(nullptr);
  ASSERT_EQ(reference.size(), 2u);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    const std::vector<rl::PpoAgent> agents = train_adversary_pair_at(&pool);
    ASSERT_EQ(agents.size(), 2u);
    for (std::size_t j = 0; j < agents.size(); ++j) {
      expect_identical_agents(agents[j], reference[j], threads);
    }
  }
}

std::vector<trace::Trace> record_abr_batch_at(util::ThreadPool* pool) {
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  const abr::VideoManifest m{mp};
  abr::BufferBased bb;
  core::AbrAdversaryEnv probe{m, bb};
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {8};
  // Untrained agent: recording only needs a policy, not a good one.
  rl::PpoAgent agent{probe.observation_size(), probe.action_spec(), cfg, 77};
  return core::record_abr_traces(
      agent, m,
      []() -> std::unique_ptr<abr::AbrProtocol> {
        return std::make_unique<abr::BufferBased>();
      },
      core::AbrAdversaryEnv::Params{}, /*count=*/6, /*seed=*/123,
      /*deterministic=*/false, pool);
}

TEST(ParallelRecorders, AbrTraceCorpusIdenticalAcrossThreadCounts) {
  const auto reference = record_abr_batch_at(nullptr);
  ASSERT_EQ(reference.size(), 6u);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    const auto traces = record_abr_batch_at(&pool);
    ASSERT_EQ(traces.size(), reference.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      ASSERT_EQ(traces[i].size(), reference[i].size());
      for (std::size_t s = 0; s < traces[i].size(); ++s) {
        EXPECT_EQ(traces[i].segments()[s].bandwidth_mbps,
                  reference[i].segments()[s].bandwidth_mbps)
            << "trace " << i << " segment " << s << " at " << threads
            << " threads";
      }
    }
  }
}

std::vector<core::CcEpisodeRecord> record_cc_batch_at(util::ThreadPool* pool) {
  core::CcAdversaryEnv::Params params;
  params.episode_duration_s = 0.6;  // 20 epochs keeps the packet sim cheap
  core::CcAdversaryEnv probe{params};
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {4};
  rl::PpoAgent agent{probe.observation_size(), probe.action_spec(), cfg, 55};
  return core::record_cc_episodes(agent, params, /*make_sender=*/nullptr,
                                  /*count=*/4, /*seed=*/321,
                                  /*deterministic=*/false, pool);
}

TEST(ParallelRecorders, CcEpisodeBatchIdenticalAcrossThreadCounts) {
  const auto reference = record_cc_batch_at(nullptr);
  ASSERT_EQ(reference.size(), 4u);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool pool{threads};
    const auto records = record_cc_batch_at(&pool);
    ASSERT_EQ(records.size(), reference.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].bandwidth_mbps, reference[i].bandwidth_mbps);
      EXPECT_EQ(records[i].raw_bandwidth, reference[i].raw_bandwidth);
      EXPECT_EQ(records[i].throughput_mbps, reference[i].throughput_mbps);
      EXPECT_EQ(records[i].utilization, reference[i].utilization);
      EXPECT_EQ(records[i].bbr_mode, reference[i].bbr_mode);
      EXPECT_EQ(records[i].mean_utilization, reference[i].mean_utilization)
          << "episode " << i << " at " << threads << " threads";
    }
  }
}

TEST(VecPpo, LearnsContextualBandit) {
  util::ThreadPool pool{4};
  rl::VecEnv venv{[](std::size_t) { return std::make_unique<rl::ContextualBanditEnv>(2, 2, 16); },
                  /*n=*/4, /*seed=*/3, &pool};
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {16};
  cfg.n_steps = 256;
  cfg.minibatch_size = 64;
  cfg.epochs = 4;
  cfg.ent_coef = 0.01;
  util::set_log_level(util::LogLevel::kWarn);
  rl::PpoAgent agent{venv.observation_size(), venv.action_spec(), cfg, 9};
  agent.train(venv, 12000);

  // The greedy policy should pick the rewarded arm in both contexts.
  rl::ContextualBanditEnv probe{2, 2, 16};
  util::Rng rng{1};
  std::size_t correct = 0;
  const std::size_t trials = 32;
  for (std::size_t k = 0; k < trials; ++k) {
    const rl::Vec obs = probe.reset(rng);
    std::size_t context = 0;
    for (std::size_t i = 0; i < obs.size(); ++i) {
      if (obs[i] > 0.5) context = i;
    }
    const rl::Vec action = agent.act_deterministic(obs);
    if (static_cast<std::size_t>(action[0]) == probe.correct_arm(context)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, trials - trials / 8);
}

}  // namespace
