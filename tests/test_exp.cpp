// Unit tests for netadv::exp — the campaign spec parser, grid expansion,
// provenance hashing, the DAG scheduler's determinism/resume contracts, and
// the spec/hash utilities they build on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/jobs.hpp"
#include "exp/manifest.hpp"
#include "exp/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/hash.hpp"
#include "util/spec.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netadv;

std::string temp_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// ---------------------------------------------------------------- spec

TEST(Spec, ParsesSectionsEntriesAndComments) {
  const util::SpecFile spec = util::parse_spec_text(
      "# a comment\n"
      "[campaign]\n"
      "name = demo\n"
      "\n"
      "[job first]\n"
      "kind = gen-traces\n"
      "count = 12\n",
      "inline");
  ASSERT_EQ(spec.sections.size(), 2u);
  EXPECT_EQ(spec.sections[0].name, "campaign");
  EXPECT_TRUE(spec.sections[0].label.empty());
  EXPECT_EQ(spec.sections[0].value_or("name", ""), "demo");
  EXPECT_EQ(spec.sections[1].name, "job");
  EXPECT_EQ(spec.sections[1].label, "first");
  EXPECT_EQ(spec.sections[1].value_or("count", ""), "12");
  EXPECT_FALSE(spec.sections[1].has("missing"));
}

TEST(Spec, LastValueWinsOnRepeatedKey) {
  const util::SpecFile spec =
      util::parse_spec_text("[s]\nk = a\nk = b\n", "inline");
  EXPECT_EQ(spec.sections[0].value_or("k", ""), "b");
}

TEST(Spec, RejectsEntryBeforeAnySection) {
  EXPECT_THROW(util::parse_spec_text("k = v\n", "inline"), std::runtime_error);
}

TEST(Spec, RejectsMalformedLine) {
  EXPECT_THROW(util::parse_spec_text("[s]\nnot a kv line\n", "inline"),
               std::runtime_error);
}

TEST(Spec, SplitListTrimsAndDropsEmpties) {
  const std::vector<std::string> items = util::split_list(" a, b ,, c ");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[1], "b");
  EXPECT_EQ(items[2], "c");
}

// ---------------------------------------------------------------- hash

TEST(Hash, MatchesKnownFnv1aVector) {
  // Standard FNV-1a 64-bit test vector.
  EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Hash, HexIsFixedWidth) {
  EXPECT_EQ(util::hash_hex(0), "0000000000000000");
  EXPECT_EQ(util::hash_hex(0xabcull), "0000000000000abc");
}

TEST(Hash, FileHashTracksContent) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_hash_test.txt")
          .string();
  std::ofstream{path} << "hello";
  const std::uint64_t first = util::fnv1a64_file(path);
  EXPECT_EQ(first, util::fnv1a64("hello"));
  std::ofstream{path} << "other";
  EXPECT_NE(util::fnv1a64_file(path), first);
  EXPECT_THROW(util::fnv1a64_file(path + ".missing"), std::runtime_error);
}

// ---------------------------------------------------------------- campaign

exp::Campaign campaign_from(const std::string& text) {
  return exp::parse_campaign(util::parse_spec_text(text, "inline"));
}

TEST(Campaign, ParsesJobsAndDependencies) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = demo\nseed = 5\nout_dir = /tmp/x\n"
      "[job a]\nkind = gen-traces\n"
      "[job b]\nkind = replay\nafter = a\ntraces = a\n");
  EXPECT_EQ(c.name, "demo");
  EXPECT_EQ(c.seed, 5u);
  EXPECT_EQ(c.out_dir, "/tmp/x");
  ASSERT_EQ(c.jobs.size(), 2u);
  ASSERT_EQ(c.jobs[1].after.size(), 1u);
  EXPECT_EQ(c.jobs[1].after[0], "a");
}

TEST(Campaign, RejectsMissingHeaderKindUnknownDepAndDuplicates) {
  EXPECT_THROW(campaign_from("[job a]\nkind = replay\n"), std::runtime_error);
  EXPECT_THROW(campaign_from("[campaign]\nname = x\n[job a]\ncount = 1\n"),
               std::runtime_error);
  EXPECT_THROW(campaign_from("[campaign]\nname = x\n"
                             "[job a]\nkind = replay\nafter = ghost\n"),
               std::runtime_error);
  EXPECT_THROW(campaign_from("[campaign]\nname = x\n"
                             "[job a]\nkind = replay\n"
                             "[job a]\nkind = replay\n"),
               std::runtime_error);
}

TEST(Campaign, RejectsCycles) {
  EXPECT_THROW(campaign_from("[campaign]\nname = x\n"
                             "[job a]\nkind = replay\nafter = b\n"
                             "[job b]\nkind = replay\nafter = a\n"),
               std::runtime_error);
  EXPECT_THROW(campaign_from("[campaign]\nname = x\n"
                             "[job a]\nkind = replay\nafter = a\n"),
               std::runtime_error);
}

TEST(Campaign, GridExpandsPpoPairsAndCemSingles) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job sweep]\nkind = grid\nprotocols = bb, mpc\n"
      "adversaries = ppo, cem\nseeds = 3\ncount = 9\n");
  // 2 protocols x (ppo -> 2 jobs, cem -> 1 job) x 1 seed.
  ASSERT_EQ(c.jobs.size(), 6u);
  const std::size_t train = c.job_index("sweep-bb-ppo-s3-train");
  const std::size_t record = c.job_index("sweep-bb-ppo-s3");
  const std::size_t cem = c.job_index("sweep-mpc-cem-s3");
  ASSERT_NE(train, static_cast<std::size_t>(-1));
  ASSERT_NE(record, static_cast<std::size_t>(-1));
  ASSERT_NE(cem, static_cast<std::size_t>(-1));
  EXPECT_EQ(c.jobs[train].kind, "train-adversary");
  EXPECT_EQ(c.jobs[train].seed, 3u);
  EXPECT_EQ(c.jobs[record].value_or("from", ""), "sweep-bb-ppo-s3-train");
  ASSERT_EQ(c.jobs[record].after.size(), 1u);
  EXPECT_EQ(c.jobs[record].after[0], "sweep-bb-ppo-s3-train");
  EXPECT_EQ(c.jobs[cem].value_or("adversary", ""), "cem");
  // Shared params forward to every point.
  EXPECT_EQ(c.jobs[record].value_or("count", ""), "9");
}

TEST(Campaign, GridIdResolvesAsDependencyGroup) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job sweep]\nkind = grid\nprotocols = bb\nadversaries = cem\n"
      "[job summarize]\nkind = replay\nafter = sweep\ntraces = sweep-bb-cem\n");
  const std::size_t s = c.job_index("summarize");
  ASSERT_EQ(c.jobs[s].after.size(), 1u);
  EXPECT_EQ(c.jobs[s].after[0], "sweep-bb-cem");
}

TEST(Campaign, GridNeedsExactlyOneSweepAxis) {
  EXPECT_THROW(campaign_from("[campaign]\nname = x\n"
                             "[job g]\nkind = grid\nprotocols = bb\n"),
               std::runtime_error);
  EXPECT_THROW(
      campaign_from("[campaign]\nname = x\n"
                    "[job g]\nkind = grid\nprotocols = bb\n"
                    "adversaries = cem\ntrace_sets = t\n"),
      std::runtime_error);
}

// Grids are validated against the live core:: registries at load time, so a
// typo fails with the real name list before any job runs.
TEST(Campaign, GridValidatesNamesAgainstTheLiveRegistries) {
  try {
    campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                  "[job g]\nkind = grid\nprotocols = bb, warp\n"
                  "adversaries = ppo\n");
    FAIL() << "unknown protocol must fail at load time";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown protocol 'warp'"), std::string::npos) << what;
    EXPECT_NE(what.find("pensieve"), std::string::npos)
        << "error should enumerate the registry: " << what;
  }
  // domain = cc resolves names against the sender registry instead...
  EXPECT_THROW(campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                             "[job g]\nkind = grid\ndomain = cc\n"
                             "protocols = bb\nadversaries = ppo\n"),
               std::runtime_error);
  // ...and rejects the ABR-only CEM adversary up front.
  try {
    campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                  "[job g]\nkind = grid\ndomain = cc\n"
                  "protocols = bbr\nadversaries = cem\n");
    FAIL() << "cem in a cc grid must fail at load time";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("abr-only"), std::string::npos)
        << e.what();
  }
}

TEST(Campaign, GridExpandsCcSweepsAndForwardsDomain) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job sweep]\nkind = grid\ndomain = cc\n"
      "protocols = bbr, vivace\nadversaries = ppo\nseeds = 1\n");
  // 2 senders x (ppo -> train + record) x 1 seed.
  ASSERT_EQ(c.jobs.size(), 4u);
  const std::size_t train = c.job_index("sweep-bbr-ppo-s1-train");
  const std::size_t record = c.job_index("sweep-bbr-ppo-s1");
  ASSERT_NE(train, static_cast<std::size_t>(-1));
  ASSERT_NE(record, static_cast<std::size_t>(-1));
  // `domain` forwards to every expanded point so the job executors pick the
  // CC stack.
  EXPECT_EQ(c.jobs[train].value_or("domain", ""), "cc");
  EXPECT_EQ(c.jobs[record].value_or("domain", ""), "cc");
}

TEST(Campaign, GridExpandsQoeServingSweeps) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job corpus]\nkind = gen-traces\ngenerator = fcc\ncount = 4\n"
      "[job sweep]\nkind = grid\nprotocols = bb, mpc-dp\n"
      "qoe_models = lin, ssim\ntrace_sets = corpus\nseeds = 1, 2\n"
      "sessions = 32\n");
  // corpus + 2 protocols x 2 models x 1 set x 2 seeds.
  ASSERT_EQ(c.jobs.size(), 9u);
  const std::size_t serve = c.job_index("sweep-mpc-dp-ssim-on-corpus-s2");
  ASSERT_NE(serve, static_cast<std::size_t>(-1));
  EXPECT_EQ(c.jobs[serve].kind, "serve");
  EXPECT_EQ(c.jobs[serve].value_or("protocol", ""), "mpc-dp");
  EXPECT_EQ(c.jobs[serve].value_or("qoe", ""), "ssim");
  EXPECT_EQ(c.jobs[serve].value_or("traces", ""), "corpus");
  EXPECT_EQ(c.jobs[serve].seed, 2u);
  // Shared params forward to every point.
  EXPECT_EQ(c.jobs[serve].value_or("sessions", ""), "32");
  ASSERT_EQ(c.jobs[serve].after.size(), 1u);
  EXPECT_EQ(c.jobs[serve].after[0], "corpus");
}

TEST(Campaign, GridValidatesQoeModelsAtLoadTime) {
  // Unknown model names fail with the registry's enumerating error...
  try {
    campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                  "[job t]\nkind = gen-traces\ngenerator = fcc\n"
                  "[job g]\nkind = grid\nprotocols = bb\n"
                  "qoe_models = vmaf\ntrace_sets = t\n");
    FAIL() << "unknown qoe model must fail at load time";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown qoe model 'vmaf'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("lin | log | ssim"), std::string::npos) << what;
  }
  // ...a serving sweep needs traces to serve...
  EXPECT_THROW(
      campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                    "[job g]\nkind = grid\nprotocols = bb\n"
                    "qoe_models = lin\n"),
      std::runtime_error);
  // ...and flow mixes are cc-side: no QoE model applies.
  EXPECT_THROW(
      campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                    "[job t]\nkind = gen-traces\ngenerator = fcc\n"
                    "[job g]\nkind = grid\nflow_mixes = bbr+cubic\n"
                    "qoe_models = lin\ntrace_sets = t\ndomain = cc\n"),
      std::runtime_error);
}

TEST(Campaign, SeedsAreDeterministicAndOverridable) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nseed = 9\nout_dir = /tmp/x\n"
      "[job a]\nkind = replay\n"
      "[job b]\nkind = replay\nseed = 1234\n");
  const std::vector<std::uint64_t> first = exp::resolve_job_seeds(c);
  const std::vector<std::uint64_t> second = exp::resolve_job_seeds(c);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first[1], 1234u);
  EXPECT_NE(first[0], first[1]);
}

TEST(Campaign, ParamsHashIgnoresSpellingOrderButNotValues) {
  const exp::Campaign a = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job j]\nkind = replay\nalpha = 1\nbeta = 2\n");
  const exp::Campaign b = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job j]\nkind = replay\nbeta = 2\nalpha = 1\n");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job j]\nkind = replay\nbeta = 2\nalpha = 9\n");
  EXPECT_EQ(exp::job_params_hash(a, a.jobs[0], 7),
            exp::job_params_hash(b, b.jobs[0], 7));
  EXPECT_NE(exp::job_params_hash(a, a.jobs[0], 7),
            exp::job_params_hash(c, c.jobs[0], 7));
  EXPECT_NE(exp::job_params_hash(a, a.jobs[0], 7),
            exp::job_params_hash(a, a.jobs[0], 8));
}

TEST(Campaign, WavesFollowDependencies) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job a]\nkind = replay\n"
      "[job b]\nkind = replay\n"
      "[job c]\nkind = replay\nafter = a, b\n");
  const auto waves = exp::topological_waves(c);
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0].size(), 2u);
  ASSERT_EQ(waves[1].size(), 1u);
  EXPECT_EQ(c.jobs[waves[1][0]].id, "c");
}

// ---------------------------------------------------------------- manifest

TEST(Manifest, RoundTripsAndSkipsTornLines) {
  const std::string dir = temp_dir("netadv_manifest_test");
  std::filesystem::create_directories(dir);
  const std::string path = exp::manifest_path(dir);
  {
    exp::ManifestWriter writer{path};
    exp::ManifestEntry entry;
    entry.campaign = "c";
    entry.job = "j";
    entry.kind = "replay";
    entry.status = "completed";
    entry.params_hash = "aaaa";
    entry.inputs_hash = "bbbb";
    entry.seconds = 1.5;
    entry.threads = 4;
    entry.scale = 0.01;
    entry.artifacts = {dir + "/x.csv", dir + "/y.csv"};
    writer.append(entry);
  }
  // Simulate a kill mid-append: a torn trailing line.
  {
    std::ofstream out{path, std::ios::app};
    out << "c,j2,replay,comp";
  }
  const std::vector<exp::ManifestEntry> entries = exp::read_manifest(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].job, "j");
  EXPECT_EQ(entries[0].status, "completed");
  EXPECT_EQ(entries[0].params_hash, "aaaa");
  EXPECT_EQ(entries[0].threads, 4u);
  ASSERT_EQ(entries[0].artifacts.size(), 2u);
  EXPECT_EQ(entries[0].artifacts[1], dir + "/y.csv");
}

TEST(Manifest, MissingFileReadsEmpty) {
  EXPECT_TRUE(exp::read_manifest("/tmp/netadv_no_such_manifest.csv").empty());
}

// ---------------------------------------------------------------- scheduler

// A fast stub registry: `emit` writes its seed to its artifact; `concat`
// concatenates its dependencies' artifacts; `boom` always throws.
exp::JobRegistry stub_registry() {
  exp::JobRegistry registry;
  registry.add("emit", [](const exp::JobContext& ctx) {
    exp::JobResult r;
    r.artifacts.push_back(ctx.artifact("_out.txt"));
    std::ofstream{r.artifacts.back()} << ctx.job->id << ":" << ctx.seed;
    return r;
  });
  registry.add("concat", [](const exp::JobContext& ctx) {
    exp::JobResult r;
    r.artifacts.push_back(ctx.artifact("_out.txt"));
    std::ofstream out{r.artifacts.back()};
    for (const auto& [dep, artifacts] : ctx.inputs) {
      for (const auto& path : artifacts) out << read_file(path) << "\n";
    }
    return r;
  });
  registry.add("boom", [](const exp::JobContext&) -> exp::JobResult {
    throw std::runtime_error{"kaboom"};
  });
  return registry;
}

const char* kDiamondSpec =
    "[campaign]\nname = diamond\nseed = 11\nout_dir = %s\n"
    "[job left]\nkind = emit\n"
    "[job right]\nkind = emit\n"
    "[job join]\nkind = concat\nafter = left, right\n";

exp::Campaign diamond(const std::string& out_dir) {
  char text[512];
  std::snprintf(text, sizeof text, kDiamondSpec, out_dir.c_str());
  return campaign_from(text);
}

TEST(Scheduler, RunsDagAndRecordsManifest) {
  const std::string dir = temp_dir("netadv_sched_basic");
  const exp::CampaignReport report =
      exp::run_campaign(diamond(dir), stub_registry());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.outcome_of("join").status, "completed");
  const std::string joined = read_file(dir + "/join_out.txt");
  EXPECT_NE(joined.find("left:"), std::string::npos);
  EXPECT_NE(joined.find("right:"), std::string::npos);
  const auto entries = exp::read_manifest(exp::manifest_path(dir));
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& entry : entries) EXPECT_EQ(entry.status, "completed");
}

TEST(Scheduler, ArtifactsAreIdenticalAcrossThreadCounts) {
  const std::string seq_dir = temp_dir("netadv_sched_seq");
  const std::string par_dir = temp_dir("netadv_sched_par");
  exp::run_campaign(diamond(seq_dir), stub_registry());
  util::ThreadPool pool{4};
  exp::SchedulerOptions options;
  options.pool = &pool;
  exp::run_campaign(diamond(par_dir), stub_registry(), options);
  for (const char* name : {"left_out.txt", "right_out.txt", "join_out.txt"}) {
    EXPECT_EQ(read_file(seq_dir + "/" + name), read_file(par_dir + "/" + name))
        << name;
  }
}

TEST(Scheduler, FailureBlocksDependentsAndSurvivorsComplete) {
  const std::string dir = temp_dir("netadv_sched_fail");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = f\nout_dir = " + dir + "\n"
      "[job ok]\nkind = emit\n"
      "[job bad]\nkind = boom\n"
      "[job downstream]\nkind = concat\nafter = bad\n");
  const exp::CampaignReport report = exp::run_campaign(c, stub_registry());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.blocked, 1u);
  EXPECT_EQ(report.outcome_of("bad").status, "failed");
  EXPECT_NE(report.outcome_of("bad").error.find("kaboom"), std::string::npos);
  EXPECT_EQ(report.outcome_of("downstream").status, "blocked");
}

TEST(Scheduler, ResumeSkipsCompletedJobs) {
  const std::string dir = temp_dir("netadv_sched_resume");
  exp::run_campaign(diamond(dir), stub_registry());
  exp::SchedulerOptions options;
  options.resume = true;
  const exp::CampaignReport second =
      exp::run_campaign(diamond(dir), stub_registry(), options);
  EXPECT_EQ(second.completed, 0u);
  EXPECT_EQ(second.skipped, 3u);
}

TEST(Scheduler, ResumeRerunsWhenArtifactMissingOrParamsChange) {
  const std::string dir = temp_dir("netadv_sched_invalidate");
  exp::run_campaign(diamond(dir), stub_registry());

  // Deleting an artifact forces that job (and, through the recomputed
  // inputs hash staying equal, only that job) to re-run.
  std::filesystem::remove(dir + "/left_out.txt");
  exp::SchedulerOptions options;
  options.resume = true;
  const exp::CampaignReport after_delete =
      exp::run_campaign(diamond(dir), stub_registry(), options);
  EXPECT_EQ(after_delete.outcome_of("left").status, "completed");
  EXPECT_EQ(after_delete.outcome_of("right").status, "skipped-cached");
  EXPECT_EQ(after_delete.outcome_of("join").status, "skipped-cached");

  // A changed param (here: the campaign seed changes every derived job seed)
  // invalidates everything.
  char text[512];
  std::snprintf(text, sizeof text, kDiamondSpec, dir.c_str());
  std::string reseeded{text};
  const std::size_t pos = reseeded.find("seed = 11");
  reseeded.replace(pos, 9, "seed = 12");
  const exp::CampaignReport after_reseed =
      exp::run_campaign(campaign_from(reseeded), stub_registry(), options);
  EXPECT_EQ(after_reseed.completed, 3u);
  EXPECT_EQ(after_reseed.skipped, 0u);
}

TEST(Scheduler, ResumeRerunsDependentsWhenInputsChange) {
  const std::string dir = temp_dir("netadv_sched_inputs");
  exp::run_campaign(diamond(dir), stub_registry());
  // Tamper with a dependency's artifact: join's inputs hash changes, so it
  // re-runs even though its own params did not move.
  std::ofstream{dir + "/left_out.txt"} << "tampered";
  exp::SchedulerOptions options;
  options.resume = true;
  const exp::CampaignReport report =
      exp::run_campaign(diamond(dir), stub_registry(), options);
  EXPECT_EQ(report.outcome_of("left").status, "skipped-cached");
  EXPECT_EQ(report.outcome_of("join").status, "completed");
  EXPECT_NE(read_file(dir + "/join_out.txt").find("tampered"),
            std::string::npos);
}

TEST(Scheduler, UnknownKindIsACampaignLevelError) {
  const std::string dir = temp_dir("netadv_sched_unknown");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = u\nout_dir = " + dir + "\n"
      "[job a]\nkind = no-such-kind\n");
  EXPECT_THROW(exp::run_campaign(c, stub_registry()), std::runtime_error);
}

TEST(Scheduler, FormatPlanListsWavesAndResumeState) {
  const std::string dir = temp_dir("netadv_sched_plan");
  const std::string plan = exp::format_plan(diamond(dir));
  EXPECT_NE(plan.find("wave 1"), std::string::npos);
  EXPECT_NE(plan.find("wave 2"), std::string::npos);
  EXPECT_NE(plan.find("join"), std::string::npos);
  exp::run_campaign(diamond(dir), stub_registry());
  const std::string resumed = exp::format_plan(diamond(dir), true);
  EXPECT_NE(resumed.find("cached if inputs match"), std::string::npos);
}

// ------------------------------------------------- builtin-job integration

TEST(BuiltinJobs, GenReplayPipelineProducesQoePerTrace) {
  const std::string dir = temp_dir("netadv_builtin_smoke");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = smoke\nseed = 3\nout_dir = " + dir + "\n"
      "[job corpus]\nkind = gen-traces\ngenerator = random\ncount = 3\n"
      "[job replay-bb]\nkind = replay\nafter = corpus\n"
      "traces = corpus\nprotocol = bb\n");
  const exp::CampaignReport report =
      exp::run_campaign(c, exp::builtin_jobs());
  ASSERT_TRUE(report.ok());
  const std::vector<trace::Trace> traces =
      trace::load_trace_set(dir + "/corpus_traces.csv");
  EXPECT_GE(traces.size(), 2u);
  const std::string qoe = read_file(dir + "/replay-bb_qoe.csv");
  EXPECT_NE(qoe.find("trace,qoe"), std::string::npos);
}

/// gen-traces feeding a qoe_models serving grid: the campaign-level route
/// into serve::SessionEngine.
std::string serve_pipeline_spec(const std::string& dir) {
  return "[campaign]\nname = serve-e2e\nseed = 5\nout_dir = " + dir + "\n"
         "[job corpus]\nkind = gen-traces\ngenerator = fcc\ncount = 3\n"
         "[job sweep]\nkind = grid\nprotocols = bb, mpc-dp\n"
         "qoe_models = lin, ssim\ntrace_sets = corpus\nsessions = 6\n";
}

TEST(BuiltinJobs, ServeCampaignRunsEndToEnd) {
  const std::string dir = temp_dir("netadv_builtin_serve");
  const exp::CampaignReport report = exp::run_campaign(
      campaign_from(serve_pipeline_spec(dir)), exp::builtin_jobs());
  ASSERT_TRUE(report.ok());
  for (const char* name :
       {"sweep-bb-lin-on-corpus", "sweep-bb-ssim-on-corpus",
        "sweep-mpc-dp-lin-on-corpus", "sweep-mpc-dp-ssim-on-corpus"}) {
    const std::string csv =
        read_file(dir + "/" + std::string{name} + "_sessions.csv");
    EXPECT_NE(csv.find("session,trace,chunks,qoe,qoe_lin"), std::string::npos)
        << name;
    // Throughput numbers live in the note, never in the artifact.
    EXPECT_NE(report.outcome_of(name).result.note.find("decisions/s"),
              std::string::npos)
        << name;
  }
}

TEST(BuiltinJobs, ServeArtifactsAreIdenticalAcrossThreadCounts) {
  const std::string base = temp_dir("netadv_builtin_serve_t1");
  exp::run_campaign(campaign_from(serve_pipeline_spec(base)),
                    exp::builtin_jobs());
  for (const std::size_t threads : {2u, 8u}) {
    const std::string dir =
        temp_dir("netadv_builtin_serve_t" + std::to_string(threads));
    util::ThreadPool pool{threads};
    exp::SchedulerOptions options;
    options.pool = &pool;
    exp::run_campaign(campaign_from(serve_pipeline_spec(dir)),
                      exp::builtin_jobs(), options);
    for (const char* name :
         {"sweep-bb-lin-on-corpus_sessions.csv",
          "sweep-mpc-dp-ssim-on-corpus_sessions.csv"}) {
      EXPECT_EQ(read_file(base + "/" + name), read_file(dir + "/" + name))
          << name << " differs at " << threads << " threads";
    }
  }
}

TEST(BuiltinJobs, ServeJobFailsWithEnumeratingErrors) {
  // Unknown QoE model: the job fails with the registry's enumerating error
  // before any artifact exists.
  const std::string dir = temp_dir("netadv_builtin_serve_bad");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = bad\nout_dir = " + dir + "\n"
      "[job corpus]\nkind = gen-traces\ngenerator = fcc\ncount = 2\n"
      "[job s]\nkind = serve\nafter = corpus\ntraces = corpus\n"
      "protocol = bb\nqoe = vmaf\nsessions = 4\n");
  const exp::CampaignReport report = exp::run_campaign(c, exp::builtin_jobs());
  EXPECT_FALSE(report.ok());
  const std::string& error = report.outcome_of("s").error;
  EXPECT_NE(error.find("unknown qoe model 'vmaf'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("lin | log | ssim"), std::string::npos) << error;
  EXPECT_FALSE(std::filesystem::exists(dir + "/s_sessions.csv"));

  // No trace source at all: the error names both accepted spellings.
  const std::string dir2 = temp_dir("netadv_builtin_serve_notraces");
  const exp::CampaignReport report2 = exp::run_campaign(
      campaign_from("[campaign]\nname = bad2\nout_dir = " + dir2 + "\n"
                    "[job s]\nkind = serve\nprotocol = bb\nsessions = 4\n"),
      exp::builtin_jobs());
  EXPECT_FALSE(report2.ok());
  EXPECT_NE(report2.outcome_of("s").error.find("trace_file"),
            std::string::npos)
      << report2.outcome_of("s").error;
}

// A bad target name must fail the job before any artifact exists (the
// factory is resolved once, up front — not once per trace mid-CSV), and the
// error must enumerate the live registry, not a hand-maintained list.
TEST(BuiltinJobs, UnknownTargetFailsBeforeAnyArtifactIsWritten) {
  const std::string dir = temp_dir("netadv_builtin_unknown");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = bad\nout_dir = " + dir + "\n"
      "[job rec]\nkind = record-traces\nadversary = cem\nprotocol = warp\n"
      "count = 2\n");
  const exp::CampaignReport report = exp::run_campaign(c, exp::builtin_jobs());
  EXPECT_FALSE(report.ok());
  const std::string& error = report.outcome_of("rec").error;
  EXPECT_NE(error.find("unknown protocol 'warp'"), std::string::npos);
  EXPECT_NE(error.find("bb | bola | mpc | mpc-dp | throughput | pensieve"),
            std::string::npos)
      << error;
  EXPECT_FALSE(std::filesystem::exists(dir + "/rec_traces.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/rec_summary.csv"));
}

// ------------------------------------------------- domain = cc campaigns

/// The full CC pipeline: train a PPO adversary against cubic, record
/// episodes through its checkpoint, replay the recorded link schedules
/// against BBR. `duration = 2` keeps episodes to ~66 epochs.
std::string cc_pipeline_spec(const std::string& dir) {
  return "[campaign]\nname = cc-e2e\nseed = 41\nout_dir = " + dir + "\n"
         "[job train]\nkind = train-adversary\ndomain = cc\n"
         "protocol = cubic\nsteps = 256\nduration = 2\n"
         "[job rec]\nkind = record-traces\nafter = train\nfrom = train\n"
         "domain = cc\nprotocol = cubic\ncount = 2\nduration = 2\n"
         "[job rep]\nkind = replay\nafter = rec\ntraces = rec\n"
         "domain = cc\nprotocol = bbr\n";
}

TEST(BuiltinJobs, CcCampaignRunsEndToEnd) {
  const std::string dir = temp_dir("netadv_builtin_cc");
  const exp::CampaignReport report = exp::run_campaign(
      campaign_from(cc_pipeline_spec(dir)), exp::builtin_jobs());
  ASSERT_TRUE(report.ok());
  const std::vector<trace::Trace> traces =
      trace::load_trace_set(dir + "/rec_traces.csv");
  ASSERT_EQ(traces.size(), 2u);
  // Recorded link schedules are per-epoch (duration / epoch_s segments).
  EXPECT_GE(traces[0].size(), 50u);
  EXPECT_NE(read_file(dir + "/rec_summary.csv").find("trace,mean_utilization"),
            std::string::npos);
  EXPECT_NE(read_file(dir + "/rep_replay.csv")
                .find("trace,utilization,throughput_mbps"),
            std::string::npos);
}

// The determinism contract extends to the CC job kinds: every artifact in
// the pipeline is bit-identical at NETADV_THREADS in {1, 2, 8}.
TEST(BuiltinJobs, CcCampaignArtifactsAreIdenticalAcrossThreadCounts) {
  const std::string base = temp_dir("netadv_builtin_cc_t1");
  exp::run_campaign(campaign_from(cc_pipeline_spec(base)),
                    exp::builtin_jobs());
  for (const std::size_t threads : {2u, 8u}) {
    const std::string dir =
        temp_dir("netadv_builtin_cc_t" + std::to_string(threads));
    util::ThreadPool pool{threads};
    exp::SchedulerOptions options;
    options.pool = &pool;
    exp::run_campaign(campaign_from(cc_pipeline_spec(dir)),
                      exp::builtin_jobs(), options);
    for (const char* name : {"train_adversary.ckpt", "rec_traces.csv",
                             "rec_summary.csv", "rep_replay.csv"}) {
      EXPECT_EQ(read_file(base + "/" + name), read_file(dir + "/" + name))
          << name << " differs at " << threads << " threads";
    }
  }
}

// ------------------------------------------------- fairness campaigns

TEST(Campaign, GridExpandsFlowMixFairnessSweeps) {
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = x\nout_dir = /tmp/x\n"
      "[job sweep]\nkind = grid\ndomain = cc\n"
      "flow_mixes = bbr+cubic, bbr+bbr\n"
      "adversaries = fairness, late-join\nseeds = 1\ncount = 4\n");
  // 2 mixes x 2 fairness kinds x (train + record) x 1 seed.
  ASSERT_EQ(c.jobs.size(), 8u);
  const std::size_t train = c.job_index("sweep-bbr+cubic-fairness-s1-train");
  const std::size_t record = c.job_index("sweep-bbr+cubic-fairness-s1");
  const std::size_t late = c.job_index("sweep-bbr+bbr-late-join-s1");
  ASSERT_NE(train, static_cast<std::size_t>(-1));
  ASSERT_NE(record, static_cast<std::size_t>(-1));
  ASSERT_NE(late, static_cast<std::size_t>(-1));
  EXPECT_EQ(c.jobs[train].kind, "train-adversary");
  // The '+'-joined mix element becomes the job-level flows list, and the
  // scenario kind rides along as `adversary =`.
  EXPECT_EQ(c.jobs[train].value_or("flows", ""), "bbr,cubic");
  EXPECT_EQ(c.jobs[train].value_or("adversary", ""), "fairness");
  EXPECT_EQ(c.jobs[record].value_or("from", ""),
            "sweep-bbr+cubic-fairness-s1-train");
  EXPECT_EQ(c.jobs[late].value_or("adversary", ""), "late-join");
  // Shared params forward to every point.
  EXPECT_EQ(c.jobs[record].value_or("count", ""), "4");
}

TEST(Campaign, GridValidatesFlowMixesAtLoadTime) {
  // Unknown mix member fails with the sender registry's enumerating error.
  try {
    campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                  "[job g]\nkind = grid\ndomain = cc\n"
                  "flow_mixes = bbr+warp\nadversaries = fairness\n");
    FAIL() << "unknown mix member must fail at load time";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown sender 'warp'"), std::string::npos) << what;
    EXPECT_NE(what.find("bbr | cubic | copa | vivace | reno"),
              std::string::npos)
        << what;
  }
  // A mix needs at least two flows.
  EXPECT_THROW(campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                             "[job g]\nkind = grid\ndomain = cc\n"
                             "flow_mixes = bbr\nadversaries = fairness\n"),
               std::runtime_error);
  // flow_mixes is a cc concept.
  EXPECT_THROW(campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                             "[job g]\nkind = grid\n"
                             "flow_mixes = bbr+cubic\nadversaries = ppo\n"),
               std::runtime_error);
  // Fairness kinds attack mixes, ppo attacks single targets: each axis
  // rejects the other family.
  EXPECT_THROW(
      campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                    "[job g]\nkind = grid\ndomain = cc\n"
                    "flow_mixes = bbr+cubic\nadversaries = ppo\n"),
      std::runtime_error);
  EXPECT_THROW(
      campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                    "[job g]\nkind = grid\ndomain = cc\n"
                    "protocols = bbr\nadversaries = fairness\n"),
      std::runtime_error);
  // protocols and flow_mixes are mutually exclusive target axes.
  EXPECT_THROW(
      campaign_from("[campaign]\nname = x\nout_dir = /tmp/x\n"
                    "[job g]\nkind = grid\ndomain = cc\nprotocols = bbr\n"
                    "flow_mixes = bbr+cubic\nadversaries = fairness\n"),
      std::runtime_error);
}

/// The full fairness pipeline: train a fairness adversary on a bbr+cubic
/// mix, record episodes through its checkpoint, replay the recorded link
/// schedules against a different mix. `duration = 2` bounds work.
std::string fairness_pipeline_spec(const std::string& dir) {
  return "[campaign]\nname = fairness-e2e\nseed = 43\nout_dir = " + dir +
         "\n"
         "[job train]\nkind = train-adversary\ndomain = cc\n"
         "adversary = fairness\nflows = bbr,cubic\nsteps = 256\n"
         "duration = 2\n"
         "[job rec]\nkind = record-traces\nafter = train\nfrom = train\n"
         "domain = cc\nadversary = fairness\nflows = bbr,cubic\n"
         "count = 2\nduration = 2\n"
         "[job rep]\nkind = replay\nafter = rec\ntraces = rec\n"
         "domain = cc\nflows = bbr,bbr\n";
}

TEST(BuiltinJobs, FairnessCampaignRunsEndToEnd) {
  const std::string dir = temp_dir("netadv_builtin_fair");
  const exp::CampaignReport report = exp::run_campaign(
      campaign_from(fairness_pipeline_spec(dir)), exp::builtin_jobs());
  ASSERT_TRUE(report.ok());
  const std::vector<trace::Trace> traces =
      trace::load_trace_set(dir + "/rec_traces.csv");
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_GE(traces[0].size(), 50u);
  // Summaries carry per-flow throughput plus both unfairness metrics.
  EXPECT_NE(
      read_file(dir + "/rec_summary.csv")
          .find("episode,flow0_mbps,flow1_mbps,jain,victim_utilization,"
                "aggregate_utilization"),
      std::string::npos);
  EXPECT_NE(
      read_file(dir + "/rep_replay.csv")
          .find("trace,flow0_mbps,flow1_mbps,jain,victim_utilization,"
                "aggregate_utilization"),
      std::string::npos);
}

TEST(BuiltinJobs, FairnessJobsFailWithEnumeratingErrors) {
  const std::string dir = temp_dir("netadv_builtin_fair_err");
  // Unknown flow-mix member surfaces the cc_senders registry error.
  const exp::CampaignReport report = exp::run_campaign(
      campaign_from("[campaign]\nname = bad-mix\nout_dir = " + dir + "\n"
                    "[job train]\nkind = train-adversary\ndomain = cc\n"
                    "adversary = fairness\nflows = bbr,warp\nsteps = 256\n"
                    "duration = 2\n"),
      exp::builtin_jobs());
  EXPECT_FALSE(report.ok());
  const std::string& error = report.outcome_of("train").error;
  EXPECT_NE(error.find("unknown sender 'warp'"), std::string::npos) << error;
  EXPECT_NE(error.find("bbr | cubic | copa | vivace | reno"),
            std::string::npos)
      << error;
  // A bad reward spelling names the valid ones.
  const exp::CampaignReport bad_reward = exp::run_campaign(
      campaign_from("[campaign]\nname = bad-reward\nout_dir = " + dir +
                    "2\n"
                    "[job train]\nkind = train-adversary\ndomain = cc\n"
                    "adversary = fairness\nflows = bbr,bbr\n"
                    "reward = nope\nsteps = 256\nduration = 2\n"),
      exp::builtin_jobs());
  EXPECT_FALSE(bad_reward.ok());
  EXPECT_NE(bad_reward.outcome_of("train").error.find("jain | victim"),
            std::string::npos)
      << bad_reward.outcome_of("train").error;
}

TEST(BuiltinJobs, FairnessCampaignArtifactsAreIdenticalAcrossThreadCounts) {
  const std::string base = temp_dir("netadv_builtin_fair_t1");
  exp::run_campaign(campaign_from(fairness_pipeline_spec(base)),
                    exp::builtin_jobs());
  for (const std::size_t threads : {2u, 8u}) {
    const std::string dir =
        temp_dir("netadv_builtin_fair_t" + std::to_string(threads));
    util::ThreadPool pool{threads};
    exp::SchedulerOptions options;
    options.pool = &pool;
    exp::run_campaign(campaign_from(fairness_pipeline_spec(dir)),
                      exp::builtin_jobs(), options);
    for (const char* name : {"train_adversary.ckpt", "rec_traces.csv",
                             "rec_summary.csv", "rep_replay.csv"}) {
      EXPECT_EQ(read_file(base + "/" + name), read_file(dir + "/" + name))
          << name << " differs at " << threads << " threads";
    }
  }
}

}  // namespace
