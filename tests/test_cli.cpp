// End-to-end tests of the netadv_cli binary: the usage/exit-code contract
// (0 success, 1 runtime error, 2 usage error), the gen / eval / mm-export /
// campaign --dry-run commands, and the `info` report (including the
// NETADV_SIMD forced-fallback note, exercised in a subprocess so the forced
// env cannot disturb this process's already-resolved dispatch). The binary
// path is injected at configure time via NETADV_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "rl/kernels.hpp"

namespace {

std::string cli_path() { return NETADV_CLI_PATH; }

std::string out_dir() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "netadv_cli_test").string();
  std::filesystem::create_directories(dir);
  return dir;
}

/// Run the CLI with `args`, capture stdout+stderr into `output`, and return
/// the exit code (-1 if the process did not exit normally). `env` is an
/// optional `VAR=value` prefix applied to the child only.
int run_cli(const std::string& args, std::string* output = nullptr,
            const std::string& env = "") {
  // Per-process capture file: ctest runs these tests as parallel processes
  // sharing one temp dir, so a fixed name would interleave captures.
  const std::string capture =
      out_dir() + "/output." + std::to_string(::getpid()) + ".txt";
  const std::string command = (env.empty() ? "" : "env " + env + " ") +
                              cli_path() + " " + args + " > " + capture +
                              " 2>&1";
  const int status = std::system(command.c_str());
  if (output != nullptr) {
    std::ifstream in{capture};
    output->assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

TEST(Cli, NoArgumentsIsAUsageError) {
  std::string output;
  EXPECT_EQ(run_cli("", &output), 2);
  EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandIsAUsageError) {
  EXPECT_EQ(run_cli("frobnicate"), 2);
}

TEST(Cli, UnknownProtocolIsAUsageError) {
  EXPECT_EQ(run_cli("eval no-such-protocol /dev/null"), 2);
}

TEST(Cli, ListPrintsEveryRegistryWithDomains) {
  std::string output;
  ASSERT_EQ(run_cli("list", &output), 0);
  EXPECT_NE(output.find("ABR protocols:"), std::string::npos);
  EXPECT_NE(output.find("CC senders:"), std::string::npos);
  EXPECT_NE(output.find("trace generators:"), std::string::npos);
  EXPECT_NE(output.find("adversary kinds:"), std::string::npos);
  EXPECT_NE(output.find("campaign job kinds:"), std::string::npos);
  for (const char* name : {"pensieve", "vivace", "3g", "cem", "gen-traces"}) {
    EXPECT_NE(output.find(name), std::string::npos) << name;
  }
  // Domain column: bbr is a cc entry, ppo is domain-neutral.
  EXPECT_NE(output.find("cc"), std::string::npos);
  EXPECT_NE(output.find("any"), std::string::npos);
}

TEST(Cli, ListAcceptsASingleCategory) {
  std::string output;
  ASSERT_EQ(run_cli("list senders", &output), 0);
  EXPECT_NE(output.find("cubic"), std::string::npos);
  EXPECT_EQ(output.find("ABR protocols:"), std::string::npos);
}

TEST(Cli, ListUnknownCategoryIsAUsageError) {
  std::string output;
  EXPECT_EQ(run_cli("list frobnicators", &output), 2);
  EXPECT_NE(output.find("unknown category"), std::string::npos);
}

TEST(Cli, KnownEntryWithFailingFactoryIsARuntimeError) {
  // `pensieve` is a registered name (not a usage error), but resolving it
  // without a checkpoint fails at construction time: exit 1.
  std::string output;
  EXPECT_EQ(run_cli("eval pensieve /dev/null", &output), 1);
  EXPECT_NE(output.find("checkpoint"), std::string::npos);
}

TEST(Cli, GenWritesTraceFiles) {
  const std::string prefix = out_dir() + "/gen";
  std::string output;
  ASSERT_EQ(run_cli("gen random 2 " + prefix, &output), 0);
  EXPECT_TRUE(std::filesystem::exists(prefix + "_0.csv"));
  EXPECT_TRUE(std::filesystem::exists(prefix + "_1.csv"));
  EXPECT_NE(output.find("wrote"), std::string::npos);
}

TEST(Cli, EvalReportsQoeOnAGeneratedTrace) {
  const std::string prefix = out_dir() + "/eval";
  ASSERT_EQ(run_cli("gen fcc 1 " + prefix), 0);
  std::string output;
  EXPECT_EQ(run_cli("eval bb " + prefix + "_0.csv", &output), 0);
  EXPECT_NE(output.find("QoE"), std::string::npos);
  EXPECT_NE(output.find("offline optimum"), std::string::npos);
}

TEST(Cli, EvalOnMissingTraceIsARuntimeError) {
  std::string output;
  EXPECT_EQ(run_cli("eval bb /tmp/netadv_no_such_trace.csv", &output), 1);
  EXPECT_NE(output.find("error:"), std::string::npos);
}

TEST(Cli, ListQoeModelsCategory) {
  std::string output;
  ASSERT_EQ(run_cli("list qoe", &output), 0);
  EXPECT_NE(output.find("QoE models:"), std::string::npos);
  for (const char* name : {"lin", "log", "ssim"}) {
    EXPECT_NE(output.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(output.find("ABR protocols:"), std::string::npos);
  // The bare `list` includes the QoE table too (docs_lint diffs it against
  // README's registry block).
  std::string all;
  ASSERT_EQ(run_cli("list", &all), 0);
  EXPECT_NE(all.find("QoE models:"), std::string::npos);
  EXPECT_NE(all.find("mpc-dp"), std::string::npos);
}

TEST(Cli, ServeRunsSessionsAndWritesSummaries) {
  const std::string prefix = out_dir() + "/serve";
  ASSERT_EQ(run_cli("gen fcc 1 " + prefix), 0);
  const std::string out = out_dir() + "/serve_sessions.csv";
  std::string output;
  ASSERT_EQ(
      run_cli("serve mpc-dp ssim 4 " + prefix + "_0.csv " + out, &output), 0);
  EXPECT_NE(output.find("mean QoE"), std::string::npos);
  EXPECT_NE(output.find("decisions/s"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(out));
  std::ifstream in{out};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "session,trace,chunks,qoe,qoe_lin,rebuffer_s,mean_bitrate_mbps,"
            "quality_switches");
}

TEST(Cli, ServeValidatesNamesAndArity) {
  EXPECT_EQ(run_cli("serve bb"), 2);
  EXPECT_EQ(run_cli("serve warp lin 4 /dev/null"), 2);
  EXPECT_EQ(run_cli("serve bb vmaf 4 /dev/null"), 2);
  // Known names but a missing trace: runtime error, not usage.
  EXPECT_EQ(run_cli("serve bb lin 4 /tmp/netadv_no_such_trace.csv"), 1);
}

TEST(Cli, MahimahiExportRoundTrips) {
  const std::string prefix = out_dir() + "/mm";
  ASSERT_EQ(run_cli("gen 3g 1 " + prefix), 0);
  const std::string exported = out_dir() + "/mm.trace";
  EXPECT_EQ(run_cli("mm-export " + prefix + "_0.csv " + exported), 0);
  EXPECT_TRUE(std::filesystem::exists(exported));
}

TEST(Cli, CampaignDryRunPrintsThePlanWithoutArtifacts) {
  const std::string spec = out_dir() + "/dry.campaign";
  const std::string campaign_out = out_dir() + "/dry_out";
  std::filesystem::remove_all(campaign_out);
  std::ofstream{spec} << "[campaign]\nname = dry\nout_dir = " << campaign_out
                      << "\n[job corpus]\nkind = gen-traces\n"
                      << "generator = random\ncount = 2\n"
                      << "[job replay-bb]\nkind = replay\nafter = corpus\n"
                      << "traces = corpus\nprotocol = bb\n";
  std::string output;
  EXPECT_EQ(run_cli("campaign " + spec + " --dry-run", &output), 0);
  EXPECT_NE(output.find("wave 1"), std::string::npos);
  EXPECT_NE(output.find("wave 2"), std::string::npos);
  EXPECT_NE(output.find("replay-bb"), std::string::npos);
  // Dry runs must not create the out_dir or any artifacts.
  EXPECT_FALSE(std::filesystem::exists(campaign_out));
}

TEST(Cli, CampaignRunsAndResumes) {
  const std::string spec = out_dir() + "/run.campaign";
  const std::string campaign_out = out_dir() + "/run_out";
  std::filesystem::remove_all(campaign_out);
  std::ofstream{spec} << "[campaign]\nname = run\nout_dir = " << campaign_out
                      << "\n[job corpus]\nkind = gen-traces\n"
                      << "generator = random\ncount = 2\n";
  std::string output;
  EXPECT_EQ(run_cli("campaign " + spec, &output), 0);
  EXPECT_NE(output.find("1 completed"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(campaign_out + "/corpus_traces.csv"));
  EXPECT_EQ(run_cli("campaign " + spec + " --resume", &output), 0);
  EXPECT_NE(output.find("1 cached"), std::string::npos);
}

TEST(Cli, CampaignOnMissingSpecIsARuntimeError) {
  EXPECT_EQ(run_cli("campaign /tmp/netadv_no_such.campaign"), 1);
}

TEST(Cli, CampaignUnknownFlagIsAUsageError) {
  EXPECT_EQ(run_cli("campaign spec --frobnicate"), 2);
}

TEST(Cli, CampaignWorkerRunsAndASecondWorkerFindsItSettled) {
  const std::string spec = out_dir() + "/worker.campaign";
  const std::string campaign_out = out_dir() + "/worker_out";
  std::filesystem::remove_all(campaign_out);
  std::ofstream{spec} << "[campaign]\nname = w\nout_dir = " << campaign_out
                      << "\n[job corpus]\nkind = gen-traces\n"
                      << "generator = random\ncount = 2\n";
  std::string output;
  EXPECT_EQ(run_cli("campaign " + spec + " --worker", &output), 0);
  EXPECT_NE(output.find("1 ok"), std::string::npos);
  EXPECT_NE(output.find("1 executed"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(campaign_out + "/corpus_traces.csv"));
  // A second worker joins an already-settled campaign: nothing to do, same
  // whole-campaign verdict.
  EXPECT_EQ(run_cli("campaign " + spec + " --worker", &output), 0);
  EXPECT_NE(output.find("0 executed"), std::string::npos);
}

TEST(Cli, CampaignSpawnWorkersRunsAFleet) {
  const std::string spec = out_dir() + "/fleet.campaign";
  const std::string campaign_out = out_dir() + "/fleet_out";
  std::filesystem::remove_all(campaign_out);
  std::ofstream{spec} << "[campaign]\nname = fleet\nout_dir = "
                      << campaign_out
                      << "\n[job corpus]\nkind = gen-traces\n"
                      << "generator = random\ncount = 2\n"
                      << "[job corpus2]\nkind = gen-traces\n"
                      << "generator = 3g\ncount = 2\n";
  std::string output;
  EXPECT_EQ(run_cli("campaign " + spec + " --spawn-workers 2 --poll-ms 20",
                    &output),
            0);
  EXPECT_NE(output.find("2 worker(s) finished, verdict ok"),
            std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(campaign_out + "/corpus_traces.csv"));
  EXPECT_TRUE(std::filesystem::exists(campaign_out + "/corpus2_traces.csv"));
}

TEST(Cli, CampaignWorkerFlagValidation) {
  // Value-taking flags reject garbage and missing values; mode conflicts
  // are usage errors.
  EXPECT_EQ(run_cli("campaign spec --spawn-workers"), 2);
  EXPECT_EQ(run_cli("campaign spec --spawn-workers zero"), 2);
  EXPECT_EQ(run_cli("campaign spec --spawn-workers 0"), 2);
  EXPECT_EQ(run_cli("campaign spec --lease -1"), 2);
  EXPECT_EQ(run_cli("campaign spec --poll-ms 0"), 2);
  EXPECT_EQ(run_cli("campaign spec --worker --spawn-workers 2"), 2);
  EXPECT_EQ(run_cli("campaign spec --worker --dry-run"), 2);
}

TEST(Cli, InfoReportsBackendsAndKnobResolution) {
  std::string output;
  ASSERT_EQ(run_cli("info", &output), 0);
  EXPECT_NE(output.find("kernel backends"), std::string::npos);
  for (const char* backend : {"scalar", "avx2", "avx512", "neon"}) {
    EXPECT_NE(output.find(backend), std::string::npos) << backend;
  }
  EXPECT_NE(output.find("<- active"), std::string::npos);
  EXPECT_NE(output.find("NETADV_SIMD"), std::string::npos);
  EXPECT_NE(output.find("NETADV_THREADS"), std::string::npos);
  EXPECT_NE(output.find("NETADV_F32_ROLLOUT"), std::string::npos);
}

TEST(Cli, InfoWithArgumentsIsAUsageError) {
  EXPECT_EQ(run_cli("info extra"), 2);
}

TEST(Cli, InfoHonorsForcedSimdOffWithoutComplaint) {
  std::string output;
  ASSERT_EQ(run_cli("info", &output, "NETADV_SIMD=off"), 0);
  EXPECT_NE(output.find("off -> scalar"), std::string::npos);
  EXPECT_EQ(output.find("falling back"), std::string::npos);
}

TEST(Cli, InfoForcedUnavailableBackendFallsBackWithNote) {
  // Force whichever wide backend this build/host cannot run (neon on x86,
  // avx512 on arm); the dispatch must log the fallback note and carry on
  // rather than crash. Skip only if every backend genuinely works here.
  namespace kr = netadv::rl::kernels;
  std::string forced;
  if (!kr::backend_available(kr::Backend::kNeon)) {
    forced = "neon";
  } else if (!kr::backend_available(kr::Backend::kAvx512)) {
    forced = "avx512";
  } else {
    GTEST_SKIP() << "host supports every compiled backend; nothing to force";
  }
  std::string output;
  ASSERT_EQ(run_cli("info", &output, "NETADV_SIMD=" + forced), 0);
  EXPECT_NE(output.find("NETADV_SIMD=" + forced + " requested but"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("falling back"), std::string::npos);
  // The report reflects the backend actually activated, not the forced one.
  EXPECT_NE(output.find(forced + " -> "), std::string::npos);
  EXPECT_EQ(output.find(forced + " -> " + forced), std::string::npos);
}

}  // namespace
