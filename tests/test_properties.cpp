// Parameterized property suites: invariants that must hold across whole
// families of configurations — every ABR protocol on every link rate, every
// CC sender under every loss rate, every trace generator, and the adversary
// environment across its window/history parameter space.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "abr/bb.hpp"
#include "abr/mpc.hpp"
#include "abr/optimal.hpp"
#include "abr/runner.hpp"
#include "cc/bbr.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/vivace.hpp"
#include "cc/runner.hpp"
#include "core/abr_adversary.hpp"
#include "core/cc_adversary.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

abr::VideoManifest exact_manifest() {
  abr::VideoManifest::Params p;
  p.size_variation = 0.0;
  return abr::VideoManifest{p};
}

std::unique_ptr<abr::AbrProtocol> make_protocol(const std::string& kind) {
  if (kind == "bb") return std::make_unique<abr::BufferBased>();
  if (kind == "mpc") return std::make_unique<abr::RobustMpc>();
  abr::RobustMpc::Params p;
  p.robust = false;
  return std::make_unique<abr::RobustMpc>(p);  // "fastmpc"
}

trace::Trace constant_trace(double bw, std::size_t n = 48) {
  trace::Trace t;
  for (std::size_t i = 0; i < n; ++i) t.append({4.0, bw, 80.0, 0.0});
  return t;
}

// ---------------------------------------------------------------- ABR protocols

class AbrProtocolProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(AbrProtocolProperty, PlaybackInvariantsHold) {
  const auto& [kind, bandwidth] = GetParam();
  const abr::VideoManifest m = exact_manifest();
  auto protocol = make_protocol(kind);
  const abr::PlaybackRecord record =
      abr::run_playback(*protocol, m, constant_trace(bandwidth));

  ASSERT_EQ(record.chunks.size(), m.num_chunks());
  for (const auto& c : record.chunks) {
    EXPECT_LT(c.quality, m.num_qualities());
    EXPECT_GE(c.rebuffer_s, 0.0);
    EXPECT_GE(c.buffer_after_s, 0.0);
    EXPECT_LE(c.buffer_after_s, 60.0 + 1e-9);
    EXPECT_GT(c.download_time_s, 0.0);
  }
  // Mean bitrate can never exceed the top of the ladder.
  EXPECT_LE(record.mean_bitrate_mbps, m.max_bitrate_mbps() + 1e-9);
}

TEST_P(AbrProtocolProperty, NeverBeatsOfflineOptimal) {
  const auto& [kind, bandwidth] = GetParam();
  const abr::VideoManifest m = exact_manifest();
  auto protocol = make_protocol(kind);
  const trace::Trace t = constant_trace(bandwidth);
  const double protocol_qoe = abr::run_playback(*protocol, m, t).total_qoe;
  const double optimal_qoe = abr::optimal_playback(m, t).total_qoe;
  EXPECT_LE(protocol_qoe, optimal_qoe + 0.5) << kind << " @ " << bandwidth;
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAcrossRates, AbrProtocolProperty,
    ::testing::Combine(::testing::Values("bb", "mpc", "fastmpc"),
                       ::testing::Values(0.4, 0.8, 1.5, 2.4, 4.8, 12.0)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
             "dMbps";
    });

// ---------------------------------------------------------------- ABR on generated corpora

class AbrOnCorpusProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(AbrOnCorpusProperty, ProtocolsSurviveWholeCorpus) {
  const abr::VideoManifest m = exact_manifest();
  Rng rng{77};
  std::unique_ptr<trace::TraceGenerator> gen;
  const std::string kind = GetParam();
  if (kind == "fcc") gen = std::make_unique<trace::FccLikeGenerator>();
  else if (kind == "3g") gen = std::make_unique<trace::Hsdpa3gLikeGenerator>();
  else gen = std::make_unique<trace::UniformRandomGenerator>();

  abr::BufferBased bb;
  abr::RobustMpc mpc;
  for (const auto& t : gen->generate_many(10, rng)) {
    const double bb_qoe = abr::run_playback(bb, m, t).total_qoe;
    const double mpc_qoe = abr::run_playback(mpc, m, t).total_qoe;
    const double opt = abr::optimal_playback(m, t).total_qoe;
    EXPECT_LE(bb_qoe, opt + 0.5);
    EXPECT_LE(mpc_qoe, opt + 0.5);
    // The optimum itself is bounded by perfect top-rate playback.
    EXPECT_LE(opt, 4.3 * static_cast<double>(m.num_chunks()) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, AbrOnCorpusProperty,
                         ::testing::Values("fcc", "3g", "uniform"),
                         [](const auto& info) { return info.param == "3g" ? std::string("threeg") : info.param; });

// ---------------------------------------------------------------- CC senders

class CcSenderProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

std::unique_ptr<cc::CcSender> make_sender(const std::string& kind) {
  if (kind == "bbr") return std::make_unique<cc::BbrSender>();
  if (kind == "copa") return std::make_unique<cc::CopaSender>();
  if (kind == "vivace") return std::make_unique<cc::VivaceSender>();
  if (kind == "cubic") return std::make_unique<cc::CubicSender>();
  return std::make_unique<cc::RenoSender>();
}

TEST_P(CcSenderProperty, FlowInvariantsHold) {
  const auto& [kind, loss] = GetParam();
  auto sender = make_sender(kind);
  cc::LinkSim::Params link;
  link.initial = {12.0, 30.0, loss};
  cc::CcRunner runner{*sender, link, 99};
  runner.run_until(8.0);
  const cc::IntervalStats stats = runner.collect();

  // Conservation: everything sent is delivered, lost, or in flight.
  EXPECT_EQ(runner.total_sent(),
            runner.total_delivered() + runner.total_lost() +
                static_cast<std::uint64_t>(runner.inflight_packets()));
  EXPECT_GE(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0);
  if (stats.packets_delivered > 0) {
    // RTT is bounded below by the propagation delay and above by
    // propagation + max queue + detection slack.
    EXPECT_GE(stats.mean_rtt_s, 0.060 - 1e-9);
    EXPECT_LE(stats.mean_rtt_s, 0.060 + 0.25 + 0.05);
  }
  // cwnd and pacing rate stay sane under stress.
  EXPECT_GE(sender->cwnd_packets(), 1.0);
  EXPECT_GT(sender->pacing_rate_bps(), 0.0);
}

TEST_P(CcSenderProperty, LossFractionTracksLinkLoss) {
  const auto& [kind, loss] = GetParam();
  auto sender = make_sender(kind);
  cc::LinkSim::Params link;
  link.initial = {12.0, 30.0, loss};
  cc::CcRunner runner{*sender, link, 101};
  runner.run_until(20.0);
  if (runner.total_sent() > 500 && loss > 0.0) {
    const double observed = static_cast<double>(runner.total_lost()) /
                            static_cast<double>(runner.total_sent());
    // Random loss dominates tail drop here; allow generous slack.
    EXPECT_GT(observed, loss * 0.4);
    EXPECT_LT(observed, loss * 3.0 + 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SendersAcrossLoss, CcSenderProperty,
    ::testing::Combine(::testing::Values("bbr", "copa", "vivace", "cubic", "reno"),
                       ::testing::Values(0.0, 0.01, 0.05)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_loss" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 1000));
    });

// ---------------------------------------------------------------- CC senders on varying links

class CcVaryingLinkProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CcVaryingLinkProperty, SurvivesAdversarialRangeSweeps) {
  // Conditions jump around Table 1's extremes every 100 ms; nothing may
  // crash, and conservation must hold throughout.
  auto sender = make_sender(GetParam());
  cc::CcRunner runner{*sender, {}, 103};
  Rng rng{103};
  double now = 0.0;
  for (int i = 0; i < 100; ++i) {
    runner.set_conditions({rng.uniform(6.0, 24.0), rng.uniform(15.0, 60.0),
                           rng.uniform(0.0, 0.10)});
    now += 0.1;
    runner.run_until(now);
  }
  EXPECT_EQ(runner.total_sent(),
            runner.total_delivered() + runner.total_lost() +
                static_cast<std::uint64_t>(runner.inflight_packets()));
  EXPECT_GT(runner.total_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Senders, CcVaryingLinkProperty,
                         ::testing::Values("bbr", "copa", "vivace", "cubic",
                                           "reno"));

// ---------------------------------------------------------------- adversary env windows

class AbrAdversaryWindowProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AbrAdversaryWindowProperty, RegretNonNegativeAcrossWindowConfigs) {
  const auto& [opt_window, history] = GetParam();
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params params;
  params.opt_window = opt_window;
  params.history = history;
  core::AbrAdversaryEnv env{m, bb, params};
  EXPECT_EQ(env.observation_size(), history * (5 + m.num_qualities()));

  Rng rng{111};
  env.reset(rng);
  while (true) {
    const rl::StepResult r = env.step({rng.uniform(-1.5, 1.5)}, rng);
    EXPECT_GE(env.last_reward().regret(), -1e-9);
    ASSERT_EQ(r.observation.size(), env.observation_size());
    if (r.done) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowConfigs, AbrAdversaryWindowProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4, 6),
                       ::testing::Values<std::size_t>(1, 5, 10)),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------- generators

class GeneratorProperty : public ::testing::TestWithParam<std::string> {};

std::unique_ptr<trace::TraceGenerator> make_generator(const std::string& kind) {
  if (kind == "fcc") return std::make_unique<trace::FccLikeGenerator>();
  if (kind == "3g") return std::make_unique<trace::Hsdpa3gLikeGenerator>();
  return std::make_unique<trace::UniformRandomGenerator>();
}

TEST_P(GeneratorProperty, DeterministicUnderSeed) {
  auto gen = make_generator(GetParam());
  Rng a{5};
  Rng b{5};
  const trace::Trace t1 = gen->generate(a);
  const trace::Trace t2 = gen->generate(b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1[i].bandwidth_mbps, t2[i].bandwidth_mbps);
  }
}

TEST_P(GeneratorProperty, SegmentsAreWellFormed) {
  auto gen = make_generator(GetParam());
  Rng rng{7};
  for (int i = 0; i < 10; ++i) {
    const trace::Trace t = gen->generate(rng);
    EXPECT_FALSE(t.empty());
    for (const auto& s : t.segments()) {
      EXPECT_GT(s.duration_s, 0.0);
      EXPECT_GT(s.bandwidth_mbps, 0.0);
      EXPECT_GE(s.latency_ms, 0.0);
      EXPECT_GE(s.loss_rate, 0.0);
      EXPECT_LE(s.loss_rate, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, GeneratorProperty,
                         ::testing::Values("fcc", "3g", "uniform"),
                         [](const auto& info) { return info.param == "3g" ? std::string("threeg") : info.param; });

// ---------------------------------------------------------------- QoE monotonicity

class QoeMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(QoeMonotonicity, MoreRebufferingNeverHelps) {
  const double bitrate = GetParam();
  double last = 1e18;
  for (double rebuf : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double q = abr::chunk_qoe(bitrate, rebuf, bitrate);
    EXPECT_LT(q, last);
    last = q;
  }
}

TEST_P(QoeMonotonicity, BiggerBitrateJumpCostsMore) {
  const double bitrate = GetParam();
  const double q_same = abr::chunk_qoe(bitrate, 0.0, bitrate);
  const double q_jump = abr::chunk_qoe(bitrate, 0.0, bitrate + 2.0);
  EXPECT_GT(q_same, q_jump);
}

INSTANTIATE_TEST_SUITE_P(Bitrates, QoeMonotonicity,
                         ::testing::Values(0.3, 1.2, 2.85, 4.3),
                         [](const auto& info) {
                           return "r" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
