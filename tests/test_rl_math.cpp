// Unit tests for the RL math substrate: matrix kernels, MLP forward/backward
// (including finite-difference gradient checks), Adam, the distribution
// heads, normalizers, and GAE.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl/adam.hpp"
#include "rl/distributions.hpp"
#include "rl/matrix.hpp"
#include "rl/mlp.hpp"
#include "rl/normalizer.hpp"
#include "rl/rollout.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace netadv::rl;
using netadv::util::Rng;

// ---------------------------------------------------------------- matrix

TEST(MatrixKernels, GemvMatchesHandComputation) {
  // W = [[1, 2], [3, 4]], x = [5, 6], b = [0.5, -0.5]
  const std::vector<double> w{1, 2, 3, 4};
  const std::vector<double> x{5, 6};
  const std::vector<double> b{0.5, -0.5};
  std::vector<double> y(2);
  gemv(w, 2, 2, x, b, y);
  EXPECT_DOUBLE_EQ(y[0], 17.5);
  EXPECT_DOUBLE_EQ(y[1], 38.5);
}

TEST(MatrixKernels, GemvTransposedMatchesHandComputation) {
  const std::vector<double> w{1, 2, 3, 4};  // 2x2
  const std::vector<double> g{1, -1};
  std::vector<double> y(2);
  gemv_transposed(w, 2, 2, g, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);  // 1*1 + 3*(-1)
  EXPECT_DOUBLE_EQ(y[1], -2.0);  // 2*1 + 4*(-1)
}

TEST(MatrixKernels, Rank1UpdateAccumulates) {
  std::vector<double> w{0, 0, 0, 0};
  const std::vector<double> g{1, 2};
  const std::vector<double> x{3, 4};
  rank1_update(w, 2, 2, g, x);
  rank1_update(w, 2, 2, g, x);
  EXPECT_DOUBLE_EQ(w[0], 6.0);
  EXPECT_DOUBLE_EQ(w[1], 8.0);
  EXPECT_DOUBLE_EQ(w[2], 12.0);
  EXPECT_DOUBLE_EQ(w[3], 16.0);
}

TEST(MatrixKernels, DotAndNorm) {
  const std::vector<double> a{3, 4};
  const std::vector<double> b{1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
}

TEST(MatrixClass, IndexingAndAt) {
  Matrix m{2, 3};
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_EQ(m.size(), 6u);
}

// ---------------------------------------------------------------- mlp

TEST(Mlp, OutputShapeAndDeterminism) {
  Rng rng{3};
  Mlp net{{4, 8, 3}, Activation::kTanh, 1.0, rng};
  EXPECT_EQ(net.input_size(), 4u);
  EXPECT_EQ(net.output_size(), 3u);
  EXPECT_EQ(net.param_count(), 4u * 8 + 8 + 8 * 3 + 3);
  const Vec x{0.1, -0.2, 0.3, 0.4};
  const Vec y1 = net.forward(x);
  const Vec y2 = net.forward(x);
  ASSERT_EQ(y1.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Mlp, RejectsBadConstruction) {
  Rng rng{1};
  EXPECT_THROW((Mlp{{4}, Activation::kTanh, 1.0, rng}), std::invalid_argument);
  EXPECT_THROW((Mlp{{4, 0, 2}, Activation::kTanh, 1.0, rng}),
               std::invalid_argument);
}

TEST(Mlp, RejectsWrongInputSize) {
  Rng rng{1};
  Mlp net{{2, 3}, Activation::kTanh, 1.0, rng};
  EXPECT_THROW(net.forward({1.0}), std::invalid_argument);
  net.forward({1.0, 2.0});
  EXPECT_THROW(net.backward({1.0}), std::invalid_argument);
}

TEST(Mlp, BackwardBeforeForwardThrows) {
  Rng rng{1};
  Mlp net{{2, 3}, Activation::kTanh, 1.0, rng};
  EXPECT_THROW(net.backward({1.0, 0.0, 0.0}), std::logic_error);
}

// Finite-difference check of dLoss/dParams where Loss = sum(output * coef).
void check_param_gradients(Activation act) {
  Rng rng{17};
  Mlp net{{3, 5, 4, 2}, act, 1.0, rng};
  const Vec x{0.3, -0.7, 0.9};
  const Vec coef{1.3, -0.4};

  net.zero_grad();
  net.forward(x);
  net.backward(coef);
  std::vector<double> analytic{net.grads().begin(), net.grads().end()};

  const double eps = 1e-6;
  auto params = net.params();
  for (std::size_t i = 0; i < params.size(); i += 7) {  // sample every 7th
    const double saved = params[i];
    params[i] = saved + eps;
    const Vec yp = net.forward(x);
    params[i] = saved - eps;
    const Vec ym = net.forward(x);
    params[i] = saved;
    const double numeric =
        ((yp[0] - ym[0]) * coef[0] + (yp[1] - ym[1]) * coef[1]) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5)
        << "param index " << i << " activation " << static_cast<int>(act);
  }
}

TEST(Mlp, ParamGradientsMatchFiniteDifferenceTanh) {
  check_param_gradients(Activation::kTanh);
}

TEST(Mlp, ParamGradientsMatchFiniteDifferenceRelu) {
  check_param_gradients(Activation::kRelu);
}

TEST(Mlp, InputGradientMatchesFiniteDifference) {
  Rng rng{19};
  Mlp net{{3, 6, 2}, Activation::kTanh, 1.0, rng};
  Vec x{0.5, -0.1, 0.2};
  const Vec coef{0.7, 1.1};
  net.zero_grad();
  net.forward(x);
  const Vec input_grad = net.backward(coef);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = x[i];
    x[i] = saved + eps;
    const Vec yp = net.forward(x);
    x[i] = saved - eps;
    const Vec ym = net.forward(x);
    x[i] = saved;
    const double numeric =
        ((yp[0] - ym[0]) * coef[0] + (yp[1] - ym[1]) * coef[1]) / (2 * eps);
    EXPECT_NEAR(input_grad[i], numeric, 1e-5);
  }
}

TEST(Mlp, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng{23};
  Mlp net{{2, 3, 1}, Activation::kTanh, 1.0, rng};
  const Vec x{0.4, 0.6};
  net.zero_grad();
  net.forward(x);
  net.backward({1.0});
  const std::vector<double> once{net.grads().begin(), net.grads().end()};
  net.forward(x);
  net.backward({1.0});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(net.grads()[i], 2.0 * once[i], 1e-12);
  }
  net.zero_grad();
  for (double g : net.grads()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Mlp, FinalGainScalesLastLayerInit) {
  Rng rng1{5};
  Mlp small{{4, 4, 4}, Activation::kTanh, 0.01, rng1};
  // Last-layer weights live at the tail of the parameter array.
  const auto params = small.params();
  double max_last = 0.0;
  for (std::size_t i = params.size() - (4 * 4 + 4); i < params.size() - 4; ++i) {
    max_last = std::max(max_last, std::abs(params[i]));
  }
  EXPECT_LT(max_last, 0.02);
}

// ---------------------------------------------------------------- adam

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(p) = (p - 3)^2 from p = 0.
  std::vector<double> p{0.0};
  Adam opt{1, {.learning_rate = 0.05}};
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> g{2.0 * (p[0] - 3.0)};
    opt.step(p, g);
  }
  EXPECT_NEAR(p[0], 3.0, 1e-3);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  std::vector<double> p{0.0};
  Adam opt{1, {.learning_rate = 0.1}};
  opt.step(p, std::vector<double>{5.0});
  // Bias-corrected Adam's first step is ~lr * sign(grad).
  EXPECT_NEAR(p[0], -0.1, 1e-6);
}

TEST(Adam, SizeMismatchThrows) {
  Adam opt{2};
  std::vector<double> p{0.0};
  EXPECT_THROW(opt.step(p, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Adam, ResetClearsMoments) {
  std::vector<double> p{0.0};
  Adam opt{1, {.learning_rate = 0.1}};
  opt.step(p, std::vector<double>{1.0});
  opt.reset();
  EXPECT_EQ(opt.step_count(), 0u);
  std::vector<double> q{0.0};
  opt.step(q, std::vector<double>{5.0});
  EXPECT_NEAR(q[0], -0.1, 1e-6);
}

TEST(ClipGradNorm, ScalesOnlyWhenAboveThreshold) {
  std::vector<double> g{3.0, 4.0};
  const double norm = clip_grad_norm(g, 10.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
  clip_grad_norm(g, 0.5);
  EXPECT_NEAR(l2_norm(g), 0.5, 1e-12);
}

// ---------------------------------------------------------------- distributions

TEST(Softmax, SumsToOneAndOrdersByLogit) {
  const std::vector<double> logits{1.0, 2.0, 3.0};
  std::vector<double> probs(3);
  softmax(logits, probs);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(Softmax, StableUnderLargeLogits) {
  const std::vector<double> logits{1000.0, 1001.0};
  std::vector<double> probs(2);
  softmax(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
}

TEST(Categorical, LogProbMatchesSoftmax) {
  const std::vector<double> logits{0.5, -1.0, 2.0};
  std::vector<double> probs(3);
  softmax(logits, probs);
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(Categorical::log_prob(logits, a), std::log(probs[a]), 1e-12);
  }
}

TEST(Categorical, SampleFrequenciesMatchProbs) {
  const std::vector<double> logits{0.0, 1.0, -1.0};
  std::vector<double> probs(3);
  softmax(logits, probs);
  Rng rng{31};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[Categorical::sample(logits, rng)];
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(static_cast<double>(counts[a]) / n, probs[a], 0.01);
  }
}

TEST(Categorical, ModePicksArgmax) {
  const std::vector<double> logits{0.1, 5.0, 0.2};
  EXPECT_EQ(Categorical::mode(logits), 1u);
}

TEST(Categorical, EntropyUniformIsLogN) {
  const std::vector<double> logits{0.7, 0.7, 0.7, 0.7};
  EXPECT_NEAR(Categorical::entropy(logits), std::log(4.0), 1e-12);
}

TEST(Categorical, LogProbGradMatchesFiniteDifference) {
  std::vector<double> logits{0.3, -0.5, 1.2};
  const std::size_t action = 2;
  const Vec grad = Categorical::log_prob_grad(logits, action);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < logits.size(); ++j) {
    const double saved = logits[j];
    logits[j] = saved + eps;
    const double lp = Categorical::log_prob(logits, action);
    logits[j] = saved - eps;
    const double lm = Categorical::log_prob(logits, action);
    logits[j] = saved;
    EXPECT_NEAR(grad[j], (lp - lm) / (2 * eps), 1e-6);
  }
}

TEST(Categorical, EntropyGradMatchesFiniteDifference) {
  std::vector<double> logits{0.3, -0.5, 1.2};
  const Vec grad = Categorical::entropy_grad(logits);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < logits.size(); ++j) {
    const double saved = logits[j];
    logits[j] = saved + eps;
    const double hp = Categorical::entropy(logits);
    logits[j] = saved - eps;
    const double hm = Categorical::entropy(logits);
    logits[j] = saved;
    EXPECT_NEAR(grad[j], (hp - hm) / (2 * eps), 1e-6);
  }
}

TEST(DiagGaussian, LogProbOfStandardNormalAtMean) {
  const std::vector<double> mean{0.0};
  const std::vector<double> log_std{0.0};
  const std::vector<double> action{0.0};
  EXPECT_NEAR(DiagGaussian::log_prob(mean, log_std, action),
              -0.5 * std::log(2.0 * M_PI), 1e-12);
}

TEST(DiagGaussian, SampleMomentsMatch) {
  const std::vector<double> mean{2.0, -1.0};
  const std::vector<double> log_std{std::log(0.5), std::log(2.0)};
  Rng rng{37};
  netadv::util::RunningStat s0;
  netadv::util::RunningStat s1;
  for (int i = 0; i < 100000; ++i) {
    const Vec a = DiagGaussian::sample(mean, log_std, rng);
    s0.add(a[0]);
    s1.add(a[1]);
  }
  EXPECT_NEAR(s0.mean(), 2.0, 0.02);
  EXPECT_NEAR(s0.stddev(), 0.5, 0.02);
  EXPECT_NEAR(s1.mean(), -1.0, 0.05);
  EXPECT_NEAR(s1.stddev(), 2.0, 0.05);
}

TEST(DiagGaussian, GradMeanMatchesFiniteDifference) {
  std::vector<double> mean{0.4, -0.3};
  const std::vector<double> log_std{0.2, -0.1};
  const std::vector<double> action{0.9, 0.1};
  const Vec grad = DiagGaussian::log_prob_grad_mean(mean, log_std, action);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < mean.size(); ++j) {
    const double saved = mean[j];
    mean[j] = saved + eps;
    const double lp = DiagGaussian::log_prob(mean, log_std, action);
    mean[j] = saved - eps;
    const double lm = DiagGaussian::log_prob(mean, log_std, action);
    mean[j] = saved;
    EXPECT_NEAR(grad[j], (lp - lm) / (2 * eps), 1e-6);
  }
}

TEST(DiagGaussian, GradLogStdMatchesFiniteDifference) {
  const std::vector<double> mean{0.4, -0.3};
  std::vector<double> log_std{0.2, -0.1};
  const std::vector<double> action{0.9, 0.1};
  const Vec grad = DiagGaussian::log_prob_grad_log_std(mean, log_std, action);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < log_std.size(); ++j) {
    const double saved = log_std[j];
    log_std[j] = saved + eps;
    const double lp = DiagGaussian::log_prob(mean, log_std, action);
    log_std[j] = saved - eps;
    const double lm = DiagGaussian::log_prob(mean, log_std, action);
    log_std[j] = saved;
    EXPECT_NEAR(grad[j], (lp - lm) / (2 * eps), 1e-6);
  }
}

TEST(DiagGaussian, EntropyIncreasesWithLogStd) {
  EXPECT_LT(DiagGaussian::entropy(std::vector<double>{0.0}),
            DiagGaussian::entropy(std::vector<double>{1.0}));
}

// ---------------------------------------------------------------- normalizers

TEST(RunningNormalizer, WhitensToZeroMeanUnitVar) {
  Rng rng{41};
  RunningNormalizer norm{2};
  for (int i = 0; i < 10000; ++i) {
    norm.update({rng.normal(5.0, 3.0), rng.normal(-2.0, 0.5)});
  }
  const Vec z = norm.normalize({5.0, -2.0});
  EXPECT_NEAR(z[0], 0.0, 0.1);
  EXPECT_NEAR(z[1], 0.0, 0.1);
  const Vec z2 = norm.normalize({8.0, -2.0});
  EXPECT_NEAR(z2[0], 1.0, 0.1);
}

TEST(RunningNormalizer, ClipsExtremes) {
  RunningNormalizer norm{1, 2.0};
  norm.update({0.0});
  norm.update({1.0});
  const Vec z = norm.normalize({1e9});
  EXPECT_DOUBLE_EQ(z[0], 2.0);
}

TEST(RunningNormalizer, RestoreRoundTrips) {
  Rng rng{43};
  RunningNormalizer a{2};
  for (int i = 0; i < 1000; ++i) a.update({rng.normal(), rng.normal(3.0, 2.0)});
  RunningNormalizer b{2};
  b.restore(a.mean(), a.variance(), a.count());
  const Vec x{1.7, 4.2};
  const Vec za = a.normalize(x);
  const Vec zb = b.normalize(x);
  EXPECT_NEAR(za[0], zb[0], 1e-9);
  EXPECT_NEAR(za[1], zb[1], 1e-9);
}

TEST(RunningNormalizer, RestoreMomentsIsExactRoundTrip) {
  Rng rng{53};
  RunningNormalizer a{2};
  for (int i = 0; i < 137; ++i) a.update({rng.normal(), rng.normal(3.0, 2.0)});
  RunningNormalizer b{2};
  b.restore_moments(a.mean(), a.m2(), a.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.m2(), b.m2());
  EXPECT_EQ(a.count(), b.count());
  const Vec x{1.7, 4.2};
  EXPECT_EQ(a.normalize(x), b.normalize(x));
}

TEST(RunningNormalizer, RestoreYoungNormalizerKeepsZeroSecondMoment) {
  // With count < 2 Welford has accumulated no squared deviations, so
  // restore() must leave m2 at 0. It used to plant variance * 1 = 1.0,
  // which contaminated variance() as soon as the next sample arrived.
  RunningNormalizer a{1};
  a.update({5.0});
  RunningNormalizer b{1};
  b.restore(a.mean(), a.variance(), a.count());
  EXPECT_EQ(b.m2(), Vec{0.0});
  EXPECT_EQ(a.m2(), b.m2());

  // The two must stay bit-identical through further updates.
  a.update({7.0});
  b.update({7.0});
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.normalize({6.0}), b.normalize({6.0}));

  // Same for a completely empty normalizer.
  RunningNormalizer c{1};
  RunningNormalizer d{1};
  d.restore(c.mean(), c.variance(), c.count());
  EXPECT_EQ(d.m2(), Vec{0.0});
  EXPECT_EQ(d.count(), 0u);
}

TEST(ReturnNormalizer, ScalesTowardUnitVariance) {
  Rng rng{47};
  ReturnNormalizer norm{0.99};
  double last = 0.0;
  for (int i = 0; i < 20000; ++i) {
    last = norm.normalize(rng.normal(0.0, 50.0), i % 100 == 99);
  }
  EXPECT_LT(std::abs(last), 10.0 + 1e-9);
}

// ---------------------------------------------------------------- rollout / GAE

TEST(RolloutBuffer, GaeMatchesHandComputedEpisode) {
  // Two-step episode, gamma=0.5, lambda=1 (then GAE = discounted MC - V).
  RolloutBuffer buffer{2};
  Transition t1;
  t1.value = 1.0;
  t1.reward = 1.0;
  t1.done = false;
  Transition t2;
  t2.value = 2.0;
  t2.reward = 3.0;
  t2.done = true;
  buffer.add(t1);
  buffer.add(t2);
  buffer.compute_advantages(/*last_value=*/99.0, 0.5, 1.0);
  // delta2 = 3 - 2 = 1 (terminal, bootstrap dropped); adv2 = 1.
  // delta1 = 1 + 0.5*2 - 1 = 1; adv1 = 1 + 0.5*1 = 1.5.
  // Advantages are then standardized: mean 1.25, centered {0.25, -0.25}.
  // Check ordering and return targets instead of raw values.
  EXPECT_GT(buffer[0].advantage, buffer[1].advantage);
  EXPECT_NEAR(buffer[0].return_, 1.5 + 1.0, 1e-9);
  EXPECT_NEAR(buffer[1].return_, 1.0 + 2.0, 1e-9);
}

TEST(RolloutBuffer, TerminalBlocksBootstrap) {
  RolloutBuffer buffer{1};
  Transition t;
  t.value = 0.0;
  t.reward = 1.0;
  t.done = true;
  buffer.add(t);
  buffer.compute_advantages(/*last_value=*/1000.0, 0.99, 0.95);
  // Return target must ignore last_value entirely.
  EXPECT_NEAR(buffer[0].return_, 1.0, 1e-9);
}

TEST(RolloutBuffer, AdvantagesAreStandardized) {
  Rng rng{53};
  RolloutBuffer buffer{64};
  for (int i = 0; i < 64; ++i) {
    Transition t;
    t.value = rng.normal();
    t.reward = rng.normal();
    t.done = (i % 16 == 15);
    buffer.add(t);
  }
  buffer.compute_advantages(0.3, 0.99, 0.95);
  double mean = 0.0;
  for (std::size_t i = 0; i < buffer.size(); ++i) mean += buffer[i].advantage;
  mean /= 64.0;
  double var = 0.0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    var += (buffer[i].advantage - mean) * (buffer[i].advantage - mean);
  }
  var /= 64.0;
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-6);
}

TEST(RolloutBuffer, OverflowAndEmptyThrow) {
  RolloutBuffer buffer{1};
  buffer.add(Transition{});
  EXPECT_THROW(buffer.add(Transition{}), std::logic_error);
  RolloutBuffer empty{4};
  EXPECT_THROW(empty.compute_advantages(0.0, 0.99, 0.95), std::logic_error);
}

TEST(RolloutBuffer, ShuffledIndicesIsPermutation) {
  RolloutBuffer buffer{16};
  for (int i = 0; i < 16; ++i) buffer.add(Transition{});
  Rng rng{59};
  auto idx = buffer.shuffled_indices(rng);
  std::sort(idx.begin(), idx.end());
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i);
}

}  // namespace
