// Tests for the ABR substrate: video manifest, QoE_lin, the streaming
// simulator's conservation invariants, BB's rate map, MPC's prediction and
// planning, the offline optimum, and the playback runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "abr/bb.hpp"
#include "abr/mpc.hpp"
#include "abr/mpc_dp.hpp"
#include "abr/qoe_model.hpp"
#include "abr/optimal.hpp"
#include "abr/qoe.hpp"
#include "abr/runner.hpp"
#include "abr/sim.hpp"
#include "abr/video.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv::abr;
using netadv::trace::Segment;
using netadv::trace::Trace;
using netadv::util::Rng;

VideoManifest exact_manifest() {
  VideoManifest::Params p;
  p.size_variation = 0.0;  // sizes exactly bitrate * duration
  return VideoManifest{p};
}

Trace constant_trace(double bw_mbps, std::size_t segments = 48,
                     double duration = 4.0) {
  Trace t;
  for (std::size_t i = 0; i < segments; ++i) {
    t.append({duration, bw_mbps, 80.0, 0.0});
  }
  return t;
}

// ---------------------------------------------------------------- manifest

TEST(VideoManifest, DefaultsMatchPensieveSetup) {
  const VideoManifest m;
  EXPECT_EQ(m.num_qualities(), 6u);
  EXPECT_EQ(m.num_chunks(), 48u);
  EXPECT_DOUBLE_EQ(m.chunk_duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(m.bitrate_kbps(0), 300.0);
  EXPECT_DOUBLE_EQ(m.bitrate_kbps(5), 4300.0);
  EXPECT_DOUBLE_EQ(m.max_bitrate_mbps(), 4.3);
  EXPECT_DOUBLE_EQ(m.total_duration_s(), 192.0);
}

TEST(VideoManifest, ChunkSizeIsBitrateTimesDuration) {
  const VideoManifest m = exact_manifest();
  // 300 kbps * 4 s = 1.2 Mbit
  EXPECT_NEAR(m.chunk_size_bits(0, 0), 1.2e6, 1.0);
  EXPECT_NEAR(m.chunk_size_bits(10, 5), 17.2e6, 1.0);
}

TEST(VideoManifest, SizesVaryButStayBounded) {
  VideoManifest::Params p;
  p.size_variation = 0.1;
  const VideoManifest m{p};
  for (std::size_t i = 0; i < m.num_chunks(); ++i) {
    const double nominal = 1.2e6;
    const double s = m.chunk_size_bits(i, 0);
    EXPECT_GE(s, nominal * 0.9 - 1.0);
    EXPECT_LE(s, nominal * 1.1 + 1.0);
  }
}

TEST(VideoManifest, SameSeedSameSizes) {
  const VideoManifest a;
  const VideoManifest b;
  for (std::size_t i = 0; i < a.num_chunks(); ++i) {
    EXPECT_DOUBLE_EQ(a.chunk_size_bits(i, 3), b.chunk_size_bits(i, 3));
  }
}

TEST(VideoManifest, ChunkSizesVectorMatchesScalar) {
  const VideoManifest m;
  const auto sizes = m.chunk_sizes_bits(7);
  ASSERT_EQ(sizes.size(), 6u);
  for (std::size_t q = 0; q < 6; ++q) {
    EXPECT_DOUBLE_EQ(sizes[q], m.chunk_size_bits(7, q));
  }
}

TEST(VideoManifest, ValidatesParameters) {
  VideoManifest::Params bad;
  bad.bitrates_kbps = {300, 300};
  EXPECT_THROW(VideoManifest{bad}, std::invalid_argument);
  bad.bitrates_kbps = {};
  EXPECT_THROW(VideoManifest{bad}, std::invalid_argument);
  VideoManifest::Params bad2;
  bad2.num_chunks = 0;
  EXPECT_THROW(VideoManifest{bad2}, std::invalid_argument);
  VideoManifest::Params bad3;
  bad3.size_variation = 1.5;
  EXPECT_THROW(VideoManifest{bad3}, std::invalid_argument);
}

TEST(VideoManifest, OutOfRangeChunkThrows) {
  const VideoManifest m;
  EXPECT_THROW(m.chunk_size_bits(48, 0), std::out_of_range);
  EXPECT_THROW(m.chunk_size_bits(0, 6), std::out_of_range);
}

// ---------------------------------------------------------------- qoe

TEST(Qoe, ChunkQoeComponents) {
  const QoeParams p;
  // 2 Mbps, 1 s stall, previous 3 Mbps: 2 - 4.3 - 1 = -3.3
  EXPECT_NEAR(chunk_qoe(2.0, 1.0, 3.0, p), -3.3, 1e-12);
  EXPECT_NEAR(chunk_qoe(2.0, 0.0, 2.0, p), 2.0, 1e-12);
}

TEST(Qoe, TotalQoeMatchesPaperFormula) {
  // R = {1, 3, 2}, T = {0, 0.5, 0}:
  // sum R = 6; 4.3 * 0.5 = 2.15; |3-1| + |2-3| = 3  ->  0.85
  const std::vector<double> r{1.0, 3.0, 2.0};
  const std::vector<double> t{0.0, 0.5, 0.0};
  EXPECT_NEAR(total_qoe(r, t), 0.85, 1e-12);
}

TEST(Qoe, SmoothnessChargedOncePerTransition) {
  const std::vector<double> r{1.0, 1.0, 1.0};
  const std::vector<double> t{0.0, 0.0, 0.0};
  EXPECT_NEAR(total_qoe(r, t), 3.0, 1e-12);
}

TEST(Qoe, RejectsBadSpans) {
  const std::vector<double> r{1.0};
  const std::vector<double> t;
  EXPECT_THROW(total_qoe(r, t), std::invalid_argument);
}

TEST(Qoe, BadSpanErrorsNameBothSizes) {
  const std::vector<double> r{1.0, 2.0};
  const std::vector<double> t{0.0, 0.0, 0.0};
  try {
    total_qoe(r, t);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 bitrates"), std::string::npos) << what;
    EXPECT_NE(what.find("3 rebuffer entries"), std::string::npos) << what;
  }
  EXPECT_THROW(total_qoe({}, {}), std::invalid_argument);
}

// ---------------------------------------------------------------- qoe models

TEST(QoeModel, LinTotalScoreMatchesTotalQoeExactly) {
  const VideoManifest m = exact_manifest();
  LinQoe lin;
  lin.begin_video(m);
  const std::vector<std::size_t> qualities{0, 3, 2, 5, 5};
  const std::vector<double> rebuffers{1.0, 0.0, 0.5, 0.0, 0.25};
  std::vector<double> bitrates;
  for (const std::size_t q : qualities) bitrates.push_back(m.bitrate_mbps(q));
  EXPECT_DOUBLE_EQ(lin.total_score(qualities, rebuffers),
                   total_qoe(bitrates, rebuffers));
  EXPECT_DOUBLE_EQ(lin.quality_score(0, 5), 4.3);
  EXPECT_DOUBLE_EQ(lin.rebuffer_penalty(), 4.3);
}

TEST(QoeModel, ScoringBeforeBeginVideoIsALogicError) {
  LinQoe lin;
  EXPECT_THROW(lin.quality_score(0, 0), std::logic_error);
  LogQoe log;
  EXPECT_THROW(log.total_score(std::vector<std::size_t>{0},
                               std::vector<double>{0.0}),
               std::logic_error);
}

TEST(QoeModel, OutOfRangeErrorsEnumerateTheValidRanges) {
  const VideoManifest m = exact_manifest();  // 48 chunks x 6 qualities
  SsimTableQoe ssim;
  ssim.begin_video(m);
  try {
    ssim.quality_score(48, 0);
    FAIL() << "expected throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chunk 48 out of range [0, 48)"), std::string::npos)
        << what;
  }
  try {
    ssim.quality_score(0, 6);
    FAIL() << "expected throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quality 6 out of range [0, 6)"), std::string::npos)
        << what;
  }
}

TEST(QoeModel, LogIsZeroAtTheFloorAndConcave) {
  const VideoManifest m = exact_manifest();
  LogQoe log;
  log.begin_video(m);
  EXPECT_DOUBLE_EQ(log.quality_score(0, 0), 0.0);
  // Monotone in quality, with diminishing returns (concavity).
  double prev_score = 0.0;
  double prev_gain = std::numeric_limits<double>::infinity();
  for (std::size_t q = 1; q < m.num_qualities(); ++q) {
    const double score = log.quality_score(0, q);
    const double gain = score - prev_score;
    EXPECT_GT(gain, 0.0) << q;
    EXPECT_LT(gain, prev_gain) << q;
    prev_score = score;
    prev_gain = gain;
  }
}

// A table whose every row equals the bitrate ladder reduces the ssim model
// to QoE_lin (given lin's penalty weights): the table seam changes the
// quality axis, not the scoring structure.
TEST(QoeModel, BitrateIdentityTableReproducesQoeLin) {
  const VideoManifest m = exact_manifest();
  SsimTable table(m.num_chunks(), std::vector<double>(m.num_qualities()));
  for (auto& row : table) {
    for (std::size_t q = 0; q < m.num_qualities(); ++q) {
      row[q] = m.bitrate_mbps(q);
    }
  }
  SsimTableQoe ssim{std::move(table),
                    SsimTableQoe::Params{.rebuffer_penalty = 4.3,
                                         .smoothness_penalty = 1.0}};
  ssim.begin_video(m);
  const std::vector<std::size_t> qualities{1, 4, 4, 0, 2};
  const std::vector<double> rebuffers{0.0, 0.0, 1.5, 0.0, 0.0};
  std::vector<double> bitrates;
  for (const std::size_t q : qualities) bitrates.push_back(m.bitrate_mbps(q));
  EXPECT_DOUBLE_EQ(ssim.total_score(qualities, rebuffers),
                   total_qoe(bitrates, rebuffers));
}

TEST(QoeModel, SyntheticSsimTableIsMonotoneInQuality) {
  const VideoManifest m = exact_manifest();
  const SsimTable table = synthetic_ssim_table(m);
  ASSERT_EQ(table.size(), m.num_chunks());
  for (const auto& row : table) {
    ASSERT_EQ(row.size(), m.num_qualities());
    for (std::size_t q = 1; q < row.size(); ++q) {
      EXPECT_GT(row[q], row[q - 1]);  // more bits, better picture
    }
  }
}

TEST(QoeModel, SsimTableCsvRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "netadv_qoe_test").string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/table.csv";
  const VideoManifest m = exact_manifest();
  const SsimTable table = synthetic_ssim_table(m);
  save_ssim_table(table, path);
  const SsimTable loaded = load_ssim_table(path);
  ASSERT_EQ(loaded.size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    ASSERT_EQ(loaded[i].size(), table[i].size()) << i;
    for (std::size_t q = 0; q < table[i].size(); ++q) {
      EXPECT_NEAR(loaded[i][q], table[i][q],
                  1e-5 * std::abs(table[i][q]) + 1e-9);
    }
  }
  // Loaded tables drive the model end to end.
  SsimTableQoe qoe{loaded};
  qoe.begin_video(m);
  EXPECT_NEAR(qoe.quality_score(0, 3), table[0][3],
              1e-5 * std::abs(table[0][3]));
}

TEST(QoeModel, SsimTableLoadRejectsBadHeaderAndOrder) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "netadv_qoe_test").string();
  std::filesystem::create_directories(dir);
  const std::string bad_header = dir + "/bad_header.csv";
  std::ofstream{bad_header} << "idx,q0\n0,1.0\n";
  EXPECT_THROW(load_ssim_table(bad_header), std::runtime_error);
  const std::string out_of_order = dir + "/out_of_order.csv";
  std::ofstream{out_of_order} << "chunk,q0\n1,1.0\n0,2.0\n";
  EXPECT_THROW(load_ssim_table(out_of_order), std::runtime_error);
  EXPECT_THROW(load_ssim_table(dir + "/missing.csv"), std::runtime_error);
  EXPECT_THROW(save_ssim_table({}, dir + "/empty.csv"), std::runtime_error);
}

TEST(QoeModel, SsimTableDimensionMismatchNamesBothShapes) {
  SsimTableQoe qoe{SsimTable{{1.0, 2.0}, {1.0, 2.0}}};  // 2 x 2
  try {
    qoe.begin_video(exact_manifest());  // 48 x 6
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 x 2"), std::string::npos) << what;
    EXPECT_NE(what.find("48 chunks x 6 qualities"), std::string::npos) << what;
  }
  EXPECT_THROW(SsimTableQoe{SsimTable{}}, std::invalid_argument);
}

// ---------------------------------------------------------------- sim

TEST(StreamingSession, FirstChunkColdStartStalls) {
  const VideoManifest m = exact_manifest();
  StreamingSession s{m};
  // 1.2 Mbit at 1.2 Mbps -> 1 s download, all of it stalled (empty buffer).
  const DownloadResult r = s.download_next(0, 1.2);
  EXPECT_NEAR(r.download_time_s, 1.0, 1e-9);
  EXPECT_NEAR(r.rebuffer_s, 1.0, 1e-9);
  EXPECT_NEAR(r.buffer_after_s, 4.0, 1e-9);
  EXPECT_EQ(s.next_chunk(), 1u);
}

TEST(StreamingSession, BufferAbsorbsDownloadTime) {
  const VideoManifest m = exact_manifest();
  StreamingSession s{m};
  s.download_next(0, 12.0);  // dt = 0.1 s, buffer -> 3.9 + ... = 4 - 0.1? no:
  // After chunk 1: buffer = max(0, 0-0.1)+4 = 4.0 - wait, 0.1 s of it stalls.
  // Second chunk at same rate: dt = 0.1, buffer 4 -> 3.9 + 4 = 7.9, no stall.
  const DownloadResult r = s.download_next(0, 12.0);
  EXPECT_NEAR(r.rebuffer_s, 0.0, 1e-9);
  EXPECT_NEAR(r.buffer_after_s, 7.9, 1e-9);
}

TEST(StreamingSession, BufferCapsAndSleeps) {
  const VideoManifest m = exact_manifest();
  StreamingSession s{m, {.max_buffer_s = 8.0}};
  s.download_next(0, 1000.0);
  s.download_next(0, 1000.0);
  const DownloadResult r = s.download_next(0, 1000.0);
  EXPECT_GT(r.sleep_s, 0.0);
  EXPECT_NEAR(r.buffer_after_s, 8.0, 1e-6);
}

TEST(StreamingSession, BufferNeverNegativeAndTimeMonotone) {
  const VideoManifest m;
  StreamingSession s{m};
  Rng rng{7};
  double last_clock = 0.0;
  while (!s.finished()) {
    const auto q = rng.index(m.num_qualities());
    const double bw = rng.uniform(0.3, 5.0);
    const DownloadResult r = s.download_next(q, bw);
    EXPECT_GE(r.buffer_after_s, 0.0);
    EXPECT_GE(r.rebuffer_s, 0.0);
    EXPECT_GE(s.clock_s(), last_clock);
    last_clock = s.clock_s();
  }
  EXPECT_EQ(s.next_chunk(), m.num_chunks());
}

TEST(StreamingSession, WallClockAccountsForPlaybackConservation) {
  // With no sleeping and no stalls the clock equals sum of download times;
  // stalls add on top. Invariant: clock >= sum(download) and
  // clock == sum(download) + sum(sleep).
  const VideoManifest m = exact_manifest();
  StreamingSession s{m};
  double dl = 0.0;
  double sleep = 0.0;
  while (!s.finished()) {
    const DownloadResult r = s.download_next(2, 2.0);
    dl += r.download_time_s;
    sleep += r.sleep_s;
  }
  EXPECT_NEAR(s.clock_s(), dl + sleep, 1e-9);
}

TEST(StreamingSession, FinishedSessionThrows) {
  VideoManifest::Params p;
  p.num_chunks = 2;
  const VideoManifest m{p};
  StreamingSession s{m};
  s.download_next(0, 1.0);
  s.download_next(0, 1.0);
  EXPECT_TRUE(s.finished());
  EXPECT_THROW(s.download_next(0, 1.0), std::logic_error);
}

TEST(StreamingSession, ValidatesInputs) {
  const VideoManifest m;
  StreamingSession s{m};
  EXPECT_THROW(s.download_next(99, 1.0), std::invalid_argument);
  EXPECT_THROW(s.download_next(0, 0.0), std::invalid_argument);
  EXPECT_THROW((StreamingSession{m, {.max_buffer_s = -1.0}}),
               std::invalid_argument);
}

TEST(StreamingSession, RestartResets) {
  const VideoManifest m;
  StreamingSession s{m};
  s.download_next(0, 1.0);
  s.restart();
  EXPECT_EQ(s.next_chunk(), 0u);
  EXPECT_DOUBLE_EQ(s.buffer_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.clock_s(), 0.0);
}

// ---------------------------------------------------------------- bb

TEST(BufferBased, RateMapEndpoints) {
  const VideoManifest m;
  BufferBased bb;
  bb.begin_video(m);
  AbrObservation obs;
  obs.buffer_s = 5.0;  // below reservoir
  EXPECT_EQ(bb.choose_quality(obs), 0u);
  obs.buffer_s = 10.0;  // at reservoir boundary
  EXPECT_EQ(bb.choose_quality(obs), 0u);
  obs.buffer_s = 15.0;  // at reservoir + cushion
  EXPECT_EQ(bb.choose_quality(obs), 5u);
  obs.buffer_s = 40.0;
  EXPECT_EQ(bb.choose_quality(obs), 5u);
}

TEST(BufferBased, RateMapIsMonotoneInBuffer) {
  const VideoManifest m;
  BufferBased bb;
  bb.begin_video(m);
  AbrObservation obs;
  std::size_t last = 0;
  for (double b = 0.0; b <= 20.0; b += 0.25) {
    obs.buffer_s = b;
    const std::size_t q = bb.choose_quality(obs);
    EXPECT_GE(q, last);
    last = q;
  }
  EXPECT_EQ(last, 5u);
}

TEST(BufferBased, SwitchingBandIsReservoirToCushion) {
  // The paper: BB changes rate when buffer is in the 10-15 s range.
  const VideoManifest m;
  BufferBased bb;
  bb.begin_video(m);
  AbrObservation obs;
  obs.buffer_s = 12.5;
  const std::size_t mid = bb.choose_quality(obs);
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, 5u);
}

TEST(BufferBased, RequiresBeginVideo) {
  BufferBased bb;
  AbrObservation obs;
  EXPECT_THROW(bb.choose_quality(obs), std::logic_error);
}

TEST(BufferBased, ValidatesParams) {
  EXPECT_THROW((BufferBased{{.reservoir_s = -1.0, .cushion_s = 5.0}}),
               std::invalid_argument);
  EXPECT_THROW((BufferBased{{.reservoir_s = 5.0, .cushion_s = 0.0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- mpc

TEST(RobustMpc, PredictsHarmonicMean) {
  const VideoManifest m;
  RobustMpc mpc{{.robust = false}};
  mpc.begin_video(m);
  AbrObservation obs;
  obs.throughput_history_mbps = {1.0, 2.0, 4.0};
  EXPECT_NEAR(mpc.predicted_throughput_mbps(obs), 12.0 / 7.0, 1e-9);
}

TEST(RobustMpc, ColdStartPredictsLowestBitrate) {
  const VideoManifest m;
  RobustMpc mpc;
  mpc.begin_video(m);
  AbrObservation obs;
  EXPECT_NEAR(mpc.predicted_throughput_mbps(obs), 0.3, 1e-9);
}

TEST(RobustMpc, PicksHighRateOnFastStableLink) {
  const VideoManifest m = exact_manifest();
  RobustMpc mpc;
  const Trace t = constant_trace(4.8);
  const PlaybackRecord record = run_playback(mpc, m, t);
  // Steady 4.8 Mbps: after ramp-up MPC should sit at 2.85 or 4.3 Mbps.
  int high = 0;
  for (std::size_t i = 8; i < record.chunks.size(); ++i) {
    if (record.chunks[i].bitrate_mbps >= 2.85) ++high;
  }
  EXPECT_GT(high, 35);
  EXPECT_NEAR(record.total_rebuffer_s, 0.0, 0.5);
}

TEST(RobustMpc, PicksLowRateOnSlowLink) {
  const VideoManifest m = exact_manifest();
  RobustMpc mpc;
  const Trace t = constant_trace(0.4);
  const PlaybackRecord record = run_playback(mpc, m, t);
  for (std::size_t i = 4; i < record.chunks.size(); ++i) {
    EXPECT_LE(record.chunks[i].bitrate_mbps, 0.75);
  }
}

TEST(RobustMpc, RobustVariantIsMoreConservative) {
  const VideoManifest m = exact_manifest();
  RobustMpc robust{{.robust = true}};
  RobustMpc fast{{.robust = false}};
  // Oscillating link makes prediction errors large.
  Trace t;
  for (int i = 0; i < 48; ++i) {
    t.append({4.0, i % 2 == 0 ? 4.0 : 1.0, 80.0, 0.0});
  }
  const PlaybackRecord rr = run_playback(robust, m, t);
  const PlaybackRecord rf = run_playback(fast, m, t);
  EXPECT_LE(rr.total_rebuffer_s, rf.total_rebuffer_s + 1e-9);
}

TEST(RobustMpc, ValidatesParams) {
  EXPECT_THROW((RobustMpc{{.horizon = 0}}), std::invalid_argument);
  EXPECT_THROW((RobustMpc{{.throughput_window = 0}}), std::invalid_argument);
}

TEST(RobustMpc, RequiresBeginVideo) {
  RobustMpc mpc;
  AbrObservation obs;
  EXPECT_THROW(mpc.choose_quality(obs), std::logic_error);
}

// ---------------------------------------------------------------- mpc-dp

TEST(MpcDp, PredictorMatchesRobustMpc) {
  const VideoManifest m;
  MpcDp dp{{.robust = false}, std::make_unique<LinQoe>()};
  dp.begin_video(m);
  AbrObservation obs;
  obs.throughput_history_mbps = {1.0, 2.0, 4.0};
  EXPECT_NEAR(dp.predicted_throughput_mbps(obs), 12.0 / 7.0, 1e-9);
}

TEST(MpcDp, PicksHighRateOnFastStableLink) {
  const VideoManifest m = exact_manifest();
  MpcDp dp;
  const PlaybackRecord record = run_playback(dp, m, constant_trace(4.8));
  int high = 0;
  for (std::size_t i = 8; i < record.chunks.size(); ++i) {
    if (record.chunks[i].bitrate_mbps >= 2.85) ++high;
  }
  EXPECT_GT(high, 35);
  EXPECT_NEAR(record.total_rebuffer_s, 0.0, 0.5);
}

TEST(MpcDp, PicksLowRateOnSlowLink) {
  const VideoManifest m = exact_manifest();
  MpcDp dp;
  const PlaybackRecord record = run_playback(dp, m, constant_trace(0.4));
  for (std::size_t i = 4; i < record.chunks.size(); ++i) {
    EXPECT_LE(record.chunks[i].bitrate_mbps, 0.75);
  }
}

// mpc-dp solves the same lookahead as RobustMpc by value iteration instead
// of Q^H enumeration; under QoE_lin on benign links the two must land in
// the same QoE neighborhood (the DP's buffer discretization allows small
// deviations, not a different operating point).
TEST(MpcDp, TracksRobustMpcQoeOnBenignLinks) {
  const VideoManifest m = exact_manifest();
  for (const double bw : {0.8, 1.6, 3.0, 4.8}) {
    RobustMpc mpc;
    MpcDp dp;
    const Trace t = constant_trace(bw);
    const PlaybackRecord a = run_playback(mpc, m, t);
    const PlaybackRecord b = run_playback(dp, m, t);
    // Within 15% of the enumerating planner's QoE (plus slack for the
    // near-zero crossings at low bandwidths).
    EXPECT_NEAR(b.total_qoe, a.total_qoe,
                0.15 * std::abs(a.total_qoe) + 5.0)
        << "bandwidth " << bw;
  }
}

TEST(MpcDp, PlansAgainstTheConstructedQoeModel) {
  // A model that hates smoothness changes must switch no more often than
  // the lin-planning default on an oscillating link.
  const VideoManifest m = exact_manifest();
  Trace t;
  for (int i = 0; i < 48; ++i) {
    t.append({4.0, i % 2 == 0 ? 4.0 : 1.2, 80.0, 0.0});
  }
  MpcDp lin_dp;
  SsimTableQoe::Params sticky;
  sticky.smoothness_penalty = 50.0;
  MpcDp sticky_dp{{}, std::make_unique<SsimTableQoe>(sticky)};
  const PlaybackRecord a = run_playback(lin_dp, m, t);
  const PlaybackRecord b = run_playback(sticky_dp, m, t);
  EXPECT_LE(b.quality_switches, a.quality_switches);
  EXPECT_EQ(sticky_dp.qoe().name(), "ssim");
}

TEST(MpcDp, ValidatesParamsAndRequiresBeginVideo) {
  EXPECT_THROW((MpcDp{{.horizon = 0}, std::make_unique<LinQoe>()}),
               std::invalid_argument);
  EXPECT_THROW((MpcDp{{.buffer_levels = 0}, std::make_unique<LinQoe>()}),
               std::invalid_argument);
  MpcDp dp;
  AbrObservation obs;
  EXPECT_THROW(dp.choose_quality(obs), std::logic_error);
}

// ---------------------------------------------------------------- optimal

TEST(OfflineOptimal, BeatsEveryProtocolOnRandomTraces) {
  const VideoManifest m = exact_manifest();
  netadv::trace::UniformRandomGenerator gen{{}};
  Rng rng{11};
  BufferBased bb;
  RobustMpc mpc;
  for (int i = 0; i < 5; ++i) {
    const Trace t = gen.generate(rng);
    const OptimalPlan plan = optimal_playback(m, t);
    const double bb_qoe = run_playback(bb, m, t).total_qoe;
    const double mpc_qoe = run_playback(mpc, m, t).total_qoe;
    // Small slack for DP buffer quantization.
    EXPECT_GE(plan.total_qoe + 0.5, bb_qoe) << "trace " << i;
    EXPECT_GE(plan.total_qoe + 0.5, mpc_qoe) << "trace " << i;
  }
}

TEST(OfflineOptimal, PlanQoeMatchesReplay) {
  const VideoManifest m = exact_manifest();
  const Trace t = constant_trace(2.0);
  const OptimalPlan plan = optimal_playback(m, t);
  ASSERT_EQ(plan.qualities.size(), m.num_chunks());

  // Replay the plan through the real simulator and recompute QoE.
  StreamingSession s{m};
  std::vector<double> bitrates;
  std::vector<double> rebuffers;
  for (std::size_t i = 0; i < plan.qualities.size(); ++i) {
    const DownloadResult r = s.download_next(plan.qualities[i], 2.0);
    bitrates.push_back(r.bitrate_mbps);
    rebuffers.push_back(r.rebuffer_s);
  }
  const double replay_qoe = total_qoe(bitrates, rebuffers);
  EXPECT_NEAR(plan.total_qoe, replay_qoe, 1.0);  // quantization slack
}

TEST(OfflineOptimal, SaturatesAtTopRateOnFastLink) {
  const VideoManifest m = exact_manifest();
  const Trace t = constant_trace(50.0);
  const OptimalPlan plan = optimal_playback(m, t);
  int top = 0;
  for (std::size_t q : plan.qualities) top += (q == 5) ? 1 : 0;
  EXPECT_GT(top, 40);
}

TEST(OptimalWindow, OptimalAtLeastAnyFixedPlan) {
  const VideoManifest m = exact_manifest();
  const std::vector<double> bw{1.0, 3.0, 0.9, 2.5};
  const double opt = optimal_window_qoe(m, 10, 8.0, 1.2, bw);
  Rng rng{13};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> plan(4);
    for (auto& q : plan) q = rng.index(6);
    const double fixed = window_qoe(m, 10, 8.0, 1.2, plan, bw);
    EXPECT_GE(opt + 1e-9, fixed);
  }
}

TEST(OptimalWindow, WindowQoeHandComputed) {
  const VideoManifest m = exact_manifest();
  // One chunk at quality 0 (1.2 Mbit) over 1.2 Mbps from a 4 s buffer:
  // dt = 1 s, no stall, qoe = 0.3 - |0.3 - 0.3| = 0.3.
  const std::vector<std::size_t> plan{0};
  const std::vector<double> bw{1.2};
  EXPECT_NEAR(window_qoe(m, 0, 4.0, 0.3, plan, bw), 0.3, 1e-9);
  // Same but from empty buffer: 1 s stall -> 0.3 - 4.3 = -4.0.
  EXPECT_NEAR(window_qoe(m, 0, 0.0, 0.3, plan, bw), -4.0, 1e-9);
}

TEST(OptimalWindow, ValidatesInputs) {
  const VideoManifest m;
  const std::vector<double> empty;
  EXPECT_THROW(optimal_window_qoe(m, 0, 0.0, 0.3, empty),
               std::invalid_argument);
  const std::vector<double> bad{-1.0};
  EXPECT_THROW(optimal_window_qoe(m, 0, 0.0, 0.3, bad), std::invalid_argument);
  const std::vector<std::size_t> plan{0};
  const std::vector<double> bw{1.0, 2.0};
  EXPECT_THROW(window_qoe(m, 0, 0.0, 0.3, plan, bw), std::invalid_argument);
}

TEST(OptimalWindow, WindowPastVideoEndIsTruncated) {
  VideoManifest::Params p;
  p.num_chunks = 2;
  p.size_variation = 0.0;
  const VideoManifest m{p};
  const std::vector<double> bw{2.0, 2.0, 2.0, 2.0};
  // Only 2 chunks remain from chunk 0; should not throw.
  const double q = optimal_window_qoe(m, 0, 0.0, 0.3, bw);
  EXPECT_GT(q, -1e17);
}

// ---------------------------------------------------------------- runner

TEST(Runner, BandwidthForChunkClampsToLastSegment) {
  const Trace t = constant_trace(2.0, 3);
  EXPECT_DOUBLE_EQ(bandwidth_for_chunk(t, 0), 2.0);
  EXPECT_DOUBLE_EQ(bandwidth_for_chunk(t, 99), 2.0);
  const Trace empty;
  EXPECT_THROW(bandwidth_for_chunk(empty, 0), std::invalid_argument);
}

TEST(Runner, RecordsAreInternallyConsistent) {
  const VideoManifest m;
  BufferBased bb;
  const Trace t = constant_trace(2.0);
  const PlaybackRecord r = run_playback(bb, m, t);
  ASSERT_EQ(r.chunks.size(), m.num_chunks());
  double rebuf = 0.0;
  for (const auto& c : r.chunks) rebuf += c.rebuffer_s;
  EXPECT_NEAR(r.total_rebuffer_s, rebuf, 1e-9);
  EXPECT_NEAR(r.mean_chunk_qoe * static_cast<double>(m.num_chunks()),
              r.total_qoe, 1e-9);
  EXPECT_GT(r.mean_bitrate_mbps, 0.0);
}

TEST(Runner, HistoryWindowIsBounded) {
  // A protocol that asserts on the history length it sees.
  class Probe final : public AbrProtocol {
   public:
    std::string name() const override { return "probe"; }
    void begin_video(const VideoManifest&) override {}
    std::size_t choose_quality(const AbrObservation& obs) override {
      EXPECT_LE(obs.throughput_history_mbps.size(), 3u);
      EXPECT_LE(obs.download_time_history_s.size(), 3u);
      if (!obs.throughput_history_mbps.empty()) {
        max_seen = std::max(max_seen, obs.throughput_history_mbps.size());
      }
      return 0;
    }
    std::size_t max_seen = 0;
  };
  const VideoManifest m;
  Probe probe;
  run_playback(probe, m, constant_trace(2.0), {}, /*history_window=*/3);
  EXPECT_EQ(probe.max_seen, 3u);
}

TEST(Runner, QoePerTraceMatchesSingleRuns) {
  const VideoManifest m;
  BufferBased bb;
  const std::vector<Trace> traces{constant_trace(1.0), constant_trace(3.0)};
  const auto qoes = qoe_per_trace(bb, m, traces);
  ASSERT_EQ(qoes.size(), 2u);
  EXPECT_NEAR(qoes[0], run_playback(bb, m, traces[0]).mean_chunk_qoe, 1e-12);
  EXPECT_NEAR(qoes[1], run_playback(bb, m, traces[1]).mean_chunk_qoe, 1e-12);
  EXPECT_GT(qoes[1], qoes[0]);  // faster link, better QoE
}

TEST(Runner, FasterLinkNeverHurtsBb) {
  const VideoManifest m;
  BufferBased bb;
  double last = -1e18;
  for (double bw : {0.5, 1.0, 2.0, 4.0}) {
    const double qoe = run_playback(bb, m, constant_trace(bw)).total_qoe;
    EXPECT_GE(qoe, last - 1e-9);
    last = qoe;
  }
}

}  // namespace
