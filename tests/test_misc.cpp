// Gap-filling coverage: logging level plumbing, the robustify pipeline's
// validation, the recorder's Equation-1 bookkeeping on the CC side, and a
// couple of cross-module seams earlier suites reached only indirectly.
#include <gtest/gtest.h>

#include "abr/pensieve.hpp"
#include "core/cc_adversary.hpp"
#include "core/trainer.hpp"
#include "trace/generators.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

TEST(Log, ParseLevelNames) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Log, SetAndGetLevel) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  util::set_log_level(saved);
}

TEST(Robustify, RejectsNonPositiveFraction) {
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  const abr::VideoManifest m{mp};
  trace::FccLikeGenerator gen{{}};
  Rng rng{5};
  abr::PensieveEnv env{m, gen.generate_many(3, rng)};
  rl::PpoAgent agent = abr::make_pensieve_agent(m, 5);
  core::RobustifyConfig cfg;
  cfg.inject_fraction = 0.0;
  EXPECT_THROW(core::robustify_pensieve(agent, env, cfg),
               std::invalid_argument);
}

TEST(CcAdversaryEnv, RewardDecompositionSumsToValue) {
  core::CcAdversaryEnv::Params p;
  p.episode_duration_s = 0.6;
  core::CcAdversaryEnv env{p};
  Rng rng{7};
  env.reset(rng);
  for (int i = 0; i < 10; ++i) {
    const rl::StepResult r = env.step({0.3, -0.2, -0.8}, rng);
    const core::AdversaryReward& reward = env.last_reward();
    EXPECT_NEAR(r.reward,
                reward.optimal - reward.protocol - reward.smoothing, 1e-12);
    if (r.done) break;
  }
}

TEST(CcAdversaryEnv, SmoothingDecaysForConstantActions) {
  core::CcAdversaryEnv::Params p;
  p.episode_duration_s = 3.0;
  core::CcAdversaryEnv env{p};
  Rng rng{11};
  env.reset(rng);
  double last_smoothing = 1e9;
  for (int i = 0; i < 30; ++i) {
    env.step({0.6, -0.4, -1.0}, rng);
    if (i > 2) EXPECT_LE(env.last_reward().smoothing, last_smoothing + 1e-12);
    last_smoothing = env.last_reward().smoothing;
  }
  EXPECT_LT(last_smoothing, 1e-3);
}

TEST(PensieveAgentFactory, MatchesEnvInterfaces) {
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  const abr::VideoManifest m{mp};
  rl::PpoAgent agent = abr::make_pensieve_agent(m, 3);
  EXPECT_EQ(agent.observation_size(), abr::pensieve_feature_size(m));
  EXPECT_EQ(agent.action_spec().num_actions, m.num_qualities());
  const rl::PpoConfig& cfg = agent.config();
  ASSERT_EQ(cfg.hidden_sizes.size(), 2u);
  EXPECT_GT(cfg.ent_coef, 0.0);  // Pensieve leans on entropy regularization
}

TEST(TraceGenerators, ManifestAlignedSegmentCounts) {
  // Figure-1 replay assumes one segment per chunk; the default generators
  // must match the default manifest's 48 chunks.
  const abr::VideoManifest m;
  trace::FccLikeGenerator fcc{{}};
  trace::Hsdpa3gLikeGenerator tg{{}};
  trace::UniformRandomGenerator uni{{}};
  Rng rng{13};
  EXPECT_EQ(fcc.generate(rng).size(), m.num_chunks());
  EXPECT_EQ(tg.generate(rng).size(), m.num_chunks());
  EXPECT_EQ(uni.generate(rng).size(), m.num_chunks());
}

}  // namespace
