// Bit-exactness gates for the dispatched SIMD kernel layer (rl/kernels.hpp).
// The contract under test: the scalar fallback and the AVX2 backend compute
// the same canonical 4-lane fma accumulation order, so every kernel agrees
// bit for bit between backends — and therefore end-to-end PPO training
// produces byte-identical parameters whichever backend (and thread count)
// computed it. The ParallelKernels suite deliberately matches the Parallel*
// naming so the TSan CI lane picks it up.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "rl/kernels.hpp"
#include "rl/ppo.hpp"
#include "rl/toy_envs.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netadv;
using namespace netadv::rl;

const std::size_t kThreadCounts[] = {1, 2, 8};

// Sizes chosen to hit every AVX2 tail length (n % 4 == 0..3) at small and
// multi-register widths, plus the layer widths the repo actually trains.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9,
                              15, 16, 17, 31, 32, 33, 64, 100};

Vec random_vec(util::Rng& rng, std::size_t n) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

bool avx2_available() {
  return kernels::avx2_compiled() && kernels::avx2_runtime_supported();
}

TEST(KernelCanonicalOrder, DotMatchesFourLaneFmaReference) {
  util::Rng rng{101};
  for (std::size_t n : kSizes) {
    const Vec a = random_vec(rng, n);
    const Vec b = random_vec(rng, n);
    double lane[kernels::kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      lane[i % kernels::kLanes] = std::fma(a[i], b[i], lane[i % kernels::kLanes]);
    }
    const double expected = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    EXPECT_EQ(kernels::scalar::dot(a, b), expected) << "n=" << n;
    EXPECT_EQ(kernels::dot(a, b), expected) << "n=" << n;
  }
}

TEST(KernelCanonicalOrder, GemvIsBiasPlusCanonicalDotPerRow) {
  util::Rng rng{202};
  const std::size_t rows = 7, cols = 13;
  const Vec w = random_vec(rng, rows * cols);
  const Vec x = random_vec(rng, cols);
  const Vec b = random_vec(rng, rows);
  Vec y(rows, 0.0);
  kernels::scalar::gemv(w, rows, cols, x, b, y);
  for (std::size_t r = 0; r < rows; ++r) {
    const Vec row(w.begin() + static_cast<std::ptrdiff_t>(r * cols),
                  w.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    EXPECT_EQ(y[r], b[r] + kernels::scalar::dot(row, x)) << "row " << r;
  }
}

TEST(KernelBitIdentity, ScalarAndAvx2AgreeOnEveryKernel) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 backend not available";
  util::Rng rng{303};
  for (std::size_t rows : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                           std::size_t{16}}) {
    for (std::size_t cols : kSizes) {
      const Vec w = random_vec(rng, rows * cols);
      const Vec x = random_vec(rng, cols);
      const Vec b = random_vec(rng, rows);
      const Vec g = random_vec(rng, rows);

      Vec ys(rows, 0.0), yv(rows, 0.0);
      kernels::scalar::gemv(w, rows, cols, x, b, ys);
      kernels::avx2::gemv(w, rows, cols, x, b, yv);
      EXPECT_EQ(ys, yv) << "gemv " << rows << "x" << cols;

      const std::size_t batch = 3;
      const Vec xb = random_vec(rng, batch * cols);
      Vec zs(batch * rows, 0.0), zv(batch * rows, 0.0);
      kernels::scalar::gemm(w, rows, cols, xb, batch, b, zs);
      kernels::avx2::gemm(w, rows, cols, xb, batch, b, zv);
      EXPECT_EQ(zs, zv) << "gemm " << rows << "x" << cols;

      Vec ts(cols, 0.0), tv(cols, 0.0);
      kernels::scalar::gemv_transposed(w, rows, cols, g, ts);
      kernels::avx2::gemv_transposed(w, rows, cols, g, tv);
      EXPECT_EQ(ts, tv) << "gemv_transposed " << rows << "x" << cols;

      Vec ws = w, wv = w;
      kernels::scalar::rank1_update(ws, rows, cols, g, x);
      kernels::avx2::rank1_update(wv, rows, cols, g, x);
      EXPECT_EQ(ws, wv) << "rank1_update " << rows << "x" << cols;

      const Vec a2 = random_vec(rng, cols);
      EXPECT_EQ(kernels::scalar::dot(x, a2), kernels::avx2::dot(x, a2))
          << "dot n=" << cols;
    }
  }
}

TEST(KernelBitIdentity, GemmEqualsRepeatedGemv) {
  util::Rng rng{404};
  const std::size_t rows = 5, cols = 11, batch = 4;
  const Vec w = random_vec(rng, rows * cols);
  const Vec b = random_vec(rng, rows);
  const Vec xb = random_vec(rng, batch * cols);
  Vec batched(batch * rows, 0.0);
  kernels::gemm(w, rows, cols, xb, batch, b, batched);
  for (std::size_t n = 0; n < batch; ++n) {
    const Vec x(xb.begin() + static_cast<std::ptrdiff_t>(n * cols),
                xb.begin() + static_cast<std::ptrdiff_t>((n + 1) * cols));
    Vec y(rows, 0.0);
    kernels::gemv(w, rows, cols, x, b, y);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(batched[n * rows + r], y[r]) << "sample " << n << " row " << r;
    }
  }
}

TEST(KernelDispatch, SetBackendRespectsAvailability) {
  const kernels::Backend original = kernels::active_backend();
  const kernels::Backend got = kernels::set_backend(kernels::Backend::kAvx2);
  if (avx2_available()) {
    EXPECT_EQ(got, kernels::Backend::kAvx2);
    EXPECT_STREQ(kernels::backend_name(), "avx2");
  } else {
    EXPECT_EQ(got, kernels::Backend::kScalar);
    EXPECT_STREQ(kernels::backend_name(), "scalar");
  }
  EXPECT_EQ(kernels::set_backend(kernels::Backend::kScalar),
            kernels::Backend::kScalar);
  EXPECT_STREQ(kernels::backend_name(), "scalar");
  kernels::set_backend(original);
}

/// Restores the dispatched backend on scope exit so a failing assertion in
/// one test cannot leak a forced backend into the next.
class BackendGuard {
 public:
  explicit BackendGuard(kernels::Backend backend)
      : original_(kernels::active_backend()) {
    kernels::set_backend(backend);
  }
  ~BackendGuard() { kernels::set_backend(original_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  kernels::Backend original_;
};

PpoAgent train_ppo_with(kernels::Backend backend, std::size_t threads,
                        bool continuous) {
  util::set_log_level(util::LogLevel::kWarn);
  BackendGuard guard{backend};
  PpoConfig cfg;
  cfg.hidden_sizes = {16, 8};
  cfg.n_steps = 128;
  cfg.minibatch_size = 32;
  cfg.epochs = 3;
  cfg.ent_coef = 0.01;
  std::unique_ptr<Env> env;
  if (continuous) {
    env = std::make_unique<TargetChaseEnv>(16);
  } else {
    env = std::make_unique<ContextualBanditEnv>(2, 3, 8);
  }
  PpoAgent agent{env->observation_size(), env->action_spec(), cfg, 31};
  util::ThreadPool pool{threads};
  agent.set_thread_pool(&pool);
  agent.train(*env, 384);
  agent.set_thread_pool(nullptr);
  return agent;
}

void expect_identical_params(const PpoAgent& agent, const PpoAgent& reference,
                             kernels::Backend backend, std::size_t threads) {
  const char* name =
      backend == kernels::Backend::kAvx2 ? "avx2" : "scalar";
  const auto ref_actor = reference.actor().params();
  const auto actor = agent.actor().params();
  ASSERT_EQ(actor.size(), ref_actor.size());
  for (std::size_t i = 0; i < actor.size(); ++i) {
    ASSERT_EQ(actor[i], ref_actor[i])
        << "actor param " << i << " differs (" << name << ", " << threads
        << " threads)";
  }
  const auto ref_critic = reference.critic().params();
  const auto critic = agent.critic().params();
  ASSERT_EQ(critic.size(), ref_critic.size());
  for (std::size_t i = 0; i < critic.size(); ++i) {
    ASSERT_EQ(critic[i], ref_critic[i])
        << "critic param " << i << " differs (" << name << ", " << threads
        << " threads)";
  }
  ASSERT_EQ(agent.log_std(), reference.log_std())
      << "log_std differs (" << name << ", " << threads << " threads)";
}

TEST(ParallelKernels, PpoDiscreteBitIdenticalAcrossBackendsAndThreads) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 backend not available";
  const PpoAgent reference =
      train_ppo_with(kernels::Backend::kScalar, 1, /*continuous=*/false);
  for (kernels::Backend backend :
       {kernels::Backend::kScalar, kernels::Backend::kAvx2}) {
    for (std::size_t threads : kThreadCounts) {
      const PpoAgent agent = train_ppo_with(backend, threads, false);
      expect_identical_params(agent, reference, backend, threads);
    }
  }
}

TEST(ParallelKernels, PpoContinuousBitIdenticalAcrossBackendsAndThreads) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 backend not available";
  const PpoAgent reference =
      train_ppo_with(kernels::Backend::kScalar, 1, /*continuous=*/true);
  for (kernels::Backend backend :
       {kernels::Backend::kScalar, kernels::Backend::kAvx2}) {
    for (std::size_t threads : kThreadCounts) {
      const PpoAgent agent = train_ppo_with(backend, threads, true);
      expect_identical_params(agent, reference, backend, threads);
    }
  }
}

}  // namespace
