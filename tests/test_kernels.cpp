// Bit-exactness gates for the dispatched SIMD kernel layer (rl/kernels.hpp).
// The contract under test: the scalar fallback and every SIMD backend (AVX2,
// AVX-512, NEON) compute the same canonical accumulation orders — 4 fma
// lanes in fp64, 8 in fp32 — so every kernel agrees bit for bit between
// backends, and therefore end-to-end PPO training produces byte-identical
// parameters whichever backend (and thread count) computed it. Identity
// suites for backends this host cannot run skip explicitly (GTEST_SKIP), so
// an unsupported host reports "skipped", never a silent pass. The
// ParallelKernels suite deliberately matches the Parallel* naming so the
// TSan CI lane picks it up.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "rl/kernels.hpp"
#include "rl/ppo.hpp"
#include "rl/toy_envs.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netadv;
using namespace netadv::rl;

using FVec = std::vector<float>;

const std::size_t kThreadCounts[] = {1, 2, 8};

// Sizes chosen to hit every SIMD tail length (n % 4 and n % 8) at small and
// multi-register widths, plus the layer widths the repo actually trains.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9,
                              15, 16, 17, 31, 32, 33, 64, 100};

Vec random_vec(util::Rng& rng, std::size_t n) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

FVec random_fvec(util::Rng& rng, std::size_t n) {
  FVec v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

/// The full kernel surface of one named backend, so identity tests can run
/// the same body against avx2/avx512/neon.
struct BackendFns {
  kernels::Backend backend;
  void (*gemv)(std::span<const double>, std::size_t, std::size_t,
               std::span<const double>, std::span<const double>,
               std::span<double>);
  void (*gemv_f32)(std::span<const float>, std::size_t, std::size_t,
                   std::span<const float>, std::span<const float>,
                   std::span<float>);
  void (*gemm)(std::span<const double>, std::size_t, std::size_t,
               std::span<const double>, std::size_t, std::span<const double>,
               std::span<double>);
  void (*gemm_f32)(std::span<const float>, std::size_t, std::size_t,
                   std::span<const float>, std::size_t, std::span<const float>,
                   std::span<float>);
  void (*gemv_transposed)(std::span<const double>, std::size_t, std::size_t,
                          std::span<const double>, std::span<double>);
  void (*rank1_update)(std::span<double>, std::size_t, std::size_t,
                       std::span<const double>, std::span<const double>);
  double (*dot)(std::span<const double>, std::span<const double>);
  float (*dot_f32)(std::span<const float>, std::span<const float>);
};

const BackendFns kBackendFns[] = {
    {kernels::Backend::kAvx2, kernels::avx2::gemv, kernels::avx2::gemv,
     kernels::avx2::gemm, kernels::avx2::gemm, kernels::avx2::gemv_transposed,
     kernels::avx2::rank1_update, kernels::avx2::dot, kernels::avx2::dot},
    {kernels::Backend::kAvx512, kernels::avx512::gemv, kernels::avx512::gemv,
     kernels::avx512::gemm, kernels::avx512::gemm,
     kernels::avx512::gemv_transposed, kernels::avx512::rank1_update,
     kernels::avx512::dot, kernels::avx512::dot},
    {kernels::Backend::kNeon, kernels::neon::gemv, kernels::neon::gemv,
     kernels::neon::gemm, kernels::neon::gemm,
     kernels::neon::gemv_transposed, kernels::neon::rank1_update,
     kernels::neon::dot, kernels::neon::dot},
};

const BackendFns& backend_fns(kernels::Backend backend) {
  for (const auto& fns : kBackendFns) {
    if (fns.backend == backend) return fns;
  }
  ADD_FAILURE() << "no named-backend table entry for "
                << kernels::backend_name(backend);
  return kBackendFns[0];
}

/// SIMD backends with a hardware implementation to compare against scalar.
std::vector<kernels::Backend> available_simd_backends() {
  std::vector<kernels::Backend> out;
  for (kernels::Backend b : {kernels::Backend::kAvx2,
                             kernels::Backend::kAvx512,
                             kernels::Backend::kNeon}) {
    if (kernels::backend_available(b)) out.push_back(b);
  }
  return out;
}

TEST(KernelCanonicalOrder, DotMatchesFourLaneFmaReference) {
  util::Rng rng{101};
  for (std::size_t n : kSizes) {
    const Vec a = random_vec(rng, n);
    const Vec b = random_vec(rng, n);
    double lane[kernels::kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      lane[i % kernels::kLanes] = std::fma(a[i], b[i], lane[i % kernels::kLanes]);
    }
    const double expected = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    EXPECT_EQ(kernels::scalar::dot(a, b), expected) << "n=" << n;
    EXPECT_EQ(kernels::dot(a, b), expected) << "n=" << n;
  }
}

TEST(KernelCanonicalOrder, DotF32MatchesEightLaneFmaReference) {
  util::Rng rng{111};
  for (std::size_t n : kSizes) {
    const FVec a = random_fvec(rng, n);
    const FVec b = random_fvec(rng, n);
    float lane[kernels::kLanesF32] = {};
    for (std::size_t i = 0; i < n; ++i) {
      lane[i % kernels::kLanesF32] =
          std::fmaf(a[i], b[i], lane[i % kernels::kLanesF32]);
    }
    const float expected = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    EXPECT_EQ(kernels::scalar::dot(a, b), expected) << "n=" << n;
    EXPECT_EQ(kernels::dot(a, b), expected) << "n=" << n;
  }
}

TEST(KernelCanonicalOrder, GemvIsBiasPlusCanonicalDotPerRow) {
  util::Rng rng{202};
  const std::size_t rows = 7, cols = 13;
  const Vec w = random_vec(rng, rows * cols);
  const Vec x = random_vec(rng, cols);
  const Vec b = random_vec(rng, rows);
  Vec y(rows, 0.0);
  kernels::scalar::gemv(w, rows, cols, x, b, y);
  for (std::size_t r = 0; r < rows; ++r) {
    const Vec row(w.begin() + static_cast<std::ptrdiff_t>(r * cols),
                  w.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    EXPECT_EQ(y[r], b[r] + kernels::scalar::dot(row, x)) << "row " << r;
  }
}

/// Value-parameterized scalar-vs-backend identity: one instantiation per
/// SIMD backend, each skipping explicitly when this host cannot run it.
class KernelBitIdentityP
    : public ::testing::TestWithParam<kernels::Backend> {
 protected:
  void SetUp() override {
    if (!kernels::backend_available(GetParam())) {
      GTEST_SKIP() << kernels::backend_name(GetParam())
                   << " backend not available on this host";
    }
  }
};

TEST_P(KernelBitIdentityP, ScalarAndSimdAgreeOnEveryKernel) {
  const BackendFns& fns = backend_fns(GetParam());
  util::Rng rng{303};
  // Odd and even row counts both matter: the AVX-512 gemv pairs rows two
  // per register and handles a trailing odd row separately.
  for (std::size_t rows : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                           std::size_t{8}, std::size_t{16}}) {
    for (std::size_t cols : kSizes) {
      const Vec w = random_vec(rng, rows * cols);
      const Vec x = random_vec(rng, cols);
      const Vec b = random_vec(rng, rows);
      const Vec g = random_vec(rng, rows);

      Vec ys(rows, 0.0), yv(rows, 0.0);
      kernels::scalar::gemv(w, rows, cols, x, b, ys);
      fns.gemv(w, rows, cols, x, b, yv);
      EXPECT_EQ(ys, yv) << "gemv " << rows << "x" << cols;

      const std::size_t batch = 3;
      const Vec xb = random_vec(rng, batch * cols);
      Vec zs(batch * rows, 0.0), zv(batch * rows, 0.0);
      kernels::scalar::gemm(w, rows, cols, xb, batch, b, zs);
      fns.gemm(w, rows, cols, xb, batch, b, zv);
      EXPECT_EQ(zs, zv) << "gemm " << rows << "x" << cols;

      Vec ts(cols, 0.0), tv(cols, 0.0);
      kernels::scalar::gemv_transposed(w, rows, cols, g, ts);
      fns.gemv_transposed(w, rows, cols, g, tv);
      EXPECT_EQ(ts, tv) << "gemv_transposed " << rows << "x" << cols;

      Vec ws = w, wv = w;
      kernels::scalar::rank1_update(ws, rows, cols, g, x);
      fns.rank1_update(wv, rows, cols, g, x);
      EXPECT_EQ(ws, wv) << "rank1_update " << rows << "x" << cols;

      const Vec a2 = random_vec(rng, cols);
      EXPECT_EQ(kernels::scalar::dot(x, a2), fns.dot(x, a2))
          << "dot n=" << cols;
    }
  }
}

TEST_P(KernelBitIdentityP, ScalarAndSimdAgreeOnEveryF32Kernel) {
  const BackendFns& fns = backend_fns(GetParam());
  util::Rng rng{313};
  for (std::size_t rows : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                           std::size_t{8}, std::size_t{16}}) {
    for (std::size_t cols : kSizes) {
      const FVec w = random_fvec(rng, rows * cols);
      const FVec x = random_fvec(rng, cols);
      const FVec b = random_fvec(rng, rows);

      FVec ys(rows, 0.0f), yv(rows, 0.0f);
      kernels::scalar::gemv(w, rows, cols, x, b, ys);
      fns.gemv_f32(w, rows, cols, x, b, yv);
      EXPECT_EQ(ys, yv) << "gemv f32 " << rows << "x" << cols;

      const std::size_t batch = 3;
      const FVec xb = random_fvec(rng, batch * cols);
      FVec zs(batch * rows, 0.0f), zv(batch * rows, 0.0f);
      kernels::scalar::gemm(w, rows, cols, xb, batch, b, zs);
      fns.gemm_f32(w, rows, cols, xb, batch, b, zv);
      EXPECT_EQ(zs, zv) << "gemm f32 " << rows << "x" << cols;

      const FVec a2 = random_fvec(rng, cols);
      EXPECT_EQ(kernels::scalar::dot(x, a2), fns.dot_f32(x, a2))
          << "dot f32 n=" << cols;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSimdBackends, KernelBitIdentityP,
    ::testing::Values(kernels::Backend::kAvx2, kernels::Backend::kAvx512,
                      kernels::Backend::kNeon),
    [](const ::testing::TestParamInfo<kernels::Backend>& info) {
      return std::string(kernels::backend_name(info.param));
    });

TEST(KernelBitIdentity, GemmEqualsRepeatedGemv) {
  util::Rng rng{404};
  const std::size_t rows = 5, cols = 11, batch = 4;
  const Vec w = random_vec(rng, rows * cols);
  const Vec b = random_vec(rng, rows);
  const Vec xb = random_vec(rng, batch * cols);
  Vec batched(batch * rows, 0.0);
  kernels::gemm(w, rows, cols, xb, batch, b, batched);
  for (std::size_t n = 0; n < batch; ++n) {
    const Vec x(xb.begin() + static_cast<std::ptrdiff_t>(n * cols),
                xb.begin() + static_cast<std::ptrdiff_t>((n + 1) * cols));
    Vec y(rows, 0.0);
    kernels::gemv(w, rows, cols, x, b, y);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(batched[n * rows + r], y[r]) << "sample " << n << " row " << r;
    }
  }
}

TEST(KernelDispatch, SetBackendRespectsAvailability) {
  const kernels::Backend original = kernels::active_backend();
  for (kernels::Backend requested : {kernels::Backend::kAvx2,
                                     kernels::Backend::kAvx512,
                                     kernels::Backend::kNeon}) {
    const kernels::Backend got = kernels::set_backend(requested);
    if (kernels::backend_available(requested)) {
      EXPECT_EQ(got, requested);
      EXPECT_STREQ(kernels::backend_name(),
                   kernels::backend_name(requested));
    } else {
      // An unavailable request must degrade to scalar, never crash on an
      // illegal instruction.
      EXPECT_EQ(got, kernels::Backend::kScalar);
      EXPECT_STREQ(kernels::backend_name(), "scalar");
    }
    // The dispatched kernels must be callable whatever was selected.
    const Vec a{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_EQ(kernels::dot(a, a), kernels::scalar::dot(a, a));
  }
  EXPECT_EQ(kernels::set_backend(kernels::Backend::kScalar),
            kernels::Backend::kScalar);
  EXPECT_STREQ(kernels::backend_name(), "scalar");
  kernels::set_backend(original);
}

TEST(KernelDispatch, BestBackendIsAvailableAndOrdered) {
  const kernels::Backend best = kernels::best_backend();
  EXPECT_TRUE(kernels::backend_available(best));
  // best_backend prefers wider ISAs: anything it skipped over must be
  // unavailable.
  if (best != kernels::Backend::kAvx512) {
    EXPECT_FALSE(kernels::backend_available(kernels::Backend::kAvx512));
  }
  if (best != kernels::Backend::kAvx512 && best != kernels::Backend::kAvx2) {
    EXPECT_FALSE(kernels::backend_available(kernels::Backend::kAvx2));
  }
}

TEST(KernelDispatch, UnavailableNamedBackendsForwardToScalar) {
  // Namespaces for backends that were compiled out (e.g. neon on x86) are
  // still linkable and forward to scalar — bit-identical by definition.
  util::Rng rng{505};
  const Vec a = random_vec(rng, 33);
  const Vec b = random_vec(rng, 33);
  const double expected = kernels::scalar::dot(a, b);
  for (const auto& fns : kBackendFns) {
    if (kernels::backend_available(fns.backend)) continue;
    EXPECT_EQ(fns.dot(a, b), expected)
        << kernels::backend_name(fns.backend) << " stub";
  }
}

/// Restores the dispatched backend on scope exit so a failing assertion in
/// one test cannot leak a forced backend into the next.
class BackendGuard {
 public:
  explicit BackendGuard(kernels::Backend backend)
      : original_(kernels::active_backend()) {
    kernels::set_backend(backend);
  }
  ~BackendGuard() { kernels::set_backend(original_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  kernels::Backend original_;
};

PpoAgent train_ppo_with(kernels::Backend backend, std::size_t threads,
                        bool continuous) {
  util::set_log_level(util::LogLevel::kWarn);
  BackendGuard guard{backend};
  PpoConfig cfg;
  cfg.hidden_sizes = {16, 8};
  cfg.n_steps = 128;
  cfg.minibatch_size = 32;
  cfg.epochs = 3;
  cfg.ent_coef = 0.01;
  std::unique_ptr<Env> env;
  if (continuous) {
    env = std::make_unique<TargetChaseEnv>(16);
  } else {
    env = std::make_unique<ContextualBanditEnv>(2, 3, 8);
  }
  PpoAgent agent{env->observation_size(), env->action_spec(), cfg, 31};
  util::ThreadPool pool{threads};
  agent.set_thread_pool(&pool);
  agent.train(*env, 384);
  agent.set_thread_pool(nullptr);
  return agent;
}

void expect_identical_params(const PpoAgent& agent, const PpoAgent& reference,
                             kernels::Backend backend, std::size_t threads) {
  const char* name = kernels::backend_name(backend);
  const auto ref_actor = reference.actor().params();
  const auto actor = agent.actor().params();
  ASSERT_EQ(actor.size(), ref_actor.size());
  for (std::size_t i = 0; i < actor.size(); ++i) {
    ASSERT_EQ(actor[i], ref_actor[i])
        << "actor param " << i << " differs (" << name << ", " << threads
        << " threads)";
  }
  const auto ref_critic = reference.critic().params();
  const auto critic = agent.critic().params();
  ASSERT_EQ(critic.size(), ref_critic.size());
  for (std::size_t i = 0; i < critic.size(); ++i) {
    ASSERT_EQ(critic[i], ref_critic[i])
        << "critic param " << i << " differs (" << name << ", " << threads
        << " threads)";
  }
  ASSERT_EQ(agent.log_std(), reference.log_std())
      << "log_std differs (" << name << ", " << threads << " threads)";
}

TEST(ParallelKernels, PpoDiscreteBitIdenticalAcrossBackendsAndThreads) {
  const std::vector<kernels::Backend> simd = available_simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend available";
  const PpoAgent reference =
      train_ppo_with(kernels::Backend::kScalar, 1, /*continuous=*/false);
  std::vector<kernels::Backend> backends{kernels::Backend::kScalar};
  backends.insert(backends.end(), simd.begin(), simd.end());
  for (kernels::Backend backend : backends) {
    for (std::size_t threads : kThreadCounts) {
      const PpoAgent agent = train_ppo_with(backend, threads, false);
      expect_identical_params(agent, reference, backend, threads);
    }
  }
}

TEST(ParallelKernels, PpoContinuousBitIdenticalAcrossBackendsAndThreads) {
  const std::vector<kernels::Backend> simd = available_simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend available";
  const PpoAgent reference =
      train_ppo_with(kernels::Backend::kScalar, 1, /*continuous=*/true);
  std::vector<kernels::Backend> backends{kernels::Backend::kScalar};
  backends.insert(backends.end(), simd.begin(), simd.end());
  for (kernels::Backend backend : backends) {
    for (std::size_t threads : kThreadCounts) {
      const PpoAgent agent = train_ppo_with(backend, threads, true);
      expect_identical_params(agent, reference, backend, threads);
    }
  }
}

}  // namespace
