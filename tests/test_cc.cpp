// Tests for the congestion-control substrate: the link model's conservation
// and delay properties, the windowed filters, BBR's state machine and
// steady-state utilization, and the loss-based baselines (including the
// paper's Section-4 claim that Cubic/Reno collapse under ~1% random loss
// while BBR does not).
#include <gtest/gtest.h>

#include <cmath>

#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "cc/link.hpp"
#include "cc/runner.hpp"
#include "cc/windowed_filter.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv::cc;
using netadv::util::Rng;

LinkSim::Params benign_link(double bw_mbps = 12.0, double owd_ms = 30.0,
                            double loss = 0.0) {
  LinkSim::Params p;
  p.initial = {bw_mbps, owd_ms, loss};
  return p;
}

// ---------------------------------------------------------------- filter

TEST(WindowedFilter, MaxTracksLargestInWindow) {
  WindowedFilter f{FilterKind::kMax, 10.0};
  f.update(5.0, 0.0);
  f.update(3.0, 1.0);
  EXPECT_DOUBLE_EQ(f.get(1.0), 5.0);
  f.update(7.0, 2.0);
  EXPECT_DOUBLE_EQ(f.get(2.0), 7.0);
}

TEST(WindowedFilter, ExpiresOldExtreme) {
  WindowedFilter f{FilterKind::kMax, 10.0};
  f.update(9.0, 0.0);
  f.update(4.0, 5.0);
  EXPECT_DOUBLE_EQ(f.get(5.0), 9.0);
  // At t=11 the 9.0 sample (age 11) is out of the window; 4.0 remains.
  EXPECT_DOUBLE_EQ(f.get(11.0), 4.0);
}

TEST(WindowedFilter, MinKind) {
  WindowedFilter f{FilterKind::kMin, 10.0};
  f.update(5.0, 0.0);
  f.update(2.0, 1.0);
  f.update(8.0, 2.0);
  EXPECT_DOUBLE_EQ(f.get(2.0), 2.0);
  EXPECT_DOUBLE_EQ(f.get(12.0), 8.0);  // the 2.0 expired
}

TEST(WindowedFilter, EmptyReturnsZero) {
  WindowedFilter f{FilterKind::kMax, 1.0};
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.get(0.0), 0.0);
}

TEST(WindowedFilter, ShrinkingWindowDropsStale) {
  WindowedFilter f{FilterKind::kMax, 100.0};
  f.update(9.0, 0.0);
  f.update(1.0, 50.0);
  f.set_window_length(10.0);
  EXPECT_DOUBLE_EQ(f.get(50.0), 1.0);
}

// ---------------------------------------------------------------- link

TEST(LinkSim, UnloadedPacketSeesOnlyPropAndTxDelay) {
  LinkSim link{benign_link(12.0, 30.0)};
  Rng rng{1};
  const TransmitResult r = link.transmit(0.0, rng);
  ASSERT_EQ(r.kind, TransmitResult::Kind::kDelivered);
  const double tx = 12000.0 / 12e6;  // 1 ms
  EXPECT_NEAR(r.delivery_time_s, tx + 0.030, 1e-9);
  EXPECT_NEAR(r.ack_return_time_s, tx + 0.060, 1e-9);
  EXPECT_DOUBLE_EQ(r.queue_delay_s, 0.0);
}

TEST(LinkSim, BackToBackPacketsQueue) {
  LinkSim link{benign_link(12.0, 0.0)};
  Rng rng{2};
  link.transmit(0.0, rng);
  const TransmitResult r2 = link.transmit(0.0, rng);
  EXPECT_NEAR(r2.queue_delay_s, 0.001, 1e-9);  // behind one 1-ms packet
  EXPECT_NEAR(r2.delivery_time_s, 0.002, 1e-9);
}

TEST(LinkSim, ServiceRateBoundsThroughput) {
  // Offer far more than capacity for one second; deliveries are spaced at
  // the service rate, so the last delivery time reflects capacity.
  LinkSim::Params p = benign_link(12.0, 0.0);
  p.max_queue_delay_s = 1e9;  // no tail drop for this test
  LinkSim link{p};
  Rng rng{3};
  int delivered = 0;
  double last_delivery = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const TransmitResult r = link.transmit(0.0, rng);
    if (r.kind == TransmitResult::Kind::kDelivered &&
        r.delivery_time_s <= 1.0) {
      ++delivered;
      last_delivery = std::max(last_delivery, r.delivery_time_s);
    }
  }
  // 12 Mbps / 12 kbit = 1000 packets per second.
  EXPECT_NEAR(delivered, 1000, 2);
}

TEST(LinkSim, TailDropWhenBufferFull) {
  LinkSim::Params p = benign_link(12.0, 0.0);
  p.max_queue_delay_s = 0.01;  // 10 packets deep at 1 ms each
  LinkSim link{p};
  Rng rng{4};
  int drops = 0;
  for (int i = 0; i < 100; ++i) {
    if (link.transmit(0.0, rng).kind == TransmitResult::Kind::kTailDrop) {
      ++drops;
    }
  }
  EXPECT_GT(drops, 80);
}

TEST(LinkSim, RandomLossMatchesRate) {
  LinkSim link{benign_link(12.0, 10.0, 0.3)};
  Rng rng{5};
  int losses = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    // Spread packets out so the queue never builds.
    if (link.transmit(static_cast<double>(i) * 0.01, rng).kind ==
        TransmitResult::Kind::kRandomLoss) {
      ++losses;
    }
  }
  EXPECT_NEAR(static_cast<double>(losses) / n, 0.3, 0.02);
}

TEST(LinkSim, BandwidthChangeAffectsNewPackets) {
  LinkSim link{benign_link(12.0, 0.0)};
  Rng rng{6};
  link.set_conditions({24.0, 0.0, 0.0});
  const TransmitResult r = link.transmit(0.0, rng);
  EXPECT_NEAR(r.delivery_time_s, 12000.0 / 24e6, 1e-9);
}

TEST(LinkSim, ValidatesConditions) {
  LinkSim link{benign_link()};
  EXPECT_THROW(link.set_conditions({0.0, 10.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(link.set_conditions({1.0, -1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(link.set_conditions({1.0, 10.0, 1.5}), std::invalid_argument);
}

TEST(LinkSim, ResetClearsBacklog) {
  LinkSim link{benign_link(12.0, 0.0)};
  Rng rng{7};
  for (int i = 0; i < 50; ++i) link.transmit(0.0, rng);
  EXPECT_GT(link.backlog_delay_s(0.0), 0.0);
  link.reset();
  EXPECT_DOUBLE_EQ(link.backlog_delay_s(0.0), 0.0);
}

// ---------------------------------------------------------------- runner invariants

TEST(CcRunner, ConservationSentEqualsDeliveredPlusLostPlusInflight) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0, 0.02), 11};
  runner.run_until(10.0);
  EXPECT_EQ(runner.total_sent(),
            runner.total_delivered() + runner.total_lost() +
                static_cast<std::uint64_t>(runner.inflight_packets()));
}

TEST(CcRunner, DeliveredNeverExceedsCapacity) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(6.0, 15.0), 13};
  runner.run_until(5.0);
  const IntervalStats stats = runner.collect();
  EXPECT_LE(stats.delivered_bits, stats.capacity_bits * 1.05);
  EXPECT_LE(stats.utilization(), 1.0);
}

TEST(CcRunner, CollectResetsAccumulators) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(), 17};
  runner.run_until(2.0);
  runner.collect();
  const IntervalStats empty_stats = runner.collect();
  EXPECT_EQ(empty_stats.packets_sent, 0u);
  EXPECT_DOUBLE_EQ(empty_stats.duration_s, 0.0);
}

TEST(CcRunner, RunUntilPastThrows) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(), 19};
  runner.run_until(1.0);
  EXPECT_THROW(runner.run_until(0.5), std::invalid_argument);
}

TEST(CcRunner, RttReflectsPropagationDelay) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(24.0, 50.0), 23};
  runner.run_until(3.0);
  const IntervalStats stats = runner.collect();
  EXPECT_GE(stats.mean_rtt_s, 0.100);   // at least 2 * owd
  EXPECT_LT(stats.mean_rtt_s, 0.400);   // bounded by the 0.25 s buffer
}

// ---------------------------------------------------------------- bbr

TEST(Bbr, ReachesHighUtilizationOnStableLink) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0), 29};
  runner.run_until(5.0);
  runner.collect();  // discard startup transient
  runner.run_until(15.0);
  const IntervalStats stats = runner.collect();
  EXPECT_GT(stats.utilization(), 0.8);
}

TEST(Bbr, EstimatesBottleneckBandwidth) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0), 31};
  runner.run_until(10.0);
  EXPECT_NEAR(bbr.bottleneck_bw_bps() / 1e6, 12.0, 3.0);
}

TEST(Bbr, EstimatesMinRtt) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 40.0), 37};
  runner.run_until(10.0);
  EXPECT_NEAR(bbr.min_rtt_s(), 0.080, 0.01);
}

TEST(Bbr, LeavesStartupAfterPlateau) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0), 41};
  runner.run_until(5.0);
  EXPECT_TRUE(bbr.filled_pipe());
  EXPECT_NE(bbr.mode(), BbrSender::Mode::kStartup);
}

TEST(Bbr, EntersProbeRttAboutEveryTenSeconds) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0), 43};
  int probe_rtt_epochs = 0;
  bool was_in_probe_rtt = false;
  for (double t = 0.03; t <= 30.0; t += 0.03) {
    runner.run_until(t);
    const bool in = bbr.mode() == BbrSender::Mode::kProbeRtt;
    if (in && !was_in_probe_rtt) ++probe_rtt_epochs;
    was_in_probe_rtt = in;
  }
  // min_rtt is refreshed by queue-free moments too, so PROBE_RTT may trigger
  // less often than the 10 s worst case — but on a steadily probed link it
  // should appear at least once and at most a handful of times in 30 s.
  EXPECT_GE(probe_rtt_epochs, 1);
  EXPECT_LE(probe_rtt_epochs, 4);
}

TEST(Bbr, CyclesThroughProbeBwPhases) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0), 47};
  runner.run_until(5.0);
  ASSERT_EQ(bbr.mode(), BbrSender::Mode::kProbeBw);
  std::size_t distinct = 0;
  std::size_t last_phase = 999;
  for (double t = 5.0; t <= 8.0; t += 0.01) {
    runner.run_until(t);
    if (bbr.mode() == BbrSender::Mode::kProbeBw &&
        bbr.probe_bw_phase() != last_phase) {
      ++distinct;
      last_phase = bbr.probe_bw_phase();
    }
  }
  EXPECT_GE(distinct, 8u);  // full cycle in 3 s of ~60 ms RTT phases
}

TEST(Bbr, TracksBandwidthIncrease) {
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(6.0, 30.0), 53};
  runner.run_until(8.0);
  const double est_low = bbr.bottleneck_bw_bps();
  runner.set_conditions({24.0, 30.0, 0.0});
  runner.run_until(20.0);
  const double est_high = bbr.bottleneck_bw_bps();
  EXPECT_GT(est_high, est_low * 1.5);
}

TEST(Bbr, SurvivesModerateRandomLoss) {
  // The Section 4 contrast: BBR ignores random loss by design.
  BbrSender bbr;
  CcRunner runner{bbr, benign_link(12.0, 30.0, 0.02), 59};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(15.0);
  const IntervalStats stats = runner.collect();
  EXPECT_GT(stats.utilization(), 0.7);
}

TEST(Bbr, ValidatesParams) {
  BbrSender::Params bad;
  bad.packet_bits = 0.0;
  EXPECT_THROW(BbrSender{bad}, std::invalid_argument);
  BbrSender::Params bad2;
  bad2.probe_bw_gains.clear();
  EXPECT_THROW(BbrSender{bad2}, std::invalid_argument);
}

// ---------------------------------------------------------------- cubic / reno

TEST(Cubic, HighUtilizationOnCleanLink) {
  CubicSender cubic;
  CcRunner runner{cubic, benign_link(12.0, 30.0), 61};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(15.0);
  const IntervalStats stats = runner.collect();
  EXPECT_GT(stats.utilization(), 0.8);
}

TEST(Cubic, CollapsesUnderOnePercentLoss) {
  // The paper: "TCP congestion control variants like Cubic, Reno and HTCP
  // all share a trivial weakness to packet loss even as low as 1%."
  CubicSender cubic;
  CcRunner runner{cubic, benign_link(12.0, 30.0, 0.01), 67};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(20.0);
  const IntervalStats stats = runner.collect();
  EXPECT_LT(stats.utilization(), 0.6);
}

TEST(Reno, CollapsesUnderOnePercentLoss) {
  RenoSender reno;
  CcRunner runner{reno, benign_link(12.0, 30.0, 0.01), 71};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(20.0);
  const IntervalStats stats = runner.collect();
  EXPECT_LT(stats.utilization(), 0.5);
}

TEST(Reno, HighUtilizationOnCleanLink) {
  RenoSender reno;
  CcRunner runner{reno, benign_link(12.0, 30.0), 73};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(15.0);
  const IntervalStats stats = runner.collect();
  EXPECT_GT(stats.utilization(), 0.8);
}

TEST(Cubic, LossHalvesWindowOncePerRtt) {
  CubicSender cubic;
  cubic.start(0.0);
  AckInfo ack;
  ack.rtt_s = 0.06;
  ack.ack_time_s = 1.0;
  for (int i = 0; i < 50; ++i) cubic.on_ack(ack);  // grow in slow start
  const double before = cubic.cwnd_packets();
  LossInfo loss;
  loss.detect_time_s = 1.01;
  cubic.on_loss(loss);
  const double after_first = cubic.cwnd_packets();
  EXPECT_NEAR(after_first, before * 0.7, 1e-6);
  // A second loss within the same RTT is part of the same episode.
  loss.detect_time_s = 1.02;
  cubic.on_loss(loss);
  EXPECT_DOUBLE_EQ(cubic.cwnd_packets(), after_first);
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  CubicSender cubic;
  cubic.start(0.0);
  EXPECT_TRUE(cubic.in_slow_start());
  const double w0 = cubic.cwnd_packets();
  AckInfo ack;
  ack.rtt_s = 0.06;
  for (int i = 0; i < static_cast<int>(w0); ++i) cubic.on_ack(ack);
  EXPECT_NEAR(cubic.cwnd_packets(), 2.0 * w0, 1e-9);
}

TEST(Reno, AdditiveIncreaseIsOnePacketPerRtt) {
  RenoSender reno;
  reno.start(0.0);
  LossInfo loss;
  loss.detect_time_s = 0.5;
  reno.on_loss(loss);  // leave slow start
  const double w0 = reno.cwnd_packets();
  AckInfo ack;
  ack.rtt_s = 0.06;
  ack.ack_time_s = 1.0;
  for (int i = 0; i < static_cast<int>(w0); ++i) reno.on_ack(ack);
  EXPECT_NEAR(reno.cwnd_packets(), w0 + 1.0, 0.1);
}

TEST(BbrVsCubic, BbrWinsUnderRandomLoss) {
  BbrSender bbr;
  CcRunner r1{bbr, benign_link(12.0, 30.0, 0.03), 79};
  r1.run_until(20.0);
  CubicSender cubic;
  CcRunner r2{cubic, benign_link(12.0, 30.0, 0.03), 79};
  r2.run_until(20.0);
  EXPECT_GT(static_cast<double>(r1.total_delivered()),
            1.5 * static_cast<double>(r2.total_delivered()));
}

}  // namespace
