// Tests for the PCC Vivace sender: utility-driven rate control, loss
// tolerance below its utility threshold, latency-gradient sensitivity, and
// integration as an adversary target.
#include <gtest/gtest.h>

#include "cc/runner.hpp"
#include "cc/vivace.hpp"
#include "core/cc_adversary.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

cc::LinkSim::Params link_with(double bw, double owd, double loss) {
  cc::LinkSim::Params p;
  p.initial = {bw, owd, loss};
  return p;
}

TEST(Vivace, ConvergesToLinkCapacity) {
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(12.0, 30.0, 0.0), 7};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(20.0);
  const cc::IntervalStats stats = runner.collect();
  EXPECT_GT(stats.utilization(), 0.85);
  EXPECT_NEAR(vivace.base_rate_mbps(), 12.0, 3.0);
}

TEST(Vivace, ToleratesOnePercentLoss) {
  // Vivace's loss coefficient (11.35) gives a designed random-loss
  // tolerance of several percent — the Section 4 contrast with Cubic/Reno.
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(12.0, 30.0, 0.01), 11};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(20.0);
  EXPECT_GT(runner.collect().utilization(), 0.7);
}

TEST(Vivace, BacksOffUnderHeavyLoss) {
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(12.0, 30.0, 0.10), 13};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(20.0);
  // At 10% the utility's loss term dominates; Vivace should not saturate.
  EXPECT_LT(runner.collect().utilization(), 0.8);
}

TEST(Vivace, AvoidsStandingQueues) {
  // The latency-gradient penalty keeps Vivace from filling the buffer the
  // way loss-probing protocols do.
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(12.0, 30.0, 0.0), 17};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(20.0);
  EXPECT_LT(runner.collect().mean_queue_delay_s, 0.1);
}

TEST(Vivace, TracksBandwidthChange) {
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(6.0, 30.0, 0.0), 19};
  runner.run_until(10.0);
  const double rate_low = vivace.base_rate_mbps();
  runner.set_conditions({24.0, 30.0, 0.0});
  runner.run_until(30.0);
  EXPECT_GT(vivace.base_rate_mbps(), rate_low * 1.5);
}

TEST(Vivace, AmplifierGrowsWithConsistentDirection) {
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(24.0, 30.0, 0.0), 23};
  // Starting at 2 Mbps on a 24 Mbps link: a long run of "up" decisions.
  int max_amp = 1;
  for (double t = 0.1; t <= 4.0; t += 0.1) {
    runner.run_until(t);
    max_amp = std::max(max_amp, vivace.amplifier());
  }
  EXPECT_GT(max_amp, 1);
}

TEST(Vivace, ValidatesParams) {
  cc::VivaceSender::Params bad;
  bad.probe_epsilon = 0.0;
  EXPECT_THROW(cc::VivaceSender{bad}, std::invalid_argument);
  cc::VivaceSender::Params bad2;
  bad2.utility_exponent = 1.0;
  EXPECT_THROW(cc::VivaceSender{bad2}, std::invalid_argument);
  cc::VivaceSender::Params bad3;
  bad3.max_rate_mbps = bad3.min_rate_mbps;
  EXPECT_THROW(cc::VivaceSender{bad3}, std::invalid_argument);
}

TEST(Vivace, StartResetsState) {
  cc::VivaceSender vivace;
  cc::CcRunner runner{vivace, link_with(24.0, 30.0, 0.0), 29};
  runner.run_until(10.0);
  EXPECT_GT(vivace.base_rate_mbps(), 5.0);
  vivace.start(0.0);
  EXPECT_DOUBLE_EQ(vivace.base_rate_mbps(), 2.0);
  EXPECT_EQ(vivace.amplifier(), 1);
}

TEST(Vivace, WorksAsCcAdversaryTarget) {
  core::CcAdversaryEnv::Params p;
  p.episode_duration_s = 1.0;
  core::CcAdversaryEnv env{p, [] {
    return std::unique_ptr<cc::CcSender>(std::make_unique<cc::VivaceSender>());
  }};
  Rng rng{31};
  env.reset(rng);
  rl::StepResult r{};
  while (!r.done) r = env.step({0.0, 0.0, -1.0}, rng);
  EXPECT_EQ(env.sender()->name(), "vivace");
}

}  // namespace
