// Tests for the fairness adversary environment (the Section-5 incast/
// fairness direction built on the multi-flow substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "core/fairness_adversary.hpp"
#include "core/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

TEST(FairnessAdversaryEnv, ContractsMatchTable1) {
  core::FairnessAdversaryEnv env;
  EXPECT_EQ(env.observation_size(), 3u);
  const rl::ActionSpec spec = env.action_spec();
  EXPECT_DOUBLE_EQ(spec.low[0], 6.0);
  EXPECT_DOUBLE_EQ(spec.high[0], 24.0);
  EXPECT_DOUBLE_EQ(spec.low[1], 15.0);
  EXPECT_DOUBLE_EQ(spec.high[1], 60.0);
  EXPECT_DOUBLE_EQ(spec.high[2], 0.10);
}

TEST(FairnessAdversaryEnv, ObservationsAreBoundedShares) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 1.5;
  core::FairnessAdversaryEnv env{p};
  Rng rng{7};
  rl::Vec obs = env.reset(rng);
  ASSERT_EQ(obs.size(), 3u);
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    EXPECT_GE(r.observation[0], 0.0);
    EXPECT_LE(r.observation[0], 1.0);
    EXPECT_GE(r.observation[1], 0.0);
    EXPECT_LE(r.observation[1], 1.0);
    EXPECT_GE(r.observation[2], 0.0);
    EXPECT_LE(r.observation[2], 1.0);
  }
}

TEST(FairnessAdversaryEnv, HomogeneousFlowsOnSteadyLinkGiveLowReward) {
  // Two identical BBRs on constant conditions share fairly, so the
  // adversary earns almost nothing: r = (1 - jain) - 0 - ~0.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 10.0;
  core::FairnessAdversaryEnv env{p};
  Rng rng{11};
  env.reset(rng);
  double tail_reward = 0.0;
  std::size_t tail_n = 0;
  rl::StepResult r{};
  std::size_t i = 0;
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    if (++i > 150) {  // past startup jockeying
      tail_reward += r.reward;
      ++tail_n;
    }
  }
  EXPECT_LT(tail_reward / static_cast<double>(tail_n), 0.35);
  EXPECT_GT(env.last_jain(), 0.6);
}

TEST(FairnessAdversaryEnv, MixedFlowsGiveUnfairnessSignal) {
  // BBR vs Cubic on a shallow buffer: unfairness exists even without an
  // adversary — the env must expose it as positive reward potential.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 10.0;
  p.link.max_queue_delay_s = 0.05;
  std::vector<core::FairnessAdversaryEnv::SenderFactory> factories{
      [] {
        return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
      },
      [] {
        return std::unique_ptr<cc::CcSender>(
            std::make_unique<cc::CubicSender>());
      }};
  core::FairnessAdversaryEnv env{p, factories};
  Rng rng{13};
  env.reset(rng);
  double best = -1.0;
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    best = std::max(best, r.reward);
  }
  EXPECT_GT(best, 0.3);  // jain well below 1 at some point
}

TEST(FairnessAdversaryEnv, RewardDecompositionIsEquationOne) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 0.6;
  core::FairnessAdversaryEnv env{p};
  Rng rng{17};
  env.reset(rng);
  const rl::StepResult r = env.step({0.2, -0.1, -1.0}, rng);
  const core::AdversaryReward& reward = env.last_reward();
  EXPECT_NEAR(r.reward, reward.optimal - reward.protocol - reward.smoothing,
              1e-12);
  EXPECT_DOUBLE_EQ(reward.optimal, 1.0);
}

TEST(FairnessAdversaryEnv, Validates) {
  core::FairnessAdversaryEnv::Params bad;
  bad.epoch_s = 0.0;
  EXPECT_THROW(core::FairnessAdversaryEnv{bad}, std::invalid_argument);
  std::vector<core::FairnessAdversaryEnv::SenderFactory> one{
      [] {
        return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
      }};
  EXPECT_THROW((core::FairnessAdversaryEnv{{}, one}), std::invalid_argument);
  core::FairnessAdversaryEnv env;
  Rng rng{19};
  EXPECT_THROW(env.step({0.0, 0.0, 0.0}, rng), std::logic_error);
}

TEST(FairnessAdversaryEnv, AllLossEpochEarnsNothingAndStaysFinite) {
  // Max loss starves every flow. The regression this pins: Jain of an
  // all-zero throughput vector must be 1 (trivially fair) so the pay term
  // is zero, and the 0/0 flow share must come out as the fair share 1/n —
  // not NaN into the policy network.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 4.0;
  p.stagger_s = 0.2;
  p.loss_max = 1.0;  // let the probe saturate the link with loss
  core::FairnessAdversaryEnv env{p};
  Rng rng{29};
  rl::Vec obs = env.reset(rng);
  rl::StepResult r{};
  bool saw_starved = false;
  std::size_t epoch = 1;  // reset ran the first epoch
  while (!r.done) {
    r = env.step({0.0, 0.0, 1.0}, rng);  // clips to loss = 1.0
    ++epoch;
    const double now = static_cast<double>(epoch) * p.epoch_s;
    for (double x : r.observation) EXPECT_TRUE(std::isfinite(x)) << x;
    if (env.last_interval().aggregate_utilization() <= 0.0 &&
        now > env.all_started_at_s() + p.epoch_s) {
      saw_starved = true;
      // Starved epoch: jain forced to 1, so the whole reward is the loss
      // charge minus smoothing — strictly non-positive.
      EXPECT_DOUBLE_EQ(env.last_jain(), 1.0);
      EXPECT_LE(r.reward, 0.0);
      // Starved-interval share is defined as 1/n.
      EXPECT_DOUBLE_EQ(r.observation[0], 0.5);
    }
  }
  EXPECT_TRUE(saw_starved);
  (void)obs;
}

TEST(FairnessAdversaryEnv, VictimRewardTracksFlowZeroSuppression) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 6.0;
  p.stagger_s = 0.5;
  p.reward = core::FairnessAdversaryEnv::RewardKind::kVictim;
  core::FairnessAdversaryEnv env{p};
  Rng rng{31};
  env.reset(rng);
  rl::StepResult r{};
  std::size_t epoch = 1;  // reset ran the first epoch
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    ++epoch;
    const double now = static_cast<double>(epoch) * p.epoch_s;
    // protocol term = min(1, n * victim_util) + loss; with loss pinned at 0
    // the decomposition must reproduce the victim utilization accessor.
    const double victim_term =
        std::min(1.0, 2.0 * env.last_victim_utilization());
    if (now > env.all_started_at_s() + p.epoch_s &&
        env.last_interval().aggregate_utilization() > 0.0) {
      EXPECT_NEAR(env.last_reward().protocol, victim_term, 1e-12);
    }
    EXPECT_GE(env.last_victim_utilization(), 0.0);
    EXPECT_LE(env.last_victim_utilization(), 1.0);
  }
}

TEST(FairnessAdversaryEnv, CrossTrafficScenarioAddsAnAccompliceFlow) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 4.0;
  p.stagger_s = 0.2;
  p.scenario = core::FairnessAdversaryEnv::Scenario::kCrossTraffic;
  core::FairnessAdversaryEnv env{p};
  EXPECT_EQ(env.name(), "cross-traffic-adversary");
  Rng rng{37};
  env.reset(rng);
  rl::StepResult r{};
  while (!r.done) r = env.step({0.0, 0.0, -1.0}, rng);
  // The interval carries mix flows + the accomplice; the mix accessors
  // exclude it.
  EXPECT_EQ(env.mix_flow_count(), 2u);
  EXPECT_EQ(env.last_interval().flows.size(), 3u);
}

TEST(FairnessAdversaryEnv, LateJoinDrawsArrivalInsideTheWindow) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 6.0;
  p.scenario = core::FairnessAdversaryEnv::Scenario::kLateJoin;
  p.late_join_min_s = 1.0;
  p.late_join_max_s = 3.0;
  core::FairnessAdversaryEnv env{p};
  EXPECT_EQ(env.name(), "late-join-adversary");
  Rng rng{41};
  double first_draw = -1.0;
  bool draws_differ = false;
  for (int episode = 0; episode < 4; ++episode) {
    env.reset(rng);
    EXPECT_GE(env.late_join_time_s(), 1.0);
    EXPECT_LE(env.late_join_time_s(), 3.0);
    if (first_draw < 0.0) {
      first_draw = env.late_join_time_s();
    } else if (env.late_join_time_s() != first_draw) {
      draws_differ = true;
    }
  }
  EXPECT_TRUE(draws_differ);  // randomized per episode, not pinned
}

TEST(FairnessAdversaryEnv, ScenarioAndRewardSpellingsRoundTrip) {
  using Env = core::FairnessAdversaryEnv;
  EXPECT_EQ(core::fairness_scenario_for("fairness"), Env::Scenario::kFairness);
  EXPECT_EQ(core::fairness_scenario_for("cross-traffic"),
            Env::Scenario::kCrossTraffic);
  EXPECT_EQ(core::fairness_scenario_for("late-join"),
            Env::Scenario::kLateJoin);
  EXPECT_FALSE(core::fairness_scenario_for("ppo").has_value());
  EXPECT_FALSE(core::fairness_scenario_for("cem").has_value());

  EXPECT_EQ(core::parse_fairness_reward("jain"), Env::RewardKind::kJain);
  EXPECT_EQ(core::parse_fairness_reward("victim"), Env::RewardKind::kVictim);
  EXPECT_THROW(core::parse_fairness_reward("nope"), std::runtime_error);
}

TEST(FairnessAdversaryEnv, TrainableWithPpo) {
  // Short training run must execute cleanly end to end.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 3.0;
  core::FairnessAdversaryEnv env{p};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     core::cc_adversary_ppo_config(), 23};
  const rl::TrainReport report = agent.train(env, 4096);
  EXPECT_GT(report.episodes, 0u);
}

}  // namespace
