// Tests for the fairness adversary environment (the Section-5 incast/
// fairness direction built on the multi-flow substrate).
#include <gtest/gtest.h>

#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "core/fairness_adversary.hpp"
#include "core/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

TEST(FairnessAdversaryEnv, ContractsMatchTable1) {
  core::FairnessAdversaryEnv env;
  EXPECT_EQ(env.observation_size(), 3u);
  const rl::ActionSpec spec = env.action_spec();
  EXPECT_DOUBLE_EQ(spec.low[0], 6.0);
  EXPECT_DOUBLE_EQ(spec.high[0], 24.0);
  EXPECT_DOUBLE_EQ(spec.low[1], 15.0);
  EXPECT_DOUBLE_EQ(spec.high[1], 60.0);
  EXPECT_DOUBLE_EQ(spec.high[2], 0.10);
}

TEST(FairnessAdversaryEnv, ObservationsAreBoundedShares) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 1.5;
  core::FairnessAdversaryEnv env{p};
  Rng rng{7};
  rl::Vec obs = env.reset(rng);
  ASSERT_EQ(obs.size(), 3u);
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    EXPECT_GE(r.observation[0], 0.0);
    EXPECT_LE(r.observation[0], 1.0);
    EXPECT_GE(r.observation[1], 0.0);
    EXPECT_LE(r.observation[1], 1.0);
    EXPECT_GE(r.observation[2], 0.0);
    EXPECT_LE(r.observation[2], 1.0);
  }
}

TEST(FairnessAdversaryEnv, HomogeneousFlowsOnSteadyLinkGiveLowReward) {
  // Two identical BBRs on constant conditions share fairly, so the
  // adversary earns almost nothing: r = (1 - jain) - 0 - ~0.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 10.0;
  core::FairnessAdversaryEnv env{p};
  Rng rng{11};
  env.reset(rng);
  double tail_reward = 0.0;
  std::size_t tail_n = 0;
  rl::StepResult r{};
  std::size_t i = 0;
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    if (++i > 150) {  // past startup jockeying
      tail_reward += r.reward;
      ++tail_n;
    }
  }
  EXPECT_LT(tail_reward / static_cast<double>(tail_n), 0.35);
  EXPECT_GT(env.last_jain(), 0.6);
}

TEST(FairnessAdversaryEnv, MixedFlowsGiveUnfairnessSignal) {
  // BBR vs Cubic on a shallow buffer: unfairness exists even without an
  // adversary — the env must expose it as positive reward potential.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 10.0;
  p.link.max_queue_delay_s = 0.05;
  std::vector<core::FairnessAdversaryEnv::SenderFactory> factories{
      [] {
        return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
      },
      [] {
        return std::unique_ptr<cc::CcSender>(
            std::make_unique<cc::CubicSender>());
      }};
  core::FairnessAdversaryEnv env{p, factories};
  Rng rng{13};
  env.reset(rng);
  double best = -1.0;
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({0.0, 0.0, -1.0}, rng);
    best = std::max(best, r.reward);
  }
  EXPECT_GT(best, 0.3);  // jain well below 1 at some point
}

TEST(FairnessAdversaryEnv, RewardDecompositionIsEquationOne) {
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 0.6;
  core::FairnessAdversaryEnv env{p};
  Rng rng{17};
  env.reset(rng);
  const rl::StepResult r = env.step({0.2, -0.1, -1.0}, rng);
  const core::AdversaryReward& reward = env.last_reward();
  EXPECT_NEAR(r.reward, reward.optimal - reward.protocol - reward.smoothing,
              1e-12);
  EXPECT_DOUBLE_EQ(reward.optimal, 1.0);
}

TEST(FairnessAdversaryEnv, Validates) {
  core::FairnessAdversaryEnv::Params bad;
  bad.epoch_s = 0.0;
  EXPECT_THROW(core::FairnessAdversaryEnv{bad}, std::invalid_argument);
  std::vector<core::FairnessAdversaryEnv::SenderFactory> one{
      [] {
        return std::unique_ptr<cc::CcSender>(std::make_unique<cc::BbrSender>());
      }};
  EXPECT_THROW((core::FairnessAdversaryEnv{{}, one}), std::invalid_argument);
  core::FairnessAdversaryEnv env;
  Rng rng{19};
  EXPECT_THROW(env.step({0.0, 0.0, 0.0}, rng), std::logic_error);
}

TEST(FairnessAdversaryEnv, TrainableWithPpo) {
  // Short training run must execute cleanly end to end.
  core::FairnessAdversaryEnv::Params p;
  p.episode_duration_s = 3.0;
  core::FairnessAdversaryEnv env{p};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     core::cc_adversary_ppo_config(), 23};
  const rl::TrainReport report = agent.train(env, 4096);
  EXPECT_GT(report.episodes, 0u);
}

}  // namespace
