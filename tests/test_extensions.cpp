// Tests for the Section-5 extensions and extra baselines: Copa, BOLA,
// Mahimahi trace interop, alternative adversarial goals, and the
// perturbation-constrained adversary.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "abr/bb.hpp"
#include "abr/bola.hpp"
#include "abr/runner.hpp"
#include "cc/copa.hpp"
#include "cc/runner.hpp"
#include "core/abr_adversary.hpp"
#include "core/cc_adversary.hpp"
#include "trace/generators.hpp"
#include "trace/mahimahi.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

abr::VideoManifest exact_manifest() {
  abr::VideoManifest::Params p;
  p.size_variation = 0.0;
  return abr::VideoManifest{p};
}

trace::Trace constant_trace(double bw, std::size_t n = 48, double dur = 4.0) {
  trace::Trace t;
  for (std::size_t i = 0; i < n; ++i) t.append({dur, bw, 80.0, 0.0});
  return t;
}

// ---------------------------------------------------------------- Copa

TEST(Copa, HighUtilizationOnCleanLink) {
  cc::CopaSender copa;
  cc::LinkSim::Params link;
  link.initial = {12.0, 30.0, 0.0};
  cc::CcRunner runner{copa, link, 11};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(15.0);
  EXPECT_GT(runner.collect().utilization(), 0.75);
}

TEST(Copa, KeepsQueueingDelayLow) {
  // Copa's whole point: high throughput with a small standing queue
  // (delta=0.5 targets ~2 packets of queueing).
  cc::CopaSender copa;
  cc::LinkSim::Params link;
  link.initial = {12.0, 30.0, 0.0};
  cc::CcRunner runner{copa, link, 13};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(15.0);
  const cc::IntervalStats stats = runner.collect();
  EXPECT_LT(stats.mean_queue_delay_s, 0.05);
}

TEST(Copa, LowerQueueThanBbr) {
  cc::CopaSender copa;
  cc::LinkSim::Params link;
  link.initial = {12.0, 30.0, 0.0};
  cc::CcRunner r1{copa, link, 17};
  r1.run_until(15.0);
  const double copa_q = r1.collect().mean_queue_delay_s;
  EXPECT_GE(copa_q, 0.0);
  EXPECT_LT(copa_q, 0.08);
}

TEST(Copa, SurvivesRandomLossBetterThanHalving) {
  // Delay-based: random loss should not collapse Copa's rate.
  cc::CopaSender copa;
  cc::LinkSim::Params link;
  link.initial = {12.0, 30.0, 0.02};
  cc::CcRunner runner{copa, link, 19};
  runner.run_until(5.0);
  runner.collect();
  runner.run_until(15.0);
  EXPECT_GT(runner.collect().utilization(), 0.5);
}

TEST(Copa, TracksBandwidthDrop) {
  cc::CopaSender copa;
  cc::LinkSim::Params link;
  link.initial = {24.0, 30.0, 0.0};
  cc::CcRunner runner{copa, link, 23};
  runner.run_until(8.0);
  runner.set_conditions({6.0, 30.0, 0.0});
  runner.run_until(16.0);
  runner.collect();
  runner.run_until(20.0);
  const cc::IntervalStats stats = runner.collect();
  // After adaptation the queue must not be persistently saturated.
  EXPECT_LT(stats.mean_queue_delay_s, 0.2);
  EXPECT_GT(stats.utilization(), 0.5);
}

TEST(Copa, VelocityResetsOnDirectionChange) {
  cc::CopaSender copa;
  copa.start(0.0);
  cc::AckInfo ack;
  // Grow: queue empty (rtt == min rtt).
  for (int i = 0; i < 50; ++i) {
    ack.rtt_s = 0.06;
    ack.ack_time_s = 0.06 * (i + 1);
    copa.on_ack(ack);
  }
  EXPECT_GT(copa.velocity(), 1.0);
  // Sudden large queueing delay: direction flips, velocity resets.
  ack.rtt_s = 0.5;
  ack.ack_time_s += 0.5;
  copa.on_ack(ack);
  EXPECT_DOUBLE_EQ(copa.velocity(), 1.0);
}

TEST(Copa, ValidatesParams) {
  cc::CopaSender::Params bad;
  bad.delta = 0.0;
  EXPECT_THROW(cc::CopaSender{bad}, std::invalid_argument);
}

TEST(Copa, WorksAsCcAdversaryTarget) {
  core::CcAdversaryEnv::Params p;
  p.episode_duration_s = 1.0;
  core::CcAdversaryEnv env{p, [] {
    return std::unique_ptr<cc::CcSender>(std::make_unique<cc::CopaSender>());
  }};
  Rng rng{29};
  env.reset(rng);
  rl::StepResult r{};
  while (!r.done) r = env.step({0.0, 0.0, -1.0}, rng);
  EXPECT_EQ(env.sender()->name(), "copa");
}

// ---------------------------------------------------------------- BOLA

TEST(Bola, QualityIsMonotoneInBuffer) {
  const abr::VideoManifest m = exact_manifest();
  abr::Bola bola;
  bola.begin_video(m);
  abr::AbrObservation obs;
  std::size_t last = 0;
  for (double b = 0.0; b <= 60.0; b += 1.0) {
    obs.buffer_s = b;
    const std::size_t q = bola.choose_quality(obs);
    EXPECT_GE(q, last) << "buffer " << b;
    last = q;
  }
  EXPECT_EQ(last, m.num_qualities() - 1);
}

TEST(Bola, EmptyBufferPicksLowest) {
  const abr::VideoManifest m = exact_manifest();
  abr::Bola bola;
  bola.begin_video(m);
  abr::AbrObservation obs;
  obs.buffer_s = 0.0;
  EXPECT_EQ(bola.choose_quality(obs), 0u);
}

TEST(Bola, ReasonableQoeOnSteadyLink) {
  const abr::VideoManifest m = exact_manifest();
  abr::Bola bola;
  const abr::PlaybackRecord record =
      abr::run_playback(bola, m, constant_trace(3.0));
  EXPECT_GT(record.total_qoe, 0.0);
  EXPECT_LT(record.total_rebuffer_s, 10.0);
}

TEST(Bola, BeatsBbOnStableMidRateLink) {
  // BOLA's Lyapunov score uses chunk sizes, so it reaches sustainable rates
  // faster than BB's pure buffer map on a steady link.
  const abr::VideoManifest m = exact_manifest();
  abr::Bola bola;
  abr::BufferBased bb;
  const trace::Trace t = constant_trace(2.0);
  EXPECT_GT(abr::run_playback(bola, m, t).total_qoe,
            abr::run_playback(bb, m, t).total_qoe);
}

TEST(Bola, RequiresBeginVideoAndValidatesParams) {
  abr::Bola bola;
  abr::AbrObservation obs;
  EXPECT_THROW(bola.choose_quality(obs), std::logic_error);
  abr::Bola::Params bad;
  bad.buffer_target_s = 0.0;
  EXPECT_THROW(abr::Bola{bad}, std::invalid_argument);
}

TEST(Bola, WorksAsAdversaryTarget) {
  const abr::VideoManifest m = exact_manifest();
  abr::Bola bola;
  core::AbrAdversaryEnv env{m, bola};
  Rng rng{31};
  env.reset(rng);
  rl::StepResult r{};
  while (!r.done) r = env.step({0.0}, rng);
  EXPECT_EQ(env.episode_qualities().size(), m.num_chunks());
}

// ---------------------------------------------------------------- Mahimahi interop

TEST(Mahimahi, ExportedOpportunitiesMatchBandwidth) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_mm_test.trace").string();
  // 12 Mbps for 2 s = 2000 packets of 12 kbit.
  trace::Trace t;
  t.append({2.0, 12.0, 30.0, 0.0});
  trace::save_mahimahi_trace(t, path);

  std::ifstream in{path};
  std::size_t lines = 0;
  std::string line;
  std::uint64_t last = 0;
  bool monotone = true;
  while (std::getline(in, line)) {
    const std::uint64_t ms = std::stoull(line);
    if (ms < last) monotone = false;
    last = ms;
    ++lines;
  }
  EXPECT_NEAR(static_cast<double>(lines), 2000.0, 2.0);
  EXPECT_TRUE(monotone);
  EXPECT_LT(last, 2000u);
  std::remove(path.c_str());
}

TEST(Mahimahi, RoundTripPreservesMeanBandwidth) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_mm_rt.trace").string();
  trace::Trace t;
  t.append({1.0, 6.0, 30.0, 0.0});
  t.append({1.0, 18.0, 30.0, 0.0});
  trace::save_mahimahi_trace(t, path);
  const trace::Trace back = trace::load_mahimahi_trace(path);
  EXPECT_NEAR(back.mean_bandwidth_mbps(), t.mean_bandwidth_mbps(), 1.0);
  // The bandwidth step must be visible in the imported trace.
  EXPECT_LT(back.at_time(0.5).bandwidth_mbps, 9.0);
  EXPECT_GT(back.at_time(1.5).bandwidth_mbps, 14.0);
  std::remove(path.c_str());
}

TEST(Mahimahi, LowRateStillEmitsOpportunities) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_mm_low.trace").string();
  trace::Trace t;
  t.append({10.0, 0.12, 30.0, 0.0});  // 0.12 Mbps = 10 pkts/s
  trace::save_mahimahi_trace(t, path);
  const trace::Trace back = trace::load_mahimahi_trace(path);
  EXPECT_NEAR(back.mean_bandwidth_mbps(), 0.12, 0.03);
  std::remove(path.c_str());
}

TEST(Mahimahi, ErrorsAreReported) {
  trace::Trace empty;
  EXPECT_THROW(trace::save_mahimahi_trace(empty, "/tmp/x.trace"),
               std::invalid_argument);
  EXPECT_THROW(trace::load_mahimahi_trace("/nonexistent/mm.trace"),
               std::runtime_error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_mm_bad.trace").string();
  {
    std::ofstream out{path};
    out << "5\n3\n";  // non-monotone
  }
  EXPECT_THROW(trace::load_mahimahi_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- adversarial goals

TEST(AdversaryGoals, RebufferingGoalRewardsStalls) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.goal = core::AbrAdversaryEnv::Goal::kRebuffering;
  core::AbrAdversaryEnv env{m, bb, p};
  Rng rng{37};
  env.reset(rng);
  // Starving the link must yield stalls -> positive regret under this goal.
  double total_reward = 0.0;
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({-1.0}, rng);  // minimum bandwidth
    total_reward += r.reward;
  }
  EXPECT_GT(total_reward, 0.0);
}

TEST(AdversaryGoals, RebufferingGoalGivesNothingOnFastLink) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.goal = core::AbrAdversaryEnv::Goal::kRebuffering;
  core::AbrAdversaryEnv env{m, bb, p};
  Rng rng{41};
  env.reset(rng);
  double positive = 0.0;
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({1.0}, rng);  // max bandwidth: BB never stalls (after start)
    positive += std::max(r.reward, 0.0);
  }
  // Only the cold-start chunk can stall; nearly no reward is available.
  EXPECT_LT(positive, 1.0);
}

TEST(AdversaryGoals, LowBitrateGoalTracksBitrateGap) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.goal = core::AbrAdversaryEnv::Goal::kLowBitrate;
  p.opt_window = 1;
  core::AbrAdversaryEnv env{m, bb, p};
  Rng rng{43};
  env.reset(rng);
  // At max bandwidth while BB still ramps (low buffer -> lowest quality),
  // the gap between offered and played bitrate is large.
  const rl::StepResult r = env.step({1.0}, rng);
  EXPECT_NEAR(env.last_reward().optimal, 4.3, 0.6);   // offered (capped)
  EXPECT_NEAR(env.last_reward().protocol, 0.3, 0.1);  // BB plays lowest
  EXPECT_GT(r.reward, 3.0);
}

TEST(AdversaryGoals, CcCongestionGoalRewardsQueues) {
  core::CcAdversaryEnv::Params p;
  p.goal = core::CcAdversaryEnv::Goal::kCongestion;
  p.episode_duration_s = 10.0;
  core::CcAdversaryEnv env{p};
  Rng rng{47};
  env.reset(rng);
  // Drop bandwidth to the floor with zero loss: BBR (slow to notice) builds
  // standing queues; reward must go positive at some point.
  double best = -1e9;
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({-1.0, 0.0, -1.0}, rng);
    best = std::max(best, r.reward);
  }
  EXPECT_GT(best, 0.05);
}

// ---------------------------------------------------------------- perturbation mode

TEST(PerturbationAdversary, StaysWithinDeltaOfBaseTrace) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.base_trace = constant_trace(2.4);
  p.max_perturbation_mbps = 0.5;
  core::AbrAdversaryEnv env{m, bb, p};

  const rl::ActionSpec spec = env.action_spec();
  EXPECT_DOUBLE_EQ(spec.low[0], -0.5);
  EXPECT_DOUBLE_EQ(spec.high[0], 0.5);

  Rng rng{53};
  env.reset(rng);
  rl::StepResult r{};
  while (!r.done) r = env.step({rng.uniform(-3.0, 3.0)}, rng);
  for (double bw : env.episode_bandwidths()) {
    EXPECT_GE(bw, 2.4 - 0.5 - 1e-9);
    EXPECT_LE(bw, 2.4 + 0.5 + 1e-9);
  }
}

TEST(PerturbationAdversary, ClampsToGlobalBandwidthRange) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.base_trace = constant_trace(0.9);  // near the 0.8 floor
  p.max_perturbation_mbps = 2.0;
  core::AbrAdversaryEnv env{m, bb, p};
  Rng rng{59};
  env.reset(rng);
  env.step({-1.0}, rng);  // -2.0 delta would go to -1.1; must clamp to 0.8
  EXPECT_DOUBLE_EQ(env.episode_bandwidths()[0], 0.8);
}

TEST(PerturbationAdversary, ValidatesPerturbationBound) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.base_trace = constant_trace(2.0);
  p.max_perturbation_mbps = 0.0;
  EXPECT_THROW((core::AbrAdversaryEnv{m, bb, p}), std::invalid_argument);
}

TEST(PerturbationAdversary, RegretStillNonNegative) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::AbrAdversaryEnv::Params p;
  p.base_trace = constant_trace(2.4);
  p.max_perturbation_mbps = 1.0;
  core::AbrAdversaryEnv env{m, bb, p};
  Rng rng{61};
  env.reset(rng);
  rl::StepResult r{};
  while (!r.done) {
    r = env.step({rng.uniform(-1.0, 1.0)}, rng);
    EXPECT_GE(env.last_reward().regret(), -1e-9);
  }
}

}  // namespace
