// Focused tests for the Pensieve training environment and feature pipeline
// (the pieces Figure 4's robustification rests on), plus deeper BBR/runner
// state checks that earlier suites only exercised end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "abr/pensieve.hpp"
#include "abr/runner.hpp"
#include "cc/bbr.hpp"
#include "cc/runner.hpp"
#include "rl/checkpoint.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

abr::VideoManifest exact_manifest() {
  abr::VideoManifest::Params p;
  p.size_variation = 0.0;
  return abr::VideoManifest{p};
}

trace::Trace constant_trace(double bw) {
  trace::Trace t;
  for (int i = 0; i < 48; ++i) t.append({4.0, bw, 80.0, 0.0});
  return t;
}

// ---------------------------------------------------------------- features

TEST(PensieveFeatures, SizeMatchesLayout) {
  const abr::VideoManifest m = exact_manifest();
  // 2 scalars + 2*8 histories + 6 sizes + 1 remaining = 25.
  EXPECT_EQ(abr::pensieve_feature_size(m), 25u);
  abr::AbrObservation obs;
  obs.next_chunk_sizes_bits = m.chunk_sizes_bits(0);
  const rl::Vec f = abr::pensieve_features(obs, m);
  EXPECT_EQ(f.size(), 25u);
}

TEST(PensieveFeatures, NormalizationsAreApplied) {
  const abr::VideoManifest m = exact_manifest();
  abr::AbrObservation obs;
  obs.last_bitrate_mbps = 4.3;   // top rung
  obs.buffer_s = 20.0;
  obs.remaining_chunks = 24;
  obs.next_chunk_sizes_bits = m.chunk_sizes_bits(0);
  const rl::Vec f = abr::pensieve_features(obs, m);
  EXPECT_DOUBLE_EQ(f[0], 1.0);   // bitrate / max
  EXPECT_DOUBLE_EQ(f[1], 2.0);   // buffer / 10
  EXPECT_DOUBLE_EQ(f.back(), 0.5);  // remaining / total
}

TEST(PensieveFeatures, HistoriesZeroPadded) {
  const abr::VideoManifest m = exact_manifest();
  abr::AbrObservation obs;
  obs.throughput_history_mbps = {2.5};
  obs.next_chunk_sizes_bits = m.chunk_sizes_bits(0);
  const rl::Vec f = abr::pensieve_features(obs, m);
  EXPECT_DOUBLE_EQ(f[2], 2.5);
  for (std::size_t i = 3; i < 2 + abr::kPensieveHistory; ++i) {
    EXPECT_DOUBLE_EQ(f[i], 0.0);
  }
}

// ---------------------------------------------------------------- env dynamics

TEST(PensieveEnv, EpisodeRewardEqualsPlaybackQoe) {
  // Summing the env's per-step rewards while mimicking a fixed protocol
  // must equal the runner's QoE for the same protocol on the same trace.
  const abr::VideoManifest m = exact_manifest();
  const trace::Trace t = constant_trace(2.0);
  abr::PensieveEnv env{m, {t}};

  // Policy: always quality 2.
  Rng rng{7};
  env.reset(rng);
  double env_total = 0.0;
  while (true) {
    const rl::StepResult r = env.step({2.0}, rng);
    env_total += r.reward;
    if (r.done) break;
  }

  class Fixed final : public abr::AbrProtocol {
   public:
    std::string name() const override { return "fixed"; }
    void begin_video(const abr::VideoManifest&) override {}
    std::size_t choose_quality(const abr::AbrObservation&) override {
      return 2;
    }
  };
  Fixed fixed;
  const double runner_total = abr::run_playback(fixed, m, t).total_qoe;
  EXPECT_NEAR(env_total, runner_total, 1e-9);
}

TEST(PensieveEnv, EpisodeLengthIsChunkCount) {
  const abr::VideoManifest m = exact_manifest();
  abr::PensieveEnv env{m, {constant_trace(2.0)}};
  Rng rng{11};
  env.reset(rng);
  std::size_t steps = 0;
  while (true) {
    const rl::StepResult r = env.step({0.0}, rng);
    ++steps;
    if (r.done) break;
  }
  EXPECT_EQ(steps, m.num_chunks());
}

TEST(PensieveEnv, SamplesAcrossCorpus) {
  const abr::VideoManifest m = exact_manifest();
  abr::PensieveEnv env{m, {constant_trace(1.0), constant_trace(4.0)}};
  Rng rng{13};
  bool saw_slow = false;
  bool saw_fast = false;
  for (int e = 0; e < 20; ++e) {
    env.reset(rng);
    const rl::StepResult r = env.step({0.0}, rng);
    // First chunk throughput reveals which trace was drawn; index 2 is the
    // most recent throughput sample.
    const double tput = r.observation[2];
    if (tput < 2.0) saw_slow = true;
    else saw_fast = true;
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_fast);
}

TEST(PensieveEnv, ValidatesInputs) {
  const abr::VideoManifest m = exact_manifest();
  EXPECT_THROW((abr::PensieveEnv{m, {}}), std::invalid_argument);
  EXPECT_THROW((abr::PensieveEnv{m, {trace::Trace{}}}), std::invalid_argument);
  abr::PensieveEnv env{m, {constant_trace(2.0)}};
  Rng rng{17};
  EXPECT_THROW(env.step({0.0}, rng), std::logic_error);
  env.reset(rng);
  EXPECT_THROW(env.step({99.0}, rng), std::invalid_argument);
  EXPECT_THROW(env.set_traces({}), std::invalid_argument);
}

TEST(PensieveEnv, SetTracesSwapsCorpus) {
  const abr::VideoManifest m = exact_manifest();
  abr::PensieveEnv env{m, {constant_trace(1.0)}};
  env.set_traces({constant_trace(4.0), constant_trace(4.0)});
  EXPECT_EQ(env.traces().size(), 2u);
  Rng rng{19};
  env.reset(rng);
  const rl::StepResult r = env.step({0.0}, rng);
  EXPECT_NEAR(r.observation[2], 4.0, 1e-9);  // throughput from the new corpus
}

// ---------------------------------------------------------------- checkpoint (continuous)

TEST(Checkpoint, ContinuousAgentRoundTrip) {
  const rl::ActionSpec spec = rl::ActionSpec::continuous({6.0, 15.0, 0.0},
                                                         {24.0, 60.0, 0.1});
  rl::PpoConfig cfg;
  cfg.hidden_sizes = {4};
  rl::PpoAgent a{2, spec, cfg, 23};
  a.log_std() = {-0.7, -0.3, -1.1};
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_cont_ckpt.txt").string();
  rl::save_checkpoint(a, path);
  rl::PpoAgent b{2, spec, cfg, 999};
  rl::load_checkpoint(b, path);
  EXPECT_EQ(b.log_std(), a.log_std());
  const rl::Vec obs{0.5, 0.2};
  const rl::Vec act_a = a.act_deterministic(obs);
  const rl::Vec act_b = b.act_deterministic(obs);
  for (std::size_t i = 0; i < act_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(act_a[i], act_b[i]);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- BBR state details

TEST(BbrState, ProbeRttShrinksCwndToFour) {
  cc::BbrSender bbr;
  cc::CcRunner runner{bbr, {}, 29};
  bool saw_probe_rtt_cwnd = false;
  for (double t = 0.03; t <= 25.0; t += 0.03) {
    runner.run_until(t);
    if (bbr.mode() == cc::BbrSender::Mode::kProbeRtt) {
      EXPECT_DOUBLE_EQ(bbr.cwnd_packets(), 4.0);
      saw_probe_rtt_cwnd = true;
    }
  }
  EXPECT_TRUE(saw_probe_rtt_cwnd);
}

TEST(BbrState, DrainUsesInverseStartupGain) {
  cc::BbrSender bbr;
  cc::CcRunner runner{bbr, {}, 31};
  bool saw_drain = false;
  for (double t = 0.01; t <= 5.0; t += 0.01) {
    runner.run_until(t);
    if (bbr.mode() == cc::BbrSender::Mode::kDrain) {
      EXPECT_NEAR(bbr.pacing_gain(), 1.0 / 2.885, 1e-9);
      saw_drain = true;
    }
  }
  EXPECT_TRUE(saw_drain);
}

TEST(BbrState, ProbeBwGainCycleValues) {
  cc::BbrSender bbr;
  cc::CcRunner runner{bbr, {}, 37};
  runner.run_until(6.0);
  ASSERT_EQ(bbr.mode(), cc::BbrSender::Mode::kProbeBw);
  bool saw_high = false;
  bool saw_low = false;
  for (double t = 6.0; t <= 9.0; t += 0.005) {
    runner.run_until(t);
    if (bbr.pacing_gain() > 1.2) saw_high = true;
    if (bbr.pacing_gain() < 0.8) saw_low = true;
  }
  EXPECT_TRUE(saw_high);  // the 1.25 probing phase
  EXPECT_TRUE(saw_low);   // the 0.75 drain phase
}

TEST(CcRunnerState, CapacityIntegralRespectsConditionChanges) {
  cc::BbrSender bbr;
  cc::CcRunner runner{bbr, {}, 41};
  runner.collect();
  runner.run_until(1.0);  // 12 Mbps for 1 s
  runner.set_conditions({24.0, 30.0, 0.0});
  runner.run_until(2.0);  // 24 Mbps for 1 s
  const cc::IntervalStats stats = runner.collect();
  EXPECT_NEAR(stats.capacity_bits, 36e6, 1e5);
}

}  // namespace
