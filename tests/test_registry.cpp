// Unit tests for the domain-neutral target registry (core/registry.hpp):
// name lookup, enumerating unknown-name errors, duplicate rejection, the
// FactoryArgs override/fallback contract, and the checkpoint-parameterized
// `pensieve` entry.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "abr/pensieve.hpp"
#include "abr/protocol.hpp"
#include "abr/qoe_model.hpp"
#include "abr/runner.hpp"
#include "abr/video.hpp"
#include "cc/sender.hpp"
#include "core/registry.hpp"
#include "rl/checkpoint.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;

TEST(Registry, DomainRoundTripsAndRejectsUnknownSpellings) {
  EXPECT_EQ(core::to_string(core::TargetDomain::kAbr), "abr");
  EXPECT_EQ(core::to_string(core::TargetDomain::kCc), "cc");
  EXPECT_EQ(core::to_string(core::TargetDomain::kAny), "any");
  EXPECT_EQ(core::parse_domain("abr"), core::TargetDomain::kAbr);
  EXPECT_EQ(core::parse_domain("cc"), core::TargetDomain::kCc);
  try {
    core::parse_domain("video");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unknown domain 'video' (abr | cc)");
  }
}

TEST(Registry, LiveRegistriesServeTheExpectedEntries) {
  EXPECT_EQ(core::abr_protocols().names(),
            "bb | bola | mpc | mpc-dp | throughput | pensieve");
  EXPECT_EQ(core::cc_senders().names(), "bbr | cubic | copa | vivace | reno");
  EXPECT_EQ(core::trace_generators().names("|"), "fcc|3g|random");
  EXPECT_EQ(core::adversary_kinds().names(),
            "ppo | cem | fairness | cross-traffic | late-join");

  // Constructed objects self-identify (names the CSV/summary layer prints).
  EXPECT_EQ(core::abr_protocols().make("mpc")->name(), "mpc");
  EXPECT_EQ(core::cc_senders().make("bbr")->name(), "bbr");
  EXPECT_NE(core::trace_generators().make("3g"), nullptr);

  // Domain metadata drives grid validation and `netadv_cli list`.
  ASSERT_NE(core::abr_protocols().info("bola"), nullptr);
  EXPECT_EQ(core::abr_protocols().info("bola")->domain,
            core::TargetDomain::kAbr);
  EXPECT_EQ(core::cc_senders().info("cubic")->domain, core::TargetDomain::kCc);
  EXPECT_EQ(core::adversary_kinds().info("ppo")->domain,
            core::TargetDomain::kAny);
  EXPECT_EQ(core::adversary_kinds().info("cem")->domain,
            core::TargetDomain::kAbr);
  EXPECT_FALSE(core::adversary_kinds().info("cem")->description.empty());
  for (const char* kind : {"fairness", "cross-traffic", "late-join"}) {
    ASSERT_NE(core::adversary_kinds().info(kind), nullptr) << kind;
    EXPECT_EQ(core::adversary_kinds().info(kind)->domain,
              core::TargetDomain::kCc);
    EXPECT_FALSE(core::adversary_kinds().info(kind)->description.empty());
  }
}

TEST(Registry, QoeModelsServeLinLogSsim) {
  EXPECT_EQ(core::qoe_models().names(), "lin | log | ssim");
  EXPECT_EQ(core::qoe_models().category(), "qoe model");
  for (const char* name : {"lin", "log", "ssim"}) {
    ASSERT_NE(core::qoe_models().info(name), nullptr) << name;
    EXPECT_EQ(core::qoe_models().info(name)->domain, core::TargetDomain::kAbr);
    EXPECT_FALSE(core::qoe_models().info(name)->description.empty());
    EXPECT_EQ(core::qoe_models().make(name)->name(), name);
  }
  try {
    core::qoe_models().make("vmaf");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unknown qoe model 'vmaf' (lin | log | ssim)");
  }
}

TEST(Registry, MpcDpEntryForwardsTheQoeSelection) {
  // Default plans against QoE_lin...
  const auto dflt = core::abr_protocols().make("mpc-dp");
  EXPECT_EQ(dflt->name(), "mpc-dp");
  // ...and `qoe = <model>` forwards to the qoe_models registry.
  core::FactoryArgs args;
  args.set("qoe", "ssim");
  EXPECT_NE(core::abr_protocols().make("mpc-dp", args), nullptr);
  core::FactoryArgs bad;
  bad.set("qoe", "vmaf");
  try {
    core::abr_protocols().make("mpc-dp", bad);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("unknown qoe model 'vmaf'"),
              std::string::npos)
        << e.what();
  }
}

TEST(Registry, ResolveFlowMixBuildsPerFlowFactories) {
  const auto mix = core::resolve_flow_mix("bbr,cubic,vivace");
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0]()->name(), "bbr");
  EXPECT_EQ(mix[1]()->name(), "cubic");
  EXPECT_EQ(mix[2]()->name(), "vivace");

  // Unknown members fail with the cc_senders registry's enumerating error.
  try {
    core::resolve_flow_mix("bbr,nope");
    FAIL() << "expected resolve_flow_mix to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown sender 'nope'"), std::string::npos) << what;
    EXPECT_NE(what.find("bbr | cubic | copa | vivace"), std::string::npos)
        << what;
  }
  // A mix of one is not a mix: fairness needs contention.
  EXPECT_THROW(core::resolve_flow_mix("bbr"), std::runtime_error);
  EXPECT_THROW(core::resolve_flow_mix(""), std::runtime_error);
}

TEST(Registry, UnknownNamesReturnNullOrThrowEnumeratingTheRegistry) {
  EXPECT_EQ(core::abr_protocols().try_make("nope"), nullptr);
  EXPECT_NE(core::abr_protocols().try_make("bola"), nullptr);
  EXPECT_EQ(core::trace_generators().try_make("nope"), nullptr);
  EXPECT_FALSE(core::cc_senders().contains("nope"));
  EXPECT_EQ(core::cc_senders().info("nope"), nullptr);
  try {
    core::abr_protocols().make("nope");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "unknown protocol 'nope' (bb | bola | mpc | mpc-dp | "
                 "throughput | pensieve)");
  }
  // factory() resolves up front: the throw happens here, not on first call.
  EXPECT_THROW(core::cc_senders().factory("nope"), std::runtime_error);
}

TEST(Registry, DuplicateRegistrationIsRejected) {
  core::Registry<cc::CcSender> reg{"sender"};
  const auto factory = [](const core::FactoryArgs&) {
    return std::unique_ptr<cc::CcSender>{};
  };
  reg.add("x", core::TargetDomain::kCc, "first", factory);
  try {
    reg.add("x", core::TargetDomain::kCc, "second", factory);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "duplicate sender registration: 'x'");
  }
}

TEST(Registry, FactoryArgsOverridesShadowTheBoundFallback) {
  const std::string fallback_value = "from-fallback";
  core::FactoryArgs args;
  args.bind([&fallback_value](const std::string& key) -> const std::string* {
    return key == "checkpoint" || key == "only-fallback" ? &fallback_value
                                                         : nullptr;
  });
  EXPECT_EQ(args.value_or("checkpoint", ""), "from-fallback");
  args.set("checkpoint", "from-override");
  EXPECT_EQ(args.value_or("checkpoint", ""), "from-override");
  EXPECT_EQ(args.value_or("only-fallback", ""), "from-fallback");
  EXPECT_EQ(args.find("absent"), nullptr);
  EXPECT_EQ(args.value_or("absent", "dflt"), "dflt");
}

TEST(Registry, PensieveEntryRoundTripsThroughACheckpoint) {
  // Without `checkpoint =` the entry must fail loudly (there is no such
  // thing as an untrained Pensieve target).
  try {
    core::abr_protocols().make("pensieve");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("checkpoint"), std::string::npos);
  }

  // Save an (untrained but well-formed) agent, then target it by name + path.
  abr::VideoManifest::Params mp;
  mp.size_variation = 0.0;
  const abr::VideoManifest manifest{mp};
  const rl::PpoAgent agent = abr::make_pensieve_agent(manifest, /*seed=*/7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_registry_pensieve.ckpt")
          .string();
  rl::save_checkpoint(agent, path);

  core::FactoryArgs args;
  args.set("checkpoint", path);
  const auto protocol = core::abr_protocols().make("pensieve", args);
  ASSERT_NE(protocol, nullptr);
  EXPECT_EQ(protocol->name(), "pensieve");

  // The loaded policy is a functioning ABR target: factory() is repeatable
  // and each instance plays back a trace deterministically.
  const auto make_pensieve = core::abr_protocols().factory("pensieve", args);
  util::Rng rng{11};
  const trace::Trace t = trace::UniformRandomGenerator{{}}.generate(rng);
  const double qoe_a = abr::run_playback(*make_pensieve(), manifest, t).total_qoe;
  const double qoe_b = abr::run_playback(*make_pensieve(), manifest, t).total_qoe;
  EXPECT_EQ(qoe_a, qoe_b);
  std::filesystem::remove(path);
}

}  // namespace
