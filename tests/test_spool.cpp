// Tests for the spool-based multi-process campaign protocol (exp/spool.hpp)
// and the primitives it stands on: the util::fsatomic claim/steal helpers,
// the append-mode manifest writer's multi-process contract (concurrent
// writer processes, torn trailing lines from killed workers), per-manifest
// state derivation (derive_spool_view), run_worker end-to-end behaviour
// (cooperation, stale-claim reclaim, failure terminality, blocked-line
// dedup), and cross-worker invalidation when a dependency's outputs change.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/manifest.hpp"
#include "exp/scheduler.hpp"
#include "exp/spool.hpp"
#include "util/fsatomic.hpp"
#include "util/spec.hpp"

namespace {

using namespace netadv;

std::string temp_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

exp::Campaign campaign_from(const std::string& text) {
  return exp::parse_campaign(util::parse_spec_text(text, "inline"));
}

exp::JobRegistry stub_registry() {
  exp::JobRegistry registry;
  registry.add("emit", [](const exp::JobContext& ctx) {
    exp::JobResult r;
    r.artifacts.push_back(ctx.artifact("_out.txt"));
    std::ofstream{r.artifacts.back()} << ctx.job->id << ":" << ctx.seed;
    return r;
  });
  registry.add("concat", [](const exp::JobContext& ctx) {
    exp::JobResult r;
    r.artifacts.push_back(ctx.artifact("_out.txt"));
    std::ofstream out{r.artifacts.back()};
    for (const auto& [dep, artifacts] : ctx.inputs) {
      for (const auto& path : artifacts) out << read_file(path) << "\n";
    }
    return r;
  });
  registry.add("boom", [](const exp::JobContext&) -> exp::JobResult {
    throw std::runtime_error{"kaboom"};
  });
  return registry;
}

const char* kDiamondSpec =
    "[campaign]\nname = diamond\nseed = 11\nout_dir = %s\n"
    "[job left]\nkind = emit\n"
    "[job right]\nkind = emit\n"
    "[job join]\nkind = concat\nafter = left, right\n";

exp::Campaign diamond(const std::string& out_dir) {
  char text[512];
  std::snprintf(text, sizeof text, kDiamondSpec, out_dir.c_str());
  return campaign_from(text);
}

// ---------------------------------------------------------------- fsatomic

TEST(FsAtomic, ExclusiveCreateAdmitsExactlyOneWinner) {
  const std::string dir = temp_dir("netadv_fsatomic_excl");
  const std::string path = dir + "/claim";
  EXPECT_TRUE(util::create_file_exclusive(path, "first"));
  EXPECT_FALSE(util::create_file_exclusive(path, "second"));
  EXPECT_EQ(read_file(path), "first");
}

TEST(FsAtomic, ExclusiveCreateRaceHasOneWinnerAcrossThreads) {
  const std::string dir = temp_dir("netadv_fsatomic_race");
  const std::string path = dir + "/claim";
  std::vector<std::thread> threads;
  std::atomic<int> winners{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      if (util::create_file_exclusive(path, "t" + std::to_string(i))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(FsAtomic, ReplaceFileIsAtomicAndRefreshesMtime) {
  const std::string dir = temp_dir("netadv_fsatomic_replace");
  const std::string path = dir + "/hb";
  util::replace_file(path, "v1");
  EXPECT_EQ(read_file(path), "v1");
  util::replace_file(path, "v2");
  EXPECT_EQ(read_file(path), "v2");
  const auto age = util::file_age_seconds(path);
  ASSERT_TRUE(age.has_value());
  EXPECT_LT(*age, 60.0);
}

TEST(FsAtomic, StealHasExactlyOneWinner) {
  const std::string dir = temp_dir("netadv_fsatomic_steal");
  const std::string path = dir + "/claim";
  util::replace_file(path, "stale");
  EXPECT_TRUE(util::steal_file(path, dir + "/stolen.1"));
  // The second stealer finds the file gone — contended, not an error.
  EXPECT_FALSE(util::steal_file(path, dir + "/stolen.2"));
  EXPECT_EQ(read_file(dir + "/stolen.1"), "stale");
}

TEST(FsAtomic, FileAgeOfMissingFileIsEmpty) {
  EXPECT_FALSE(util::file_age_seconds("/nonexistent/netadv/claim"));
}

// ------------------------------------------------- multi-process manifest

TEST(ManifestMultiProcess, ConcurrentWriterProcessesInterleaveWholeLines) {
  const std::string dir = temp_dir("netadv_manifest_procs");
  const std::string path = dir + "/m.csv";
  constexpr int kWriters = 4;
  constexpr int kLines = 25;

  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: its own kAppend writer, its own batch of entries. A long
      // artifact list makes each line big enough to expose partial-write
      // interleaving if append() were not a single write(2).
      exp::ManifestWriter writer{path, exp::ManifestWriter::Mode::kAppend};
      for (int i = 0; i < kLines; ++i) {
        exp::ManifestEntry entry;
        entry.campaign = "mp";
        entry.job = "w" + std::to_string(w) + "-j" + std::to_string(i);
        entry.kind = "emit";
        entry.status = "completed";
        entry.params_hash = std::string(16, 'a' + static_cast<char>(w));
        entry.inputs_hash = std::string(16, '0');
        for (int a = 0; a < 20; ++a) {
          entry.artifacts.push_back(dir + "/artifact_" + std::to_string(w) +
                                    "_" + std::to_string(i) + "_" +
                                    std::to_string(a) + ".txt");
        }
        writer.append(entry);
      }
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  const auto entries = exp::read_manifest(path);
  ASSERT_EQ(entries.size(),
            static_cast<std::size_t>(kWriters * kLines));
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.campaign, "mp");
    EXPECT_EQ(entry.artifacts.size(), 20u);  // no line lost its tail
  }
}

TEST(ManifestMultiProcess, TornTrailingLineFromKilledWriterIsSkipped) {
  const std::string dir = temp_dir("netadv_manifest_torn");
  const std::string path = dir + "/m.csv";
  {
    exp::ManifestWriter writer{path, exp::ManifestWriter::Mode::kAppend};
    exp::ManifestEntry entry;
    entry.campaign = "torn";
    entry.job = "whole";
    entry.kind = "emit";
    entry.status = "completed";
    writer.append(entry);
  }
  // Simulate a worker killed mid-append: a partial line, no newline.
  {
    std::ofstream out{path, std::ios::app};
    out << "\ntorn,partial,emit,compl";
  }
  // The next worker's append must terminate the fragment, not merge with it.
  {
    exp::ManifestWriter writer{path, exp::ManifestWriter::Mode::kAppend};
    exp::ManifestEntry entry;
    entry.campaign = "torn";
    entry.job = "after-crash";
    entry.kind = "emit";
    entry.status = "completed";
    writer.append(entry);
  }
  const auto entries = exp::read_manifest(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].job, "whole");
  EXPECT_EQ(entries[1].job, "after-crash");
}

TEST(ManifestMultiProcess, AppendModeKeepsExistingEntriesAndHeader) {
  const std::string dir = temp_dir("netadv_manifest_appendmode");
  const std::string path = dir + "/m.csv";
  {
    exp::ManifestWriter writer{path, exp::ManifestWriter::Mode::kAppend};
    exp::ManifestEntry entry;
    entry.campaign = "c";
    entry.job = "one";
    entry.kind = "emit";
    entry.status = "completed";
    writer.append(entry);
  }
  {
    exp::ManifestWriter writer{path, exp::ManifestWriter::Mode::kAppend};
    exp::ManifestEntry entry;
    entry.campaign = "c";
    entry.job = "two";
    entry.kind = "emit";
    entry.status = "completed";
    writer.append(entry);
  }
  const auto entries = exp::read_manifest(path);
  ASSERT_EQ(entries.size(), 2u);
  // Exactly one header: the second writer found a non-empty file.
  const std::string text = read_file(path);
  std::size_t headers = 0;
  for (std::size_t pos = 0;
       (pos = text.find("campaign,job,kind", pos)) != std::string::npos;
       ++pos) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
}

// ------------------------------------------------------- derive_spool_view

TEST(SpoolView, EmptyManifestMakesRootsReadyAndDependentsWaiting) {
  const std::string dir = temp_dir("netadv_view_empty");
  const exp::Campaign c = diamond(dir);
  const exp::SpoolView view = exp::derive_spool_view(c, {});
  EXPECT_EQ(view.states[c.job_index("left")], exp::JobState::kReady);
  EXPECT_EQ(view.states[c.job_index("right")], exp::JobState::kReady);
  EXPECT_EQ(view.states[c.job_index("join")], exp::JobState::kWaiting);
  EXPECT_FALSE(view.all_settled);
}

TEST(SpoolView, SettledEntriesGateDependentsAndSettleTheCampaign) {
  const std::string dir = temp_dir("netadv_view_settled");
  exp::Campaign c = diamond(dir);
  // Run the campaign single-process, then re-derive from its manifest.
  exp::run_campaign(c, stub_registry());
  const auto entries = exp::read_manifest(exp::manifest_path(dir));
  const exp::SpoolView view = exp::derive_spool_view(c, entries);
  EXPECT_TRUE(view.all_settled);
  EXPECT_EQ(view.settled_ok, 3u);
  for (const auto s : view.states) EXPECT_EQ(s, exp::JobState::kSettledOk);
}

TEST(SpoolView, MissingArtifactUnsettlesTheJob) {
  const std::string dir = temp_dir("netadv_view_missing");
  exp::Campaign c = diamond(dir);
  exp::run_campaign(c, stub_registry());
  std::filesystem::remove(dir + "/left_out.txt");
  const auto entries = exp::read_manifest(exp::manifest_path(dir));
  const exp::SpoolView view = exp::derive_spool_view(c, entries);
  EXPECT_EQ(view.states[c.job_index("left")], exp::JobState::kReady);
  EXPECT_FALSE(view.all_settled);
}

TEST(SpoolView, MatchingFailedEntryIsTerminalAndBlocksDependents) {
  const std::string dir = temp_dir("netadv_view_failed");
  exp::Campaign c = campaign_from(
      "[campaign]\nname = f\nseed = 3\nout_dir = " + dir +
      "\n[job bad]\nkind = boom\n[job down]\nkind = concat\nafter = bad\n");
  exp::run_campaign(c, stub_registry());
  const auto entries = exp::read_manifest(exp::manifest_path(dir));
  const exp::SpoolView view = exp::derive_spool_view(c, entries);
  EXPECT_EQ(view.states[c.job_index("bad")], exp::JobState::kSettledFailed);
  // run_campaign wrote the blocked line with the params hash, so the
  // dependent is settled-blocked, not re-blockable.
  EXPECT_EQ(view.states[c.job_index("down")],
            exp::JobState::kSettledBlocked);
  EXPECT_TRUE(view.all_settled);
  EXPECT_EQ(view.settled_failed, 1u);
  EXPECT_EQ(view.settled_blocked, 1u);
}

// -------------------------------------------------------------- run_worker

TEST(Worker, SingleWorkerCompletesTheCampaign) {
  const std::string dir = temp_dir("netadv_worker_single");
  exp::SpoolOptions options;
  options.worker = "t1";
  const exp::WorkerReport report =
      exp::run_worker(diamond(dir), stub_registry(), options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.executed, 3u);
  EXPECT_EQ(report.settled_ok, 3u);
  EXPECT_NE(read_file(dir + "/join_out.txt").find("left:"),
            std::string::npos);
}

TEST(Worker, ArtifactsMatchSingleProcessRunByteForByte) {
  const std::string worker_dir = temp_dir("netadv_worker_bytes_w");
  const std::string solo_dir = temp_dir("netadv_worker_bytes_s");
  exp::run_worker(diamond(worker_dir), stub_registry());
  exp::run_campaign(diamond(solo_dir), stub_registry());
  for (const char* name : {"left_out.txt", "right_out.txt", "join_out.txt"}) {
    EXPECT_EQ(read_file(worker_dir + "/" + name),
              read_file(solo_dir + "/" + name))
        << name;
  }
}

TEST(Worker, SecondWorkerFindsEverythingSettledAndExecutesNothing) {
  const std::string dir = temp_dir("netadv_worker_second");
  exp::run_worker(diamond(dir), stub_registry());
  const exp::WorkerReport report =
      exp::run_worker(diamond(dir), stub_registry());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.executed, 0u);
  EXPECT_EQ(report.settled_ok, 3u);
}

TEST(Worker, BreaksStaleClaimAndRunsTheJob) {
  const std::string dir = temp_dir("netadv_worker_stale");
  const exp::Campaign c = diamond(dir);
  // A dead worker's claim on a root job, planted old enough to be stale.
  std::filesystem::create_directories(exp::spool_dir(dir) + "/claims");
  const std::string claim = exp::claim_path(dir, "left");
  util::replace_file(claim, "worker=dead pid=0\n");
  std::filesystem::last_write_time(
      claim, std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(1));
  exp::SpoolOptions options;
  options.lease_s = 5.0;
  const exp::WorkerReport report =
      exp::run_worker(c, stub_registry(), options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.reclaimed, 1u);
  EXPECT_EQ(report.executed, 3u);
}

TEST(Worker, FreshClaimIsRespected) {
  const std::string dir = temp_dir("netadv_worker_freshclaim");
  const exp::Campaign c = diamond(dir);
  std::filesystem::create_directories(exp::spool_dir(dir) + "/claims");
  // A live (fresh) claim on `left`: the worker must not steal it. Run the
  // worker in a thread, let it finish right+wait, then settle `left` by
  // appending its manifest line the way the claim's owner would.
  util::replace_file(exp::claim_path(dir, "left"), "worker=live pid=0\n");
  exp::SpoolOptions options;
  options.worker = "t2";
  options.poll_ms = 20;
  exp::WorkerReport report;
  std::thread worker{[&] {
    report = exp::run_worker(c, stub_registry(), options);
  }};
  // Wait until the worker has settled the other root; then play the claim
  // owner: execute `left` through the shared path and release the claim.
  const std::string manifest = exp::manifest_path(dir);
  for (int i = 0; i < 500; ++i) {
    const auto entries = exp::read_manifest(manifest);
    bool right_done = false;
    for (const auto& e : entries) {
      if (e.job == "right" && e.status == "completed") right_done = true;
    }
    if (right_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    exp::ManifestWriter writer{manifest,
                               exp::ManifestWriter::Mode::kAppend};
    const exp::JobRegistry registry = stub_registry();
    exp::JobRunner runner{c, registry, writer};
    runner.run(c.job_index("left"), {}, {});
  }
  std::filesystem::remove(exp::claim_path(dir, "left"));
  worker.join();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.reclaimed, 0u);
  EXPECT_EQ(report.settled_ok, 3u);
  // The worker ran right + join; `left` was executed by the claim owner.
  EXPECT_EQ(report.executed, 2u);
}

TEST(Worker, FailedJobIsTerminalAndBlockedLineIsWrittenOnce) {
  const std::string dir = temp_dir("netadv_worker_failed");
  const exp::Campaign c = campaign_from(
      "[campaign]\nname = f\nseed = 3\nout_dir = " + dir +
      "\n[job bad]\nkind = boom\n[job down]\nkind = concat\nafter = bad\n");
  const exp::WorkerReport first = exp::run_worker(c, stub_registry());
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.failed, 1u);
  EXPECT_EQ(first.blocked, 1u);
  // A second worker must not retry the failure or duplicate the blocked
  // line: same params + inputs -> terminal for this configuration.
  const exp::WorkerReport second = exp::run_worker(c, stub_registry());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.failed, 0u);
  EXPECT_EQ(second.blocked, 0u);
  const auto entries = exp::read_manifest(exp::manifest_path(dir));
  std::size_t failed = 0;
  std::size_t blocked = 0;
  for (const auto& e : entries) {
    if (e.status == "failed") ++failed;
    if (e.status == "blocked") ++blocked;
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(blocked, 1u);
}

TEST(Worker, ChangedDependencyOutputInvalidatesDependentAcrossWorkers) {
  const std::string dir = temp_dir("netadv_worker_invalidate");
  const exp::Campaign c = diamond(dir);
  exp::run_worker(c, stub_registry());
  // Another worker's world changes under us: `left`'s artifact is
  // rewritten with different bytes (as a re-run with changed params would).
  std::ofstream{dir + "/left_out.txt"} << "left:rewritten";
  const exp::WorkerReport report = exp::run_worker(c, stub_registry());
  EXPECT_TRUE(report.ok());
  // `join`'s inputs_hash over the actual bytes no longer matches its
  // manifest entry, so it re-ran; left/right stayed settled.
  EXPECT_EQ(report.executed, 1u);
  EXPECT_NE(read_file(dir + "/join_out.txt").find("left:rewritten"),
            std::string::npos);
}

TEST(Worker, ThreeConcurrentWorkersPartitionTheDag) {
  const std::string dir = temp_dir("netadv_worker_trio");
  // A wider DAG so all three workers can actually claim something.
  std::string spec = "[campaign]\nname = wide\nseed = 7\nout_dir = " + dir +
                     "\n";
  for (int i = 0; i < 6; ++i) {
    spec += "[job root" + std::to_string(i) + "]\nkind = emit\n";
  }
  spec += "[job join]\nkind = concat\nafter = root0, root1, root2, root3, "
          "root4, root5\n";
  const exp::Campaign c = campaign_from(spec);
  exp::WorkerReport reports[3];
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      exp::SpoolOptions options;
      options.worker = "t" + std::to_string(w);
      options.poll_ms = 10;
      reports[w] = exp::run_worker(c, stub_registry(), options);
    });
  }
  for (auto& t : workers) t.join();
  std::size_t executed = 0;
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.settled_ok, 7u);
    executed += report.executed;
  }
  // Exactly one worker executed each job: claims are exclusive.
  EXPECT_EQ(executed, 7u);
  const auto entries = exp::read_manifest(exp::manifest_path(dir));
  EXPECT_EQ(entries.size(), 7u);
}

}  // namespace
