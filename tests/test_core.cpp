// Tests for the adversarial framework itself: Equation 1's decomposition,
// both adversary environments' action/observation/reward contracts, the
// trace recorders, and the end-to-end gate — a short adversary training run
// must open a bigger optimality gap against its target than random traces
// do (the paper's core claim, Figures 1-2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "abr/bb.hpp"
#include "abr/mpc.hpp"
#include "abr/optimal.hpp"
#include "abr/pensieve.hpp"
#include "abr/runner.hpp"
#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "core/abr_adversary.hpp"
#include "core/cc_adversary.hpp"
#include "core/recorder.hpp"
#include "core/trainer.hpp"
#include "trace/generators.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace {

using namespace netadv;
using namespace netadv::core;
using netadv::util::Rng;

class QuietLogs : public ::testing::Environment {
 public:
  void SetUp() override { util::set_log_level(util::LogLevel::kWarn); }
};
const auto* const kQuietLogs =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

abr::VideoManifest exact_manifest() {
  abr::VideoManifest::Params p;
  p.size_variation = 0.0;
  return abr::VideoManifest{p};
}

// ---------------------------------------------------------------- Equation 1

TEST(AdversaryReward, ValueIsOptMinusProtocolMinusSmoothing) {
  const AdversaryReward r{.optimal = 5.0, .protocol = 2.0, .smoothing = 0.5};
  EXPECT_DOUBLE_EQ(r.value(), 2.5);
  EXPECT_DOUBLE_EQ(r.regret(), 3.0);
}

// ---------------------------------------------------------------- AbrAdversaryEnv

TEST(AbrAdversaryEnv, ObservationAndActionContracts) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  // 10 history x (5 scalars + 6 chunk sizes) = 110.
  EXPECT_EQ(env.observation_size(), 110u);
  const rl::ActionSpec spec = env.action_spec();
  EXPECT_EQ(spec.type, rl::ActionType::kContinuous);
  ASSERT_EQ(spec.low.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.low[0], 0.8);
  EXPECT_DOUBLE_EQ(spec.high[0], 4.8);

  Rng rng{1};
  const rl::Vec obs = env.reset(rng);
  EXPECT_EQ(obs.size(), env.observation_size());
}

TEST(AbrAdversaryEnv, EpisodeLengthIsChunkCount) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{2};
  env.reset(rng);
  std::size_t steps = 0;
  while (true) {
    const rl::StepResult r = env.step({0.0}, rng);
    ++steps;
    if (r.done) break;
  }
  EXPECT_EQ(steps, m.num_chunks());
  EXPECT_EQ(env.episode_bandwidths().size(), m.num_chunks());
  EXPECT_EQ(env.episode_qualities().size(), m.num_chunks());
  EXPECT_EQ(env.episode_buffers().size(), m.num_chunks());
}

TEST(AbrAdversaryEnv, ActionsAreClampedIntoRange) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{3};
  env.reset(rng);
  env.step({-100.0}, rng);
  env.step({+100.0}, rng);
  ASSERT_EQ(env.episode_bandwidths().size(), 2u);
  EXPECT_DOUBLE_EQ(env.episode_bandwidths()[0], 0.8);
  EXPECT_DOUBLE_EQ(env.episode_bandwidths()[1], 4.8);
}

TEST(AbrAdversaryEnv, OptimalAtLeastProtocolAlways) {
  // r_opt is a maximum over all plans including the protocol's own, so
  // regret must be non-negative at every step — the property that rules out
  // trivially-hostile traces.
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{5};
  env.reset(rng);
  while (true) {
    const rl::Vec action{rng.uniform(-1.5, 1.5)};
    const rl::StepResult r = env.step(action, rng);
    EXPECT_GE(env.last_reward().regret(), -1e-9);
    if (r.done) break;
  }
}

TEST(AbrAdversaryEnv, SmoothingZeroForConstantBandwidth) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{7};
  env.reset(rng);
  env.step({0.25}, rng);
  env.step({0.25}, rng);
  EXPECT_DOUBLE_EQ(env.last_reward().smoothing, 0.0);
}

TEST(AbrAdversaryEnv, SmoothingChargesBandwidthJumps) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{8};
  env.reset(rng);
  env.step({-1.0}, rng);  // 0.8 Mbps
  env.step({+1.0}, rng);  // 4.8 Mbps
  EXPECT_NEAR(env.last_reward().smoothing, 4.0, 1e-9);
}

TEST(AbrAdversaryEnv, StepBeforeResetThrows) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{9};
  EXPECT_THROW(env.step({0.0}, rng), std::logic_error);
}

TEST(AbrAdversaryEnv, ValidatesParams) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv::Params bad;
  bad.bandwidth_min_mbps = 2.0;
  bad.bandwidth_max_mbps = 1.0;
  EXPECT_THROW((AbrAdversaryEnv{m, bb, bad}), std::invalid_argument);
  AbrAdversaryEnv::Params bad2;
  bad2.opt_window = 0;
  EXPECT_THROW((AbrAdversaryEnv{m, bb, bad2}), std::invalid_argument);
}

TEST(AbrAdversaryEnv, ResetClearsEpisodeState) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  Rng rng{10};
  env.reset(rng);
  env.step({0.0}, rng);
  env.reset(rng);
  EXPECT_TRUE(env.episode_bandwidths().empty());
}

// ---------------------------------------------------------------- CcAdversaryEnv

TEST(CcAdversaryEnv, Table1ActionRanges) {
  CcAdversaryEnv env;
  const rl::ActionSpec spec = env.action_spec();
  ASSERT_EQ(spec.low.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.low[0], 6.0);
  EXPECT_DOUBLE_EQ(spec.high[0], 24.0);
  EXPECT_DOUBLE_EQ(spec.low[1], 15.0);
  EXPECT_DOUBLE_EQ(spec.high[1], 60.0);
  EXPECT_DOUBLE_EQ(spec.low[2], 0.0);
  EXPECT_DOUBLE_EQ(spec.high[2], 0.10);
}

TEST(CcAdversaryEnv, ObservationIsUtilizationAndQueueDelay) {
  CcAdversaryEnv env;
  EXPECT_EQ(env.observation_size(), 2u);
  Rng rng{11};
  rl::Vec obs = env.reset(rng);
  ASSERT_EQ(obs.size(), 2u);
  for (int i = 0; i < 20; ++i) {
    const rl::StepResult r = env.step({0.0, 0.0, -1.0}, rng);
    ASSERT_EQ(r.observation.size(), 2u);
    EXPECT_GE(r.observation[0], 0.0);
    EXPECT_LE(r.observation[0], 1.0);
    EXPECT_GE(r.observation[1], 0.0);
    EXPECT_LE(r.observation[1], 1.0);
  }
}

TEST(CcAdversaryEnv, EpisodeLengthMatchesDuration) {
  CcAdversaryEnv::Params p;
  p.episode_duration_s = 0.6;  // 20 epochs of 30 ms
  CcAdversaryEnv env{p};
  EXPECT_EQ(env.epochs_per_episode(), 20u);
  Rng rng{13};
  env.reset(rng);
  std::size_t steps = 0;
  while (true) {
    const rl::StepResult r = env.step({0.0, 0.0, -1.0}, rng);
    ++steps;
    if (r.done) break;
  }
  // reset() consumed one epoch to produce the first observation.
  EXPECT_EQ(steps, 19u);
}

TEST(CcAdversaryEnv, RewardMatchesFormula) {
  CcAdversaryEnv::Params p;
  p.episode_duration_s = 3.0;
  CcAdversaryEnv env{p};
  Rng rng{17};
  env.reset(rng);
  // Constant mid-range action: after the first step the EWMA matches and the
  // smoothing term is 0, so r = 1 - U - L.
  rl::StepResult r{};
  for (int i = 0; i < 10; ++i) r = env.step({0.0, 0.0, 0.0}, rng);
  const double loss = 0.05;  // midpoint of [0, 0.10]
  EXPECT_NEAR(r.reward, 1.0 - env.last_interval().utilization() - loss, 1e-6);
}

TEST(CcAdversaryEnv, SteadyLinkGivesLowRewardAgainstBbr) {
  // A benign constant link is a *bad* adversary: BBR utilizes it well, so
  // 1 - U is small.
  CcAdversaryEnv::Params p;
  p.episode_duration_s = 15.0;
  CcAdversaryEnv env{p};
  Rng rng{19};
  env.reset(rng);
  double reward_sum = 0.0;
  std::size_t n = 0;
  double tail_util = 0.0;
  while (true) {
    const rl::StepResult r = env.step({1.0, -1.0, -1.0}, rng);  // 24 Mbps, 15 ms, 0 loss
    reward_sum += r.reward;
    ++n;
    tail_util = r.observation[0];
    if (r.done) break;
  }
  const double mean_reward = reward_sum / static_cast<double>(n);
  EXPECT_LT(mean_reward, 0.45);
  EXPECT_GT(tail_util, 0.7);  // BBR converged to the steady link
}

TEST(CcAdversaryEnv, ValidatesParams) {
  CcAdversaryEnv::Params bad;
  bad.bandwidth_min_mbps = 30.0;  // > max
  EXPECT_THROW(CcAdversaryEnv{bad}, std::invalid_argument);
  CcAdversaryEnv::Params bad2;
  bad2.epoch_s = 0.0;
  EXPECT_THROW(CcAdversaryEnv{bad2}, std::invalid_argument);
}

TEST(CcAdversaryEnv, StepBeforeResetThrows) {
  CcAdversaryEnv env;
  Rng rng{23};
  EXPECT_THROW(env.step({0.0, 0.0, 0.0}, rng), std::logic_error);
}

TEST(CcAdversaryEnv, CustomSenderFactoryIsUsed) {
  CcAdversaryEnv::Params p;
  p.episode_duration_s = 1.0;
  CcAdversaryEnv env{p, [] {
    return std::unique_ptr<cc::CcSender>(std::make_unique<cc::CubicSender>());
  }};
  Rng rng{29};
  env.reset(rng);
  EXPECT_EQ(env.sender()->name(), "cubic");
}

// ---------------------------------------------------------------- recorder

TEST(Recorder, AbrTracesHaveRightShape) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     abr_adversary_ppo_config(), 31};
  Rng rng{31};
  const auto traces = record_abr_traces(agent, env, 5, rng);
  ASSERT_EQ(traces.size(), 5u);
  for (const auto& t : traces) {
    ASSERT_EQ(t.size(), m.num_chunks());
    for (const auto& s : t.segments()) {
      EXPECT_GE(s.bandwidth_mbps, 0.8);
      EXPECT_LE(s.bandwidth_mbps, 4.8);
      EXPECT_DOUBLE_EQ(s.duration_s, m.chunk_duration_s());
    }
  }
}

TEST(Recorder, DeterministicAbrTraceIsReproducible) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     abr_adversary_ppo_config(), 37};
  Rng rng{37};
  const auto t1 = record_abr_traces(agent, env, 1, rng, true);
  const auto t2 = record_abr_traces(agent, env, 1, rng, true);
  ASSERT_EQ(t1[0].size(), t2[0].size());
  for (std::size_t i = 0; i < t1[0].size(); ++i) {
    EXPECT_DOUBLE_EQ(t1[0][i].bandwidth_mbps, t2[0][i].bandwidth_mbps);
  }
}

TEST(Recorder, AbrEpisodeRecordIsConsistent) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     abr_adversary_ppo_config(), 41};
  Rng rng{41};
  const AbrEpisodeRecord record = record_abr_episode(agent, env, rng);
  EXPECT_EQ(record.bandwidth_mbps.size(), m.num_chunks());
  EXPECT_EQ(record.bitrate_kbps.size(), m.num_chunks());
  EXPECT_EQ(record.buffer_s.size(), m.num_chunks());
  EXPECT_EQ(record.trace.size(), m.num_chunks());
  // QoE recomputed from the record must match a replay of the trace.
  abr::BufferBased fresh;
  const double replay = abr::run_playback(fresh, m, record.trace).total_qoe;
  EXPECT_NEAR(record.total_qoe, replay, 1e-6);
}

TEST(Recorder, CcEpisodeRecordHasConsistentSeries) {
  CcAdversaryEnv::Params p;
  p.episode_duration_s = 1.5;
  CcAdversaryEnv env{p};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     cc_adversary_ppo_config(), 43};
  Rng rng{43};
  const CcEpisodeRecord record = record_cc_episode(agent, env, rng);
  const std::size_t n = record.bandwidth_mbps.size();
  EXPECT_GT(n, 0u);
  EXPECT_EQ(record.latency_ms.size(), n);
  EXPECT_EQ(record.loss_rate.size(), n);
  EXPECT_EQ(record.raw_bandwidth.size(), n);
  EXPECT_EQ(record.throughput_mbps.size(), n);
  EXPECT_EQ(record.utilization.size(), n);
  EXPECT_EQ(record.trace.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(record.bandwidth_mbps[i], 6.0);
    EXPECT_LE(record.bandwidth_mbps[i], 24.0);
    EXPECT_GE(record.latency_ms[i], 15.0);
    EXPECT_LE(record.latency_ms[i], 60.0);
    EXPECT_GE(record.loss_rate[i], 0.0);
    EXPECT_LE(record.loss_rate[i], 0.10);
  }
}

TEST(Recorder, ReplayCcTraceRuns) {
  trace::Trace t;
  for (int i = 0; i < 20; ++i) t.append({0.030, 12.0, 30.0, 0.0});
  cc::BbrSender bbr;
  const CcReplayResult result = replay_cc_trace(bbr, t, {}, 47);
  EXPECT_EQ(result.throughput_mbps.size(), 20u);
  EXPECT_GE(result.mean_utilization, 0.0);
  EXPECT_LE(result.mean_utilization, 1.0);
  const trace::Trace empty;
  cc::BbrSender bbr2;
  EXPECT_THROW(replay_cc_trace(bbr2, empty, {}, 47), std::invalid_argument);
}

// ---------------------------------------------------------------- trainer configs

TEST(TrainerConfig, PaperArchitectures) {
  const rl::PpoConfig abr_cfg = abr_adversary_ppo_config();
  ASSERT_EQ(abr_cfg.hidden_sizes.size(), 2u);
  EXPECT_EQ(abr_cfg.hidden_sizes[0], 32u);
  EXPECT_EQ(abr_cfg.hidden_sizes[1], 16u);
  const rl::PpoConfig cc_cfg = cc_adversary_ppo_config();
  ASSERT_EQ(cc_cfg.hidden_sizes.size(), 1u);
  EXPECT_EQ(cc_cfg.hidden_sizes[0], 4u);
}

// ---------------------------------------------------------------- end-to-end gates

TEST(EndToEnd, TrainedAbrAdversaryBeatsRandomTracesAgainstBb) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};

  rl::PpoAgent adversary = train_abr_adversary(env, 24576, 51);

  // Regret (optimal - protocol QoE) on 20 adversarial vs 20 random traces.
  Rng rng{53};
  const auto adv_traces = record_abr_traces(adversary, env, 20, rng);
  trace::UniformRandomGenerator random_gen{{}};
  const auto random_traces = random_gen.generate_many(20, rng);

  auto mean_regret = [&](const std::vector<trace::Trace>& traces) {
    double total = 0.0;
    for (const auto& t : traces) {
      abr::BufferBased target;
      const double protocol_qoe = abr::run_playback(target, m, t).total_qoe;
      const double optimal_qoe = abr::optimal_playback(m, t).total_qoe;
      total += optimal_qoe - protocol_qoe;
    }
    return total / static_cast<double>(traces.size());
  };

  const double adv_regret = mean_regret(adv_traces);
  const double random_regret = mean_regret(random_traces);
  EXPECT_GT(adv_regret, random_regret)
      << "adversarial traces must open a larger optimality gap";
}

TEST(EndToEnd, AdversaryTrainingImprovesItsReward) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  AbrAdversaryEnv env{m, bb};
  rl::PpoAgent agent{env.observation_size(), env.action_spec(),
                     abr_adversary_ppo_config(), 59};
  const rl::TrainReport report = agent.train(env, 20480);
  EXPECT_GT(report.final_mean_episode_reward, report.mean_episode_reward * 0.5);
  EXPECT_GT(report.episodes, 100u);
}

TEST(EndToEnd, RobustifyPipelineRunsAndAugmentsCorpus) {
  const abr::VideoManifest m = exact_manifest();
  trace::FccLikeGenerator gen{{}};
  Rng rng{61};
  abr::PensieveEnv env{m, gen.generate_many(20, rng)};
  rl::PpoAgent pensieve = abr::make_pensieve_agent(m, 61);

  RobustifyConfig cfg;
  cfg.protocol_steps = 8192;
  cfg.inject_fraction = 0.75;
  cfg.adversary_steps = 4096;
  cfg.adversarial_traces = 10;
  cfg.seed = 61;
  const RobustifyResult result = robustify_pensieve(pensieve, env, cfg);

  EXPECT_EQ(result.adversarial_traces.size(), 10u);
  EXPECT_EQ(env.traces().size(), 30u);
  EXPECT_GT(result.phase1.steps, 0u);
  EXPECT_GT(result.phase2.steps, 0u);
  for (const auto& t : result.adversarial_traces) {
    EXPECT_EQ(t.size(), m.num_chunks());
  }
}

TEST(EndToEnd, RobustifyWithFullFractionIsBaseline) {
  const abr::VideoManifest m = exact_manifest();
  trace::FccLikeGenerator gen{{}};
  Rng rng{67};
  abr::PensieveEnv env{m, gen.generate_many(5, rng)};
  rl::PpoAgent pensieve = abr::make_pensieve_agent(m, 67);
  RobustifyConfig cfg;
  cfg.protocol_steps = 2048;
  cfg.inject_fraction = 1.0;
  const RobustifyResult result = robustify_pensieve(pensieve, env, cfg);
  EXPECT_TRUE(result.adversarial_traces.empty());
  EXPECT_EQ(env.traces().size(), 5u);
  EXPECT_EQ(result.phase2.steps, 0u);
}

TEST(EndToEnd, PensieveTrainsToReasonableQoe) {
  const abr::VideoManifest m = exact_manifest();
  trace::FccLikeGenerator gen{{}};
  Rng rng{71};
  abr::PensieveEnv env{m, gen.generate_many(20, rng)};
  rl::PpoAgent pensieve = abr::make_pensieve_agent(m, 71);
  pensieve.train(env, 16384);

  // Deploy and compare against BB on fresh traces from the same corpus.
  abr::PensievePolicy policy{pensieve};
  abr::BufferBased bb;
  const auto test_traces = gen.generate_many(20, rng);
  const auto pensieve_qoe = abr::qoe_per_trace(policy, m, test_traces);
  const auto bb_qoe = abr::qoe_per_trace(bb, m, test_traces);
  // Trained Pensieve should at least be in BB's league on its home corpus.
  EXPECT_GT(util::mean(pensieve_qoe), util::mean(bb_qoe) * 0.8 - 0.2);
}

}  // namespace
