// Tests for the trace substrate: the Trace container, CSV round-trips, and
// the statistical character of each synthetic generator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace netadv::trace;
using netadv::util::Rng;

Trace make_simple_trace() {
  return Trace{{
      {1.0, 2.0, 50.0, 0.0},
      {2.0, 4.0, 50.0, 0.01},
      {1.0, 1.0, 60.0, 0.0},
  }};
}

TEST(Trace, DurationAndMeanBandwidth) {
  const Trace t = make_simple_trace();
  EXPECT_DOUBLE_EQ(t.total_duration_s(), 4.0);
  // (2*1 + 4*2 + 1*1) / 4 = 11/4
  EXPECT_DOUBLE_EQ(t.mean_bandwidth_mbps(), 2.75);
}

TEST(Trace, AtTimeSelectsSegment) {
  const Trace t = make_simple_trace();
  EXPECT_DOUBLE_EQ(t.at_time(0.5).bandwidth_mbps, 2.0);
  EXPECT_DOUBLE_EQ(t.at_time(1.5).bandwidth_mbps, 4.0);
  EXPECT_DOUBLE_EQ(t.at_time(3.5).bandwidth_mbps, 1.0);
  // Past the end clamps to the final segment (Mahimahi-style replay).
  EXPECT_DOUBLE_EQ(t.at_time(100.0).bandwidth_mbps, 1.0);
}

TEST(Trace, AtTimeOnEmptyThrows) {
  const Trace t;
  EXPECT_THROW(t.at_time(0.0), std::logic_error);
}

TEST(Trace, BandwidthTotalVariation) {
  const Trace t = make_simple_trace();
  // |4-2| + |1-4| = 5
  EXPECT_DOUBLE_EQ(t.bandwidth_total_variation(), 5.0);
}

TEST(Trace, CsvRoundTrip) {
  const Trace t = make_simple_trace();
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_trace_test.csv").string();
  save_trace(t, path);
  const Trace loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].duration_s, t[i].duration_s);
    EXPECT_DOUBLE_EQ(loaded[i].bandwidth_mbps, t[i].bandwidth_mbps);
    EXPECT_DOUBLE_EQ(loaded[i].latency_ms, t[i].latency_ms);
    EXPECT_DOUBLE_EQ(loaded[i].loss_rate, t[i].loss_rate);
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/trace.csv"), std::runtime_error);
}

// ---------------------------------------------------------------- generators

TEST(UniformRandomGenerator, StaysInBounds) {
  UniformRandomGenerator::Params p;
  p.segments = 200;
  p.bandwidth_min_mbps = 0.8;
  p.bandwidth_max_mbps = 4.8;
  UniformRandomGenerator gen{p};
  Rng rng{61};
  const Trace t = gen.generate(rng);
  ASSERT_EQ(t.size(), 200u);
  for (const auto& s : t.segments()) {
    EXPECT_GE(s.bandwidth_mbps, 0.8);
    EXPECT_LE(s.bandwidth_mbps, 4.8);
    EXPECT_DOUBLE_EQ(s.duration_s, 4.0);
  }
}

TEST(UniformRandomGenerator, MeanIsMidRange) {
  UniformRandomGenerator::Params p;
  p.segments = 5000;
  UniformRandomGenerator gen{p};
  Rng rng{67};
  const Trace t = gen.generate(rng);
  EXPECT_NEAR(t.mean_bandwidth_mbps(), (0.8 + 4.8) / 2.0, 0.1);
}

TEST(UniformRandomGenerator, RejectsBadParams) {
  UniformRandomGenerator::Params p;
  p.bandwidth_min_mbps = 4.0;
  p.bandwidth_max_mbps = 1.0;
  EXPECT_THROW(UniformRandomGenerator{p}, std::invalid_argument);
}

TEST(FccLikeGenerator, IsSmootherThanUniform) {
  // The broadband model holds levels; its per-segment variation should be
  // far below an i.i.d. uniform process over the same range.
  FccLikeGenerator fcc{{}};
  UniformRandomGenerator uniform{{}};
  Rng rng{71};
  double fcc_tv = 0.0;
  double uni_tv = 0.0;
  for (int i = 0; i < 50; ++i) {
    fcc_tv += fcc.generate(rng).bandwidth_total_variation();
    uni_tv += uniform.generate(rng).bandwidth_total_variation();
  }
  EXPECT_LT(fcc_tv, 0.5 * uni_tv);
}

TEST(FccLikeGenerator, StaysInBounds) {
  FccLikeGenerator gen{{}};
  Rng rng{73};
  for (int i = 0; i < 20; ++i) {
    const Trace t = gen.generate(rng);
    for (const auto& s : t.segments()) {
      EXPECT_GE(s.bandwidth_mbps, 0.8);
      EXPECT_LE(s.bandwidth_mbps, 4.8);
      EXPECT_DOUBLE_EQ(s.loss_rate, 0.0);
    }
  }
}

TEST(Hsdpa3gLikeGenerator, IsHarderThanBroadband) {
  // The 3G model must have lower mean bandwidth and deeper dips — that gap is
  // exactly what Figure 4's cross-dataset cells rely on.
  FccLikeGenerator fcc{{}};
  Hsdpa3gLikeGenerator tg{{}};
  Rng rng{79};
  netadv::util::RunningStat fcc_bw;
  netadv::util::RunningStat tg_bw;
  double tg_min = 1e9;
  for (int i = 0; i < 50; ++i) {
    fcc_bw.add(fcc.generate(rng).mean_bandwidth_mbps());
    const Trace t = tg.generate(rng);
    tg_bw.add(t.mean_bandwidth_mbps());
    for (const auto& s : t.segments()) tg_min = std::min(tg_min, s.bandwidth_mbps);
  }
  EXPECT_LT(tg_bw.mean(), fcc_bw.mean());
  EXPECT_LT(tg_min, 0.5);  // deep dips exist
}

TEST(Hsdpa3gLikeGenerator, StaysInBounds) {
  Hsdpa3gLikeGenerator gen{{}};
  Rng rng{83};
  for (int i = 0; i < 20; ++i) {
    const Trace t = gen.generate(rng);
    for (const auto& s : t.segments()) {
      EXPECT_GE(s.bandwidth_mbps, 0.2);
      EXPECT_LE(s.bandwidth_mbps, 4.8);
    }
  }
}

TEST(MarkovGenerator, VisitsAllStates) {
  std::vector<MarkovGenerator::State> states{
      {1.0, 50.0, 0.0}, {3.0, 50.0, 0.0}};
  std::vector<std::vector<double>> transition{{0.5, 0.5}, {0.5, 0.5}};
  MarkovGenerator gen{states, transition, 500, 1.0};
  Rng rng{89};
  const Trace t = gen.generate(rng);
  int low = 0;
  int high = 0;
  for (const auto& s : t.segments()) {
    if (s.bandwidth_mbps < 2.0) ++low;
    else ++high;
  }
  EXPECT_GT(low, 100);
  EXPECT_GT(high, 100);
}

TEST(MarkovGenerator, ValidatesTransitionMatrix) {
  std::vector<MarkovGenerator::State> states{{1.0, 50.0, 0.0}};
  EXPECT_THROW(
      (MarkovGenerator{states, {{0.5}}, 10, 1.0}),  // row sums to 0.5
      std::invalid_argument);
  EXPECT_THROW((MarkovGenerator{states, {{1.0}, {1.0}}, 10, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((MarkovGenerator{{}, {}, 10, 1.0}), std::invalid_argument);
}

TEST(MarkovGenerator, StickyChainHoldsState) {
  std::vector<MarkovGenerator::State> states{
      {1.0, 50.0, 0.0}, {3.0, 50.0, 0.0}};
  std::vector<std::vector<double>> transition{{0.99, 0.01}, {0.01, 0.99}};
  MarkovGenerator gen{states, transition, 300, 1.0};
  Rng rng{97};
  const Trace t = gen.generate(rng);
  int switches = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i].bandwidth_mbps != t[i - 1].bandwidth_mbps) ++switches;
  }
  EXPECT_LT(switches, 30);
}

TEST(TraceGenerator, GenerateManyProducesDistinctTraces) {
  UniformRandomGenerator gen{{}};
  Rng rng{101};
  const auto traces = gen.generate_many(5, rng);
  ASSERT_EQ(traces.size(), 5u);
  EXPECT_NE(traces[0][0].bandwidth_mbps, traces[1][0].bandwidth_mbps);
}

}  // namespace
