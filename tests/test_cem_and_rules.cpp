// Tests for the CEM trace-based adversary (Section 2.1's alternative
// formulation) and the throughput-rule ABR baseline.
#include <gtest/gtest.h>

#include "abr/bb.hpp"
#include "abr/optimal.hpp"
#include "abr/runner.hpp"
#include "abr/throughput_rule.hpp"
#include "core/cem_adversary.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace netadv;
using netadv::util::Rng;

abr::VideoManifest exact_manifest() {
  abr::VideoManifest::Params p;
  p.size_variation = 0.0;
  return abr::VideoManifest{p};
}

// ---------------------------------------------------------------- CEM

TEST(CemTraceAdversary, FindsHighRegretTraceAgainstBb) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::CemTraceAdversary::Params p;
  p.population = 24;
  p.elites = 6;
  p.iterations = 12;
  core::CemTraceAdversary cem{p};
  Rng rng{71};
  const auto result = cem.search(m, bb, rng);

  // Baseline: mean regret of random traces.
  trace::UniformRandomGenerator gen{{}};
  double random_regret = 0.0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const trace::Trace t = gen.generate(rng);
    abr::BufferBased target;
    random_regret += abr::optimal_playback(m, t).total_qoe -
                     abr::run_playback(target, m, t).total_qoe;
  }
  random_regret /= n;
  EXPECT_GT(result.best_regret, random_regret);
  EXPECT_EQ(result.best_trace.size(), m.num_chunks());
  EXPECT_EQ(result.evaluations, p.population * p.iterations);
}

TEST(CemTraceAdversary, ObjectiveHistoryIsMonotone) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::CemTraceAdversary::Params p;
  p.population = 12;
  p.elites = 4;
  p.iterations = 8;
  core::CemTraceAdversary cem{p};
  Rng rng{73};
  const auto result = cem.search(m, bb, rng);
  ASSERT_EQ(result.objective_history.size(), p.iterations);
  for (std::size_t i = 1; i < result.objective_history.size(); ++i) {
    EXPECT_GE(result.objective_history[i], result.objective_history[i - 1]);
  }
}

TEST(CemTraceAdversary, TraceIsPerfectlyReplayable) {
  // The trace-based adversary's selling point (Section 2.1): replaying its
  // trace reproduces the exact damage, every time.
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::CemTraceAdversary::Params p;
  p.population = 12;
  p.elites = 4;
  p.iterations = 6;
  core::CemTraceAdversary cem{p};
  Rng rng{79};
  const auto result = cem.search(m, bb, rng);
  abr::BufferBased t1;
  abr::BufferBased t2;
  const double q1 = abr::run_playback(t1, m, result.best_trace).total_qoe;
  const double q2 = abr::run_playback(t2, m, result.best_trace).total_qoe;
  EXPECT_DOUBLE_EQ(q1, q2);
}

TEST(CemTraceAdversary, TracesStayInBounds) {
  const abr::VideoManifest m = exact_manifest();
  abr::BufferBased bb;
  core::CemTraceAdversary cem;
  Rng rng{83};
  core::CemTraceAdversary::Params p = cem.params();
  const auto result = core::CemTraceAdversary{p}.search(m, bb, rng);
  for (const auto& s : result.best_trace.segments()) {
    EXPECT_GE(s.bandwidth_mbps, 0.8);
    EXPECT_LE(s.bandwidth_mbps, 4.8);
  }
}

TEST(CemTraceAdversary, SmoothingWeightTamesVariation) {
  const abr::VideoManifest m = exact_manifest();
  core::CemTraceAdversary::Params smooth;
  smooth.population = 16;
  smooth.elites = 4;
  smooth.iterations = 10;
  smooth.smoothing_weight = 2.0;
  core::CemTraceAdversary::Params rough = smooth;
  rough.smoothing_weight = 0.0;

  Rng rng1{89};
  Rng rng2{89};
  abr::BufferBased bb1;
  abr::BufferBased bb2;
  const auto rs = core::CemTraceAdversary{smooth}.search(m, bb1, rng1);
  const auto rr = core::CemTraceAdversary{rough}.search(m, bb2, rng2);
  EXPECT_LE(rs.best_trace.bandwidth_total_variation(),
            rr.best_trace.bandwidth_total_variation() + 1e-9);
}

TEST(CemTraceAdversary, ValidatesParams) {
  core::CemTraceAdversary::Params bad;
  bad.elites = 0;
  EXPECT_THROW(core::CemTraceAdversary{bad}, std::invalid_argument);
  core::CemTraceAdversary::Params bad2;
  bad2.elites = bad2.population + 1;
  EXPECT_THROW(core::CemTraceAdversary{bad2}, std::invalid_argument);
  core::CemTraceAdversary::Params bad3;
  bad3.bandwidth_max_mbps = bad3.bandwidth_min_mbps;
  EXPECT_THROW(core::CemTraceAdversary{bad3}, std::invalid_argument);
}

// ---------------------------------------------------------------- ThroughputRule

TEST(ThroughputRule, PicksHighestAffordableBitrate) {
  const abr::VideoManifest m = exact_manifest();
  abr::ThroughputRule rule;
  rule.begin_video(m);
  abr::AbrObservation obs;
  obs.throughput_history_mbps = {2.0, 2.0, 2.0};
  // Estimate 2.0, budget 1.8 -> best rung <= 1.8 Mbps is 1.2 Mbps (index 2).
  EXPECT_EQ(rule.choose_quality(obs), 2u);
}

TEST(ThroughputRule, ColdStartPicksLowest) {
  const abr::VideoManifest m = exact_manifest();
  abr::ThroughputRule rule;
  rule.begin_video(m);
  abr::AbrObservation obs;
  EXPECT_EQ(rule.choose_quality(obs), 0u);
}

TEST(ThroughputRule, HarmonicMeanPunishesDips) {
  const abr::VideoManifest m = exact_manifest();
  abr::ThroughputRule rule;
  rule.begin_video(m);
  abr::AbrObservation obs;
  obs.throughput_history_mbps = {4.0, 4.0, 0.5};
  // Harmonic mean of {4,4,0.5} = 3/(0.25+0.25+2) = 1.2 — far below the
  // arithmetic mean (2.83); the rule reacts strongly to the dip.
  EXPECT_NEAR(rule.estimate_mbps(obs), 1.2, 1e-9);
}

TEST(ThroughputRule, ReasonableQoeOnSteadyLink) {
  const abr::VideoManifest m = exact_manifest();
  abr::ThroughputRule rule;
  trace::Trace t;
  for (int i = 0; i < 48; ++i) t.append({4.0, 3.0, 80.0, 0.0});
  const abr::PlaybackRecord record = abr::run_playback(rule, m, t);
  EXPECT_GT(record.total_qoe, 48.0 * 1.5);  // sustained >= 1.85 Mbps rungs
  EXPECT_LT(record.total_rebuffer_s, 3.0);
}

TEST(ThroughputRule, NeverExceedsOfflineOptimal) {
  const abr::VideoManifest m = exact_manifest();
  abr::ThroughputRule rule;
  trace::UniformRandomGenerator gen{{}};
  Rng rng{97};
  for (int i = 0; i < 5; ++i) {
    const trace::Trace t = gen.generate(rng);
    EXPECT_LE(abr::run_playback(rule, m, t).total_qoe,
              abr::optimal_playback(m, t).total_qoe + 0.5);
  }
}

TEST(ThroughputRule, ValidatesParamsAndLifecycle) {
  abr::ThroughputRule::Params bad;
  bad.window = 0;
  EXPECT_THROW(abr::ThroughputRule{bad}, std::invalid_argument);
  abr::ThroughputRule::Params bad2;
  bad2.safety_factor = 1.5;
  EXPECT_THROW(abr::ThroughputRule{bad2}, std::invalid_argument);
  abr::ThroughputRule rule;
  abr::AbrObservation obs;
  EXPECT_THROW(rule.choose_quality(obs), std::logic_error);
}

}  // namespace
