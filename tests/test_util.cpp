// Unit tests for netadv::util — RNG determinism and distributional sanity,
// streaming statistics, sliding windows, percentiles/CDFs, and CSV I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace netadv::util;

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{8};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 9.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{9};
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.uniform());
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{10};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{11};
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng{12};
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{13};
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.exponential(4.0));
  EXPECT_NEAR(stat.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng{14};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentOfParentAdvance) {
  Rng parent{99};
  Rng child = parent.fork();
  const auto child_first = child();
  // Re-derive the same child from an identically seeded parent.
  Rng parent2{99};
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) (void)parent2();  // advancing parent2 later
  EXPECT_EQ(child_first, child2());
}

TEST(Rng, IndexStaysInRange) {
  Rng rng{15};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

// ---------------------------------------------------------------- RunningStat

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

// ---------------------------------------------------------------- Ewma

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.5};
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e{0.5};
  e.add(0.0);
  for (int i = 0; i < 50; ++i) e.add(1.0);
  EXPECT_NEAR(e.value(), 1.0, 1e-9);
}

TEST(Ewma, WeightsNewSample) {
  Ewma e{0.25};
  e.add(0.0);
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma{0.0}, std::invalid_argument);
  EXPECT_THROW(Ewma{1.5}, std::invalid_argument);
}

// ---------------------------------------------------------------- SlidingWindow

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w{3};
  w.push(1.0);
  w.push(2.0);
  w.push(3.0);
  w.push(4.0);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.front(), 2.0);
  EXPECT_DOUBLE_EQ(w.back(), 4.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindow, HarmonicMean) {
  SlidingWindow w{4};
  w.push(1.0);
  w.push(2.0);
  w.push(4.0);
  // 3 / (1 + 0.5 + 0.25) = 12/7
  EXPECT_NEAR(w.harmonic_mean(), 12.0 / 7.0, 1e-12);
}

TEST(SlidingWindow, HarmonicMeanGuardsNonPositiveSamples) {
  // A 0 sample used to divide by zero (denom = inf, mean = 0 at best, NaN
  // once a second infinity or a negative sample entered the window). It now
  // contributes 1/kMinHarmonicSample, dragging the mean toward ~0.
  SlidingWindow w{4};
  w.push(0.0);
  const double with_zero = w.harmonic_mean();
  EXPECT_TRUE(std::isfinite(with_zero));
  EXPECT_NEAR(with_zero, SlidingWindow::kMinHarmonicSample, 1e-18);

  w.push(10.0);
  EXPECT_TRUE(std::isfinite(w.harmonic_mean()));
  EXPECT_LT(w.harmonic_mean(), 10.0);

  SlidingWindow neg{4};
  neg.push(-2.0);
  neg.push(5.0);
  EXPECT_TRUE(std::isfinite(neg.harmonic_mean()));
  EXPECT_GT(neg.harmonic_mean(), 0.0);
}

TEST(SlidingWindow, MinMax) {
  SlidingWindow w{5};
  for (double x : {3.0, 1.0, 4.0, 1.5}) w.push(x);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 4.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow{0}, std::invalid_argument);
}

// ---------------------------------------------------------------- percentile / cdf

TEST(Percentile, MedianOfOddSet) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  const std::vector<double> xs{7.0, -2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Percentile, ThrowsOnEmptyOrBadP) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW(percentile(empty, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(one, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(one, 101.0), std::invalid_argument);
}

TEST(EmpiricalCdf, SortedAndMonotone) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative_probability, cdf[i].cumulative_probability);
  }
}

TEST(Mean, EmptyIsZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
}

// ---------------------------------------------------------------- csv

TEST(Csv, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_csv_test.csv").string();
  {
    CsvWriter writer{path};
    writer.write_row(std::vector<std::string>{"a", "b"});
    writer.write_row(std::vector<double>{1.5, -2.0});
    writer.write_row(std::vector<double>{0.0, 1e6});
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "a");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(table.rows[0][1], -2.0);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 1e6);
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/netadv.csv"), std::runtime_error);
}

TEST(Csv, NonNumericCellThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_bad.csv").string();
  {
    CsvWriter writer{path};
    writer.write_row(std::vector<std::string>{"x"});
    writer.write_row(std::vector<std::string>{"not_a_number"});
  }
  EXPECT_THROW(read_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Csv, TrailingEmptyCellIsAnErrorNotDropped) {
  // "1.5," is two cells, the second empty. The old parser silently dropped
  // it and accepted the short row; now the empty cell fails numeric parsing.
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_trailing.csv").string();
  {
    std::ofstream out{path};
    out << "a,b\n1.5,\n";
  }
  EXPECT_THROW(read_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Csv, RaggedRowThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netadv_ragged.csv").string();
  {
    std::ofstream out{path};
    out << "a,b,c\n1,2,3\n4,5\n";
  }
  EXPECT_THROW(read_csv(path), std::runtime_error);
  std::remove(path.c_str());

  {
    std::ofstream out{path};
    out << "a,b\n1,2,3\n";
  }
  EXPECT_THROW(read_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Csv, FormatNumberTrimsNoise) {
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(0.5), "0.5");
}

// ---------------------------------------------------------------- config

TEST(Config, ScaledStepsRespectsFloor) {
  EXPECT_GE(scaled_steps(100000, 256), 256u);
}

}  // namespace
